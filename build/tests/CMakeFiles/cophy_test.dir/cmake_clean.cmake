file(REMOVE_RECURSE
  "CMakeFiles/cophy_test.dir/cophy_test.cc.o"
  "CMakeFiles/cophy_test.dir/cophy_test.cc.o.d"
  "cophy_test"
  "cophy_test.pdb"
  "cophy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cophy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
