# Empty compiler generated dependencies file for cophy_test.
# This may be replaced when dependencies are built.
