# Empty dependencies file for updates_test.
# This may be replaced when dependencies are built.
