# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/ddl_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/candidates_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/mip_test[1]_include.cmake")
include("/root/repo/build/tests/cophy_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/shuffle_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/frontier_test[1]_include.cmake")
include("/root/repo/build/tests/updates_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
