file(REMOVE_RECURSE
  "CMakeFiles/idxsel_common.dir/csv.cc.o"
  "CMakeFiles/idxsel_common.dir/csv.cc.o.d"
  "CMakeFiles/idxsel_common.dir/format.cc.o"
  "CMakeFiles/idxsel_common.dir/format.cc.o.d"
  "CMakeFiles/idxsel_common.dir/random.cc.o"
  "CMakeFiles/idxsel_common.dir/random.cc.o.d"
  "CMakeFiles/idxsel_common.dir/status.cc.o"
  "CMakeFiles/idxsel_common.dir/status.cc.o.d"
  "libidxsel_common.a"
  "libidxsel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
