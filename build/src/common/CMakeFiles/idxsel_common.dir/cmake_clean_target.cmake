file(REMOVE_RECURSE
  "libidxsel_common.a"
)
