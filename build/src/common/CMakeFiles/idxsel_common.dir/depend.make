# Empty dependencies file for idxsel_common.
# This may be replaced when dependencies are built.
