file(REMOVE_RECURSE
  "CMakeFiles/idxsel_engine.dir/btree_index.cc.o"
  "CMakeFiles/idxsel_engine.dir/btree_index.cc.o.d"
  "CMakeFiles/idxsel_engine.dir/column_store.cc.o"
  "CMakeFiles/idxsel_engine.dir/column_store.cc.o.d"
  "CMakeFiles/idxsel_engine.dir/composite_index.cc.o"
  "CMakeFiles/idxsel_engine.dir/composite_index.cc.o.d"
  "CMakeFiles/idxsel_engine.dir/executor.cc.o"
  "CMakeFiles/idxsel_engine.dir/executor.cc.o.d"
  "CMakeFiles/idxsel_engine.dir/measured_cost.cc.o"
  "CMakeFiles/idxsel_engine.dir/measured_cost.cc.o.d"
  "libidxsel_engine.a"
  "libidxsel_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
