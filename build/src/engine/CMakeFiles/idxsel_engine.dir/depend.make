# Empty dependencies file for idxsel_engine.
# This may be replaced when dependencies are built.
