file(REMOVE_RECURSE
  "libidxsel_engine.a"
)
