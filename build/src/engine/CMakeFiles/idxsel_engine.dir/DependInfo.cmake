
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/btree_index.cc" "src/engine/CMakeFiles/idxsel_engine.dir/btree_index.cc.o" "gcc" "src/engine/CMakeFiles/idxsel_engine.dir/btree_index.cc.o.d"
  "/root/repo/src/engine/column_store.cc" "src/engine/CMakeFiles/idxsel_engine.dir/column_store.cc.o" "gcc" "src/engine/CMakeFiles/idxsel_engine.dir/column_store.cc.o.d"
  "/root/repo/src/engine/composite_index.cc" "src/engine/CMakeFiles/idxsel_engine.dir/composite_index.cc.o" "gcc" "src/engine/CMakeFiles/idxsel_engine.dir/composite_index.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/idxsel_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/idxsel_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/measured_cost.cc" "src/engine/CMakeFiles/idxsel_engine.dir/measured_cost.cc.o" "gcc" "src/engine/CMakeFiles/idxsel_engine.dir/measured_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/idxsel_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idxsel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
