# Empty dependencies file for idxsel_advisor.
# This may be replaced when dependencies are built.
