file(REMOVE_RECURSE
  "libidxsel_advisor.a"
)
