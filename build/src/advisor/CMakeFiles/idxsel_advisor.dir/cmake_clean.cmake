file(REMOVE_RECURSE
  "CMakeFiles/idxsel_advisor.dir/advisor.cc.o"
  "CMakeFiles/idxsel_advisor.dir/advisor.cc.o.d"
  "libidxsel_advisor.a"
  "libidxsel_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
