file(REMOVE_RECURSE
  "CMakeFiles/idxsel_core.dir/recursive_selector.cc.o"
  "CMakeFiles/idxsel_core.dir/recursive_selector.cc.o.d"
  "libidxsel_core.a"
  "libidxsel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
