# Empty dependencies file for idxsel_core.
# This may be replaced when dependencies are built.
