file(REMOVE_RECURSE
  "libidxsel_core.a"
)
