
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selection/autoadmin.cc" "src/selection/CMakeFiles/idxsel_selection.dir/autoadmin.cc.o" "gcc" "src/selection/CMakeFiles/idxsel_selection.dir/autoadmin.cc.o.d"
  "/root/repo/src/selection/heuristics.cc" "src/selection/CMakeFiles/idxsel_selection.dir/heuristics.cc.o" "gcc" "src/selection/CMakeFiles/idxsel_selection.dir/heuristics.cc.o.d"
  "/root/repo/src/selection/shuffle.cc" "src/selection/CMakeFiles/idxsel_selection.dir/shuffle.cc.o" "gcc" "src/selection/CMakeFiles/idxsel_selection.dir/shuffle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/candidates/CMakeFiles/idxsel_candidates.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idxsel_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idxsel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
