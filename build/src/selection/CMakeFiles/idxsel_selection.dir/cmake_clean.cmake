file(REMOVE_RECURSE
  "CMakeFiles/idxsel_selection.dir/autoadmin.cc.o"
  "CMakeFiles/idxsel_selection.dir/autoadmin.cc.o.d"
  "CMakeFiles/idxsel_selection.dir/heuristics.cc.o"
  "CMakeFiles/idxsel_selection.dir/heuristics.cc.o.d"
  "CMakeFiles/idxsel_selection.dir/shuffle.cc.o"
  "CMakeFiles/idxsel_selection.dir/shuffle.cc.o.d"
  "libidxsel_selection.a"
  "libidxsel_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
