file(REMOVE_RECURSE
  "libidxsel_selection.a"
)
