# Empty compiler generated dependencies file for idxsel_selection.
# This may be replaced when dependencies are built.
