
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/blend.cc" "src/workload/CMakeFiles/idxsel_workload.dir/blend.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/blend.cc.o.d"
  "/root/repo/src/workload/compression.cc" "src/workload/CMakeFiles/idxsel_workload.dir/compression.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/compression.cc.o.d"
  "/root/repo/src/workload/erp_generator.cc" "src/workload/CMakeFiles/idxsel_workload.dir/erp_generator.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/erp_generator.cc.o.d"
  "/root/repo/src/workload/parser.cc" "src/workload/CMakeFiles/idxsel_workload.dir/parser.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/parser.cc.o.d"
  "/root/repo/src/workload/scalable_generator.cc" "src/workload/CMakeFiles/idxsel_workload.dir/scalable_generator.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/scalable_generator.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/workload/CMakeFiles/idxsel_workload.dir/tpcc.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/tpcc.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/idxsel_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/idxsel_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
