file(REMOVE_RECURSE
  "libidxsel_workload.a"
)
