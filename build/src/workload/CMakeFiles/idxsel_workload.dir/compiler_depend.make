# Empty compiler generated dependencies file for idxsel_workload.
# This may be replaced when dependencies are built.
