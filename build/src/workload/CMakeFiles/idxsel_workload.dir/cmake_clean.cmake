file(REMOVE_RECURSE
  "CMakeFiles/idxsel_workload.dir/blend.cc.o"
  "CMakeFiles/idxsel_workload.dir/blend.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/compression.cc.o"
  "CMakeFiles/idxsel_workload.dir/compression.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/erp_generator.cc.o"
  "CMakeFiles/idxsel_workload.dir/erp_generator.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/parser.cc.o"
  "CMakeFiles/idxsel_workload.dir/parser.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/scalable_generator.cc.o"
  "CMakeFiles/idxsel_workload.dir/scalable_generator.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/tpcc.cc.o"
  "CMakeFiles/idxsel_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/idxsel_workload.dir/workload.cc.o"
  "CMakeFiles/idxsel_workload.dir/workload.cc.o.d"
  "libidxsel_workload.a"
  "libidxsel_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
