file(REMOVE_RECURSE
  "CMakeFiles/idxsel_costmodel.dir/cost_model.cc.o"
  "CMakeFiles/idxsel_costmodel.dir/cost_model.cc.o.d"
  "CMakeFiles/idxsel_costmodel.dir/ddl.cc.o"
  "CMakeFiles/idxsel_costmodel.dir/ddl.cc.o.d"
  "CMakeFiles/idxsel_costmodel.dir/index.cc.o"
  "CMakeFiles/idxsel_costmodel.dir/index.cc.o.d"
  "CMakeFiles/idxsel_costmodel.dir/what_if.cc.o"
  "CMakeFiles/idxsel_costmodel.dir/what_if.cc.o.d"
  "libidxsel_costmodel.a"
  "libidxsel_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
