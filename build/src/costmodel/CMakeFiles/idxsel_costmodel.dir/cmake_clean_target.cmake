file(REMOVE_RECURSE
  "libidxsel_costmodel.a"
)
