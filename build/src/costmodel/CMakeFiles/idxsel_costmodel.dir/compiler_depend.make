# Empty compiler generated dependencies file for idxsel_costmodel.
# This may be replaced when dependencies are built.
