
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/cost_model.cc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/cost_model.cc.o" "gcc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/cost_model.cc.o.d"
  "/root/repo/src/costmodel/ddl.cc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/ddl.cc.o" "gcc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/ddl.cc.o.d"
  "/root/repo/src/costmodel/index.cc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/index.cc.o" "gcc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/index.cc.o.d"
  "/root/repo/src/costmodel/what_if.cc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/what_if.cc.o" "gcc" "src/costmodel/CMakeFiles/idxsel_costmodel.dir/what_if.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/idxsel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
