file(REMOVE_RECURSE
  "CMakeFiles/idxsel_analysis.dir/interaction.cc.o"
  "CMakeFiles/idxsel_analysis.dir/interaction.cc.o.d"
  "libidxsel_analysis.a"
  "libidxsel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
