# Empty compiler generated dependencies file for idxsel_analysis.
# This may be replaced when dependencies are built.
