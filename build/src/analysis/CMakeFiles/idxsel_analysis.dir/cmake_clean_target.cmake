file(REMOVE_RECURSE
  "libidxsel_analysis.a"
)
