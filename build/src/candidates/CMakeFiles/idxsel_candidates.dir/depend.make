# Empty dependencies file for idxsel_candidates.
# This may be replaced when dependencies are built.
