file(REMOVE_RECURSE
  "libidxsel_candidates.a"
)
