file(REMOVE_RECURSE
  "CMakeFiles/idxsel_candidates.dir/candidates.cc.o"
  "CMakeFiles/idxsel_candidates.dir/candidates.cc.o.d"
  "libidxsel_candidates.a"
  "libidxsel_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
