# Empty compiler generated dependencies file for idxsel_lp.
# This may be replaced when dependencies are built.
