file(REMOVE_RECURSE
  "CMakeFiles/idxsel_lp.dir/model.cc.o"
  "CMakeFiles/idxsel_lp.dir/model.cc.o.d"
  "CMakeFiles/idxsel_lp.dir/simplex.cc.o"
  "CMakeFiles/idxsel_lp.dir/simplex.cc.o.d"
  "libidxsel_lp.a"
  "libidxsel_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
