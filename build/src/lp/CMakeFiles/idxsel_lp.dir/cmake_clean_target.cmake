file(REMOVE_RECURSE
  "libidxsel_lp.a"
)
