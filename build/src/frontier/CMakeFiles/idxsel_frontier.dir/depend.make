# Empty dependencies file for idxsel_frontier.
# This may be replaced when dependencies are built.
