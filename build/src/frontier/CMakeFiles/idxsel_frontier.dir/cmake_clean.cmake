file(REMOVE_RECURSE
  "CMakeFiles/idxsel_frontier.dir/frontier.cc.o"
  "CMakeFiles/idxsel_frontier.dir/frontier.cc.o.d"
  "libidxsel_frontier.a"
  "libidxsel_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
