file(REMOVE_RECURSE
  "libidxsel_frontier.a"
)
