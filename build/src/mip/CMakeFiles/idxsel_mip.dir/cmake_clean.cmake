file(REMOVE_RECURSE
  "CMakeFiles/idxsel_mip.dir/branch_and_bound.cc.o"
  "CMakeFiles/idxsel_mip.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/idxsel_mip.dir/problem.cc.o"
  "CMakeFiles/idxsel_mip.dir/problem.cc.o.d"
  "libidxsel_mip.a"
  "libidxsel_mip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
