# Empty compiler generated dependencies file for idxsel_mip.
# This may be replaced when dependencies are built.
