file(REMOVE_RECURSE
  "libidxsel_mip.a"
)
