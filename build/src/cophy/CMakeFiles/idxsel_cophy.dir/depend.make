# Empty dependencies file for idxsel_cophy.
# This may be replaced when dependencies are built.
