file(REMOVE_RECURSE
  "CMakeFiles/idxsel_cophy.dir/cophy.cc.o"
  "CMakeFiles/idxsel_cophy.dir/cophy.cc.o.d"
  "libidxsel_cophy.a"
  "libidxsel_cophy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idxsel_cophy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
