file(REMOVE_RECURSE
  "libidxsel_cophy.a"
)
