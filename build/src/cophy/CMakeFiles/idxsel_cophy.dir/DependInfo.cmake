
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cophy/cophy.cc" "src/cophy/CMakeFiles/idxsel_cophy.dir/cophy.cc.o" "gcc" "src/cophy/CMakeFiles/idxsel_cophy.dir/cophy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/candidates/CMakeFiles/idxsel_candidates.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idxsel_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/idxsel_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idxsel_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idxsel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
