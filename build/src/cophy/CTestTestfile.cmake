# CMake generated Testfile for 
# Source directory: /root/repo/src/cophy
# Build directory: /root/repo/build/src/cophy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
