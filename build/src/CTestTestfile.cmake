# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("workload")
subdirs("costmodel")
subdirs("candidates")
subdirs("lp")
subdirs("mip")
subdirs("cophy")
subdirs("selection")
subdirs("core")
subdirs("engine")
subdirs("frontier")
subdirs("advisor")
subdirs("analysis")
