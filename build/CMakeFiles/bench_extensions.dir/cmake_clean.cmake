file(REMOVE_RECURSE
  "CMakeFiles/bench_extensions.dir/bench/bench_extensions.cc.o"
  "CMakeFiles/bench_extensions.dir/bench/bench_extensions.cc.o.d"
  "bench/bench_extensions"
  "bench/bench_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
