# Empty compiler generated dependencies file for bench_whatif_calls.
# This may be replaced when dependencies are built.
