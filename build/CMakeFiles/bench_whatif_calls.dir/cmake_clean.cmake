file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_calls.dir/bench/bench_whatif_calls.cc.o"
  "CMakeFiles/bench_whatif_calls.dir/bench/bench_whatif_calls.cc.o.d"
  "bench/bench_whatif_calls"
  "bench/bench_whatif_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
