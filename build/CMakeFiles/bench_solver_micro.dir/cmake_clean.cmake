file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_micro.dir/bench/bench_solver_micro.cc.o"
  "CMakeFiles/bench_solver_micro.dir/bench/bench_solver_micro.cc.o.d"
  "bench/bench_solver_micro"
  "bench/bench_solver_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
