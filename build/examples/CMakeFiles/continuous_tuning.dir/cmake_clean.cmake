file(REMOVE_RECURSE
  "CMakeFiles/continuous_tuning.dir/continuous_tuning.cpp.o"
  "CMakeFiles/continuous_tuning.dir/continuous_tuning.cpp.o.d"
  "continuous_tuning"
  "continuous_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
