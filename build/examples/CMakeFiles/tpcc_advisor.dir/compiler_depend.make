# Empty compiler generated dependencies file for tpcc_advisor.
# This may be replaced when dependencies are built.
