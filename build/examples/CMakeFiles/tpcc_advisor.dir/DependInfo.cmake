
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tpcc_advisor.cpp" "examples/CMakeFiles/tpcc_advisor.dir/tpcc_advisor.cpp.o" "gcc" "examples/CMakeFiles/tpcc_advisor.dir/tpcc_advisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idxsel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idxsel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/idxsel_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/candidates/CMakeFiles/idxsel_candidates.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/idxsel_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/idxsel_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/cophy/CMakeFiles/idxsel_cophy.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/idxsel_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idxsel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/idxsel_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/frontier/CMakeFiles/idxsel_frontier.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/idxsel_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idxsel_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
