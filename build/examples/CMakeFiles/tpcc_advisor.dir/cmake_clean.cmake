file(REMOVE_RECURSE
  "CMakeFiles/tpcc_advisor.dir/tpcc_advisor.cpp.o"
  "CMakeFiles/tpcc_advisor.dir/tpcc_advisor.cpp.o.d"
  "tpcc_advisor"
  "tpcc_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
