file(REMOVE_RECURSE
  "CMakeFiles/measured_advisor.dir/measured_advisor.cpp.o"
  "CMakeFiles/measured_advisor.dir/measured_advisor.cpp.o.d"
  "measured_advisor"
  "measured_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
