# Empty compiler generated dependencies file for measured_advisor.
# This may be replaced when dependencies are built.
