file(REMOVE_RECURSE
  "CMakeFiles/file_advisor.dir/file_advisor.cpp.o"
  "CMakeFiles/file_advisor.dir/file_advisor.cpp.o.d"
  "file_advisor"
  "file_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
