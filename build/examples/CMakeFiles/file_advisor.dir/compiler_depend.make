# Empty compiler generated dependencies file for file_advisor.
# This may be replaced when dependencies are built.
