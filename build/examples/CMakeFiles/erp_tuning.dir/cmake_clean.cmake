file(REMOVE_RECURSE
  "CMakeFiles/erp_tuning.dir/erp_tuning.cpp.o"
  "CMakeFiles/erp_tuning.dir/erp_tuning.cpp.o.d"
  "erp_tuning"
  "erp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
