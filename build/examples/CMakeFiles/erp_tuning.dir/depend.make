# Empty dependencies file for erp_tuning.
# This may be replaced when dependencies are built.
