// idxsel_lint — project-rule static analysis for the idxsel tree.
//
// A lightweight, libclang-free linter: files are reduced to a
// comment/string-stripped "code view" by a small tokenizer, and every
// project rule runs as a named, individually suppressible check over that
// view (plus the CMakeLists.txt files for build-graph rules). The checks
// encode guarantees the test suite cannot see from the outside:
//
//   L1  layering          cross-module #include must follow the DESIGN.md
//                         dependency DAG; kernel/exec never include obs
//       include-cycle     the quoted-include graph must be acyclic
//       journal-bridge    decision records are emitted through
//                         telemetry::EmitJournal; obs::Journal* and
//                         obs/journal.h stay inside src/obs + src/advisor
//       simd-confinement  vector intrinsics (immintrin.h and friends,
//                         _mm*/__m* names) and simd_impl.h stay inside
//                         src/kernel/simd*; everything else calls the
//                         runtime-dispatched entry points in kernel/simd.h
//   L2  determinism-random  rand()/srand()/std::random_device in src/
//                           outside rt (seeded PRNGs live in common/random.h)
//       determinism-clock   wall-clock (system_clock, time(), clock(),
//                           gettimeofday) in src/ outside rt/obs
//       unordered-iter      range-for over unordered containers in
//                           src/core, src/selection, src/mip — selection
//                           decisions iterate deterministic orders
//   L3  double-compare     raw ==/!= on cost-like doubles or float
//                          literals outside the approved helpers
//                          (common/float_cmp.h)
//       missing-check-include  IDXSEL_CHECK*/IDXSEL_DCHECK* used without
//                              common/check.h in the include closure
//       orphan-source      src/ .cc not compiled into its module library,
//                          or a src/ library no test target links
//   L4  lock-order         cross-TU lock-acquisition graph built from
//                          RAII guard scopes (common::MutexLock,
//                          lock_guard/unique_lock/scoped_lock); a cycle
//                          or a nested re-acquisition of the same
//                          class::member lock is deadlock potential
//       guarded-field      `mutable` non-atomic members in the
//                          concurrency modules must carry
//                          IDXSEL_GUARDED_BY, and every common::Mutex
//                          member must guard at least one annotated
//                          field (or carry a reasoned suppression
//                          stating what it serializes instead)
//       atomic-ordering    atomic operations in src/kernel, src/exec,
//                          src/common must name an explicit
//                          std::memory_order; bare seq_cst-default
//                          loads/stores/RMWs and operator forms
//                          (++/--/+=/=) are findings
//       pointer-order      pointer-value ordering (std::less<T*>,
//                          reinterpret_cast<uintptr_t>, relational
//                          compares of .get()) banned in src/core,
//                          src/selection, src/shard, src/mip —
//                          address-dependent order is nondeterminism
//                          the journal cannot see
//
// Suppression syntax (same line, or anywhere in the contiguous block of
// comment-only lines directly above the finding):
//   // idxsel-lint: allow(<check>) reason=<non-empty explanation>
// A suppression without a reason is itself reported
// (suppression-missing-reason), as is one naming an unknown check
// (unknown-check) and a reasoned one whose finding no longer fires
// (stale-suppression). See doc/static_analysis.md.

#ifndef IDXSEL_TOOLS_IDXSEL_LINT_LINT_H_
#define IDXSEL_TOOLS_IDXSEL_LINT_LINT_H_

#include <string>
#include <vector>

namespace idxsel::lint {

struct Finding {
  std::string path;     ///< file path as supplied (normalized to '/')
  int line = 0;         ///< 1-based
  std::string check;    ///< stable check name, usable in allow(...)
  std::string message;
};

struct FileInput {
  std::string path;
  std::string content;
};

struct Options {
  /// Disables the orphan-source build-graph check (used by callers that
  /// lint loose files without their CMakeLists.txt context).
  bool orphan_check = true;
  /// Checks to disable entirely (their findings are dropped, and their
  /// suppressions are exempt from stale-suppression). CI runs with this
  /// empty — see .github/workflows/ci.yml.
  std::vector<std::string> skip;
};

/// Runs every check over the given in-memory files. CMakeLists.txt inputs
/// feed the build-graph checks; all other inputs are treated as C++.
/// Findings come back sorted by (path, line, check).
std::vector<Finding> LintFiles(const std::vector<FileInput>& files,
                               const Options& options);

/// Filesystem front-end: walks the given files/directories (collecting
/// .cc/.h/CMakeLists.txt; for a directory root "x/src" the sibling
/// "x/tests/CMakeLists.txt" is pulled in too, so the orphan-source check
/// sees the test link graph), then delegates to LintFiles. Returns false
/// and sets *error on I/O failure.
bool LintPaths(const std::vector<std::string>& paths, const Options& options,
               std::vector<Finding>* findings, std::string* error);

/// "path:line: [check] message" — the one true diagnostic format.
std::string FormatFinding(const Finding& finding);

/// Serializes findings as a SARIF 2.1.0 log (one run, one result per
/// finding) for the CI upload that renders findings as inline PR
/// annotations. Deterministic: same findings, same bytes.
std::string SarifReport(const std::vector<Finding>& findings);

/// Names of every check, for --list-checks and suppression validation.
const std::vector<std::string>& KnownChecks();

}  // namespace idxsel::lint

#endif  // IDXSEL_TOOLS_IDXSEL_LINT_LINT_H_
