// idxsel_lint CLI. Usage:
//   idxsel_lint [--no-orphan-check] [--list-checks] <path>...
// Exit status: 0 clean, 1 findings, 2 usage/I-O error.

#include <cstdio>
#include <string>
#include <vector>

#include "idxsel_lint/lint.h"

int main(int argc, char** argv) {
  idxsel::lint::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const std::string& check : idxsel::lint::KnownChecks()) {
        std::printf("%s\n", check.c_str());
      }
      return 0;
    }
    if (arg == "--no-orphan-check") {
      options.orphan_check = false;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: idxsel_lint [--no-orphan-check] [--list-checks] "
          "<path>...\n"
          "Lints .cc/.h/CMakeLists.txt under the given paths against the\n"
          "idxsel project rules (layering, determinism, hygiene).\n"
          "Suppress a finding with: // idxsel-lint: allow(<check>) "
          "reason=<why>\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "idxsel_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "idxsel_lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<idxsel::lint::Finding> findings;
  std::string error;
  if (!idxsel::lint::LintPaths(paths, options, &findings, &error)) {
    std::fprintf(stderr, "idxsel_lint: %s\n", error.c_str());
    return 2;
  }
  for (const auto& finding : findings) {
    std::printf("%s\n", idxsel::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "idxsel_lint: %zu finding%s\n", findings.size(),
                 findings.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
