// idxsel_lint CLI. Usage:
//   idxsel_lint [--no-orphan-check] [--skip <check>]... [--sarif <path>]
//               [--list-checks] <path>...
// Exit status: 0 clean, 1 findings, 2 usage/I-O error.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "idxsel_lint/lint.h"

int main(int argc, char** argv) {
  idxsel::lint::Options options;
  std::vector<std::string> paths;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const std::string& check : idxsel::lint::KnownChecks()) {
        std::printf("%s\n", check.c_str());
      }
      return 0;
    }
    if (arg == "--no-orphan-check") {
      options.orphan_check = false;
      continue;
    }
    if (arg == "--skip") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "idxsel_lint: --skip needs a check name\n");
        return 2;
      }
      const std::string check = argv[++i];
      const auto& known = idxsel::lint::KnownChecks();
      if (std::find(known.begin(), known.end(), check) == known.end()) {
        std::fprintf(stderr,
                     "idxsel_lint: --skip names unknown check '%s' "
                     "(see --list-checks)\n",
                     check.c_str());
        return 2;
      }
      options.skip.push_back(check);
      continue;
    }
    if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "idxsel_lint: --sarif needs an output path\n");
        return 2;
      }
      sarif_path = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: idxsel_lint [--no-orphan-check] [--skip <check>]...\n"
          "                   [--sarif <path>] [--list-checks] <path>...\n"
          "Lints .cc/.h/CMakeLists.txt under the given paths against the\n"
          "idxsel project rules (layering, determinism, concurrency,\n"
          "hygiene).\n"
          "Suppress a finding with: // idxsel-lint: allow(<check>) "
          "reason=<why>\n"
          "--skip disables a check entirely; --sarif also writes the\n"
          "findings as a SARIF 2.1.0 log (for CI PR annotations).\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "idxsel_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "idxsel_lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<idxsel::lint::Finding> findings;
  std::string error;
  if (!idxsel::lint::LintPaths(paths, options, &findings, &error)) {
    std::fprintf(stderr, "idxsel_lint: %s\n", error.c_str());
    return 2;
  }
  if (!sarif_path.empty()) {
    // Always written (an empty run is a valid upload — it clears stale
    // annotations on the PR).
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "idxsel_lint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << idxsel::lint::SarifReport(findings);
  }
  for (const auto& finding : findings) {
    std::printf("%s\n", idxsel::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "idxsel_lint: %zu finding%s\n", findings.size(),
                 findings.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
