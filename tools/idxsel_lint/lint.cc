#include "idxsel_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace idxsel::lint {
namespace {

// ---------------------------------------------------------------------------
// Path classification

std::string Normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

std::vector<std::string> Segments(const std::string& path) {
  std::vector<std::string> out;
  std::string seg;
  std::stringstream ss(path);
  while (std::getline(ss, seg, '/')) {
    if (!seg.empty()) out.push_back(seg);
  }
  return out;
}

enum class Scope { kSrc, kTests, kBench, kTools, kExamples, kOther };

/// Classifies by the *last* matching path segment, so absolute paths
/// (/home/x/repo/src/core/a.cc) and golden-test temp trees classify alike.
Scope ScopeOf(const std::vector<std::string>& segs) {
  for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
    if (*it == "src") return Scope::kSrc;
    if (*it == "tests") return Scope::kTests;
    if (*it == "bench") return Scope::kBench;
    if (*it == "tools") return Scope::kTools;
    if (*it == "examples") return Scope::kExamples;
  }
  return Scope::kOther;
}

/// Module directory under src/ ("core", "obs", ...), or "" outside src/
/// (or for files sitting directly in src/ with no module directory).
std::string ModuleOf(const std::vector<std::string>& segs) {
  for (size_t i = segs.size(); i-- > 0;) {
    if (segs[i] == "src") {
      return i + 2 < segs.size() ? segs[i + 1] : std::string();
    }
  }
  return "";
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// The layering DAG (DESIGN.md §2 "Dependency order"). Direct allowed
// dependencies; the checker closes them transitively. kernel and exec
// deliberately omit obs: they sit beside it, and their telemetry flows
// through common/telemetry.h.

const std::map<std::string, std::vector<std::string>>& LayeringDag() {
  static const std::map<std::string, std::vector<std::string>> dag = {
      {"common", {}},
      {"obs", {"common"}},
      {"exec", {"common"}},
      {"workload", {"common"}},
      {"kernel", {"common", "workload"}},
      {"lp", {"common"}},
      {"mip", {"common", "obs", "exec"}},
      {"costmodel", {"common", "workload", "kernel", "obs", "exec"}},
      {"audit", {"common", "workload", "kernel", "costmodel", "exec"}},
      {"rt", {"common", "workload", "kernel", "costmodel", "obs", "exec"}},
      {"candidates",
       {"common", "workload", "kernel", "costmodel", "obs", "exec"}},
      {"engine", {"common", "workload", "kernel", "costmodel", "obs", "exec"}},
      {"selection",
       {"common", "workload", "kernel", "costmodel", "obs", "exec",
        "candidates"}},
      {"cophy",
       {"common", "workload", "kernel", "costmodel", "obs", "exec",
        "candidates", "lp", "mip"}},
      {"core",
       {"common", "workload", "kernel", "costmodel", "obs", "exec", "audit"}},
      {"frontier",
       {"common", "workload", "kernel", "costmodel", "obs", "exec"}},
      {"analysis",
       {"common", "workload", "kernel", "costmodel", "obs", "exec"}},
      {"shard",
       {"common", "workload", "costmodel", "exec", "core"}},
      {"advisor",
       {"common", "workload", "kernel", "costmodel", "obs", "exec", "rt",
        "audit", "candidates", "lp", "mip", "cophy", "selection", "core",
        "shard"}},
      {"serve", {"common", "workload", "costmodel", "rt", "advisor", "shard"}},
  };
  return dag;
}

/// Transitive closure of the DAG (a module may include headers of any
/// transitive dependency — linking already hands it the whole chain).
const std::map<std::string, std::set<std::string>>& LayeringClosure() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    // Iterate to fixpoint; the table is tiny.
    for (const auto& [mod, deps] : LayeringDag()) {
      out[mod] = {deps.begin(), deps.end()};
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [mod, deps] : out) {
        std::set<std::string> add;
        for (const std::string& d : deps) {
          auto it = out.find(d);
          if (it == out.end()) continue;
          for (const std::string& dd : it->second) {
            if (!deps.count(dd)) add.insert(dd);
          }
        }
        if (!add.empty()) {
          deps.insert(add.begin(), add.end());
          changed = true;
        }
      }
    }
    return out;
  }();
  return closure;
}

// ---------------------------------------------------------------------------
// Tokenized file view

struct FileView {
  std::string path;                     // normalized
  std::vector<std::string> segs;        // path segments
  Scope scope = Scope::kOther;
  std::string module;                   // src module or ""
  std::vector<std::string> code;        // per line, comments/strings blanked
  std::vector<std::string> comments;    // per line, comment text only
  std::vector<std::pair<int, std::string>> includes;  // (line, quoted path)
  bool is_cmake = false;
};

/// Strips comments and string/char literals while preserving line
/// structure; collects comment text per line (for suppression parsing) and
/// quoted includes.
void BuildView(const std::string& content, FileView* view) {
  std::string line_code, line_comment;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  bool keep_string = false;
  std::string raw_delim;
  size_t i = 0;
  const size_t n = content.size();
  auto flush_line = [&] {
    view->code.push_back(line_code);
    view->comments.push_back(line_comment);
    line_code.clear();
    line_comment.clear();
  };
  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated ordinary literals do not span lines.
      if (st == St::kString || st == St::kChar) st = St::kCode;
      flush_line();
      ++i;
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          line_code += "  ";
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (line_code.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         line_code.back())) &&
                     line_code.back() != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t j = i + 2;
          raw_delim.clear();
          while (j < n && content[j] != '(') raw_delim += content[j++];
          st = St::kRaw;
          line_code += ' ';
          i = j < n ? j + 1 : n;
        } else if (c == '"') {
          st = St::kString;
          line_code += '"';
          ++i;
          // Only preprocessor lines keep their string contents in the code
          // view (the #include extraction below reads the quoted path);
          // everywhere else literal text is blanked so words inside
          // strings can never trigger token-scanning checks.
          {
            const size_t h = line_code.find_first_not_of(" \t");
            keep_string = h != std::string::npos && line_code[h] == '#';
          }
        } else if (c == '\'') {
          st = St::kChar;
          line_code += ' ';
          ++i;
        } else {
          line_code += c;
          ++i;
        }
        break;
      case St::kLineComment:
        line_comment += c;
        ++i;
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          i += 2;
        } else {
          line_comment += c;
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\') {
          i += 2;
        } else if (c == '"') {
          st = St::kCode;
          line_code += '"';
          ++i;
        } else {
          line_code += keep_string ? c : ' ';
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          i += 2;
        } else if (c == '\'') {
          st = St::kCode;
          ++i;
        } else {
          ++i;
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          st = St::kCode;
          i += close.size();
        } else {
          ++i;
        }
        break;
      }
    }
  }
  flush_line();

  // Collect #include "..." lines from the code view.
  for (size_t l = 0; l < view->code.size(); ++l) {
    const std::string& s = view->code[l];
    size_t p = s.find_first_not_of(" \t");
    if (p == std::string::npos || s[p] != '#') continue;
    p = s.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || s.compare(p, 7, "include") != 0) continue;
    const size_t q1 = s.find('"', p + 7);
    if (q1 == std::string::npos) continue;
    const size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    view->includes.emplace_back(static_cast<int>(l + 1),
                                s.substr(q1 + 1, q2 - q1 - 1));
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Whole-word occurrences of `word` in `s`; returns 0-based positions.
std::vector<size_t> FindWord(const std::string& s, const std::string& word) {
  std::vector<size_t> out;
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppression {
  std::string check;
  bool has_reason = false;
};

/// Parses "idxsel-lint: allow(<check>) reason=<text>" out of a comment.
std::vector<Suppression> ParseSuppressions(const std::string& comment) {
  std::vector<Suppression> out;
  size_t pos = 0;
  while ((pos = comment.find("idxsel-lint:", pos)) != std::string::npos) {
    size_t p = comment.find("allow(", pos);
    if (p == std::string::npos) break;
    p += 6;
    const size_t close = comment.find(')', p);
    if (close == std::string::npos) break;
    Suppression s;
    s.check = comment.substr(p, close - p);
    const size_t r = comment.find("reason=", close);
    if (r != std::string::npos) {
      std::string reason = comment.substr(r + 7);
      // Trim; an all-whitespace reason is no reason.
      while (!reason.empty() && std::isspace(static_cast<unsigned char>(
                                    reason.back()))) {
        reason.pop_back();
      }
      s.has_reason = !reason.empty();
    }
    out.push_back(std::move(s));
    pos = close;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Check context

struct Context {
  std::vector<FileView> files;
  Options options;
  std::vector<Finding> findings;

  void Report(const FileView& f, int line, const std::string& check,
              std::string message) {
    findings.push_back({f.path, line, check, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// L1: layering + include cycles

void CheckLayering(Context* ctx) {
  const auto& closure = LayeringClosure();
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc || f.module.empty()) continue;
    const auto self = closure.find(f.module);
    if (self == closure.end()) {
      ctx->Report(f, 1, "layering",
                  "module 'src/" + f.module +
                      "' is not in the layering table; add it to the "
                      "DESIGN.md dependency DAG and tools/idxsel_lint");
      continue;
    }
    for (const auto& [line, inc] : f.includes) {
      const size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;  // sibling include
      const std::string target = inc.substr(0, slash);
      if (target == f.module) continue;
      if (!closure.count(target)) continue;  // not a src module ("gtest/...")
      if ((f.module == "kernel" || f.module == "exec") && target == "obs") {
        ctx->Report(f, line, "layering",
                    "src/" + f.module +
                        " must never include obs headers directly (include '" +
                        inc + "'); publish through common/telemetry.h");
        continue;
      }
      if (!self->second.count(target)) {
        ctx->Report(f, line, "layering",
                    "src/" + f.module + " may not depend on src/" + target +
                        " (include '" + inc +
                        "'); allowed: " + [&] {
                          std::string s;
                          for (const auto& d : self->second) {
                            s += s.empty() ? d : ", " + d;
                          }
                          return s.empty() ? std::string("none") : s;
                        }());
      }
    }
  }
}

void CheckIncludeCycles(Context* ctx) {
  // Resolve quoted includes to scanned files by path suffix (or sibling
  // file for slash-less includes).
  std::map<std::string, size_t> by_path;  // normalized path -> index
  for (size_t i = 0; i < ctx->files.size(); ++i) {
    by_path[ctx->files[i].path] = i;
  }
  auto resolve = [&](const FileView& from, const std::string& inc) -> int {
    if (inc.find('/') == std::string::npos) {
      const size_t slash = from.path.rfind('/');
      const std::string sibling =
          slash == std::string::npos ? inc : from.path.substr(0, slash + 1) + inc;
      const auto it = by_path.find(sibling);
      return it == by_path.end() ? -1 : static_cast<int>(it->second);
    }
    int found = -1;
    for (const auto& [path, idx] : by_path) {
      if (EndsWith(path, "/" + inc) || path == inc) {
        if (found >= 0) return -1;  // ambiguous: stay silent
        found = static_cast<int>(idx);
      }
    }
    return found;
  };

  const size_t n = ctx->files.size();
  std::vector<std::vector<std::pair<int, int>>> edges(n);  // (target, line)
  for (size_t i = 0; i < n; ++i) {
    if (ctx->files[i].is_cmake) continue;
    for (const auto& [line, inc] : ctx->files[i].includes) {
      const int t = resolve(ctx->files[i], inc);
      if (t >= 0 && static_cast<size_t>(t) != i) {
        edges[i].push_back({t, line});
      }
    }
  }

  // Iterative DFS, reporting the first back-edge of each cycle found.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<int> parent_edge_line(n, 0);
  std::set<std::pair<size_t, size_t>> reported;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<size_t, size_t>> stack;  // (node, next edge idx)
    std::vector<size_t> path;
    stack.push_back({root, 0});
    color[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      if (edge_idx >= edges[node].size()) {
        color[node] = 2;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const auto [target, line] = edges[node][edge_idx++];
      const size_t t = static_cast<size_t>(target);
      if (color[t] == 1) {
        // Back edge: path from t .. node forms the cycle.
        if (reported.insert({std::min(node, t), std::max(node, t)}).second) {
          std::string cyc;
          bool in = false;
          for (const size_t p : path) {
            if (p == t) in = true;
            if (in) cyc += ctx->files[p].path + " -> ";
          }
          cyc += ctx->files[t].path;
          ctx->Report(ctx->files[node], static_cast<int>(line),
                      "include-cycle", "include cycle: " + cyc);
        }
      } else if (color[t] == 0) {
        color[t] = 1;
        stack.push_back({t, 0});
        path.push_back(t);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L1 companion: journal emission goes through the telemetry bridge

/// Strategy and leaf layers emit decision records exclusively via
/// telemetry::EmitJournal (common/telemetry.h); only obs (the sink) and
/// advisor (JournalScope owner, Recommendation::journal) may touch the
/// obs::Journal* types or include obs/journal.h. Direct consumption from
/// an emitting layer would bypass the run scoping and the obs-off
/// compile gate — see doc/observability.md ("Selection journal").
void CheckJournalBridge(Context* ctx) {
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc) continue;
    if (f.module == "obs" || f.module == "advisor") continue;
    for (const auto& [line, inc] : f.includes) {
      if (inc == "obs/journal.h") {
        ctx->Report(f, line, "journal-bridge",
                    "src/" + f.module +
                        " must not include obs/journal.h; emit decision "
                        "records through telemetry::EmitJournal "
                        "(common/telemetry.h)");
      }
    }
    for (size_t l = 0; l < f.code.size(); ++l) {
      if (f.code[l].find("obs::Journal") != std::string::npos) {
        ctx->Report(f, static_cast<int>(l + 1), "journal-bridge",
                    "src/" + f.module +
                        " must not use obs::Journal* directly; emit through "
                        "telemetry::EmitJournal, consume from src/obs or "
                        "src/advisor only");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L1 companion: vector intrinsics stay behind the dispatch layer

/// The only files allowed to touch intrinsics: src/kernel/simd.h,
/// simd.cc, simd_impl.h, simd_avx2.cc.
bool SimdConfined(const FileView& f) {
  return f.scope == Scope::kSrc && f.module == "kernel" && !f.segs.empty() &&
         f.segs.back().rfind("simd", 0) == 0;
}

/// Occurrences of `token` in `s` at identifier-start boundaries (the
/// token is a prefix: intrinsic names continue past it, so FindWord's
/// trailing boundary would never match).
bool HasPrefixWord(const std::string& s, const std::string& token) {
  size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(s[pos - 1])) return true;
    pos += token.size();
  }
  return false;
}

/// Raw SIMD intrinsics (immintrin.h and friends, _mm*/__m* names) and
/// the implementation template simd_impl.h are confined to
/// src/kernel/simd*; everything else calls the dispatched entry points
/// in kernel/simd.h. A stray intrinsic elsewhere either breaks the
/// portable build (only simd_avx2.cc is compiled with -mavx2) or
/// silently bypasses the runtime cpuid dispatch and the force-scalar
/// test pin — see doc/cost_model.md ("SIMD under the kernel").
void CheckSimdConfinement(Context* ctx) {
  static const char* kIntrinsicHeaders[] = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "pmmintrin.h", "smmintrin.h", "tmmintrin.h", "nmmintrin.h",
      "wmmintrin.h", "avxintrin.h", "arm_neon.h"};
  static const char* kIntrinsicTokens[] = {"_mm512_", "_mm256_", "_mm_",
                                           "__m512", "__m256", "__m128"};
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || SimdConfined(f)) continue;
    for (const auto& [line, inc] : f.includes) {
      if (inc == "kernel/simd_impl.h" || inc == "simd_impl.h") {
        ctx->Report(f, line, "simd-confinement",
                    "simd_impl.h is the implementation template of the "
                    "dispatch layer; only src/kernel/simd* may include it — "
                    "call the entry points in kernel/simd.h instead");
      }
    }
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      bool hit = false;
      for (const char* h : kIntrinsicHeaders) {
        if (s.find(h) != std::string::npos) {
          ctx->Report(f, static_cast<int>(l + 1), "simd-confinement",
                      std::string("intrinsics header <") + h +
                          "> outside src/kernel/simd*; use the dispatched "
                          "entry points in kernel/simd.h");
          hit = true;
          break;
        }
      }
      if (hit) continue;
      for (const char* t : kIntrinsicTokens) {
        if (HasPrefixWord(s, t)) {
          ctx->Report(f, static_cast<int>(l + 1), "simd-confinement",
                      std::string("raw SIMD intrinsic '") + t +
                          "...' outside src/kernel/simd*; vector code lives "
                          "behind the kernel/simd.h dispatch so the scalar "
                          "fallback and IDXSEL_FORCE_SCALAR stay honest");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L2: determinism

bool DeterminismScoped(const FileView& f) {
  return f.scope == Scope::kSrc && f.module != "rt" && f.module != "obs";
}

void CheckRandom(Context* ctx) {
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || !DeterminismScoped(f)) continue;
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      for (const char* fn : {"rand", "srand"}) {
        for (const size_t pos : FindWord(s, fn)) {
          const size_t after = s.find_first_not_of(" \t", pos + strlen(fn));
          if (after != std::string::npos && s[after] == '(') {
            ctx->Report(f, static_cast<int>(l + 1), "determinism-random",
                        std::string("'") + fn +
                            "()' is nondeterministic across runs; use the "
                            "seeded PRNGs in common/random.h");
          }
        }
      }
      if (!FindWord(s, "random_device").empty()) {
        ctx->Report(f, static_cast<int>(l + 1), "determinism-random",
                    "'std::random_device' is nondeterministic; selection "
                    "code must seed from configuration (common/random.h)");
      }
    }
  }
}

void CheckClock(Context* ctx) {
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || !DeterminismScoped(f)) continue;
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      for (const char* id : {"system_clock", "gettimeofday", "localtime"}) {
        if (!FindWord(s, id).empty()) {
          ctx->Report(f, static_cast<int>(l + 1), "determinism-clock",
                      std::string("wall-clock '") + id +
                          "' outside rt/obs/bench; deadlines go through "
                          "rt::Deadline (common/deadline.h), timing through "
                          "obs spans");
        }
      }
      for (const char* fn : {"time", "clock"}) {
        for (const size_t pos : FindWord(s, fn)) {
          const size_t after = s.find_first_not_of(" \t", pos + strlen(fn));
          if (after != std::string::npos && s[after] == '(' &&
              (pos < 2 || s.compare(pos - 2, 2, "->") != 0) &&
              (pos == 0 || s[pos - 1] != '.')) {
            ctx->Report(f, static_cast<int>(l + 1), "determinism-clock",
                        std::string("wall-clock '") + fn +
                            "()' outside rt/obs/bench; deadlines go through "
                            "rt::Deadline (common/deadline.h)");
          }
        }
      }
    }
  }
}

void CheckUnorderedIter(Context* ctx) {
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc) continue;
    if (f.module != "core" && f.module != "selection" && f.module != "mip") {
      continue;
    }
    // Pass 1: names declared with an unordered container type.
    std::set<std::string> unordered_vars;
    for (const std::string& s : f.code) {
      for (const char* ty :
           {"unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"}) {
        for (size_t pos : FindWord(s, ty)) {
          size_t p = pos + strlen(ty);
          if (p >= s.size() || s[p] != '<') continue;
          int depth = 0;
          while (p < s.size()) {
            if (s[p] == '<') ++depth;
            if (s[p] == '>') {
              --depth;
              if (depth == 0) break;
            }
            ++p;
          }
          if (p >= s.size()) continue;  // declaration spans lines: skip
          ++p;
          // Skip refs/pointers/whitespace, then read the variable name.
          while (p < s.size() &&
                 (s[p] == ' ' || s[p] == '&' || s[p] == '*')) {
            ++p;
          }
          std::string name;
          while (p < s.size() && IsIdentChar(s[p])) name += s[p++];
          if (!name.empty()) unordered_vars.insert(name);
        }
      }
    }
    // Pass 2: range-fors whose range expression mentions an unordered
    // container (by declared name or directly).
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      for (const size_t pos : FindWord(s, "for")) {
        const size_t paren = s.find('(', pos + 3);
        if (paren == std::string::npos) continue;
        // Find the ':' of a range-for at paren depth 1 (ignore '::').
        int depth = 0;
        size_t colon = std::string::npos;
        size_t close = std::string::npos;
        for (size_t p = paren; p < s.size(); ++p) {
          if (s[p] == '(') ++depth;
          if (s[p] == ')') {
            --depth;
            if (depth == 0) {
              close = p;
              break;
            }
          }
          if (s[p] == ':' && depth == 1 && colon == std::string::npos &&
              (p + 1 >= s.size() || s[p + 1] != ':') &&
              (p == 0 || s[p - 1] != ':')) {
            colon = p;
          }
        }
        if (colon == std::string::npos || close == std::string::npos) {
          continue;
        }
        const std::string range = s.substr(colon + 1, close - colon - 1);
        bool hit = range.find("unordered_") != std::string::npos;
        for (const std::string& name : unordered_vars) {
          if (!FindWord(range, name).empty()) hit = true;
        }
        if (hit) {
          ctx->Report(
              f, static_cast<int>(l + 1), "unordered-iter",
              "range-for over an unordered container in src/" + f.module +
                  "; selection decisions must iterate deterministic orders "
                  "(sort the keys first, or suppress with a written reason "
                  "if the order provably never escapes)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3: hygiene

/// True when the token names a cost-like quantity. Identifiers are split
/// into words on '_', '.', and camelCase boundaries so that e.g.
/// "reconfiguration" does not match "ratio" by substring accident, while
/// "x.cost", "query_costs", and "bestRatio" all match.
bool CostLikeToken(const std::string& tok) {
  std::vector<std::string> words;
  std::string word;
  for (size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '_' || c == '.') {
      if (!word.empty()) words.push_back(word);
      word.clear();
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && !word.empty() &&
        std::islower(static_cast<unsigned char>(word.back()))) {
      words.push_back(word);
      word.clear();
    }
    word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (!word.empty()) words.push_back(word);
  for (const std::string& w : words) {
    for (const char* kw :
         {"cost", "benefit", "ratio", "penalty", "objective"}) {
      if (w == kw || w == std::string(kw) + "s") return true;
    }
  }
  return false;
}

bool FloatLiteralToken(const std::string& tok) {
  if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0]))) {
    return tok.size() >= 2 && tok[0] == '.' &&
           std::isdigit(static_cast<unsigned char>(tok[1]));
  }
  return tok.find('.') != std::string::npos ||
         tok.find('e') != std::string::npos ||
         tok.find('E') != std::string::npos;
}

/// Token (identifier/number, possibly dotted member chain) ending at `end`
/// (exclusive), scanning backwards. Trailing balanced "[...]"/"(...)"
/// groups are skipped so "query_costs[x]" yields "query_costs".
std::string TokenBefore(const std::string& s, size_t end) {
  size_t p = end;
  while (p > 0 && s[p - 1] == ' ') --p;
  while (p > 0 && (s[p - 1] == ']' || s[p - 1] == ')')) {
    const char open = s[p - 1] == ']' ? '[' : '(';
    const char close = s[p - 1];
    int depth = 0;
    while (p > 0) {
      --p;
      if (s[p] == close) ++depth;
      if (s[p] == open && --depth == 0) break;
    }
    if (depth != 0) return "";  // unbalanced on this line: give up
  }
  const size_t stop = p;
  while (p > 0 && (IsIdentChar(s[p - 1]) || s[p - 1] == '.')) --p;
  return s.substr(p, stop - p);
}

std::string TokenAfter(const std::string& s, size_t begin) {
  size_t p = begin;
  while (p < s.size() && s[p] == ' ') ++p;
  const size_t start = p;
  while (p < s.size() && (IsIdentChar(s[p]) || s[p] == '.')) ++p;
  return s.substr(start, p - start);
}

void CheckDoubleCompare(Context* ctx) {
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc) continue;
    // The one approved home for raw FP equality, and the generic CHECK
    // macros (whose ==/!= instantiate over every comparable type).
    if (EndsWith(f.path, "common/float_cmp.h") ||
        EndsWith(f.path, "common/check.h")) {
      continue;
    }
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      if (s.find("operator==") != std::string::npos ||
          s.find("operator!=") != std::string::npos) {
        continue;
      }
      for (size_t p = 0; p + 1 < s.size(); ++p) {
        const bool eq = s[p] == '=' && s[p + 1] == '=';
        const bool ne = s[p] == '!' && s[p + 1] == '=';
        if (!eq && !ne) continue;
        // Exclude <=, >=, === (no such thing), and assignment ==.
        if (p > 0 && (s[p - 1] == '<' || s[p - 1] == '>' || s[p - 1] == '=' ||
                      s[p - 1] == '!')) {
          continue;
        }
        if (p + 2 < s.size() && s[p + 2] == '=') continue;
        const std::string left = TokenBefore(s, p);
        const std::string right = TokenAfter(s, p + 2);
        // Pointer/sentinel comparisons are not value comparisons.
        if (left == "nullptr" || right == "nullptr") continue;
        const bool cost_like = CostLikeToken(left) || CostLikeToken(right);
        const bool fp_lit =
            FloatLiteralToken(left) || FloatLiteralToken(right);
        if (cost_like || fp_lit) {
          ctx->Report(
              f, static_cast<int>(l + 1), "double-compare",
              "raw " + std::string(eq ? "==" : "!=") + " on " +
                  (fp_lit ? "a floating-point literal" : "a cost-like value") +
                  " ('" + (left.empty() ? "?" : left) + "' vs '" +
                  (right.empty() ? "?" : right) +
                  "'); use common/float_cmp.h (ExactlyEqual/ExactlyZero for "
                  "deliberate bitwise tests, ApproxEqual for tolerances)");
        }
      }
    }
  }
}

void CheckMissingCheckInclude(Context* ctx) {
  // Per-file include closure restricted to the scanned set.
  std::map<std::string, size_t> by_path;
  for (size_t i = 0; i < ctx->files.size(); ++i) {
    by_path[ctx->files[i].path] = i;
  }
  auto resolve = [&](const FileView& from, const std::string& inc) -> int {
    if (inc.find('/') == std::string::npos) {
      const size_t slash = from.path.rfind('/');
      const std::string sibling =
          slash == std::string::npos ? inc
                                     : from.path.substr(0, slash + 1) + inc;
      const auto it = by_path.find(sibling);
      return it == by_path.end() ? -1 : static_cast<int>(it->second);
    }
    for (const auto& [path, idx] : by_path) {
      if (EndsWith(path, "/" + inc) || path == inc) {
        return static_cast<int>(idx);
      }
    }
    return -1;
  };
  const size_t n = ctx->files.size();
  // closure_has_check[i]: common/check.h reachable from i via includes.
  std::vector<int> state(n, -1);  // -1 unknown, 0 no, 1 yes
  std::function<bool(size_t, std::vector<char>&)> reaches =
      [&](size_t i, std::vector<char>& visiting) -> bool {
    if (state[i] >= 0) return state[i] == 1;
    if (visiting[i]) return false;  // cycle: handled by include-cycle check
    visiting[i] = 1;
    bool found = EndsWith(ctx->files[i].path, "common/check.h");
    for (const auto& [line, inc] : ctx->files[i].includes) {
      if (found) break;
      if (inc == "common/check.h" || EndsWith(inc, "/check.h")) {
        found = true;
        break;
      }
      const int t = resolve(ctx->files[i], inc);
      if (t >= 0 && reaches(static_cast<size_t>(t), visiting)) found = true;
    }
    visiting[i] = 0;
    state[i] = found ? 1 : 0;
    return found;
  };
  for (size_t i = 0; i < n; ++i) {
    const FileView& f = ctx->files[i];
    if (f.is_cmake || EndsWith(f.path, "common/check.h")) continue;
    bool uses = false;
    int first_line = 0;
    for (size_t l = 0; l < f.code.size() && !uses; ++l) {
      if (!FindWord(f.code[l], "IDXSEL_CHECK").empty() ||
          f.code[l].find("IDXSEL_CHECK_") != std::string::npos ||
          !FindWord(f.code[l], "IDXSEL_DCHECK").empty() ||
          f.code[l].find("IDXSEL_DCHECK_") != std::string::npos) {
        uses = true;
        first_line = static_cast<int>(l + 1);
      }
    }
    if (!uses) continue;
    std::vector<char> visiting(n, 0);
    if (!reaches(i, visiting)) {
      ctx->Report(f, first_line, "missing-check-include",
                  "IDXSEL_CHECK/IDXSEL_DCHECK used but common/check.h is "
                  "not in this file's include closure");
    }
  }
}

// ---------------------------------------------------------------------------
// L3: orphan sources (build-graph check over CMakeLists.txt inputs)

void CheckOrphanSources(Context* ctx) {
  if (!ctx->options.orphan_check) return;
  // Gather CMake content: per-directory source lists and the union of all
  // idxsel_* target references in tests/ CMake files.
  struct CMakeDir {
    std::set<std::string> sources;  // .cc files named in this CMakeLists
    std::vector<std::string> libraries;  // add_library target names
  };
  std::map<std::string, CMakeDir> dirs;  // directory path -> info
  std::set<std::string> test_referenced;
  bool have_src_cmake = false;
  bool have_tests_cmake = false;
  for (const FileView& f : ctx->files) {
    if (!f.is_cmake) continue;
    const size_t slash = f.path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : f.path.substr(0, slash);
    CMakeDir& d = dirs[dir];
    // Tokenize on non-identifier/path characters.
    std::string all;
    for (const std::string& line : f.code) all += line + "\n";
    std::vector<std::string> toks;
    std::string tok;
    for (const char c : all) {
      if (IsIdentChar(c) || c == '.' || c == '/') {
        tok += c;
      } else if (!tok.empty()) {
        toks.push_back(tok);
        tok.clear();
      }
    }
    if (!tok.empty()) toks.push_back(tok);
    for (size_t t = 0; t < toks.size(); ++t) {
      if ((toks[t] == "add_library" || toks[t] == "add_executable") &&
          t + 1 < toks.size()) {
        if (toks[t] == "add_library") d.libraries.push_back(toks[t + 1]);
      }
      if (EndsWith(toks[t], ".cc")) d.sources.insert(toks[t]);
    }
    if (f.scope == Scope::kSrc) have_src_cmake = true;
    if (f.scope == Scope::kTests) {
      have_tests_cmake = true;
      for (const std::string& t : toks) {
        if (t.rfind("idxsel_", 0) == 0) test_referenced.insert(t);
      }
    }
  }
  if (!have_src_cmake) return;  // nothing to check against

  // (a) every src/ .cc must be named by its directory's CMakeLists.txt.
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc || !EndsWith(f.path, ".cc")) {
      continue;
    }
    const size_t slash = f.path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : f.path.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? f.path : f.path.substr(slash + 1);
    const auto it = dirs.find(dir);
    if (it == dirs.end() || !it->second.sources.count(base)) {
      ctx->Report(f, 1, "orphan-source",
                  "src/ source file is not compiled into any target by " +
                      (dir.empty() ? std::string("its") : dir + "/") +
                      "CMakeLists.txt");
    }
  }

  // (b) every src/ library must be referenced by the tests CMake graph.
  if (!have_tests_cmake) return;
  for (const auto& [dir, d] : dirs) {
    for (const std::string& lib : d.libraries) {
      if (lib.rfind("idxsel_", 0) != 0) continue;
      if (dir.find("/src/") == std::string::npos &&
          dir.rfind("src/", 0) != 0 && dir != "src") {
        continue;
      }
      if (!test_referenced.count(lib)) {
        // Attribute to the directory's CMakeLists.txt.
        for (const FileView& f : ctx->files) {
          if (f.is_cmake && f.path == dir + "/CMakeLists.txt") {
            ctx->Report(f, 1, "orphan-source",
                        "library '" + lib +
                            "' is not linked by any test target in "
                            "tests/CMakeLists.txt");
            break;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L4: concurrency contracts

/// Innermost named scope per line (class/struct body, or the owning class
/// of an out-of-line `X::Method(...)` definition at namespace scope) plus
/// the brace depth entering each line. Line-granular: a scope opened and
/// used on the same line is attributed from the line start, which matches
/// the project style (guards and members declared on their own lines).
struct ScopeMap {
  std::vector<std::string> context;
  std::vector<int> depth_at_start;
};

ScopeMap BuildScopeMap(const FileView& f) {
  ScopeMap out;
  out.context.resize(f.code.size());
  out.depth_at_start.resize(f.code.size());
  struct Entry {
    std::string name;
    int depth;
  };
  std::vector<Entry> stack;
  int depth = 0;
  bool cls_mode = false;        // between class/struct keyword and its body
  std::string cls_candidate;    // last identifier seen in cls_mode
  std::string pending;          // scope name for the next '{'
  std::string last_ident;
  std::string qual_owner;       // identifier before the most recent '::'
  bool after_scope_op = false;  // just consumed "::"
  auto effective = [&stack]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (!it->name.empty()) return it->name;
    }
    return "";
  };
  for (size_t l = 0; l < f.code.size(); ++l) {
    out.depth_at_start[l] = depth;
    out.context[l] = effective();
    const std::string& s = f.code[l];
    for (size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < s.size() && IsIdentChar(s[j])) ++j;
        const std::string ident = s.substr(i, j - i);
        if (ident == "class" || ident == "struct") {
          cls_mode = true;
          cls_candidate.clear();
        } else if (cls_mode) {
          cls_candidate = ident;
        }
        // Out-of-line method definition "Owner::Name(" at namespace scope
        // binds the function body to Owner (the last qualifier, so
        // "ns::Owner::Name(" also resolves to Owner).
        const size_t next = s.find_first_not_of(' ', j);
        if (after_scope_op && !cls_mode && next != std::string::npos &&
            s[next] == '(' && effective().empty()) {
          pending = qual_owner;
        }
        after_scope_op = false;
        last_ident = ident;
        i = j - 1;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        qual_owner = last_ident;
        after_scope_op = true;
        ++i;
        continue;
      }
      after_scope_op = false;
      if (c == ':') {
        // Inheritance list: the class name is final, the base names that
        // follow must not overwrite it.
        if (cls_mode) {
          cls_mode = false;
          pending = cls_candidate;
        }
      } else if (c == '<' || c == '>' || c == ',') {
        cls_mode = false;  // "template <class T>" is not a class decl
      } else if (c == '~') {
        // Destructor "Owner::~Owner()": keep the scope-op state so the
        // identifier after '~' still sees it.
        after_scope_op = after_scope_op || (i >= 2 && s[i - 1] == ':');
      } else if (c == '{') {
        if (cls_mode) {
          pending = cls_candidate;
          cls_mode = false;
        }
        stack.push_back({pending, depth});
        pending.clear();
        ++depth;
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && stack.back().depth >= depth) {
          stack.pop_back();
        }
      } else if (c == ';') {
        pending.clear();
        cls_mode = false;
      }
    }
  }
  return out;
}

/// Position of the ')' matching the '(' at `open`, or npos when the group
/// does not close on this line.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t p = open; p < s.size(); ++p) {
    if (s[p] == '(') ++depth;
    if (s[p] == ')' && --depth == 0) return p;
  }
  return std::string::npos;
}

/// Argument text of the call whose '(' sits at (line l, column open),
/// joined across up to 8 lines (enough for any clang-formatted call).
std::string CollectArgs(const FileView& f, size_t l, size_t open) {
  std::string out;
  int depth = 0;
  for (size_t ll = l; ll < f.code.size() && ll < l + 8; ++ll) {
    const std::string& s = f.code[ll];
    for (size_t p = ll == l ? open : 0; p < s.size(); ++p) {
      if (s[p] == '(') {
        if (depth++ > 0) out += '(';
      } else if (s[p] == ')') {
        if (--depth == 0) return out;
        out += ')';
      } else if (depth > 0) {
        out += s[p];
      }
    }
    out += ' ';
  }
  return out;
}

/// Canonical lock-graph node for a guard expression: enclosing class +
/// final member name, with address-of/deref, this->, object prefixes and
/// trailing index groups stripped — "&shard.mu" inside a ShardedMap
/// method becomes "ShardedMap::mu". Same-named members of one class
/// collapse into one node (deliberately conservative: nesting two
/// instances of the same member is exactly the shape that needs an
/// address-independent order, which pointer-order bans).
std::string LockNode(std::string expr, const std::string& cls) {
  auto trim = [](std::string& t) {
    while (!t.empty() && (t.front() == ' ' || t.front() == '&' ||
                          t.front() == '*')) {
      t.erase(t.begin());
    }
    while (!t.empty() && t.back() == ' ') t.pop_back();
  };
  trim(expr);
  if (expr.rfind("this->", 0) == 0) expr.erase(0, 6);
  while (!expr.empty() && (expr.back() == ']' || expr.back() == ')')) {
    const char close = expr.back();
    const char open = close == ']' ? '[' : '(';
    int depth = 0;
    size_t p = expr.size();
    while (p > 0) {
      --p;
      if (expr[p] == close) ++depth;
      if (expr[p] == open && --depth == 0) break;
    }
    if (depth != 0) break;
    expr.erase(p);
    while (!expr.empty() && expr.back() == ' ') expr.pop_back();
  }
  size_t member = expr.rfind('.');
  const size_t arrow = expr.rfind("->");
  if (arrow != std::string::npos &&
      (member == std::string::npos || arrow + 1 > member)) {
    member = arrow + 1;
  }
  if (member != std::string::npos) expr = expr.substr(member + 1);
  trim(expr);
  return cls + "::" + expr;
}

/// Splits `args` on top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// RAII guard declarations on one line: (column, guarded mutex exprs).
/// Recognizes common::MutexLock plus the std lock guards; a declaration
/// needs a variable name between the type and the '(' (so constructor
/// declarations inside common/mutex.h itself do not match).
struct GuardDecl {
  size_t col;
  std::vector<std::string> exprs;
};

std::vector<GuardDecl> GuardDecls(const std::string& s) {
  std::vector<GuardDecl> out;
  struct Kind {
    const char* word;
    bool all_args;  // scoped_lock locks every argument
  };
  static const Kind kKinds[] = {{"MutexLock", false},
                                {"lock_guard", false},
                                {"unique_lock", false},
                                {"scoped_lock", true}};
  for (const Kind& kind : kKinds) {
    for (const size_t pos : FindWord(s, kind.word)) {
      size_t p = pos + std::strlen(kind.word);
      if (p < s.size() && s[p] == '<') {  // template argument list
        int depth = 0;
        while (p < s.size()) {
          if (s[p] == '<') ++depth;
          if (s[p] == '>' && --depth == 0) break;
          ++p;
        }
        if (p >= s.size()) continue;
        ++p;
      }
      while (p < s.size() && s[p] == ' ') ++p;
      if (p >= s.size() || !IsIdentChar(s[p])) continue;  // not a decl
      while (p < s.size() && IsIdentChar(s[p])) ++p;
      while (p < s.size() && s[p] == ' ') ++p;
      if (p >= s.size() || s[p] != '(') continue;
      const size_t close = MatchParen(s, p);
      if (close == std::string::npos) continue;
      const std::string args = s.substr(p + 1, close - p - 1);
      if (args.find("defer_lock") != std::string::npos ||
          args.find("adopt_lock") != std::string::npos) {
        continue;  // does not acquire here
      }
      GuardDecl decl{pos, {}};
      std::vector<std::string> parts = SplitArgs(args);
      if (!kind.all_args && !parts.empty()) parts.resize(1);
      for (std::string& part : parts) {
        if (!part.empty()) decl.exprs.push_back(std::move(part));
      }
      if (!decl.exprs.empty()) out.push_back(std::move(decl));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const GuardDecl& a, const GuardDecl& b) { return a.col < b.col; });
  return out;
}

/// lock-order: a cross-TU directed graph of "held X while acquiring Y"
/// edges from RAII guard scopes; any cycle (including the one-node cycle
/// of re-acquiring a held lock) is deadlock potential. Intra-procedural
/// like the Clang analysis: edges come from guards nested in one
/// function, the cross-TU part is that the *graph* is global, so
/// ShardedSelector holding its mutex over a WhatIfEngine call that locks
/// back still surfaces once both sites exist in any scanned file.
void CheckLockOrder(Context* ctx) {
  struct Edge {
    const FileView* file;
    int line;  // acquisition site
    std::string held;
  };
  std::map<std::string, std::map<std::string, Edge>> adj;
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc) continue;
    const ScopeMap scopes = BuildScopeMap(f);
    struct Hold {
      std::string node;
      int depth;
    };
    std::vector<Hold> holds;
    for (size_t l = 0; l < f.code.size(); ++l) {
      const int depth = scopes.depth_at_start[l];
      while (!holds.empty() && holds.back().depth > depth) holds.pop_back();
      const std::string& s = f.code[l];
      if (s.find('(') == std::string::npos) continue;
      for (const GuardDecl& decl : GuardDecls(s)) {
        // Depth at the declaration column (brace traffic earlier on the
        // same line counts: "if (x) { MutexLock l(&mu_); ... }").
        int at = depth;
        for (size_t p = 0; p < decl.col; ++p) {
          if (s[p] == '{') ++at;
          if (s[p] == '}') --at;
        }
        for (const std::string& expr : decl.exprs) {
          const std::string node = LockNode(expr, scopes.context[l]);
          for (const Hold& hold : holds) {
            if (hold.node == node) {
              ctx->Report(
                  f, static_cast<int>(l + 1), "lock-order",
                  "'" + node +
                      "' acquired while already held in this scope: "
                      "self-deadlock on one instance, address-ordered "
                      "nesting on two — restructure so one scope ends "
                      "before the next begins");
              continue;
            }
            auto& slot = adj[hold.node];
            slot.emplace(node, Edge{&f, static_cast<int>(l + 1), hold.node});
          }
          // The guard lives until its scope closes: lines at depth `at`
          // (siblings after the declaration) still hold it; the pop above
          // fires once depth drops below the declaration's.
          holds.push_back({node, at});
        }
      }
    }
  }

  // Cycle detection over the global graph; one finding per node set.
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0/absent white, 1 gray, 2 black
  for (const auto& [root, unused] : adj) {
    if (color[root] != 0) continue;
    std::vector<std::pair<std::string, std::map<std::string, Edge>::const_iterator>>
        stack;
    std::vector<std::string> path;
    color[root] = 1;
    stack.push_back({root, adj[root].begin()});
    path.push_back(root);
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      const auto& out_edges = adj[node];
      if (it == out_edges.end()) {
        color[node] = 2;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const std::string target = it->first;
      const Edge& edge = it->second;
      ++it;
      if (color[target] == 1) {
        // Reconstruct the cycle target .. node.
        std::vector<std::string> cycle;
        bool in = false;
        for (const std::string& p : path) {
          if (p == target) in = true;
          if (in) cycle.push_back(p);
        }
        std::string key;
        {
          std::vector<std::string> sorted = cycle;
          std::sort(sorted.begin(), sorted.end());
          for (const std::string& n : sorted) key += n + "|";
        }
        if (reported.insert(key).second) {
          std::string desc;
          for (size_t u = 0; u < cycle.size(); ++u) {
            const std::string& from = cycle[u];
            const std::string& to =
                u + 1 < cycle.size() ? cycle[u + 1] : target;
            const auto e = adj[from].find(to);
            desc += from + " -> " + to;
            if (e != adj[from].end()) {
              desc += " (" + e->second.file->path + ":" +
                      std::to_string(e->second.line) + ")";
            }
            desc += "; ";
          }
          ctx->Report(*edge.file, edge.line, "lock-order",
                      "lock-order cycle (deadlock potential): " + desc +
                          "pick one global order and acquire in it "
                          "everywhere, or collapse to a single lock");
        }
      } else if (color[target] == 0) {
        color[target] = 1;
        stack.push_back({target, adj[target].begin()});
        path.push_back(target);
      }
    }
  }
}

/// guarded-field: the concurrency modules keep their shared state
/// declared. Two shapes: (a) a `mutable` non-atomic member without
/// IDXSEL_GUARDED_BY — mutable is the project marker for "mutated under a
/// const API", i.e. cross-thread by construction; (b) a common::Mutex
/// member that guards no annotated field at all — either the annotations
/// were forgotten or the lock serializes something subtler (wakeup
/// ordering, allocation publication), which deserves a written reason.
void CheckGuardedField(Context* ctx) {
  static const std::set<std::string> kModules = {
      "exec", "costmodel", "serve", "obs",   "rt",
      "kernel", "shard",   "mip",   "audit", "common"};
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc) continue;
    if (EndsWith(f.path, "common/mutex.h") ||
        EndsWith(f.path, "common/thread_annotations.h")) {
      continue;
    }
    const bool listed = kModules.count(f.module) != 0;
    const ScopeMap scopes = BuildScopeMap(f);
    struct MutexDecl {
      int line;
      std::string name;
      std::string cls;
    };
    std::vector<MutexDecl> mutexes;
    std::set<std::pair<std::string, std::string>> guarded;  // (class, mutex)
    for (size_t l = 0; l < f.code.size(); ++l) {
      std::string s = f.code[l];
      // Inline comments leave trailing blanks in the code view; a member
      // declaration still "ends with ';'" for our purposes.
      while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.pop_back();
      }
      for (const size_t pos : FindWord(s, "IDXSEL_GUARDED_BY")) {
        const size_t open = s.find('(', pos);
        if (open == std::string::npos) continue;
        const size_t close = MatchParen(s, open);
        if (close == std::string::npos) continue;
        std::string arg = s.substr(open + 1, close - open - 1);
        while (!arg.empty() && arg.back() == ' ') arg.pop_back();
        while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
        guarded.insert({scopes.context[l], arg});
      }
      // (a) mutable members in the listed modules.
      const size_t first = s.find_first_not_of(" \t");
      if (listed && first != std::string::npos &&
          s.compare(first, 8, "mutable ") == 0 && EndsWith(s, ";") &&
          s.find("IDXSEL_GUARDED_BY") == std::string::npos &&
          FindWord(s, "Mutex").empty() && FindWord(s, "CondVar").empty() &&
          FindWord(s, "atomic").empty()) {
        ctx->Report(f, static_cast<int>(l + 1), "guarded-field",
                    "mutable member without IDXSEL_GUARDED_BY in src/" +
                        f.module +
                        "; mutable means mutated under a const API — name "
                        "the lock that guards it (common/thread_"
                        "annotations.h), or suppress with the reason it "
                        "needs none");
      }
      // Collect common::Mutex member declarations for shape (b).
      if (FindWord(s, "Mutex").empty() || s.find('(') != std::string::npos ||
          !EndsWith(s, ";") || s.find("friend") != std::string::npos) {
        continue;
      }
      const std::string name = TokenBefore(s, s.size() - 1);
      const std::string& cls = scopes.context[l];
      if (name.empty() || name.find('.') != std::string::npos ||
          cls.empty()) {
        continue;
      }
      mutexes.push_back({static_cast<int>(l + 1), name, cls});
    }
    for (const MutexDecl& m : mutexes) {
      if (guarded.count({m.cls, m.name})) continue;
      ctx->Report(f, m.line, "guarded-field",
                  "common::Mutex '" + m.name + "' in " + m.cls +
                      " guards no IDXSEL_GUARDED_BY(" + m.name +
                      ") field; annotate the state it protects, or "
                      "suppress with the reason it exists (wakeup "
                      "ordering, allocation serialization, ...)");
    }
  }
}

/// atomic-ordering: every atomic operation in the hot modules names its
/// std::memory_order. The default seq_cst is both a fence the hot paths
/// cannot afford and — worse — a silent statement that nobody thought
/// about the required ordering; the kernel's publication chains
/// (store-release block pointers, acquire loads) only stay reviewable if
/// each site says what it needs.
void CheckAtomicOrdering(Context* ctx) {
  static const std::set<std::string> kModules = {"kernel", "exec", "common"};
  static const char* kMethods[] = {
      "load",     "store",    "exchange",
      "fetch_add", "fetch_sub", "fetch_or",
      "fetch_and", "fetch_xor", "compare_exchange_strong",
      "compare_exchange_weak"};
  // Atomic member/variable names per module (declarations in headers,
  // operator uses in the .cc files).
  std::map<std::string, std::set<std::string>> atomic_names;
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc || !kModules.count(f.module)) {
      continue;
    }
    for (const std::string& s : f.code) {
      for (const size_t pos : FindWord(s, "atomic")) {
        size_t p = pos + 6;
        if (p >= s.size() || s[p] != '<') continue;
        int depth = 0;
        while (p < s.size()) {
          if (s[p] == '<') ++depth;
          if (s[p] == '>' && --depth == 0) break;
          ++p;
        }
        if (p >= s.size()) continue;
        ++p;
        while (p < s.size() && (s[p] == ' ' || s[p] == '&')) ++p;
        if (p < s.size() && s[p] == '*') continue;  // pointer TO an atomic
        std::string name;
        while (p < s.size() && IsIdentChar(s[p])) name += s[p++];
        if (!name.empty()) atomic_names[f.module].insert(name);
      }
    }
  }
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc || !kModules.count(f.module)) {
      continue;
    }
    const std::set<std::string>& names = atomic_names[f.module];
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      for (const char* m : kMethods) {
        const std::string pat = std::string(".") + m + "(";
        size_t pos = 0;
        while ((pos = s.find(pat, pos)) != std::string::npos) {
          const size_t open = pos + pat.size() - 1;
          pos += pat.size();
          if (CollectArgs(f, l, open).find("memory_order") !=
              std::string::npos) {
            continue;
          }
          ctx->Report(f, static_cast<int>(l + 1), "atomic-ordering",
                      std::string("atomic '") + m +
                          "' without an explicit std::memory_order in src/" +
                          f.module +
                          "; the seq_cst default is an unreviewed fence — "
                          "state the ordering the algorithm needs");
        }
      }
      // Operator forms on declared atomics (++/--/compound/=): all are
      // seq_cst RMWs/stores in disguise.
      if (!FindWord(s, "atomic").empty()) continue;  // the declaration line
      for (const std::string& name : names) {
        for (const size_t pos : FindWord(s, name)) {
          const size_t end = pos + name.size();
          size_t after = end;
          while (after < s.size() && s[after] == ' ') ++after;
          const bool pre =
              pos >= 2 && (s.compare(pos - 2, 2, "++") == 0 ||
                           s.compare(pos - 2, 2, "--") == 0);
          bool hit = pre;
          if (!hit && after + 1 < s.size()) {
            const std::string two = s.substr(after, 2);
            hit = two == "++" || two == "--" || two == "+=" || two == "-=" ||
                  two == "|=" || two == "&=" || two == "^=";
          }
          if (!hit && after < s.size() && s[after] == '=' &&
              (after + 1 >= s.size() || s[after + 1] != '=')) {
            size_t b = pos;
            while (b > 0 && s[b - 1] == ' ') --b;
            const char before = b == 0 ? ' ' : s[b - 1];
            // "Type name = init" declares a *different*, same-named local;
            // an identifier directly before the name is its type.
            if (before != '=' && before != '!' && before != '<' &&
                before != '>' && before != '.' && !IsIdentChar(before)) {
              hit = true;
            }
          }
          if (hit) {
            ctx->Report(f, static_cast<int>(l + 1), "atomic-ordering",
                        "operator on atomic '" + name +
                            "' is a seq_cst operation in disguise; spell it "
                            "as load/store/fetch_* with an explicit "
                            "std::memory_order");
          }
        }
      }
    }
  }
}

/// pointer-order: selection decisions must never order on addresses.
/// Pointer values differ run to run (ASLR, allocation order, thread
/// interleaving), so an address-keyed sort or comparison is
/// nondeterminism that survives every seed pin and that the journal
/// cannot see — the determinism suite only catches it when the ordering
/// actually flips. Banned in the decision modules outright.
void CheckPointerOrder(Context* ctx) {
  static const std::set<std::string> kModules = {"core", "selection", "shard",
                                                 "mip"};
  for (const FileView& f : ctx->files) {
    if (f.is_cmake || f.scope != Scope::kSrc || !kModules.count(f.module)) {
      continue;
    }
    for (size_t l = 0; l < f.code.size(); ++l) {
      const std::string& s = f.code[l];
      const int line = static_cast<int>(l + 1);
      if (s.find("reinterpret_cast") != std::string::npos &&
          s.find("uintptr_t") != std::string::npos) {
        ctx->Report(f, line, "pointer-order",
                    "address reinterpreted as an integer in src/" + f.module +
                        "; pointer values are run-dependent — key on a "
                        "dense id (kernel::IndexId) or a stable field "
                        "instead");
        continue;
      }
      bool reported = false;
      for (const size_t pos : FindWord(s, "less")) {
        const size_t open = pos + 4;
        if (open >= s.size() || s[open] != '<') continue;
        int depth = 0;
        size_t p = open;
        while (p < s.size()) {
          if (s[p] == '<') ++depth;
          if (s[p] == '>' && --depth == 0) break;
          ++p;
        }
        if (p >= s.size()) continue;
        if (s.substr(open, p - open).find('*') != std::string::npos) {
          ctx->Report(f, line, "pointer-order",
                      "std::less over a pointer type in src/" + f.module +
                          " orders by address; order on a stable key "
                          "(dense id, name, position) instead");
          reported = true;
          break;
        }
      }
      if (reported) continue;
      size_t pos = 0;
      while ((pos = s.find(".get()", pos)) != std::string::npos) {
        const size_t end = pos + 6;
        size_t after = end;
        while (after < s.size() && s[after] == ' ') ++after;
        bool hit = false;
        if (after < s.size() && (s[after] == '<' || s[after] == '>')) {
          const char next = after + 1 < s.size() ? s[after + 1] : '\0';
          if (next != s[after]) hit = true;  // exclude << and >>
        }
        size_t start = pos;
        while (start > 0 &&
               (IsIdentChar(s[start - 1]) || s[start - 1] == '.')) {
          --start;
        }
        while (start > 0 && s[start - 1] == ' ') --start;
        if (!hit && start > 0 && (s[start - 1] == '<' || s[start - 1] == '>')) {
          const char prev = start >= 2 ? s[start - 2] : '\0';
          if (prev != s[start - 1] && prev != '-') hit = true;
        }
        if (hit) {
          ctx->Report(f, line, "pointer-order",
                      "relational comparison of .get() pointers in src/" +
                          f.module +
                          " orders by address (run-dependent); compare a "
                          "stable key instead");
          break;
        }
        pos = end;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression application

void ApplySuppressions(Context* ctx) {
  const std::set<std::string> known(KnownChecks().begin(),
                                    KnownChecks().end());
  const std::set<std::string> skip(ctx->options.skip.begin(),
                                   ctx->options.skip.end());
  // The meta checks report on the suppression machinery itself; their own
  // suppressions are exempt from staleness (usage is only known after
  // this pass ran, so flagging them would be circular).
  static const std::set<std::string> kMeta = {
      "unknown-check", "suppression-missing-reason", "stale-suppression"};
  // Index views by path for comment lookup.
  std::map<std::string, const FileView*> by_path;
  for (const FileView& f : ctx->files) by_path[f.path] = &f;

  std::vector<Finding> kept;
  std::set<std::pair<std::string, int>> reported_bad_suppression;
  // (path, comment line, check) of every suppression that suppressed a
  // finding — the complement is stale.
  std::set<std::tuple<std::string, int, std::string>> used;
  auto try_suppress = [&](Finding& finding) -> bool {
    const FileView* f = by_path[finding.path];
    if (f == nullptr) return false;
    bool suppressed = false;
    // Candidate lines: the finding line itself, plus the contiguous block
    // of comment-only lines directly above it (so a suppression whose
    // reason wraps onto a second comment line still attaches).
    std::vector<int> lines = {finding.line};
    for (int l = finding.line - 1; l >= 1; --l) {
      const std::string& code = f->code[static_cast<size_t>(l - 1)];
      const std::string& comment = f->comments[static_cast<size_t>(l - 1)];
      if (code.find_first_not_of(" \t") != std::string::npos ||
          comment.find_first_not_of(" \t") == std::string::npos) {
        break;
      }
      lines.push_back(l);
    }
    for (const int l : lines) {
      if (l < 1 || static_cast<size_t>(l) > f->comments.size()) continue;
      for (const Suppression& s :
           ParseSuppressions(f->comments[static_cast<size_t>(l - 1)])) {
        if (s.check != finding.check) continue;
        if (!s.has_reason) {
          if (!skip.count("suppression-missing-reason") &&
              reported_bad_suppression.insert({finding.path, l}).second) {
            kept.push_back(
                {finding.path, l, "suppression-missing-reason",
                 "suppression of '" + s.check +
                     "' must carry a written reason: idxsel-lint: allow(" +
                     s.check + ") reason=<why this is sound>"});
          }
          continue;
        }
        suppressed = true;
        used.insert({finding.path, l, s.check});
      }
    }
    return suppressed;
  };
  for (Finding& finding : ctx->findings) {
    if (!try_suppress(finding)) kept.push_back(std::move(finding));
  }

  // Suppressions naming unknown checks are typos that would silently stop
  // protecting the line once the check is renamed (unknown-check), and
  // reasoned suppressions of real checks that suppressed nothing are
  // stale armor: the finding they silenced is gone, and they would
  // silently swallow the next, unrelated finding on that line
  // (stale-suppression).
  std::vector<Finding> extra;
  for (const FileView& f : ctx->files) {
    for (size_t l = 0; l < f.comments.size(); ++l) {
      for (const Suppression& s : ParseSuppressions(f.comments[l])) {
        if (!known.count(s.check)) {
          if (!skip.count("unknown-check")) {
            extra.push_back({f.path, static_cast<int>(l + 1), "unknown-check",
                             "suppression names unknown check '" + s.check +
                                 "'; known: see --list-checks"});
          }
          continue;
        }
        if (s.has_reason && !kMeta.count(s.check) && !skip.count(s.check) &&
            !skip.count("stale-suppression") &&
            !used.count({f.path, static_cast<int>(l + 1), s.check})) {
          extra.push_back(
              {f.path, static_cast<int>(l + 1), "stale-suppression",
               "suppression of '" + s.check +
                   "' no longer suppresses anything; the finding it "
                   "silenced is gone — delete the comment (or fix the "
                   "check name/line)"});
        }
      }
    }
  }
  // The extra findings are themselves suppressible (golden fixtures keep
  // deliberately-unknown names; refactors may park a stale suppression).
  for (Finding& finding : extra) {
    if (!try_suppress(finding)) kept.push_back(std::move(finding));
  }
  ctx->findings = std::move(kept);
}

}  // namespace

const std::vector<std::string>& KnownChecks() {
  static const std::vector<std::string> checks = {
      "layering",          "include-cycle",
      "journal-bridge",    "simd-confinement",
      "determinism-random", "determinism-clock",
      "unordered-iter",    "double-compare",
      "missing-check-include", "orphan-source",
      "lock-order",        "guarded-field",
      "atomic-ordering",   "pointer-order",
      "suppression-missing-reason", "unknown-check",
      "stale-suppression",
  };
  return checks;
}

std::vector<Finding> LintFiles(const std::vector<FileInput>& files,
                               const Options& options) {
  Context ctx;
  ctx.options = options;
  ctx.files.reserve(files.size());
  for (const FileInput& in : files) {
    FileView view;
    view.path = Normalize(in.path);
    view.segs = Segments(view.path);
    view.scope = ScopeOf(view.segs);
    view.module = ModuleOf(view.segs);
    view.is_cmake = EndsWith(view.path, "CMakeLists.txt");
    BuildView(in.content, &view);
    ctx.files.push_back(std::move(view));
  }
  CheckLayering(&ctx);
  CheckIncludeCycles(&ctx);
  CheckJournalBridge(&ctx);
  CheckSimdConfinement(&ctx);
  CheckRandom(&ctx);
  CheckClock(&ctx);
  CheckUnorderedIter(&ctx);
  CheckDoubleCompare(&ctx);
  CheckMissingCheckInclude(&ctx);
  CheckOrphanSources(&ctx);
  CheckLockOrder(&ctx);
  CheckGuardedField(&ctx);
  CheckAtomicOrdering(&ctx);
  CheckPointerOrder(&ctx);
  if (!ctx.options.skip.empty()) {
    const std::set<std::string> skip(ctx.options.skip.begin(),
                                     ctx.options.skip.end());
    std::erase_if(ctx.findings, [&skip](const Finding& finding) {
      return skip.count(finding.check) != 0;
    });
  }
  ApplySuppressions(&ctx);
  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return ctx.findings;
}

bool LintPaths(const std::vector<std::string>& paths, const Options& options,
               std::vector<Finding>* findings, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<FileInput> inputs;
  std::set<std::string> seen;
  auto add_file = [&](const fs::path& p) -> bool {
    const std::string norm = Normalize(p.string());
    if (!seen.insert(norm).second) return true;
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    inputs.push_back({norm, ss.str()});
    return true;
  };
  auto wanted = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || p.filename() == "CMakeLists.txt";
  };
  for (const std::string& raw : paths) {
    const fs::path p(raw);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && wanted(it->path())) {
          if (!add_file(it->path())) return false;
        }
      }
      // A "src" root implies the sibling tests/CMakeLists.txt matters for
      // the orphan-source link check.
      if (p.filename() == "src") {
        const fs::path tests = p.parent_path() / "tests" / "CMakeLists.txt";
        if (fs::exists(tests, ec)) {
          if (!add_file(tests)) return false;
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      if (!add_file(p)) return false;
    } else {
      if (error != nullptr) *error = "no such file or directory: " + raw;
      return false;
    }
  }
  *findings = LintFiles(inputs, options);
  return true;
}

std::string FormatFinding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SarifReport(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& finding : findings) rules.insert(finding.check);
  std::ostringstream o;
  o << "{\n"
    << "  \"version\": \"2.1.0\",\n"
    << "  \"$schema\": "
       "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
    << "  \"runs\": [\n"
    << "    {\n"
    << "      \"tool\": {\n"
    << "        \"driver\": {\n"
    << "          \"name\": \"idxsel_lint\",\n"
    << "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : rules) {
    o << (first ? "\n" : ",\n")
      << "            {\"id\": \"" << JsonEscape(rule)
      << "\", \"shortDescription\": {\"text\": \"" << JsonEscape(rule)
      << "\"}}";
    first = false;
  }
  o << (rules.empty() ? "]\n" : "\n          ]\n")
    << "        }\n"
    << "      },\n"
    << "      \"results\": [";
  first = true;
  for (const Finding& finding : findings) {
    o << (first ? "\n" : ",\n")
      << "        {\"ruleId\": \"" << JsonEscape(finding.check)
      << "\", \"level\": \"error\", \"message\": {\"text\": \""
      << JsonEscape(finding.message)
      << "\"}, \"locations\": [{\"physicalLocation\": "
         "{\"artifactLocation\": {\"uri\": \""
      << JsonEscape(finding.path) << "\"}, \"region\": {\"startLine\": "
      << (finding.line > 0 ? finding.line : 1) << "}}}]}";
    first = false;
  }
  o << (findings.empty() ? "]\n" : "\n      ]\n")
    << "    }\n"
    << "  ]\n"
    << "}\n";
  return o.str();
}

}  // namespace idxsel::lint
