#include "idxsel_report/json.h"

#include <cctype>
#include <cstdlib>

namespace idxsel::report {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string_value
                                                  : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (at_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(at_);
    }
    return false;
  }

  void SkipSpace() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool Consume(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (at_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[at_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(std::string_view word, JsonValue* out,
                    JsonValue::Kind kind, bool value) {
    if (text_.substr(at_, word.size()) != word) {
      return Fail("invalid literal");
    }
    at_ += word.size();
    out->kind = kind;
    out->bool_value = value;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = at_;
    if (at_ < text_.size() && (text_[at_] == '-' || text_[at_] == '+')) ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    if (at_ == start) return Fail("invalid value");
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_ >= text_.size()) break;
      const char esc = text_[at_++];
      switch (esc) {
        case '"':  out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/'); break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u':
          // Pass \uXXXX through verbatim; the sidecars never emit them.
          out->append("\\u");
          break;
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++at_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++at_;  // '['
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t at_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

bool ParseJsonl(std::string_view text, std::vector<JsonValue>* out,
                std::string* error) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    ++line_number;
    start = end + 1;
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JsonValue value;
    std::string line_error;
    if (!ParseJson(line, &value, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " + line_error;
      }
      return false;
    }
    out->push_back(std::move(value));
  }
  return true;
}

}  // namespace idxsel::report
