#include "idxsel_report/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "serve/checkpoint.h"

namespace idxsel::report {
namespace {

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

/// Canonical single-line rendering of any value, used by the structural
/// diff so "changed" lines show both sides compactly.
std::string Compact(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return v.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return FormatNumber(v.number);
    case JsonValue::Kind::kString:
      return "\"" + v.string_value + "\"";
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) out += ", ";
        out += v.members[i].first + ": " + Compact(v.members[i].second);
      }
      return out + "}";
    }
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out += ", ";
        out += Compact(v.items[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

bool SameValue(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.bool_value == b.bool_value;
    case JsonValue::Kind::kNumber:
      // NaN == NaN here: two runs that both sanitized a what-if answer
      // did the same thing.
      return a.number == b.number ||
             (std::isnan(a.number) && std::isnan(b.number));
    case JsonValue::Kind::kString:
      return a.string_value == b.string_value;
    case JsonValue::Kind::kObject: {
      if (a.members.size() != b.members.size()) return false;
      for (size_t i = 0; i < a.members.size(); ++i) {
        if (a.members[i].first != b.members[i].first ||
            !SameValue(a.members[i].second, b.members[i].second)) {
          return false;
        }
      }
      return true;
    }
    case JsonValue::Kind::kArray: {
      if (a.items.size() != b.items.size()) return false;
      for (size_t i = 0; i < a.items.size(); ++i) {
        if (!SameValue(a.items[i], b.items[i])) return false;
      }
      return true;
    }
  }
  return false;
}

void DiffValue(const std::string& path, const JsonValue* a,
               const JsonValue* b, std::string* out, bool* drift) {
  if (a == nullptr) {
    *drift = true;
    *out += "  + " + path + " = " + Compact(*b) + "\n";
    return;
  }
  if (b == nullptr) {
    *drift = true;
    *out += "  - " + path + " = " + Compact(*a) + "\n";
    return;
  }
  if (a->kind == JsonValue::Kind::kObject &&
      b->kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : a->members) {
      DiffValue(path + "." + key, &value, b->Find(key), out, drift);
    }
    for (const auto& [key, value] : b->members) {
      if (a->Find(key) == nullptr) {
        DiffValue(path + "." + key, nullptr, &value, out, drift);
      }
    }
    return;
  }
  if (a->kind == JsonValue::Kind::kArray &&
      b->kind == JsonValue::Kind::kArray) {
    const size_t n = std::max(a->items.size(), b->items.size());
    for (size_t i = 0; i < n; ++i) {
      DiffValue(path + "[" + std::to_string(i) + "]",
                i < a->items.size() ? &a->items[i] : nullptr,
                i < b->items.size() ? &b->items[i] : nullptr, out, drift);
    }
    return;
  }
  if (!SameValue(*a, *b)) {
    *drift = true;
    *out += "  ~ " + path + ": " + Compact(*a) + " -> " + Compact(*b) + "\n";
  }
}

uint64_t RoundOf(const JsonValue& record) {
  return static_cast<uint64_t>(record.NumberOr("round", 0.0));
}

/// Alignment key for journal records: lane + action + round — plus the
/// serve epoch when present, so two serve runs diff epoch-for-epoch even
/// when retries or absorbed pumps shift record positions. A
/// disambiguating occurrence counter covers repeated keys.
std::string RecordKey(const JsonValue& record,
                      std::map<std::string, size_t>* seen) {
  std::string key = record.StringOr("strategy", "?") + "/" +
                    record.StringOr("action", "?") + "/" +
                    std::to_string(RoundOf(record));
  if (const JsonValue* epoch = record.Find("epoch")) {
    key += "/e" + FormatNumber(epoch->number);
  }
  const size_t occurrence = (*seen)[key]++;
  if (occurrence > 0) key += "#" + std::to_string(occurrence);
  return key;
}

}  // namespace

double NumberField(const JsonValue& obj, const std::string& key,
                   double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (v->kind == JsonValue::Kind::kNumber) return v->number;
  if (v->kind == JsonValue::Kind::kString) {
    if (v->string_value == "inf") {
      return std::numeric_limits<double>::infinity();
    }
    if (v->string_value == "-inf") {
      return -std::numeric_limits<double>::infinity();
    }
    if (v->string_value == "nan") {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  return fallback;
}

std::string RenderJournal(const std::vector<JsonValue>& records) {
  std::string out;
  std::string lane;
  for (const JsonValue& r : records) {
    const std::string strategy = r.StringOr("strategy", "?");
    if (strategy != lane) {
      lane = strategy;
      out += "[" + lane + "]\n";
    }
    const std::string action = r.StringOr("action", "?");
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %4" PRIu64 "  %-8s",
                  RoundOf(r), action.c_str());
    out += buf;
    const std::string winner = r.StringOr("winner", "");
    if (!winner.empty()) out += " " + winner;
    const double ratio = NumberField(r, "winner_ratio", 0.0);
    if (ratio != 0.0) out += "  ratio=" + FormatNumber(ratio);
    const double margin = NumberField(r, "margin", 0.0);
    if (margin != 0.0) out += "  margin=" + FormatNumber(margin);
    const double before = NumberField(r, "objective_before", 0.0);
    const double after = NumberField(r, "objective_after", 0.0);
    if (before != 0.0 || after != 0.0) {
      out += "  objective " + FormatNumber(before) + " -> " +
             FormatNumber(after);
    }
    const double memory = NumberField(r, "memory_after", 0.0);
    if (memory != 0.0) out += "  memory=" + FormatNumber(memory);

    // Reject tally by reason (the winner rides along with an empty
    // reject field and stays out of the tally).
    if (const JsonValue* candidates = r.Find("candidates")) {
      std::map<std::string, size_t> reasons;
      for (const JsonValue& c : candidates->items) {
        const std::string reason = c.StringOr("reject", "");
        if (!reason.empty()) ++reasons[reason];
      }
      if (!reasons.empty()) {
        out += "  rejects:";
        for (const auto& [reason, count] : reasons) {
          out += " " + reason + "=" + std::to_string(count);
        }
      }
    }
    const double sanitized = NumberField(r, "sanitized_whatif", 0.0);
    if (sanitized != 0.0) {
      out += "  sanitized=" + FormatNumber(sanitized);
    }

    // Serve epoch records (idxsel.serve.epoch.v1): trigger, folded
    // deltas, budget, degraded flag, and a create/drop plan summary.
    const std::string trigger = r.StringOr("trigger", "");
    if (!trigger.empty()) out += "  trigger=" + trigger;
    const double deltas = NumberField(r, "deltas", 0.0);
    if (deltas != 0.0) out += "  deltas=" + FormatNumber(deltas);
    const double budget = NumberField(r, "budget", 0.0);
    if (budget != 0.0) out += "  budget=" + FormatNumber(budget);
    if (const JsonValue* degraded = r.Find("degraded")) {
      if (degraded->bool_value) out += "  DEGRADED";
    }
    if (const JsonValue* plan = r.Find("plan")) {
      size_t creates = 0;
      size_t drops = 0;
      for (const JsonValue& step : plan->items) {
        if (step.StringOr("op", "") == "create") {
          ++creates;
        } else {
          ++drops;
        }
      }
      if (creates + drops > 0) {
        out += "  plan=" + std::to_string(creates) + "C/" +
               std::to_string(drops) + "D";
      }
    }

    const std::string note = r.StringOr("note", "");
    if (!note.empty()) out += "  (" + note + ")";
    out += "\n";
  }
  if (out.empty()) out = "(empty journal)\n";
  return out;
}

std::string RenderMetrics(const JsonValue& doc) {
  std::string out;
  const auto section = [&](const char* key) {
    const JsonValue* group = doc.Find(key);
    if (group == nullptr || group->members.empty()) return;
    out += std::string(key) + ":\n";
    for (const auto& [name, value] : group->members) {
      out += "  " + name + " = " + Compact(value) + "\n";
    }
  };
  section("counters");
  section("gauges");
  section("histograms");
  if (out.empty()) out = "(no metrics)\n";
  return out;
}

std::string RenderTrajectory(const JsonValue& doc) {
  std::string out = "perf trajectory";
  if (const JsonValue* provenance = doc.Find("provenance")) {
    out += " (" + provenance->StringOr("git_sha", "unknown") + ", " +
           provenance->StringOr("build_type", "unspecified") + ")";
  }
  out += "\n";
  const JsonValue* points = doc.Find("points");
  if (points == nullptr) return out + "(no points)\n";
  for (const JsonValue& p : points->items) {
    char buf[256];
    const JsonValue* h6 = p.Find("h6");
    const JsonValue* portfolio = p.Find("portfolio");
    std::snprintf(
        buf, sizeof buf,
        "  N=%-4.0f Q=%-4.0f  h6: %.0f steps, %.0f what-if calls, "
        "%.1f steps/sec, %.1f allocs/step   portfolio: %s (%.0f calls)   "
        "rss=%.1f MB\n",
        p.NumberOr("n", 0.0), p.NumberOr("q", 0.0),
        h6 != nullptr ? h6->NumberOr("steps", 0.0) : 0.0,
        h6 != nullptr ? h6->NumberOr("whatif_calls", 0.0) : 0.0,
        h6 != nullptr ? h6->NumberOr("steps_per_sec", 0.0) : 0.0,
        h6 != nullptr ? h6->NumberOr("allocations_per_step", 0.0) : 0.0,
        portfolio != nullptr
            ? portfolio->StringOr("winner", "?").c_str()
            : "?",
        portfolio != nullptr ? portfolio->NumberOr("whatif_calls", 0.0)
                             : 0.0,
        p.NumberOr("peak_rss_kb", 0.0) / 1024.0);
    out += buf;
  }
  if (const JsonValue* shard_points = doc.Find("shard_points")) {
    if (!shard_points->items.empty()) out += "sharded ladder:\n";
    for (const JsonValue& p : shard_points->items) {
      const JsonValue* s = p.Find("shard");
      if (s == nullptr) continue;
      char buf[256];
      std::snprintf(
          buf, sizeof buf,
          "  T=%-6.0f templates=%-7.0f shards=%.0f rounds=%.0f "
          "steps=%.0f calls=%.0f compress=%.3f sharded=%.3fs "
          "unsharded=%.3fs speedup=%.2fx\n",
          p.NumberOr("tables", 0.0), p.NumberOr("templates", 0.0),
          s->NumberOr("shards", 0.0), s->NumberOr("arbiter_rounds", 0.0),
          s->NumberOr("steps", 0.0), s->NumberOr("whatif_calls", 0.0),
          s->NumberOr("compression_ratio", 0.0),
          s->NumberOr("sharded_seconds", 0.0),
          s->NumberOr("unsharded_seconds", 0.0),
          s->NumberOr("speedup", 0.0));
      out += buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "  process peak rss: %.1f MB\n",
                doc.NumberOr("peak_rss_kb", 0.0) / 1024.0);
  out += buf;
  return out;
}

std::string RenderServeCheckpoint(const std::string& body) {
  auto parsed = serve::DeserializeCheckpoint(body);
  if (!parsed.ok()) {
    return "REJECTED checkpoint: " + parsed.status().ToString() + "\n";
  }
  const serve::Checkpoint& cp = parsed.value();
  std::string out;
  out += "serve checkpoint (verified)\n";
  out += "  epoch:      " + std::to_string(cp.epoch) + "\n";
  out += "  cursor:     " + std::to_string(cp.cursor) + " delta-log lines\n";
  out += "  budget:     fraction " + FormatNumber(cp.budget_fraction);
  if (cp.budget_bytes > 0.0) {
    out += ", " + FormatNumber(cp.budget_bytes) + " bytes";
  }
  out += "\n";
  out += "  drift:      " + FormatNumber(cp.drift) + "\n";
  out += "  objective:  " + FormatNumber(cp.cost_before) + " -> " +
         FormatNumber(cp.cost_after) + "\n";
  out += "  memory:     " + FormatNumber(cp.memory) + "\n";
  if (cp.degraded) out += "  DEGRADED commitment\n";
  out += "  selection:  " + std::to_string(cp.selection.size()) +
         " indexes  " + cp.selection.ToString() + "\n";
  if (!cp.plan.steps.empty()) {
    out += "  plan (budget " + FormatNumber(cp.plan.budget) + ", memory " +
           FormatNumber(cp.plan.initial_memory) + " -> " +
           FormatNumber(cp.plan.final_memory) + "):\n";
    for (size_t i = 0; i < cp.plan.steps.size(); ++i) {
      const serve::PlanStep& step = cp.plan.steps[i];
      out += "    " + std::to_string(i + 1) + ". " +
             (step.create ? "CREATE " : "DROP   ") + step.index.ToString() +
             "  benefit=" + FormatNumber(step.benefit) +
             "  mem_after=" + FormatNumber(step.memory_after) + "\n";
    }
  }
  const size_t workload_lines =
      static_cast<size_t>(std::count(cp.workload_text.begin(),
                                     cp.workload_text.end(), '\n'));
  out += "  workload:   " + std::to_string(cp.workload_text.size()) +
         " bytes, " + std::to_string(workload_lines) + " lines\n";
  return out;
}

std::string DiffJournals(const std::vector<JsonValue>& a,
                         const std::vector<JsonValue>& b, bool* drift) {
  *drift = false;
  std::string out;

  std::map<std::string, const JsonValue*> index_b;
  std::vector<std::pair<std::string, const JsonValue*>> ordered_b;
  {
    std::map<std::string, size_t> seen;
    for (const JsonValue& r : b) {
      const std::string key = RecordKey(r, &seen);
      index_b[key] = &r;
      ordered_b.emplace_back(key, &r);
    }
  }

  std::map<std::string, size_t> seen_a;
  std::map<std::string, bool> matched;
  for (const JsonValue& ra : a) {
    const std::string key = RecordKey(ra, &seen_a);
    const auto it = index_b.find(key);
    if (it == index_b.end()) {
      *drift = true;
      out += "  - " + key + " only in first journal (winner " +
             ra.StringOr("winner", "-") + ")\n";
      continue;
    }
    matched[key] = true;
    const JsonValue& rb = *it->second;
    const std::string winner_a = ra.StringOr("winner", "");
    const std::string winner_b = rb.StringOr("winner", "");
    if (winner_a != winner_b) {
      *drift = true;
      out += "  ~ " + key + " pick changed: " + winner_a + " -> " +
             winner_b + "\n";
    }
    const double cost_a = NumberField(ra, "objective_after", 0.0);
    const double cost_b = NumberField(rb, "objective_after", 0.0);
    if (!(cost_a == cost_b ||
          (std::isnan(cost_a) && std::isnan(cost_b)))) {
      *drift = true;
      out += "  ~ " + key + " cost changed: " + FormatNumber(cost_a) +
             " -> " + FormatNumber(cost_b) + "\n";
    }
    if (winner_a == winner_b && cost_a == cost_b && !SameValue(ra, rb)) {
      // Same decision, different supporting evidence (margins, reject
      // lists, notes) — still drift, shown field by field.
      std::string detail;
      DiffValue(key, &ra, &rb, &detail, drift);
      out += detail;
    }
  }
  for (const auto& [key, record] : ordered_b) {
    if (!matched[key]) {
      *drift = true;
      out += "  + " + key + " only in second journal (winner " +
             record->StringOr("winner", "-") + ")\n";
    }
  }

  if (!*drift) {
    out = "zero drift: " + std::to_string(a.size()) +
          " journal records identical\n";
  }
  return out;
}

std::string DiffDocuments(const JsonValue& a, const JsonValue& b,
                          bool* drift) {
  *drift = false;
  std::string out;
  DiffValue("$", &a, &b, &out, drift);
  if (!*drift) out = "zero drift: documents identical\n";
  return out;
}

TrajectoryCheckResult CheckTrajectory(const JsonValue& current,
                                      const JsonValue& baseline,
                                      const TrajectoryCheckOptions& options) {
  TrajectoryCheckResult result;
  char buf[256];
  const auto fail = [&](const std::string& line) {
    result.ok = false;
    result.text += "  FAIL " + line + "\n";
  };
  const auto pass = [&](const std::string& line) {
    result.text += "  ok   " + line + "\n";
  };

  const JsonValue* current_points = current.Find("points");
  const JsonValue* baseline_points = baseline.Find("points");
  if (current_points == nullptr || baseline_points == nullptr) {
    fail("missing \"points\" array");
    return result;
  }

  const auto point_key = [](const JsonValue& p) {
    return std::to_string(static_cast<int64_t>(p.NumberOr("n", -1.0))) +
           "x" +
           std::to_string(static_cast<int64_t>(p.NumberOr("q", -1.0)));
  };
  std::map<std::string, const JsonValue*> base_by_key;
  for (const JsonValue& p : baseline_points->items) {
    base_by_key[point_key(p)] = &p;
  }

  for (const JsonValue& p : current_points->items) {
    const std::string key = point_key(p);
    const auto it = base_by_key.find(key);
    if (it == base_by_key.end()) {
      fail("point " + key + " missing from baseline");
      continue;
    }
    const JsonValue& base = *it->second;
    base_by_key.erase(it);

    // Deterministic work metrics: exact match required.
    const auto exact = [&](const char* group, const char* field) {
      const JsonValue* cg = p.Find(group);
      const JsonValue* bg = base.Find(group);
      const double cv = cg != nullptr ? cg->NumberOr(field, -1.0) : -1.0;
      const double bv = bg != nullptr ? bg->NumberOr(field, -1.0) : -1.0;
      std::snprintf(buf, sizeof buf, "%s %s.%s: %.0f (baseline %.0f)",
                    key.c_str(), group, field, cv, bv);
      if (cv == bv) {
        pass(buf);
      } else {
        fail(buf);
      }
    };
    exact("h6", "steps");
    exact("h6", "whatif_calls");
    exact("portfolio", "whatif_calls");
    // Serve-layer work metrics (cold first commit + warm incremental
    // round, threads=1) are deterministic too — PR 7 adds them to every
    // trajectory point.
    exact("serve", "cold_whatif_calls");
    exact("serve", "incremental_whatif_calls");
    exact("serve", "epoch");
    // Kernel SIMD group (PR 8): dense fast-path/fallback/filter tallies
    // of a serial kernel-on run are pure functions of the workload, and
    // dispatch_identical == 1 records that a forced-scalar rerun
    // reproduced the native-dispatch run exactly.
    exact("kernel_simd", "fast_path_hits");
    exact("kernel_simd", "fallback_lookups");
    exact("kernel_simd", "filtered_queries");
    exact("kernel_simd", "dispatch_identical");
    {
      const JsonValue* cg = p.Find("portfolio");
      const JsonValue* bg = base.Find("portfolio");
      const std::string cw =
          cg != nullptr ? cg->StringOr("winner", "?") : "?";
      const std::string bw =
          bg != nullptr ? bg->StringOr("winner", "?") : "?";
      const std::string line =
          key + " portfolio.winner: " + cw + " (baseline " + bw + ")";
      if (cw == bw) {
        pass(line);
      } else {
        fail(line);
      }
    }

    // Timing gate: steps/sec may drop at most the configured share.
    const JsonValue* ch6 = p.Find("h6");
    const JsonValue* bh6 = base.Find("h6");
    const double current_rate =
        ch6 != nullptr ? ch6->NumberOr("steps_per_sec", 0.0) : 0.0;
    const double baseline_rate =
        bh6 != nullptr ? bh6->NumberOr("steps_per_sec", 0.0) : 0.0;
    const double floor_rate =
        baseline_rate * (1.0 - options.max_steps_per_sec_drop);
    std::snprintf(buf, sizeof buf,
                  "%s h6.steps_per_sec: %.1f (baseline %.1f, floor %.1f)",
                  key.c_str(), current_rate, baseline_rate, floor_rate);
    if (baseline_rate <= 0.0 || current_rate >= floor_rate) {
      pass(buf);
    } else {
      fail(buf);
    }
  }
  for (const auto& [key, point] : base_by_key) {
    fail("point " + key + " missing from current run");
  }

  // Sharded ladder (idxsel::shard): the arbiter's work metrics are
  // deterministic — byte-identical recommendations across shard and
  // thread counts is the module's core invariant — so every field of the
  // `shard` group is gated exactly, keyed by table count. Wall seconds
  // and the derived compression ratio are reported, not gated. Documents
  // from before the sharded ladder (no "shard_points" on either side)
  // pass vacuously.
  const JsonValue* current_shards = current.Find("shard_points");
  const JsonValue* baseline_shards = baseline.Find("shard_points");
  if (current_shards != nullptr || baseline_shards != nullptr) {
    const auto shard_key = [](const JsonValue& p) {
      return "T=" +
             std::to_string(static_cast<int64_t>(p.NumberOr("tables", -1.0)));
    };
    std::map<std::string, const JsonValue*> base_rungs;
    if (baseline_shards != nullptr) {
      for (const JsonValue& p : baseline_shards->items) {
        base_rungs[shard_key(p)] = &p;
      }
    }
    if (current_shards != nullptr) {
      for (const JsonValue& p : current_shards->items) {
        const std::string key = shard_key(p);
        const auto it = base_rungs.find(key);
        if (it == base_rungs.end()) {
          fail("shard rung " + key + " missing from baseline");
          continue;
        }
        const JsonValue& base = *it->second;
        base_rungs.erase(it);
        const auto shard_exact = [&](const char* field) {
          const JsonValue* cg = p.Find("shard");
          const JsonValue* bg = base.Find("shard");
          const double cv = cg != nullptr ? cg->NumberOr(field, -1.0) : -1.0;
          const double bv = bg != nullptr ? bg->NumberOr(field, -1.0) : -1.0;
          std::snprintf(buf, sizeof buf, "%s shard.%s: %.0f (baseline %.0f)",
                        key.c_str(), field, cv, bv);
          if (cv == bv) {
            pass(buf);
          } else {
            fail(buf);
          }
        };
        shard_exact("shards");
        shard_exact("arbiter_rounds");
        shard_exact("steps");
        shard_exact("whatif_calls");
        shard_exact("queries_full");
        shard_exact("queries_compressed");
      }
    }
    for (const auto& [key, rung] : base_rungs) {
      fail("shard rung " + key + " missing from current run");
    }
  }

  // Memory gate: process peak RSS may grow at most the configured share.
  const double current_rss = current.NumberOr("peak_rss_kb", 0.0);
  const double baseline_rss = baseline.NumberOr("peak_rss_kb", 0.0);
  const double ceiling = baseline_rss * (1.0 + options.max_peak_rss_growth);
  std::snprintf(buf, sizeof buf,
                "peak_rss_kb: %.0f (baseline %.0f, ceiling %.0f)",
                current_rss, baseline_rss, ceiling);
  if (baseline_rss <= 0.0 || current_rss <= ceiling) {
    pass(buf);
  } else {
    fail(buf);
  }

  result.text = std::string(result.ok ? "trajectory check passed\n"
                                      : "trajectory check FAILED\n") +
                result.text;
  return result;
}

}  // namespace idxsel::report
