// idxsel_report CLI — see report.h for the command inventory.
//
// Exit codes: 0 success / zero drift / gate passed, 1 drift found or
// gate failed, 2 usage or I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "idxsel_report/json.h"
#include "idxsel_report/report.h"
#include "serve/checkpoint.h"

namespace idxsel::report {
namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  idxsel_report render <sidecar>...\n"
    "      renders *.journal.jsonl (incl. serve epoch records),\n"
    "      *.metrics.json, a trajectory document, or a serve checkpoint\n"
    "      as text (kind sniffed from the schema field / file magic)\n"
    "  idxsel_report diff <a> <b>\n"
    "      diffs two sidecars of the same kind; exit 0 on zero drift,\n"
    "      1 when the runs differ\n"
    "  idxsel_report check-trajectory <current> <baseline>\n"
    "                [--max-steps-drop <share>] [--max-rss-growth <share>]\n"
    "      CI perf gate vs the committed BENCH_trajectory.json;\n"
    "      defaults: 0.20 steps/sec drop, 0.15 peak-RSS growth\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "idxsel_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsJsonl(const std::string& path, const std::string& body) {
  if (path.size() > 6 && path.rfind(".jsonl") == path.size() - 6) {
    return true;
  }
  // A JSONL journal has one object per line; a pretty-printed document
  // spreads one object over many lines.
  const size_t newline = body.find('\n');
  return newline != std::string::npos && newline + 1 < body.size() &&
         body.compare(0, 1, "{") == 0 &&
         body.find("\"seq\"") != std::string::npos;
}

int Render(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    std::string body;
    if (!ReadFile(path, &body)) return 2;
    std::printf("== %s ==\n", path.c_str());
    std::string error;
    if (body.compare(0, std::strlen(serve::kCheckpointMagic),
                     serve::kCheckpointMagic) == 0) {
      std::fputs(RenderServeCheckpoint(body).c_str(), stdout);
      continue;
    }
    if (IsJsonl(path, body)) {
      std::vector<JsonValue> records;
      if (!ParseJsonl(body, &records, &error)) {
        std::fprintf(stderr, "idxsel_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
      }
      std::fputs(RenderJournal(records).c_str(), stdout);
      continue;
    }
    JsonValue doc;
    if (!ParseJson(body, &doc, &error)) {
      std::fprintf(stderr, "idxsel_report: %s: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
    const std::string schema = doc.StringOr("schema", "");
    if (schema == "idxsel.bench_trajectory.v1") {
      std::fputs(RenderTrajectory(doc).c_str(), stdout);
    } else if (schema == "idxsel.metrics.v1" ||
               doc.Find("counters") != nullptr) {
      std::fputs(RenderMetrics(doc).c_str(), stdout);
    } else {
      std::printf("schema %s: no renderer, raw document follows\n%s\n",
                  schema.empty() ? "(none)" : schema.c_str(), body.c_str());
    }
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  std::string body_a;
  std::string body_b;
  if (!ReadFile(path_a, &body_a) || !ReadFile(path_b, &body_b)) return 2;
  std::string error;
  bool drift = false;
  std::string out;
  if (IsJsonl(path_a, body_a) || IsJsonl(path_b, body_b)) {
    std::vector<JsonValue> a;
    std::vector<JsonValue> b;
    if (!ParseJsonl(body_a, &a, &error)) {
      std::fprintf(stderr, "idxsel_report: %s: %s\n", path_a.c_str(),
                   error.c_str());
      return 2;
    }
    if (!ParseJsonl(body_b, &b, &error)) {
      std::fprintf(stderr, "idxsel_report: %s: %s\n", path_b.c_str(),
                   error.c_str());
      return 2;
    }
    out = DiffJournals(a, b, &drift);
  } else {
    JsonValue a;
    JsonValue b;
    if (!ParseJson(body_a, &a, &error)) {
      std::fprintf(stderr, "idxsel_report: %s: %s\n", path_a.c_str(),
                   error.c_str());
      return 2;
    }
    if (!ParseJson(body_b, &b, &error)) {
      std::fprintf(stderr, "idxsel_report: %s: %s\n", path_b.c_str(),
                   error.c_str());
      return 2;
    }
    out = DiffDocuments(a, b, &drift);
  }
  std::printf("diff %s %s\n%s", path_a.c_str(), path_b.c_str(),
              out.c_str());
  return drift ? 1 : 0;
}

int CheckTrajectoryCommand(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  TrajectoryCheckOptions options;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "--max-steps-drop") {
      options.max_steps_per_sec_drop = std::atof(args[i + 1].c_str());
    } else if (args[i] == "--max-rss-growth") {
      options.max_peak_rss_growth = std::atof(args[i + 1].c_str());
    } else {
      std::fprintf(stderr, "idxsel_report: unknown flag %s\n%s",
                   args[i].c_str(), kUsage);
      return 2;
    }
  }
  std::string current_body;
  std::string baseline_body;
  if (!ReadFile(args[0], &current_body) ||
      !ReadFile(args[1], &baseline_body)) {
    return 2;
  }
  std::string error;
  JsonValue current;
  JsonValue baseline;
  if (!ParseJson(current_body, &current, &error)) {
    std::fprintf(stderr, "idxsel_report: %s: %s\n", args[0].c_str(),
                 error.c_str());
    return 2;
  }
  if (!ParseJson(baseline_body, &baseline, &error)) {
    std::fprintf(stderr, "idxsel_report: %s: %s\n", args[1].c_str(),
                 error.c_str());
    return 2;
  }
  const TrajectoryCheckResult result =
      CheckTrajectory(current, baseline, options);
  std::fputs(result.text.c_str(), stdout);
  return result.ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "render" && !rest.empty()) return Render(rest);
  if (command == "diff" && rest.size() == 2) {
    return Diff(rest[0], rest[1]);
  }
  if (command == "check-trajectory") return CheckTrajectoryCommand(rest);
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace
}  // namespace idxsel::report

int main(int argc, char** argv) { return idxsel::report::Main(argc, argv); }
