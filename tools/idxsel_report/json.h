// Minimal JSON reader for the report tool — just enough to load the
// repo's own sidecars (journal JSONL, metrics/trace JSON, trajectory
// baselines). Recursive descent, no dependencies, objects keep member
// order so rendered output is stable. Not a general-purpose library: no
// \uXXXX surrogate handling beyond pass-through, numbers parsed as
// double (exact for the integer counters the sidecars carry).

#ifndef IDXSEL_TOOLS_IDXSEL_REPORT_JSON_H_
#define IDXSEL_TOOLS_IDXSEL_REPORT_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace idxsel::report {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  /// Object members in document order.
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> items;  ///< array elements

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience accessors with fallbacks (missing key / wrong kind).
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parses one JSON document. Returns false and sets `error` (with a
/// byte offset) on malformed input; trailing garbage is an error.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

/// Parses JSON Lines: one document per non-empty line. Stops at the
/// first malformed line (error names the line number).
bool ParseJsonl(std::string_view text, std::vector<JsonValue>* out,
                std::string* error);

}  // namespace idxsel::report

#endif  // IDXSEL_TOOLS_IDXSEL_REPORT_JSON_H_
