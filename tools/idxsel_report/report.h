// idxsel_report — renders and compares the observability sidecars.
//
// Three commands over the repo's own JSON documents:
//
//   render            *.journal.jsonl (schema idxsel.journal.v1, which
//                     includes serve's idxsel.serve.epoch.v1 records),
//                     *.metrics.json (idxsel.metrics.v1),
//                     BENCH_trajectory.json (idxsel.bench_trajectory.v1)
//                     and serve checkpoint files (idxsel.serve.checkpoint
//                     magic, parsed + checksum-verified by the serve
//                     library itself) as human-readable text
//   diff              two runs' sidecars; reports changed picks, costs
//                     and timings. Identical inputs report zero drift.
//   check-trajectory  a fresh bench_trajectory.json against the
//                     committed baseline: deterministic fields must
//                     match exactly, steps/sec may drop at most 20% and
//                     peak RSS may grow at most 15% (CI's perf gate)
//
// Library half (this header) is I/O-free and fuzz-friendly: everything
// takes parsed JsonValues and returns strings, so tests feed documents
// straight in. main.cc owns file loading and exit codes.

#ifndef IDXSEL_TOOLS_IDXSEL_REPORT_REPORT_H_
#define IDXSEL_TOOLS_IDXSEL_REPORT_REPORT_H_

#include <string>
#include <vector>

#include "idxsel_report/json.h"

namespace idxsel::report {

/// Reads a numeric field that the journal may have written in its quoted
/// non-finite form ("inf" / "-inf" / "nan").
double NumberField(const JsonValue& obj, const std::string& key,
                   double fallback);

/// Human-readable journal: one line per decision record, grouped by
/// strategy lane, with reject tallies.
std::string RenderJournal(const std::vector<JsonValue>& records);

/// Human-readable metrics sidecar: counters, gauges, histogram summaries.
std::string RenderMetrics(const JsonValue& doc);

/// Human-readable trajectory document: one line per (N, Q) point.
std::string RenderTrajectory(const JsonValue& doc);

/// Human-readable serve checkpoint: parses `body` with the serve
/// library's DeserializeCheckpoint (checksum + version verified) and
/// renders epoch, cursor, budget, objectives, selection, and the
/// deployment plan. Corrupt input renders the rejection reason instead.
std::string RenderServeCheckpoint(const std::string& body);

/// Journal diff: aligns records by (strategy, action, round, epoch) and
/// reports
/// changed winners (picks), changed objectives (costs), and any other
/// field drift. Sets *drift when the journals differ at all.
std::string DiffJournals(const std::vector<JsonValue>& a,
                         const std::vector<JsonValue>& b, bool* drift);

/// Structural diff of two JSON documents (metrics, trajectory, any
/// sidecar): reports every changed/added/removed leaf by path. Sets
/// *drift when the documents differ at all.
std::string DiffDocuments(const JsonValue& a, const JsonValue& b,
                          bool* drift);

struct TrajectoryCheckOptions {
  double max_steps_per_sec_drop = 0.20;  ///< relative, vs baseline
  double max_peak_rss_growth = 0.15;     ///< relative, vs baseline
};

struct TrajectoryCheckResult {
  bool ok = true;
  std::string text;  ///< one line per comparison, PASS/FAIL annotated
};

/// CI perf gate: `current` (fresh bench_trajectory.json) against
/// `baseline` (committed BENCH_trajectory.json). Deterministic work
/// metrics (h6 steps, what-if calls, race winner) must match exactly;
/// the timing-dependent ones are gated by the thresholds above.
TrajectoryCheckResult CheckTrajectory(const JsonValue& current,
                                      const JsonValue& baseline,
                                      const TrajectoryCheckOptions& options);

}  // namespace idxsel::report

#endif  // IDXSEL_TOOLS_IDXSEL_REPORT_REPORT_H_
