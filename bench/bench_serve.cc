// Serve-layer ablation — what the warm AdvisorService buys over cold
// re-runs on a drifting workload (ISSUE 7 / ROADMAP item 1).
//
// Three measurements:
//   1. Drift ladder: K single-template frequency shifts applied one per
//      Pump() to a long-running service (engine + kernel tables stay
//      warm) vs a *cold* advisor booted from scratch on the same drifted
//      workload at every step. Reported per step: what-if backend calls
//      and wall seconds for both paths, plus committed H6 steps/sec.
//   2. Recovery-time-after-kill: the service is crashed mid-commit (an
//      exception thrown from the commit-protocol hook, exactly like the
//      chaos soak in tests/serve_test.cc) and restarted from its
//      checkpoint + delta log; the Start() latency is the recovery time.
//   3. Totals: aggregate incremental vs cold call volume over the ladder.
//
// With IDXSEL_BENCH_ASSERT=1 the binary turns into a perf-smoke check:
// it exits non-zero unless every drift step's incremental round makes
// strictly fewer what-if calls than the cold re-run (the acceptance
// criterion of ISSUE 7) and the kill/restart really recovered from the
// checkpoint (stats().recoveries == 1).
//
// Emits `bench_serve.json` (schema idxsel.bench_serve.v1) with the full
// per-step table and recovery timings next to the usual obs sidecars.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/format.h"
#include "serve/service.h"

namespace idxsel::bench {
namespace {

using Clock = std::chrono::steady_clock;
using serve::AdvisorService;
using serve::MakeModelBackendFactory;
using serve::ServiceOptions;
using serve::WorkloadDelta;

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

bool AssertMode() {
  const char* v = std::getenv("IDXSEL_BENCH_ASSERT");
  return v != nullptr && v[0] == '1';
}

/// The generator emits a plain Workload; the service checkpoints its
/// workload textually (workload::FormatWorkload), so it needs display
/// names. Synthesized as "<table>.a<ordinal>" — valid identifiers that
/// round-trip through the parser on recovery.
workload::NamedWorkload Named(workload::Workload w) {
  workload::NamedWorkload named;
  named.attribute_names.reserve(w.num_attributes());
  for (workload::AttributeId i = 0;
       i < static_cast<workload::AttributeId>(w.num_attributes()); ++i) {
    const workload::AttributeStats& a = w.attribute(i);
    named.attribute_names.push_back(w.table(a.table).name + ".a" +
                                    std::to_string(a.ordinal));
  }
  named.workload = std::move(w);
  return named;
}

ServiceOptions BenchServiceOptions() {
  ServiceOptions so;
  so.advisor.threads = 1;  // deterministic what-if accounting
  so.hooks.sleep = [](double) {};
  return so;
}

/// One drift step: a single existing template's frequency is replaced.
/// Purely a function of (step, Q) so every run drifts identically.
WorkloadDelta DriftShift(const workload::Workload& w, size_t step) {
  const auto j = static_cast<workload::QueryId>(
      (step * 17 + 3) % w.num_queries());
  const workload::Query& q = w.query(j);
  WorkloadDelta d;
  d.kind = serve::DeltaKind::kFrequencyShift;
  d.table = q.table;
  d.attributes = q.attributes;
  d.frequency = static_cast<double>((step % 9 + 2) * 137);
  return d;
}

struct StepPoint {
  uint64_t incremental_calls = 0;
  double incremental_seconds = 0.0;
  uint64_t incremental_h6_steps = 0;
  uint64_t cold_calls = 0;
  double cold_seconds = 0.0;
};

struct RecoveryPoint {
  double seconds = 0.0;
  uint64_t replayed_deltas = 0;
  uint64_t recoveries = 0;
  uint64_t epoch = 0;
};

/// Thrown from the commit-protocol hook to simulate a mid-commit kill
/// (same mechanism as the chaos soak; the service's durable state is
/// whatever the crashed incarnation got onto disk).
struct SimulatedKill {};

std::string JsonDocument(const std::vector<StepPoint>& steps,
                         uint64_t cold_boot_calls,
                         const RecoveryPoint& recovery, size_t n, size_t q) {
  char buf[256];
  std::string out = "{\n" + SidecarHeaderJson("idxsel.bench_serve.v1");
  std::snprintf(buf, sizeof buf,
                "  \"attributes\": %zu,\n  \"queries\": %zu,\n"
                "  \"cold_boot_whatif_calls\": %llu,\n",
                n, q, static_cast<unsigned long long>(cold_boot_calls));
  out += buf;
  out += "  \"drift_steps\": [";
  uint64_t incr_total = 0;
  uint64_t cold_total = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepPoint& p = steps[i];
    incr_total += p.incremental_calls;
    cold_total += p.cold_calls;
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(
        buf, sizeof buf,
        "    {\"step\": %zu, \"incremental_whatif_calls\": %llu, "
        "\"incremental_seconds\": %.6f, \"h6_steps\": %llu, "
        "\"cold_whatif_calls\": %llu, \"cold_seconds\": %.6f}",
        i + 1, static_cast<unsigned long long>(p.incremental_calls),
        p.incremental_seconds,
        static_cast<unsigned long long>(p.incremental_h6_steps),
        static_cast<unsigned long long>(p.cold_calls), p.cold_seconds);
    out += buf;
  }
  out += "\n  ],\n";
  std::snprintf(
      buf, sizeof buf,
      "  \"incremental_whatif_calls_total\": %llu,\n"
      "  \"cold_whatif_calls_total\": %llu,\n",
      static_cast<unsigned long long>(incr_total),
      static_cast<unsigned long long>(cold_total));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"recovery\": {\"seconds\": %.6f, \"replayed_deltas\": %llu, "
      "\"recoveries\": %llu, \"epoch\": %llu}\n}\n",
      recovery.seconds,
      static_cast<unsigned long long>(recovery.replayed_deltas),
      static_cast<unsigned long long>(recovery.recoveries),
      static_cast<unsigned long long>(recovery.epoch));
  out += buf;
  return out;
}

int Run() {
  const size_t drift_steps = FullMode() ? 16 : 8;
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = FullMode() ? 50 : 25;
  params.queries_per_table = FullMode() ? 100 : 50;
  const workload::NamedWorkload base =
      Named(workload::GenerateScalableWorkload(params));
  const size_t n = base.workload.num_attributes();
  const size_t q = base.workload.num_queries();

  std::printf(
      "Serve ablation: warm incremental re-selection vs cold re-run, "
      "N=%zu, Q=%zu, %zu drift steps.\n\n",
      n, q, drift_steps);

  const std::string state_dir = "bench_serve_state";
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  // Long-running service with a crash switch on the commit hook (off
  // until the recovery measurement below).
  bool kill_next_commit = false;
  ServiceOptions so = BenchServiceOptions();
  so.dir = state_dir;
  so.hooks.at = [&](const char* point) {
    if (kill_next_commit && std::string(point) == "journal-appended") {
      throw SimulatedKill{};
    }
  };
  auto warm =
      AdvisorService::Start(base, MakeModelBackendFactory(), so);
  if (!warm.ok()) {
    std::fprintf(stderr, "bench_serve: Start failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  AdvisorService& svc = **warm;
  auto boot = svc.Pump();
  if (!boot.ok() || !boot->committed) {
    std::fprintf(stderr, "bench_serve: first pump did not commit\n");
    return 1;
  }
  const uint64_t cold_boot_calls = boot->whatif_calls;

  int failures = 0;
  std::vector<StepPoint> steps;
  std::vector<WorkloadDelta> history;
  TablePrinter table({"step", "incr calls", "incr ms", "h6 steps/s",
                      "cold calls", "cold ms", "call ratio"});
  for (size_t step = 0; step < drift_steps; ++step) {
    const WorkloadDelta shift = DriftShift(base.workload, step);
    history.push_back(shift);
    StepPoint point;

    // Warm path: the shift goes through the service; the engine caches
    // and kernel tables survive (frequency shifts never rebuild).
    {
      const Status submitted = svc.Submit(shift);
      if (!submitted.ok()) {
        std::fprintf(stderr, "bench_serve: submit failed: %s\n",
                     submitted.ToString().c_str());
        return 1;
      }
      const double start = NowSeconds();
      auto outcome = svc.Pump();
      point.incremental_seconds = NowSeconds() - start;
      if (!outcome.ok() || !outcome->committed) {
        std::fprintf(stderr, "bench_serve: drift pump %zu did not commit\n",
                     step + 1);
        return 1;
      }
      point.incremental_calls = outcome->whatif_calls;
      point.incremental_h6_steps =
          svc.Answer().recommendation.trace.size();
    }

    // Cold path: a fresh in-memory service sees the same drifted
    // workload (base + every shift so far) with everything cold.
    {
      auto cold = AdvisorService::Start(base, MakeModelBackendFactory(),
                                        BenchServiceOptions());
      if (!cold.ok()) return 1;
      for (const WorkloadDelta& d : history) {
        if (!(*cold)->Submit(d).ok()) return 1;
      }
      const double start = NowSeconds();
      auto outcome = (*cold)->Pump();
      point.cold_seconds = NowSeconds() - start;
      if (!outcome.ok() || !outcome->committed) {
        std::fprintf(stderr, "bench_serve: cold pump %zu did not commit\n",
                     step + 1);
        return 1;
      }
      point.cold_calls = outcome->whatif_calls;
    }

    const double ratio =
        point.cold_calls > 0
            ? static_cast<double>(point.incremental_calls) /
                  static_cast<double>(point.cold_calls)
            : 0.0;
    const double steps_per_sec =
        point.incremental_seconds > 0.0
            ? static_cast<double>(point.incremental_h6_steps) /
                  point.incremental_seconds
            : 0.0;
    table.AddRow({std::to_string(step + 1),
                  FormatCount(static_cast<int64_t>(point.incremental_calls)),
                  FormatDouble(point.incremental_seconds * 1e3, 3),
                  FormatDouble(steps_per_sec, 1),
                  FormatCount(static_cast<int64_t>(point.cold_calls)),
                  FormatDouble(point.cold_seconds * 1e3, 3),
                  FormatDouble(ratio, 3)});
    if (AssertMode() && point.incremental_calls >= point.cold_calls) {
      std::fprintf(stderr,
                   "ASSERT FAILED: drift step %zu made %llu incremental "
                   "what-if calls, not fewer than the cold re-run's %llu\n",
                   step + 1,
                   static_cast<unsigned long long>(point.incremental_calls),
                   static_cast<unsigned long long>(point.cold_calls));
      ++failures;
    }
    steps.push_back(point);
  }
  std::printf("%s\n", table.ToString().c_str());

  // ---- Recovery-time-after-kill -----------------------------------------
  // Crash the warm service mid-commit (after the epoch journal fsync,
  // before the checkpoint rename lands), then time a fresh Start() on
  // the same state dir: checkpoint load + delta-log replay past the
  // cursor. The answer must come back at the last committed epoch.
  const uint64_t epoch_before_kill = svc.Answer().epoch;
  kill_next_commit = true;
  bool killed = false;
  const Status submitted = svc.Submit(DriftShift(base.workload, drift_steps));
  if (!submitted.ok()) return 1;
  try {
    (void)svc.Pump();
  } catch (const SimulatedKill&) {
    killed = true;
  }
  RecoveryPoint recovery;
  {
    ServiceOptions recover_options = BenchServiceOptions();
    recover_options.dir = state_dir;
    const double start = NowSeconds();
    auto recovered = AdvisorService::Start(base, MakeModelBackendFactory(),
                                           recover_options);
    recovery.seconds = NowSeconds() - start;
    if (!recovered.ok()) {
      std::fprintf(stderr, "bench_serve: recovery Start failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    recovery.replayed_deltas = (*recovered)->stats().replayed_deltas;
    recovery.recoveries = (*recovered)->stats().recoveries;
    recovery.epoch = (*recovered)->Answer().epoch;
    (void)(*recovered)->Stop();
  }
  std::printf(
      "recovery after mid-commit kill%s: %.3f ms to restart "
      "(epoch %llu -> %llu, %llu deltas replayed, recoveries=%llu)\n\n",
      killed ? "" : " (kill hook did not fire)", recovery.seconds * 1e3,
      static_cast<unsigned long long>(epoch_before_kill),
      static_cast<unsigned long long>(recovery.epoch),
      static_cast<unsigned long long>(recovery.replayed_deltas),
      static_cast<unsigned long long>(recovery.recoveries));
  if (AssertMode()) {
    if (!killed) {
      std::fprintf(stderr, "ASSERT FAILED: kill hook never fired\n");
      ++failures;
    }
    if (recovery.recoveries != 1) {
      std::fprintf(stderr,
                   "ASSERT FAILED: restart did not recover from the "
                   "checkpoint (recoveries=%llu)\n",
                   static_cast<unsigned long long>(recovery.recoveries));
      ++failures;
    }
  }

  const std::string json =
      JsonDocument(steps, cold_boot_calls, recovery, n, q);
  std::FILE* f = std::fopen("bench_serve.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("results written to bench_serve.json\n");
  }

  std::printf(
      "Expected shape: the warm service re-prices only what the shifted\n"
      "template touches, so incremental call counts sit well below the\n"
      "cold re-run at every step; recovery stays in the milliseconds.\n");
  if (AssertMode() && failures == 0) {
    std::printf(
        "assert mode: incremental < cold at every drift step, "
        "recovery from checkpoint confirmed\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("bench_serve");
  const int rc = idxsel::bench::Run();
  return rc;
}
