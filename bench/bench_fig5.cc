// Figure 5 — end-to-end evaluation with *measured* runtimes: all strategies
// are fed wall-clock execution times from the bundled column-store engine
// instead of the analytic cost model; N = 100, Q = 100, exhaustive
// candidate set (paper: |IC_max| = 2937), w in [0, 1].
//
// Strategies, as in the paper's figure: H6, frequency-based H1,
// H4 without skyline (all candidates), H4 with skyline, H5 (all
// candidates), CoPhy with 10% of the candidates via H1-M, CoPhy with all
// candidates (the optimality reference).
//
// Substitution note: the paper's commercial DBMS ran >= 100 repetitions on
// a 64-core/512 GB box; we scale rows down (IDXSEL_BENCH_FULL=1 raises the
// scale) and use best-of-N timing. Shapes, not absolute milliseconds.

#include <cstdio>

#include "bench_common.h"
#include "engine/measured_cost.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;  // N = 100, Q = 100
  params.attributes_per_table = 50;
  params.queries_per_table = 50;
  params.rows_per_table_step = FullMode() ? 500'000 : 60'000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);

  const engine::Database db(&w, params.rows_per_table_step * 2, /*seed=*/3);
  engine::MeasuredCostSource measured(&db, /*repetitions=*/FullMode() ? 7 : 3,
                                      /*seed=*/11);
  costmodel::WhatIfEngine what_if(&w, &measured);

  std::printf(
      "Figure 5: end-to-end, measured wall-clock query runtimes from the\n"
      "column-store engine; N=%zu, Q=%zu, rows/table up to %llu.\n\n",
      w.num_attributes(), w.num_queries(),
      static_cast<unsigned long long>(db.rows(1)));

  const candidates::CandidateSet all = candidates::EnumerateAllCandidates(w, 4);
  const candidates::CandidateSet ten_percent =
      candidates::GenerateCandidates(w, candidates::CandidateHeuristic::kH1M,
                                     all.size() / 10, 4);
  std::printf("|IC_max| = %zu (paper: 2937)\n\n", all.size());

  // Budget base: measured single-attribute index memory.
  double total = 0.0;
  for (workload::AttributeId i = 0; i < w.num_attributes(); ++i) {
    total += what_if.IndexMemory(costmodel::Index(i));
  }

  const std::vector<double> grid =
      frontier::BudgetGrid(0.0, 1.0, FullMode() ? 11 : 5);

  std::vector<frontier::FrontierSeries> series;
  series.push_back(frontier::SweepStrategy(what_if, total, grid, "H6",
                                           H6Strategy(what_if)));
  series.push_back(frontier::SweepStrategy(
      what_if, total, grid, "H1", [&](double budget) {
        frontier::StrategyOutcome outcome;
        outcome.selection =
            selection::SelectRuleBased(what_if, all, budget,
                                       selection::RuleHeuristic::kH1)
                .selection;
        return outcome;
      }));
  series.push_back(frontier::SweepStrategy(
      what_if, total, grid, "H4", [&](double budget) {
        frontier::StrategyOutcome outcome;
        outcome.selection =
            selection::SelectByBenefit(what_if, all, budget, false).selection;
        return outcome;
      }));
  series.push_back(frontier::SweepStrategy(
      what_if, total, grid, "H4+skyline", [&](double budget) {
        frontier::StrategyOutcome outcome;
        outcome.selection =
            selection::SelectByBenefit(what_if, all, budget, true).selection;
        return outcome;
      }));
  series.push_back(frontier::SweepStrategy(
      what_if, total, grid, "H5", [&](double budget) {
        frontier::StrategyOutcome outcome;
        outcome.selection =
            selection::SelectByBenefitPerSize(what_if, all, budget).selection;
        return outcome;
      }));
  series.push_back(frontier::SweepStrategy(what_if, total, grid,
                                           "CoPhy+10%",
                                           CophyStrategy(what_if, ten_percent)));
  series.push_back(frontier::SweepStrategy(what_if, total, grid,
                                           "CoPhy+all(opt)",
                                           CophyStrategy(what_if, all)));

  for (frontier::FrontierSeries& s : series) {
    frontier::NormalizeCosts(what_if, &s);
  }
  std::printf("%s\n", frontier::RenderSeriesTable(series).c_str());
  const Status csv = frontier::WriteSeriesCsv(series, "fig5.csv");
  std::printf("series written to fig5.csv (%s)\n", csv.ToString().c_str());
  std::printf("physical indexes built: %zu\n\n", measured.indexes_built());
  std::printf(
      "Expected shape (paper): H6 within a few %% of CoPhy+all for every\n"
      "budget; H1 and H4 variants far from optimal; H5 decent with the full\n"
      "candidate set; CoPhy+10%% clearly below CoPhy+all.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("fig5");
  idxsel::bench::Run();
  return 0;
}
