// Ablation — targeted construction vs randomized substitution
// (Section II-D): Algorithm 1 against the DB2-style "(H5) start + random
// shuffle" search of Valentin et al. [9], at equal wall-clock budgets.
// Also prints the AutoAdmin two-step baseline [13].

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "selection/autoadmin.h"
#include "selection/shuffle.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = FullMode() ? 200 : 50;
  ModelSetup setup(workload::GenerateScalableWorkload(params));
  const double budget = setup.model->Budget(0.2);
  const double base = setup.engine->WorkloadCost(costmodel::IndexConfig{});
  const candidates::CandidateSet all =
      candidates::EnumerateAllCandidates(setup.w, 4);

  std::printf(
      "Targeted vs randomized search (Example 1, N=%zu, Q=%zu, w=0.2,\n"
      "|IC_max|=%zu candidates for the candidate-based methods).\n\n",
      setup.w.num_attributes(), setup.w.num_queries(), all.size());

  TablePrinter table({"method", "rel. cost", "indexes", "runtime",
                      "iterations/steps"});

  {
    Stopwatch watch;
    core::RecursiveOptions options;
    options.budget = budget;
    const core::RecursiveResult h6 =
        core::SelectRecursive(*setup.engine, options);
    table.AddRow({"H6 (Algorithm 1)", FormatDouble(h6.objective / base, 4),
                  std::to_string(h6.selection.size()),
                  FormatSeconds(watch.ElapsedSeconds()),
                  std::to_string(h6.trace.size())});
  }
  {
    const selection::SelectionResult h5 =
        selection::SelectByBenefitPerSize(*setup.engine, all, budget);
    table.AddRow({"H5 (start solution)", FormatDouble(h5.objective / base, 4),
                  std::to_string(h5.selection.size()),
                  FormatSeconds(h5.runtime_seconds), "-"});
  }
  for (uint64_t iterations : {100u, 1000u, 10000u}) {
    selection::ShuffleOptions options;
    options.max_iterations = iterations;
    options.time_limit_seconds = 120.0;
    const selection::ShuffleResult r =
        selection::SelectByShuffling(*setup.engine, all, budget, options);
    table.AddRow({"H5+shuffle(" + std::to_string(iterations) + ")",
                  FormatDouble(r.selection.objective / base, 4),
                  std::to_string(r.selection.selection.size()),
                  FormatSeconds(r.selection.runtime_seconds),
                  std::to_string(r.iterations) + " (" +
                      std::to_string(r.accepted) + " accepted)"});
  }
  {
    selection::AutoAdminOptions options;
    options.budget = budget;
    const selection::AutoAdminResult r =
        selection::SelectAutoAdmin(*setup.engine, options);
    table.AddRow({"AutoAdmin [13]",
                  FormatDouble(r.selection.objective / base, 4),
                  std::to_string(r.selection.selection.size()),
                  FormatSeconds(r.selection.runtime_seconds),
                  std::to_string(r.candidates.size()) + " candidates"});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (paper, Section II-D): the randomized search needs\n"
      "many iterations to approach what the targeted recursive construction\n"
      "reaches in one deterministic pass.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("shuffle");
  idxsel::bench::Run();
  return 0;
}
