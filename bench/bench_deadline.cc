// google-benchmark micro-benchmarks of the deadline machinery: the raw
// cost of Deadline::expired() and DeadlinePoller::Expired(), and the
// end-to-end overhead the poll sites add to the H6 hot loop. These back
// the <1% overhead claim in doc/robustness.md: an unbounded deadline
// reads no clock at all, and a bounded-but-distant one reads it every
// `stride` (64) units of work, so SelectRecursive with and without a
// wall-clock budget should be indistinguishable within noise.

#include <benchmark/benchmark.h>

#include "common/deadline.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "workload/scalable_generator.h"

namespace idxsel::rt {
namespace {

void BM_DeadlineExpiredUnbounded(benchmark::State& state) {
  const Deadline deadline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deadline.expired());
  }
}
BENCHMARK(BM_DeadlineExpiredUnbounded);

void BM_DeadlineExpiredBounded(benchmark::State& state) {
  const Deadline deadline = Deadline::After(3600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deadline.expired());
  }
}
BENCHMARK(BM_DeadlineExpiredBounded);

void BM_PollerExpiredUnbounded(benchmark::State& state) {
  const Deadline deadline;
  DeadlinePoller poller(deadline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.Expired());
  }
}
BENCHMARK(BM_PollerExpiredUnbounded);

void BM_PollerExpiredBounded(benchmark::State& state) {
  const Deadline deadline = Deadline::After(3600.0);
  DeadlinePoller poller(deadline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poller.Expired());
  }
}
BENCHMARK(BM_PollerExpiredBounded);

// The H6 hot loop end to end. `bounded` = 0 runs with the default
// unbounded deadline (poll sites cost increment+mask+branch, no clock);
// `bounded` = 1 sets a one-hour budget that never fires, so every 64th
// poll reads the clock. The relative gap between the two is the
// deadline overhead on real selector work.
void BM_SelectRecursiveH6(benchmark::State& state) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 15;
  params.queries_per_table = 40;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const costmodel::CostModel model(&w);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);

  core::RecursiveOptions options;
  options.budget = model.Budget(0.25);
  if (state.range(0) != 0) options.deadline = Deadline::After(3600.0);

  for (auto _ : state) {
    const core::RecursiveResult result =
        core::SelectRecursive(engine, options);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetLabel(state.range(0) != 0 ? "bounded-far-deadline" : "unbounded");
}
BENCHMARK(BM_SelectRecursiveH6)->Arg(0)->Arg(1);

}  // namespace
}  // namespace idxsel::rt

BENCHMARK_MAIN();
