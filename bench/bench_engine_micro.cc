// google-benchmark micro-benchmarks of the column-store engine: the
// scan-vs-probe crossover that motivates secondary indexes in the first
// place (Kester et al., cited as [1] in the paper).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/btree_index.h"
#include "engine/column_store.h"
#include "engine/composite_index.h"
#include "engine/executor.h"

namespace idxsel::engine {
namespace {

constexpr uint64_t kRows = 200'000;

const ColumnTable& SharedTable() {
  static Rng rng(7);
  // Column selectivities from near-unique to 25%.
  static ColumnTable table(kRows, {100'000, 1'000, 100, 4}, rng);
  return table;
}

Executor SharedExecutor() {
  return Executor(&SharedTable(), {100'000, 1'000, 100, 4});
}

void BM_SequentialScan(benchmark::State& state) {
  const uint32_t column = static_cast<uint32_t>(state.range(0));
  Executor executor = SharedExecutor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.ScanOnly({{column, 1}}).rows_touched);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_SequentialScan)->DenseRange(0, 3, 1);

void BM_IndexProbe(benchmark::State& state) {
  const uint32_t column = static_cast<uint32_t>(state.range(0));
  Executor executor = SharedExecutor();
  const CompositeIndex index(&SharedTable(), {column});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.WithIndex({{column, 1}}, index).rows_touched);
  }
}
BENCHMARK(BM_IndexProbe)->DenseRange(0, 3, 1);

void BM_IndexBuild(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> columns;
  for (uint32_t c = 0; c < width; ++c) columns.push_back(c);
  for (auto _ : state) {
    const CompositeIndex index(&SharedTable(), columns);
    benchmark::DoNotOptimize(index.memory_bytes());
  }
}
BENCHMARK(BM_IndexBuild)->DenseRange(1, 4, 1);

void BM_CompositeProbeVsResidual(benchmark::State& state) {
  // Index (3) is unselective; the residual filter does the heavy lifting —
  // the regime where a multi-attribute index would pay off.
  Executor executor = SharedExecutor();
  const CompositeIndex index(&SharedTable(), {3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.WithIndex({{3, 1}, {0, 1}}, index).rows_touched);
  }
}
BENCHMARK(BM_CompositeProbeVsResidual);

void BM_MultiAttributeProbe(benchmark::State& state) {
  Executor executor = SharedExecutor();
  const CompositeIndex index(&SharedTable(), {3, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.WithIndex({{3, 1}, {0, 1}}, index).rows_touched);
  }
}
BENCHMARK(BM_MultiAttributeProbe);

// Physical-representation shoot-out: sorted row-id permutation
// (column-indirect comparisons) vs bulk-loaded B+-tree (materialized keys).

void BM_BTreeProbe(benchmark::State& state) {
  const uint32_t column = static_cast<uint32_t>(state.range(0));
  Executor executor = SharedExecutor();
  const BTreeIndex index(&SharedTable(), {column});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.WithIndex({{column, 1}}, index).rows_touched);
  }
}
BENCHMARK(BM_BTreeProbe)->DenseRange(0, 3, 1);

void BM_BTreeBuild(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> columns;
  for (uint32_t c = 0; c < width; ++c) columns.push_back(c);
  for (auto _ : state) {
    const BTreeIndex index(&SharedTable(), columns);
    benchmark::DoNotOptimize(index.memory_bytes());
  }
}
BENCHMARK(BM_BTreeBuild)->DenseRange(1, 4, 1);

void BM_BTreeMultiAttributeProbe(benchmark::State& state) {
  Executor executor = SharedExecutor();
  const BTreeIndex index(&SharedTable(), {3, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.WithIndex({{3, 1}, {0, 1}}, index).rows_touched);
  }
}
BENCHMARK(BM_BTreeMultiAttributeProbe);

}  // namespace
}  // namespace idxsel::engine

BENCHMARK_MAIN();
