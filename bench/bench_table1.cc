// Table I — solving-time comparison: our strategy (H6) vs CoPhy's
// solver-based approach, for growing query counts and candidate-set sizes.
//
// Paper setting: T = 10 tables, sum N_t = 500 attributes, budget w = 0.2,
// CoPhy with 5% optimality gap; runtimes exclude what-if calls (our model
// backend's calls are microseconds, and CoPhy's time is pure solver time).
// The paper's DNF cutoff was eight hours; ours defaults to a few seconds
// per solve (IDXSEL_BENCH_TIME_LIMIT overrides).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"

namespace idxsel::bench {
namespace {

void Run() {
  std::printf(
      "Table I: runtime of CoPhy (mipgap 5%%, time limit %.0f s) vs (H6);\n"
      "T=10 tables, 500 attributes, w=0.2, Example 1 workload.\n\n",
      CophyTimeLimit());

  const std::vector<uint32_t> query_sizes =
      FullMode() ? std::vector<uint32_t>{500, 1000, 2000, 5000, 10000, 20000,
                                         50000}
                 : std::vector<uint32_t>{500, 1000, 2000, 5000};

  TablePrinter table({"# Queries", "|IC_max|", "# Candidates",
                      "Runtime CoPhy", "Runtime (H6)"});

  for (uint32_t total_queries : query_sizes) {
    workload::ScalableWorkloadParams params;  // T=10, N_t=50
    params.queries_per_table = total_queries / 10;
    ModelSetup setup(workload::GenerateScalableWorkload(params));
    const double budget = setup.model->Budget(0.2);

    const candidates::CandidateSet all =
        candidates::EnumerateAllCandidates(setup.w, 4);

    std::vector<size_t> candidate_sizes = {100, 1000};
    candidate_sizes.push_back(std::min<size_t>(10000, all.size()));

    std::string cophy_cell;
    std::string sizes_cell;
    for (size_t count : candidate_sizes) {
      candidates::CandidateSet cands =
          count >= all.size()
              ? all
              : candidates::GenerateCandidates(
                    setup.w, candidates::CandidateHeuristic::kH1M, count, 4);
      // Pre-warm the what-if cache so the CoPhy timing is pure solve +
      // model build (the paper excludes what-if time).
      cophy::BuildProblem(*setup.engine, cands, budget);

      mip::SolveOptions options;
      options.mip_gap = 0.05;
      options.time_limit_seconds = CophyTimeLimit();
      Stopwatch watch;
      const cophy::CophyResult result =
          cophy::SolveCophy(*setup.engine, cands, budget, options);
      const double seconds = watch.ElapsedSeconds();
      if (!sizes_cell.empty()) {
        sizes_cell += ", ";
        cophy_cell += ", ";
      }
      sizes_cell += FormatCount(static_cast<int64_t>(cands.size()));
      cophy_cell += FormatSeconds(seconds, result.dnf);
    }

    // H6: time a fresh run with a pre-warmed cache as well.
    core::RecursiveOptions options;
    options.budget = budget;
    core::SelectRecursive(*setup.engine, options);  // warm the cache
    Stopwatch watch;
    const core::RecursiveResult h6 = core::SelectRecursive(*setup.engine,
                                                           options);
    const double h6_seconds = watch.ElapsedSeconds();

    table.AddRow({FormatCount(total_queries),
                  FormatCount(static_cast<int64_t>(all.size())),
                  "(" + sizes_cell + ")", "(" + cophy_cell + ")",
                  FormatSeconds(h6_seconds)});
    (void)h6;
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (paper): CoPhy's time explodes with #queries and\n"
      "#candidates (DNF at the cutoff); H6 stays at seconds throughout.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("table1");
  idxsel::bench::Run();
  return 0;
}
