// Parallel-pipeline scalability on the Fig. 2 scalable workload: wall-clock
// speedup of H6 construction, the MIP solve, and advisor portfolio racing
// at 1/2/4/8 threads — with the determinism contract checked on every
// measurement (parallel runs must return bit-identical selections; see
// doc/parallelism.md). Writes a bench_parallel.json sidecar with the raw
// seconds and derived speedups next to the usual obs sidecars.
//
// Speedups are physically bounded by the machine: on a single-core host
// every ratio is ~1.0 by construction. hardware_concurrency is recorded in
// the sidecar so downstream tooling can judge the numbers in context.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "bench_common.h"
#include "exec/thread_pool.h"
#include "mip/branch_and_bound.h"

namespace idxsel::bench {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double Seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-`reps` wall time (discards warmup and scheduler noise).
double BestOf(int reps, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, Seconds(fn));
  return best;
}

struct Series {
  std::vector<double> seconds;
  bool identical = true;

  double SpeedupAt(size_t idx) const {
    return seconds[idx] > 0.0 ? seconds[0] / seconds[idx] : 0.0;
  }
};

void PrintSeries(const char* label, const Series& s) {
  std::printf("%-22s", label);
  for (size_t i = 0; i < s.seconds.size(); ++i) {
    std::printf("  %7.3fs (%4.2fx)", s.seconds[i], s.SpeedupAt(i));
  }
  std::printf("  identical=%s\n", s.identical ? "yes" : "NO");
}

std::string JsonArray(const std::vector<double>& v, const char* fmt) {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), fmt, v[i]);
    if (i != 0) out += ", ";
    out += buf;
  }
  return out + "]";
}

void Run() {
  workload::ScalableWorkloadParams params;  // Fig. 2 shape: T=10, N_t=50
  params.queries_per_table = 100;           // sum Q = 1000
  ModelSetup setup(workload::GenerateScalableWorkload(params));
  const double budget = setup.model->TotalSingleAttributeMemory() * 0.25;
  const int reps = FullMode() ? 5 : 3;

  std::printf(
      "Parallel pipeline scalability — Fig. 2 workload (N=%zu, Q=%zu),\n"
      "budget w=0.25, best of %d runs per point; hardware_concurrency=%u,\n"
      "thread counts 1/2/4/8.\n\n",
      setup.w.num_attributes(), setup.w.num_queries(), reps,
      std::thread::hardware_concurrency());

  // ---------------------------------------------------------- H6 rounds
  Series h6;
  core::RecursiveResult h6_ref;
  for (size_t threads : kThreadCounts) {
    core::RecursiveResult result;
    h6.seconds.push_back(BestOf(reps, [&] {
      costmodel::WhatIfEngine engine(&setup.w, setup.backend.get());
      core::RecursiveOptions options;
      options.budget = budget;
      options.threads = threads;
      result = core::SelectRecursive(engine, options);
    }));
    if (threads == 1) {
      h6_ref = result;
    } else if (!(result.selection == h6_ref.selection) ||
               result.objective != h6_ref.objective ||
               result.whatif_calls != h6_ref.whatif_calls) {
      h6.identical = false;
    }
  }
  PrintSeries("H6 construction", h6);

  // ----------------------------------------------------------- MIP solve
  // Problem built once (the build is what-if work, not solver work); each
  // measurement re-solves it from scratch at the given thread count. The
  // point is chosen to *complete*: the Fig. 2 instance at |I|=500/w=0.25
  // DNFs for hours (the paper's CPLEX behavior), which would only measure
  // the time limit. |I|=450 with a tight w=0.02 budget branches heavily
  // yet solves to the 5% gap in seconds.
  const candidates::CandidateSet candidate_set =
      candidates::GenerateCandidates(setup.w,
                                     candidates::CandidateHeuristic::kH1M,
                                     450, 4);
  cophy::PreparedCophy prepared(*setup.engine, candidate_set);
  const double mip_budget =
      setup.model->TotalSingleAttributeMemory() * 0.02;
  Series mip;
  cophy::CophyResult mip_ref;
  for (size_t threads : kThreadCounts) {
    cophy::CophyResult result;
    mip.seconds.push_back(BestOf(reps, [&] {
      mip::SolveOptions options;
      options.mip_gap = 0.05;  // the paper's CPLEX mipgap
      options.time_limit_seconds = CophyTimeLimit();
      options.threads = threads;
      result = prepared.Solve(mip_budget, options);
    }));
    if (threads == 1) {
      mip_ref = result;
    } else if (!(result.selection == mip_ref.selection)) {
      mip.identical = false;
    }
  }
  PrintSeries("MIP solve", mip);

  // ----------------------------------------------------- portfolio race
  // H6 raced against H4 and H5 over a shared candidate set; the race adds
  // lanes, so its speedup can exceed the single-strategy ones once enough
  // threads exist to overlap whole strategies.
  Series portfolio;
  advisor::Recommendation race_ref;
  for (size_t threads : kThreadCounts) {
    advisor::Recommendation result;
    portfolio.seconds.push_back(BestOf(reps, [&] {
      costmodel::WhatIfEngine engine(&setup.w, setup.backend.get());
      advisor::AdvisorOptions options;
      options.strategy = advisor::StrategyKind::kRecursive;
      options.portfolio = {advisor::StrategyKind::kH4,
                           advisor::StrategyKind::kH5};
      options.candidate_limit = 300;
      options.budget_bytes = budget;
      options.threads = threads;
      auto rec = advisor::Recommend(engine, options);
      if (rec.ok()) result = std::move(*rec);
    }));
    if (threads == 1) {
      race_ref = result;
    } else if (!(result.selection == race_ref.selection) ||
               result.executed_strategy != race_ref.executed_strategy) {
      portfolio.identical = false;
    }
  }
  PrintSeries("Advisor portfolio", portfolio);

  // -------------------------------------------------------- JSON sidecar
  std::string json = "{\n" + SidecarHeaderJson("idxsel.bench_parallel.v1");
  json += "  \"workload\": {\"tables\": 10, \"attributes\": " +
          std::to_string(setup.w.num_attributes()) +
          ", \"queries\": " + std::to_string(setup.w.num_queries()) + "},\n";
  json += "  \"budget_fraction\": 0.25,\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"repetitions\": " + std::to_string(reps) + ",\n";
  json += "  \"thread_counts\": [1, 2, 4, 8],\n";
  const auto section = [&](const char* name, const Series& s) {
    std::vector<double> speedups;
    for (size_t i = 0; i < s.seconds.size(); ++i) {
      speedups.push_back(s.SpeedupAt(i));
    }
    return std::string("  \"") + name + "\": {\"seconds\": " +
           JsonArray(s.seconds, "%.6f") +
           ", \"speedup\": " + JsonArray(speedups, "%.3f") +
           ", \"bit_identical\": " + (s.identical ? "true" : "false") + "}";
  };
  json += section("h6", h6) + ",\n";
  json += section("mip", mip) + ",\n";
  json += section("portfolio", portfolio) + "\n";
  json += "}\n";
  std::FILE* f = std::fopen("bench_parallel.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nresults written to bench_parallel.json\n");
  }

  if (!h6.identical || !mip.identical || !portfolio.identical) {
    std::printf("\nWARNING: a parallel run diverged from serial — "
                "determinism contract violated!\n");
  }
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("bench_parallel");
  idxsel::bench::Run();
  return 0;
}
