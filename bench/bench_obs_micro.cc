// google-benchmark micro-benchmarks of the observability layer itself:
// the cost of a span, a counter increment, and a histogram record, in both
// runtime states. These back the overhead claims in doc/observability.md —
// runtime-disabled spans are one relaxed atomic load, counter adds are one
// relaxed fetch_add, and nothing on these paths allocates.
//
// Build with -DIDXSEL_ENABLE_OBS=OFF and compare bench_engine_micro to
// measure the compiled-out overhead (instrumentation sites vanish, so the
// only honest comparison is between whole builds, not within one).

#include <benchmark/benchmark.h>

#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "obs/obs.h"
#include "workload/scalable_generator.h"

namespace idxsel::obs {
namespace {

void BM_SpanDisabled(benchmark::State& state) {
  SetEnabled(false);
  for (auto _ : state) {
    Span span("bench", "disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  SetEnabled(true);
  Tracer::Default().Clear();
  for (auto _ : state) {
    Span span("bench", "enabled");
    benchmark::DoNotOptimize(&span);
  }
  SetEnabled(false);
  Tracer::Default().Clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  Counter* counter = Registry::Default().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Add();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram* histogram = Registry::Default().GetHistogram("bench.histogram");
  uint64_t value = 1;
  for (auto _ : state) {
    histogram->Record(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
  }
  benchmark::DoNotOptimize(histogram->Count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  // The interned-pointer pattern exists to keep this off hot paths; this
  // shows what a by-name lookup per operation would cost instead.
  Registry& registry = Registry::Default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.GetCounter("bench.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_WhatIfCachedCall(benchmark::State& state) {
  // End-to-end hot path: a fully cached what-if call with its counter
  // mirroring, in both runtime states (range(0) = enabled).
  workload::ScalableWorkloadParams params;
  params.num_tables = 1;
  params.attributes_per_table = 8;
  params.queries_per_table = 16;
  workload::Workload w = workload::GenerateScalableWorkload(params);
  const costmodel::CostModel model(&w);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  const costmodel::Index k(w.query(0).attributes[0]);
  SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.CostWithIndex(0, k));
  }
  SetEnabled(false);
}
BENCHMARK(BM_WhatIfCachedCall)->Arg(0)->Arg(1);

}  // namespace
}  // namespace idxsel::obs

BENCHMARK_MAIN();
