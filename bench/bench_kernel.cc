// Ablation — the flat cost-evaluation kernel (src/kernel/): interned
// dense lookups vs legacy hashed lookups, posting-list mask-filter hit
// rates, and Fig.6-sized H6 step latency with the kernel on vs off
// (kernel::ScopedKernelEnabled), including steady-state allocation counts
// per step from a global operator-new tally.
//
// Emits `bench_kernel.json` (sidecar, next to the other bench CSVs) and
// `BENCH_kernel.json` (same document; run the binary from the repo root
// to refresh the committed copy) with p50/p95 per-step times and the
// kernel-vs-baseline speedup.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/format.h"
#include "kernel/kernel.h"
#include "kernel/simd.h"
#include "obs/report.h"

// ------------------------------------------------- allocation accounting
// Counts every global allocation in the process; the H6 sections diff the
// counter around SelectRecursive to show the kernel's steady-state step
// loop allocates O(1) per committed step instead of O(candidates).

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace idxsel::bench {
namespace {

#if defined(IDXSEL_KERNEL)

using Clock = std::chrono::steady_clock;

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t at = std::min(v.size() - 1,
                             static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[at];
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

/// The Fig. 6 workload (N = 100, Q = 100): large enough that an H6 round
/// touches thousands of (query, index) cost resolutions, small enough for
/// the quick bench mode.
workload::Workload Fig6Workload() {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 50;
  params.queries_per_table = 50;
  return workload::GenerateScalableWorkload(params);
}

// ----------------------------------------- interned vs hashed lookups

struct LookupResult {
  double legacy_ns = 0.0;
  double dense_ns = 0.0;
  uint64_t lookups = 0;
};

/// Warm-cache cost resolution: the same (query, index) pairs priced
/// through the sharded hash cache (key canonicalization + Index hashing)
/// and through the dense IndexId-slot table. Width-1 and width-2 keys,
/// the mix an H6 append round produces.
LookupResult LookupMicrobench(costmodel::WhatIfEngine& engine,
                              const workload::Workload& w,
                              uint64_t target_lookups) {
  struct Pair {
    workload::QueryId j;
    costmodel::Index k;
    kernel::IndexId id;
    uint32_t slot;
  };
  std::vector<Pair> pairs;
  for (workload::AttributeId a = 0; a < w.num_attributes(); ++a) {
    const kernel::IndexId single = engine.InternIndex(costmodel::Index(a));
    const auto& posting = w.queries_with(a);
    // One width-2 extension per single, as append evaluation would make.
    kernel::IndexId ext = kernel::kInvalidIndexId;
    costmodel::Index ext_key(a);
    for (workload::QueryId j : posting) {
      for (workload::AttributeId b : w.query(j).attributes) {
        if (b == a) continue;
        ext = engine.arena().InternAppend(single, b);
        ext_key = engine.MaterializeIndex(ext);
        break;
      }
      if (ext != kernel::kInvalidIndexId) break;
    }
    for (uint32_t s = 0; s < posting.size(); ++s) {
      pairs.push_back(Pair{posting[s], costmodel::Index(a), single, s});
      if (ext != kernel::kInvalidIndexId) {
        pairs.push_back(Pair{posting[s], ext_key, ext, s});
      }
    }
  }

  // Warm both caches so the loops below measure lookup machinery, not
  // backend pricing.
  double sink = 0.0;
  for (const Pair& p : pairs) {
    sink += engine.CostWithIndex(p.j, p.k);
    sink += engine.CostWithIndexDense(p.j, p.id, p.slot);
  }

  LookupResult result;
  const uint64_t sweeps =
      std::max<uint64_t>(1, target_lookups / std::max<size_t>(1, pairs.size()));
  result.lookups = sweeps * pairs.size();

  const double legacy_start = NowSeconds();
  for (uint64_t r = 0; r < sweeps; ++r) {
    for (const Pair& p : pairs) sink += engine.CostWithIndex(p.j, p.k);
  }
  result.legacy_ns = (NowSeconds() - legacy_start) * 1e9 /
                     static_cast<double>(result.lookups);

  const double dense_start = NowSeconds();
  for (uint64_t r = 0; r < sweeps; ++r) {
    for (const Pair& p : pairs) {
      sink += engine.CostWithIndexDense(p.j, p.id, p.slot);
    }
  }
  result.dense_ns = (NowSeconds() - dense_start) * 1e9 /
                    static_cast<double>(result.lookups);

  if (sink == -1.0) std::printf("unreachable\n");  // keep the loops alive
  return result;
}

// ------------------------------------------- SIMD cost-reduction leg

bool AssertMode() {
  const char* v = std::getenv("IDXSEL_BENCH_ASSERT");
  return v != nullptr && v[0] == '1';
}

/// splitmix64: deterministic fill for the microbench blocks.
uint64_t Mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct SimdResult {
  double benefit_ref_ns = 0.0;    ///< branchy serial loop (pre-SIMD shape)
  double benefit_simd_ns = 0.0;   ///< dispatched exact reduction
  double benefit_scalar_ns = 0.0; ///< scalar template (forced)
  double sum_ref_ns = 0.0;
  double sum_simd_ns = 0.0;
  double sum_relaxed_ns = 0.0;    ///< opt-in reassociated shape
  uint64_t elements = 0;
};

/// The dense cost-reduction path before this layer existed: one branch
/// per element on data crafted to mispredict (~50/50 random gain signs,
/// random NaN-unset slots) — exactly the pattern an H6 move evaluation
/// streams through. The SIMD leg must beat this by >= 2x on an AVX2 host
/// (asserted under IDXSEL_BENCH_ASSERT=1); the branchless blends are the
/// point, not just the lane width.
double BranchyBenefit(const double* costs, const uint32_t* qids,
                      const double* best, const double* freq, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double gain = best[qids[t]] - costs[t];
    if (gain > 0.0) acc += freq[qids[t]] * gain;
  }
  return acc;
}

double BranchySum(const double* row, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    if (!std::isnan(row[t])) acc += row[t];
  }
  return acc;
}

SimdResult SimdMicrobench() {
  constexpr size_t kBlock = 1u << 16;  // L2-resident: measures the ALUs,
                                       // not DRAM
  constexpr size_t kNumQueries = 256;  // best/freq stay L1-resident
  const uint64_t passes = FullMode() ? 1200 : 300;

  std::vector<double> costs(kBlock), row(kBlock);
  std::vector<double> best(kNumQueries), freq(kNumQueries);
  std::vector<uint32_t> qids(kBlock);
  uint64_t rng = 0xb41c4ull;
  for (size_t j = 0; j < kNumQueries; ++j) {
    best[j] = 64.0 + static_cast<double>(Mix64(rng) % 1024) / 8.0;
    freq[j] = 1.0 + static_cast<double>(Mix64(rng) % 32);
  }
  for (size_t t = 0; t < kBlock; ++t) {
    // Costs straddle the best[] range -> gain signs flip unpredictably.
    costs[t] = static_cast<double>(Mix64(rng) % 2048) / 8.0;
    qids[t] = static_cast<uint32_t>(Mix64(rng) % kNumQueries);
    const uint64_t r = Mix64(rng);
    row[t] = (r & 3u) == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : static_cast<double>(r % 4096) / 16.0;
  }

  SimdResult result;
  result.elements = passes * kBlock;
  const double denom = static_cast<double>(result.elements);
  double sink = 0.0;

  const auto time_leg = [&](auto&& fn) {
    const double start = NowSeconds();
    for (uint64_t p = 0; p < passes; ++p) sink += fn();
    return (NowSeconds() - start) * 1e9 / denom;
  };

  result.benefit_ref_ns = time_leg([&] {
    return BranchyBenefit(costs.data(), qids.data(), best.data(), freq.data(),
                          kBlock);
  });
  result.benefit_simd_ns = time_leg([&] {
    return kernel::simd::ReduceBenefitIndexed(costs.data(), qids.data(),
                                              best.data(), freq.data(),
                                              kBlock);
  });
  {
    kernel::simd::ScopedForceScalar pin(true);
    result.benefit_scalar_ns = time_leg([&] {
      return kernel::simd::ReduceBenefitIndexed(costs.data(), qids.data(),
                                                best.data(), freq.data(),
                                                kBlock);
    });
  }
  result.sum_ref_ns = time_leg([&] { return BranchySum(row.data(), kBlock); });
  result.sum_simd_ns =
      time_leg([&] { return kernel::simd::SumSetSlots(row.data(), kBlock); });
  {
    kernel::simd::ScopedRelaxed relaxed(true);
    result.sum_relaxed_ns =
        time_leg([&] { return kernel::simd::SumSetSlots(row.data(), kBlock); });
  }
  if (sink == -1.0) std::printf("unreachable\n");

  // The exact-mode legs are not just fast, they are the *same number* as
  // the branchy loop — recheck the contract on the bench's own data.
  const double ref =
      BranchyBenefit(costs.data(), qids.data(), best.data(), freq.data(),
                     kBlock);
  const double simd = kernel::simd::ReduceBenefitIndexed(
      costs.data(), qids.data(), best.data(), freq.data(), kBlock);
  if (std::memcmp(&ref, &simd, sizeof ref) != 0) {
    std::fprintf(stderr,
                 "bench_kernel: SIMD exact reduction diverged from the "
                 "serial loop (%.17g vs %.17g)\n",
                 ref, simd);
    std::exit(1);
  }
  return result;
}

// ------------------------------------- QueryMasks allocation accounting

/// QueryMasks construction is allocation-lean by contract (kernel.h): a
/// fixed number of container reservations, never a per-query temporary.
/// Build masks for two workload sizes and compare global-new deltas: the
/// counts must be equal (size-independent) and tiny.
struct MaskAllocResult {
  uint64_t small_allocs = 0;
  uint64_t large_allocs = 0;
  size_t small_queries = 0;
  size_t large_queries = 0;
};

MaskAllocResult QueryMasksAllocMicrobench() {
  const auto measure = [](const workload::Workload& w) {
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    kernel::QueryMasks masks(w);
    const uint64_t after = g_allocations.load(std::memory_order_relaxed);
    // Keep the object alive across the read so nothing is elided.
    if (masks.posting_size(0) == ~size_t{0}) std::printf("unreachable\n");
    return after - before;
  };
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 20;
  params.queries_per_table = 25;
  const workload::Workload small = workload::GenerateScalableWorkload(params);
  params.attributes_per_table = 50;
  params.queries_per_table = 200;
  const workload::Workload large = workload::GenerateScalableWorkload(params);

  MaskAllocResult result;
  result.small_queries = small.num_queries();
  result.large_queries = large.num_queries();
  result.small_allocs = measure(small);
  result.large_allocs = measure(large);
  return result;
}

// --------------------------------------------------- H6 step latency

struct H6Stats {
  std::vector<double> step_ms;  ///< one sample per committed h6.round
  double total_seconds = 0.0;
  uint64_t steps = 0;
  uint64_t whatif_calls = 0;
  uint64_t allocations = 0;        ///< warm reps only
  uint64_t fast_path_hits = 0;
  uint64_t fallback_lookups = 0;
  uint64_t filtered_queries = 0;
};

uint64_t CounterDelta(const obs::RunReport& report, const char* name) {
  const auto it = report.metrics.counters.find(name);
  return it == report.metrics.counters.end() ? 0 : it->second;
}

/// Runs H6 `reps` times on one engine (first rep cold — excluded from the
/// step samples — the rest steady-state warm) and collects per-round span
/// durations, kernel counters, and the allocation tally.
H6Stats RunH6(costmodel::WhatIfEngine& engine, double budget, int reps) {
  H6Stats stats;
  core::RecursiveOptions options;
  options.budget = budget;
  options.threads = 1;
  for (int rep = 0; rep < reps; ++rep) {
    obs::RunScope scope("bench_kernel.h6");
    const uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const double start = NowSeconds();
    const core::RecursiveResult r = core::SelectRecursive(engine, options);
    const double elapsed = NowSeconds() - start;
    const uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    const obs::RunReport report = scope.Finish();
    if (rep == 0) {
      stats.steps = r.trace.size();
      stats.whatif_calls = r.whatif_calls;
      stats.fast_path_hits =
          CounterDelta(report, "idxsel.kernel.fast_path_hits");
      stats.fallback_lookups =
          CounterDelta(report, "idxsel.kernel.fallback_lookups");
      stats.filtered_queries =
          CounterDelta(report, "idxsel.kernel.filtered_queries");
      continue;  // cold run: arena interning + backend pricing, not steady
    }
    stats.total_seconds += elapsed;
    stats.allocations += allocs;
    for (const obs::SpanRecord& span : report.spans) {
      if (std::strcmp(span.name, "h6.round") == 0) {
        stats.step_ms.push_back(static_cast<double>(span.duration_ns) / 1e6);
      }
    }
  }
  return stats;
}

// --------------------------------------------------------------- report

std::string JsonDocument(const workload::Workload& w, double budget_w,
                         const LookupResult& lookup, const H6Stats& kernel,
                         const H6Stats& legacy, const SimdResult& simd,
                         const MaskAllocResult& mask_allocs) {
  const double steps_per_rep =
      kernel.step_ms.empty() ? 0.0 : static_cast<double>(kernel.step_ms.size());
  const double legacy_steps_per_rep =
      legacy.step_ms.empty() ? 0.0 : static_cast<double>(legacy.step_ms.size());
  char buf[2048];
  std::string out = "{\n" + SidecarHeaderJson("idxsel.bench_kernel.v1");
  std::snprintf(buf, sizeof buf,
                "  \"workload\": {\"tables\": 2, \"attributes\": %zu, "
                "\"queries\": %zu, \"budget_w\": %.2f},\n",
                w.num_attributes(), w.num_queries(), budget_w);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"lookup\": {\"lookups\": %llu, \"legacy_ns\": %.1f, "
      "\"dense_ns\": %.1f, \"speedup\": %.2f},\n",
      static_cast<unsigned long long>(lookup.lookups), lookup.legacy_ns,
      lookup.dense_ns,
      lookup.dense_ns > 0.0 ? lookup.legacy_ns / lookup.dense_ns : 0.0);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"posting_filter\": {\"fast_path_hits\": %llu, "
      "\"fallback_lookups\": %llu, \"filtered_queries\": %llu, "
      "\"filter_rate\": %.4f},\n",
      static_cast<unsigned long long>(kernel.fast_path_hits),
      static_cast<unsigned long long>(kernel.fallback_lookups),
      static_cast<unsigned long long>(kernel.filtered_queries),
      kernel.fast_path_hits + kernel.fallback_lookups +
                  kernel.filtered_queries >
              0
          ? static_cast<double>(kernel.filtered_queries) /
                static_cast<double>(kernel.fast_path_hits +
                                    kernel.fallback_lookups +
                                    kernel.filtered_queries)
          : 0.0);
  out += buf;
  const auto h6_block = [&](const char* key, const H6Stats& s,
                            double per_rep) {
    std::snprintf(
        buf, sizeof buf,
        "  \"%s\": {\"steps\": %llu, \"whatif_calls\": %llu, "
        "\"step_samples\": %zu, \"step_p50_ms\": %.4f, "
        "\"step_p95_ms\": %.4f, \"step_mean_ms\": %.4f, "
        "\"allocations_per_step\": %.1f},\n",
        key, static_cast<unsigned long long>(s.steps),
        static_cast<unsigned long long>(s.whatif_calls), s.step_ms.size(),
        Percentile(s.step_ms, 0.50), Percentile(s.step_ms, 0.95),
        Mean(s.step_ms),
        per_rep > 0.0 ? static_cast<double>(s.allocations) / per_rep : 0.0);
    out += buf;
  };
  h6_block("h6_kernel", kernel, steps_per_rep);
  h6_block("h6_legacy", legacy, legacy_steps_per_rep);
  std::snprintf(
      buf, sizeof buf,
      "  \"simd\": {\"level\": \"%s\", \"elements\": %llu, "
      "\"benefit_ref_ns\": %.2f, \"benefit_simd_ns\": %.2f, "
      "\"benefit_scalar_ns\": %.2f, \"benefit_speedup\": %.2f, "
      "\"sum_ref_ns\": %.2f, \"sum_simd_ns\": %.2f, "
      "\"sum_relaxed_ns\": %.2f, \"sum_speedup\": %.2f},\n",
      kernel::simd::LevelName(kernel::simd::ActiveLevel()),
      static_cast<unsigned long long>(simd.elements), simd.benefit_ref_ns,
      simd.benefit_simd_ns, simd.benefit_scalar_ns,
      simd.benefit_simd_ns > 0.0 ? simd.benefit_ref_ns / simd.benefit_simd_ns
                                 : 0.0,
      simd.sum_ref_ns, simd.sum_simd_ns, simd.sum_relaxed_ns,
      simd.sum_simd_ns > 0.0 ? simd.sum_ref_ns / simd.sum_simd_ns : 0.0);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"querymasks\": {\"small_queries\": %zu, \"small_allocs\": %llu, "
      "\"large_queries\": %zu, \"large_allocs\": %llu},\n",
      mask_allocs.small_queries,
      static_cast<unsigned long long>(mask_allocs.small_allocs),
      mask_allocs.large_queries,
      static_cast<unsigned long long>(mask_allocs.large_allocs));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  \"speedup\": {\"p50\": %.2f, \"p95\": %.2f, "
                "\"mean\": %.2f}\n}\n",
                Percentile(kernel.step_ms, 0.50) > 0.0
                    ? Percentile(legacy.step_ms, 0.50) /
                          Percentile(kernel.step_ms, 0.50)
                    : 0.0,
                Percentile(kernel.step_ms, 0.95) > 0.0
                    ? Percentile(legacy.step_ms, 0.95) /
                          Percentile(kernel.step_ms, 0.95)
                    : 0.0,
                Mean(kernel.step_ms) > 0.0
                    ? Mean(legacy.step_ms) / Mean(kernel.step_ms)
                    : 0.0);
  out += buf;
  return out;
}

void WriteJson(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernel: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("results written to %s\n", path.c_str());
}

void Run() {
  const int reps = FullMode() ? 9 : 5;
  const uint64_t target_lookups = FullMode() ? 8'000'000 : 2'000'000;
  const double budget_w = 0.5;  // deep enough to commit append (morph) steps

  workload::Workload w = Fig6Workload();
  std::printf(
      "Kernel ablation on the Fig. 6 workload: N=%zu, Q=%zu, w=%.2f, "
      "%d reps (first cold, excluded).\n\n",
      w.num_attributes(), w.num_queries(), budget_w, reps);

  // Interned vs hashed lookups (one warm engine, kernel on).
  kernel::ScopedKernelEnabled enable(true);
  ModelSetup lookup_setup(w);
  const LookupResult lookup =
      LookupMicrobench(*lookup_setup.engine, w, target_lookups);
  std::printf(
      "warm cost lookups (%llu): hashed cache %.1f ns, dense table %.1f "
      "ns  -> %.2fx\n\n",
      static_cast<unsigned long long>(lookup.lookups), lookup.legacy_ns,
      lookup.dense_ns, lookup.legacy_ns / lookup.dense_ns);

  // H6 step latency, kernel on vs off, each mode on its own engine.
  const costmodel::CostModel model(&w);
  const double budget = model.Budget(budget_w);
  ModelSetup kernel_setup(w);
  const H6Stats kernel_stats = RunH6(*kernel_setup.engine, budget, reps);
  H6Stats legacy_stats;
  {
    kernel::ScopedKernelEnabled disable(false);
    ModelSetup legacy_setup(w);
    legacy_stats = RunH6(*legacy_setup.engine, budget, reps);
  }

  TablePrinter table({"mode", "steps", "what-if calls", "step p50 (ms)",
                      "step p95 (ms)", "step mean (ms)", "allocs/step"});
  const auto add_row = [&](const char* mode, const H6Stats& s) {
    const double per_rep = static_cast<double>(
        std::max<size_t>(1, s.step_ms.size()));
    table.AddRow({mode, FormatCount(static_cast<int64_t>(s.steps)),
                  FormatCount(static_cast<int64_t>(s.whatif_calls)),
                  FormatDouble(Percentile(s.step_ms, 0.50), 4),
                  FormatDouble(Percentile(s.step_ms, 0.95), 4),
                  FormatDouble(Mean(s.step_ms), 4),
                  FormatDouble(static_cast<double>(s.allocations) / per_rep,
                               1)});
  };
  add_row("kernel", kernel_stats);
  add_row("legacy", legacy_stats);
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "posting-list filter: %llu fast-path hits, %llu fallback lookups, "
      "%llu queries mask-filtered per run\n",
      static_cast<unsigned long long>(kernel_stats.fast_path_hits),
      static_cast<unsigned long long>(kernel_stats.fallback_lookups),
      static_cast<unsigned long long>(kernel_stats.filtered_queries));
  std::printf(
      "speedup (legacy/kernel): p50 %.2fx, mean %.2fx  (target: >= 2x)\n\n",
      Percentile(legacy_stats.step_ms, 0.50) /
          Percentile(kernel_stats.step_ms, 0.50),
      Mean(legacy_stats.step_ms) / Mean(kernel_stats.step_ms));

  // SIMD cost-reduction leg: dispatched vector reduction vs the branchy
  // serial loop it replaced, on mispredict-hostile data.
  const SimdResult simd = SimdMicrobench();
  const double benefit_speedup = simd.benefit_simd_ns > 0.0
                                     ? simd.benefit_ref_ns /
                                           simd.benefit_simd_ns
                                     : 0.0;
  const double sum_speedup =
      simd.sum_simd_ns > 0.0 ? simd.sum_ref_ns / simd.sum_simd_ns : 0.0;
  std::printf(
      "simd cost reduction (%s, %llu elems): benefit %.2f -> %.2f ns/elem "
      "(%.2fx, scalar template %.2f), row sum %.2f -> %.2f ns/elem "
      "(%.2fx, relaxed %.2f)\n",
      kernel::simd::LevelName(kernel::simd::ActiveLevel()),
      static_cast<unsigned long long>(simd.elements), simd.benefit_ref_ns,
      simd.benefit_simd_ns, benefit_speedup, simd.benefit_scalar_ns,
      simd.sum_ref_ns, simd.sum_simd_ns, sum_speedup, simd.sum_relaxed_ns);

  // QueryMasks allocation contract: fixed reservation count, independent
  // of workload size.
  const MaskAllocResult mask_allocs = QueryMasksAllocMicrobench();
  std::printf(
      "querymasks construction: %llu allocs @ %zu queries, %llu allocs @ "
      "%zu queries (contract: equal and tiny)\n\n",
      static_cast<unsigned long long>(mask_allocs.small_allocs),
      mask_allocs.small_queries,
      static_cast<unsigned long long>(mask_allocs.large_allocs),
      mask_allocs.large_queries);

  if (AssertMode()) {
    if (kernel::simd::ActiveLevel() == kernel::simd::Level::kAvx2 &&
        benefit_speedup < 2.0) {
      std::fprintf(stderr,
                   "bench_kernel: FAIL simd benefit reduction %.2fx < 2x "
                   "over the scalar dense cost-reduction path\n",
                   benefit_speedup);
      std::exit(1);
    }
    if (mask_allocs.small_allocs != mask_allocs.large_allocs ||
        mask_allocs.small_allocs > 8) {
      std::fprintf(stderr,
                   "bench_kernel: FAIL QueryMasks allocations not "
                   "size-independent (%llu vs %llu) or not tiny — a "
                   "per-query temporary crept back into construction\n",
                   static_cast<unsigned long long>(mask_allocs.small_allocs),
                   static_cast<unsigned long long>(mask_allocs.large_allocs));
      std::exit(1);
    }
  }

  const std::string json = JsonDocument(w, budget_w, lookup, kernel_stats,
                                        legacy_stats, simd, mask_allocs);
  WriteJson("bench_kernel.json", json);
  WriteJson("BENCH_kernel.json", json);
}

#else  // !defined(IDXSEL_KERNEL)

void Run() {
  std::printf(
      "bench_kernel: built with -DIDXSEL_ENABLE_KERNEL=OFF; the dense "
      "evaluation path is compiled out, nothing to compare.\n");
}

#endif  // IDXSEL_KERNEL

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("bench_kernel");
  idxsel::bench::Run();
  return 0;
}
