// Ablation — reconfiguration costs (eq. 3's R term): after the workload
// shifts, re-running selection from scratch churns the physical design;
// with R in the step criterion, Algorithm 1 keeps pre-existing indexes
// unless new ones pay for their build cost.

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "costmodel/reconfiguration.h"

namespace idxsel::bench {
namespace {

size_t CountRetained(const costmodel::IndexConfig& next,
                     const costmodel::IndexConfig& previous) {
  size_t retained = 0;
  for (const costmodel::Index& k : next.indexes()) {
    retained += previous.Contains(k);
  }
  return retained;
}

void Run() {
  // Phase 1: select for the original workload.
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = 50;
  ModelSetup original(workload::GenerateScalableWorkload(params));
  core::RecursiveOptions phase1;
  phase1.budget = original.model->Budget(0.15);
  const core::RecursiveResult initial =
      core::SelectRecursive(*original.engine, phase1);

  // Phase 2: the workload drifts (new query mix, same schema).
  params.seed += 1;
  ModelSetup shifted(workload::GenerateScalableWorkload(params));
  const double budget = shifted.model->Budget(0.15);
  const double base = shifted.engine->WorkloadCost(costmodel::IndexConfig{});

  std::printf(
      "Reconfiguration study: workload drift with an existing selection of\n"
      "%zu indexes; budget w=0.15.\n\n",
      initial.selection.size());

  TablePrinter table({"create-factor", "rel. cost F", "R (rebuild bytes x f)",
                      "indexes", "retained from old"});
  for (double factor : {0.0, 1.0, 100.0, 1e4, 1e6}) {
    costmodel::ReconfigurationParams rparams;
    rparams.create_factor = factor;
    const costmodel::ReconfigurationModel reconfig(shifted.engine.get(),
                                                   rparams);
    core::RecursiveOptions options;
    options.budget = budget;
    options.existing = &initial.selection;
    options.reconfiguration = &reconfig;
    const core::RecursiveResult r =
        core::SelectRecursive(*shifted.engine, options);
    const double rebuild = reconfig.Cost(r.selection, initial.selection);
    table.AddRow({FormatDouble(factor, 1),
                  FormatDouble(r.objective / base, 4),
                  FormatBytes(rebuild),
                  std::to_string(r.selection.size()),
                  std::to_string(CountRetained(r.selection,
                                               initial.selection))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: as index creation gets more expensive, the selector retains\n"
      "more of the existing configuration and accepts a slightly worse F —\n"
      "the scan-cost/reconfiguration trade-off of eq. (3).\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("reconfiguration");
  idxsel::bench::Run();
  return 0;
}
