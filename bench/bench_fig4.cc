// Figure 4 — ERP-system example: H6 vs CoPhy with H1-M candidate sets of
// |I| = 100, 1000, IC_max on the synthetic ERP workload (500 tables,
// N = 4204 attributes, Q = 2271 templates — the paper's published
// dimensions); w in [0, 0.1].
//
// Substitution note: the paper uses a proprietary Fortune-500 workload; we
// generate an ERP-like workload matching its aggregate statistics (see
// DESIGN.md).

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "workload/erp_generator.h"

namespace idxsel::bench {
namespace {

void Run() {
  ModelSetup setup(workload::GenerateErpWorkload({}));
  std::printf(
      "Figure 4: ERP workload, relative cost vs budget w in [0, 0.1];\n"
      "T=%zu, N=%zu, Q=%zu, total executions %.0f.\n\n",
      setup.w.num_tables(), setup.w.num_attributes(), setup.w.num_queries(),
      setup.w.total_frequency());

  const candidates::CandidateSet all =
      candidates::EnumerateAllCandidates(setup.w, 4);
  const candidates::CandidateSet small = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH1M, 100, 4);
  const candidates::CandidateSet medium = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH1M, 1000, 4);
  std::printf("|IC_max| = %zu (paper: 9912)\n\n", all.size());

  const std::vector<double> grid =
      frontier::BudgetGrid(0.0, 0.1, FullMode() ? 9 : 5);
  const double total = setup.model->TotalSingleAttributeMemory();

  std::vector<frontier::FrontierSeries> series;
  Stopwatch h6_watch;
  series.push_back(frontier::SweepStrategy(*setup.engine, total, grid, "H6",
                                           H6Strategy(*setup.engine)));
  const double h6_seconds = h6_watch.ElapsedSeconds() / grid.size();
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H1-M(100)",
      CophyStrategy(*setup.engine, small)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H1-M(1000)",
      CophyStrategy(*setup.engine, medium)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+IC_max",
      CophyStrategy(*setup.engine, all)));

  for (frontier::FrontierSeries& s : series) {
    frontier::NormalizeCosts(*setup.engine, &s);
  }
  std::printf("%s\n", frontier::RenderSeriesTable(series).c_str());
  const Status csv = frontier::WriteSeriesCsv(series, "fig4.csv");
  std::printf("series written to fig4.csv (%s)\n", csv.ToString().c_str());
  std::printf("mean H6 runtime per budget: %s (paper: ~0.5 s)\n\n",
              FormatSeconds(h6_seconds).c_str());
  std::printf(
      "Expected shape (paper): H6 outperforms CoPhy with reduced candidate\n"
      "sets; small sets degrade badly because ERP attributes interact.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("fig4");
  idxsel::bench::Run();
  return 0;
}
