// Shared plumbing for the paper-reproduction bench harnesses.
//
// Environment knobs (so `for b in build/bench/*; do $b; done` stays fast by
// default but can reproduce the paper's full scale):
//   IDXSEL_BENCH_FULL=1         run the full problem sizes of the paper
//   IDXSEL_BENCH_TIME_LIMIT=s   CoPhy solver wall-clock limit per solve
//                               (default 5 s quick / 60 s full; the paper
//                               used an 8-hour cutoff -> "DNF")
//   IDXSEL_OBS=0                keep observability off (benches enable it
//                               by default and write metrics/trace JSON
//                               sidecars next to their CSVs)

#ifndef IDXSEL_BENCH_BENCH_COMMON_H_
#define IDXSEL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "frontier/frontier.h"
#include "obs/obs.h"
#include "selection/heuristics.h"
#include "workload/scalable_generator.h"

namespace idxsel::bench {

inline bool FullMode() {
  const char* v = std::getenv("IDXSEL_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline double CophyTimeLimit() {
  if (const char* v = std::getenv("IDXSEL_BENCH_TIME_LIMIT")) {
    return std::atof(v);
  }
  return FullMode() ? 60.0 : 5.0;
}

// ---------------------------------------------------- sidecar provenance
// Every bench JSON sidecar carries the same header so two runs can be
// compared with their context attached: the schema tag of the document,
// plus a provenance object with the git SHA and build type baked in at
// configure time (benches.cmake) and the machine's hardware concurrency.

#if !defined(IDXSEL_GIT_SHA)
#define IDXSEL_GIT_SHA "unknown"
#endif
#if !defined(IDXSEL_BUILD_TYPE)
#define IDXSEL_BUILD_TYPE "unspecified"
#endif

/// The shared provenance fragment: `"provenance": {...}` (no trailing
/// comma or newline — callers splice it where their document needs it).
inline std::string SidecarProvenanceJson() {
  return std::string("\"provenance\": {\"git_sha\": \"" IDXSEL_GIT_SHA
                     "\", \"build_type\": \"" IDXSEL_BUILD_TYPE
                     "\", \"hardware_concurrency\": ") +
         std::to_string(std::thread::hardware_concurrency()) + "}";
}

/// Opening fields of a custom sidecar document:
/// `  "schema": "<schema>",\n  "provenance": {...},\n`.
inline std::string SidecarHeaderJson(const char* schema) {
  return std::string("  \"schema\": \"") + schema + "\",\n  " +
         SidecarProvenanceJson() + ",\n";
}

/// Splices the provenance fragment right after the opening `{` of a
/// document that already carries its own schema field (the RunReport
/// sidecars of ObsSession). Returns the body unchanged when it is not a
/// JSON object.
inline std::string WithSidecarProvenance(std::string body) {
  const size_t brace = body.find('{');
  if (brace == std::string::npos) return body;
  return body.substr(0, brace + 1) + "\n  " + SidecarProvenanceJson() + "," +
         body.substr(brace + 1);
}

/// Brackets a bench binary with observability: enables obs (unless the
/// IDXSEL_OBS environment variable says otherwise) and, on destruction,
/// writes `<stem>.metrics.json` and `<stem>.trace.json` into the working
/// directory — the self-describing sidecars next to the bench's CSVs.
class ObsSession {
 public:
  explicit ObsSession(std::string stem)
      : stem_(std::move(stem)), scope_(stem_) {
    if (std::getenv("IDXSEL_OBS") == nullptr) obs::SetEnabled(true);
  }

  ~ObsSession() {
    const obs::RunReport report = scope_.Finish();
    WriteFile(stem_ + ".metrics.json",
              WithSidecarProvenance(report.MetricsJson()));
    WriteFile(stem_ + ".trace.json",
              WithSidecarProvenance(report.TraceJson()));
    std::printf(
        "observability: %s.metrics.json + %s.trace.json written "
        "(load the trace via chrome://tracing or ui.perfetto.dev)\n",
        stem_.c_str(), stem_.c_str());
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  static void WriteFile(const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "observability: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }

  std::string stem_;
  obs::RunScope scope_;
};

/// Workload + Appendix-B model + caching what-if engine, bundled.
struct ModelSetup {
  workload::Workload w;
  std::unique_ptr<costmodel::CostModel> model;
  std::unique_ptr<costmodel::ModelBackend> backend;
  std::unique_ptr<costmodel::WhatIfEngine> engine;

  explicit ModelSetup(workload::Workload workload_in)
      : w(std::move(workload_in)) {
    model = std::make_unique<costmodel::CostModel>(&w);
    backend = std::make_unique<costmodel::ModelBackend>(model.get());
    engine = std::make_unique<costmodel::WhatIfEngine>(&w, backend.get());
  }
};

/// H6 as a frontier::Strategy.
inline frontier::Strategy H6Strategy(costmodel::WhatIfEngine& engine) {
  return [&engine](double budget) {
    core::RecursiveOptions options;
    options.budget = budget;
    frontier::StrategyOutcome outcome;
    outcome.selection = core::SelectRecursive(engine, options).selection;
    return outcome;
  };
}

/// CoPhy on a fixed candidate set as a frontier::Strategy (mipgap 5%,
/// time-limited; timeouts surface as DNF points carrying the incumbent).
/// The problem is built once and re-solved per budget (PreparedCophy).
inline frontier::Strategy CophyStrategy(
    costmodel::WhatIfEngine& engine,
    const candidates::CandidateSet& candidate_set) {
  auto prepared =
      std::make_shared<cophy::PreparedCophy>(engine, candidate_set);
  return [prepared](double budget) {
    mip::SolveOptions options;
    options.mip_gap = 0.05;
    options.time_limit_seconds = CophyTimeLimit();
    const cophy::CophyResult result = prepared->Solve(budget, options);
    frontier::StrategyOutcome outcome;
    outcome.selection = result.selection;
    outcome.dnf = result.dnf;
    return outcome;
  };
}

}  // namespace idxsel::bench

#endif  // IDXSEL_BENCH_BENCH_COMMON_H_
