// Ablation — the Remark-1 extensions of Algorithm 1:
//   (1) n-best single-attribute acceleration,
//   (2) pruning of unused indexes,
//   (4) attribute-pair construction steps,
// each compared against the plain algorithm on the Example-1 workload
// (quality, runtime, steps, what-if calls).

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"

namespace idxsel::bench {
namespace {

struct Variant {
  const char* name;
  core::RecursiveOptions options;
};

void Run() {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = FullMode() ? 200 : 50;
  ModelSetup setup(workload::GenerateScalableWorkload(params));
  const double budget = setup.model->Budget(0.2);
  const double base_cost =
      setup.engine->WorkloadCost(costmodel::IndexConfig{});

  std::printf(
      "Remark-1 ablations on Example 1 (N=%zu, Q=%zu, w=0.2).\n\n",
      setup.w.num_attributes(), setup.w.num_queries());

  std::vector<Variant> variants;
  {
    Variant v{"plain (H6)", {}};
    v.options.budget = budget;
    variants.push_back(v);
  }
  for (size_t n : {10u, 25u, 50u}) {
    Variant v{nullptr, {}};
    static std::vector<std::string> labels;
    labels.push_back("n-best singles n=" + std::to_string(n));
    v.name = labels.back().c_str();
    v.options.budget = budget;
    v.options.n_best_singles = n;
    variants.push_back(v);
  }
  {
    Variant v{"prune unused", {}};
    v.options.budget = budget;
    v.options.prune_unused = true;
    variants.push_back(v);
  }
  {
    Variant v{"pair steps", {}};
    v.options.budget = budget;
    v.options.pair_steps = true;
    variants.push_back(v);
  }
  {
    Variant v{"max width 2", {}};
    v.options.budget = budget;
    v.options.max_index_width = 2;
    variants.push_back(v);
  }
  {
    Variant v{"multi-index eval (Remark 2)", {}};
    v.options.budget = budget;
    v.options.multi_index_eval = true;
    variants.push_back(v);
  }
  {
    Variant v{"swap repair", {}};
    v.options.budget = budget;
    v.options.swap_repair = true;
    variants.push_back(v);
  }

  TablePrinter table({"variant", "rel. cost", "steps", "indexes", "runtime",
                      "what-if calls"});
  for (const Variant& variant : variants) {
    costmodel::WhatIfEngine engine(&setup.w, setup.backend.get());
    Stopwatch watch;
    const core::RecursiveResult r =
        core::SelectRecursive(engine, variant.options);
    table.AddRow({variant.name, FormatDouble(r.objective / base_cost, 4),
                  std::to_string(r.trace.size()),
                  std::to_string(r.selection.size()),
                  FormatSeconds(watch.ElapsedSeconds()),
                  FormatCount(static_cast<int64_t>(r.whatif_calls))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: n-best trades a little quality for fewer evaluations;\n"
      "pruning frees memory (never worse); pair steps can escape local\n"
      "choices at extra evaluation cost; width caps hurt wide queries.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("extensions");
  idxsel::bench::Run();
  return 0;
}
