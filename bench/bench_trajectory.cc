// Tracked perf trajectory — the repo's PR-over-PR regression instrument.
//
// Runs H6, the advisor portfolio, and a serve-layer cold-vs-incremental
// round over a ladder of (N, Q) scale points and records, per point, the
// deterministic work metrics (committed steps, what-if calls, race
// winner, serve call counts) next to the timing-dependent ones
// (steps/sec, wall seconds, allocations/step from a global operator-new
// tally) plus the process peak RSS (obs::ResourceSampler / getrusage).
// A second, 100x-scale ladder (T in {1k, 10k, 50k} tables) drives the
// sharded advisor path (idxsel::shard, doc/sharding.md) next to the
// classic unsharded one and records the `shard` group: shards used,
// arbiter rounds, compression ratio, and wall seconds per leg.
//
// Emits `bench_trajectory.json` (sidecar) and `BENCH_trajectory.json`
// (same document; run the binary from the repo root to refresh the
// committed baseline) with schema idxsel.bench_trajectory.v1. CI's
// perf-smoke job replays this bench and gates the diff with
// `idxsel_report check-trajectory`: deterministic fields must match the
// baseline exactly; steps/sec may not drop more than 20% and peak RSS
// may not grow more than 15%. See doc/observability.md ("Perf
// trajectory").

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "bench_common.h"
#include "common/format.h"
#include "kernel/kernel.h"
#include "kernel/simd.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "serve/service.h"
#include "shard/sharded_selector.h"

// ------------------------------------------------- allocation accounting

// The replacement operators below pair new->malloc with delete->free by
// construction; GCC's heuristic cannot see through the odr-replacement
// and reports a mismatch at inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace idxsel::bench {
namespace {

using Clock = std::chrono::steady_clock;

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

struct ScalePoint {
  size_t attributes_per_table;
  size_t queries_per_table;
};

struct H6Point {
  uint64_t steps = 0;         ///< committed rounds (deterministic)
  uint64_t whatif_calls = 0;  ///< engine calls, serial run (deterministic)
  double seconds = 0.0;       ///< warm-rep mean wall seconds
  double steps_per_sec = 0.0;
  double allocations_per_step = 0.0;
};

struct PortfolioPoint {
  std::string winner;         ///< executed strategy key (deterministic)
  uint64_t whatif_calls = 0;  ///< serial run (deterministic)
  double seconds = 0.0;
};

struct ServePoint {
  uint64_t cold_whatif_calls = 0;         ///< first commit (deterministic)
  uint64_t incremental_whatif_calls = 0;  ///< post-shift round (deterministic)
  /// Committed epoch after the shift (deterministic; expected 2). The
  /// incremental call count is often 0 — every (query, index) pair was
  /// priced in the cold round — so this is what distinguishes "answered
  /// from cache" from "never re-selected".
  uint64_t epoch = 0;
  double seconds = 0.0;  ///< incremental pump wall seconds
};

struct KernelSimdPoint {
  uint64_t fast_path_hits = 0;    ///< dense-row resolutions (deterministic)
  uint64_t fallback_lookups = 0;  ///< keyed-cache demotions (deterministic)
  uint64_t filtered_queries = 0;  ///< mask-filtered slots (deterministic)
  /// 1 iff a forced-scalar rerun reproduced the native-dispatch run
  /// exactly (steps, what-if calls, final objective) — the trajectory's
  /// standing record that the SIMD layer stayed bit-identical.
  uint64_t dispatch_identical = 1;
};

struct TrajectoryPoint {
  size_t n = 0;
  size_t q = 0;
  H6Point h6;
  PortfolioPoint portfolio;
  ServePoint serve;
  KernelSimdPoint kernel_simd;
  uint64_t peak_rss_kb = 0;  ///< process high-water after this point
};

/// Serial H6 at budget w: first rep cold (excluded from timing), the rest
/// steady-state warm. threads=1 keeps whatif_calls deterministic.
H6Point RunH6(costmodel::WhatIfEngine& engine, double budget, int reps) {
  H6Point point;
  core::RecursiveOptions options;
  options.budget = budget;
  options.threads = 1;
  double total_seconds = 0.0;
  uint64_t total_allocations = 0;
  int warm_reps = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const double start = NowSeconds();
    const core::RecursiveResult r = core::SelectRecursive(engine, options);
    const double elapsed = NowSeconds() - start;
    if (rep == 0) {
      point.steps = r.trace.size();
      point.whatif_calls = r.whatif_calls;
      continue;  // cold: interning + backend pricing, not steady state
    }
    total_seconds += elapsed;
    total_allocations +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    ++warm_reps;
  }
  if (warm_reps > 0) {
    point.seconds = total_seconds / warm_reps;
    const double steps = static_cast<double>(point.steps);
    point.steps_per_sec = point.seconds > 0.0 ? steps / point.seconds : 0.0;
    point.allocations_per_step =
        steps > 0.0 ? static_cast<double>(total_allocations) /
                          (steps * static_cast<double>(warm_reps))
                    : 0.0;
  }
  return point;
}

/// Serial portfolio race (H6 primary vs H4/H5) on a fresh engine so each
/// point's what-if accounting starts from zero.
PortfolioPoint RunPortfolio(const workload::Workload& w, double budget) {
  ModelSetup setup(w);
  advisor::AdvisorOptions options;
  options.strategy = advisor::StrategyKind::kRecursive;
  options.portfolio = {advisor::StrategyKind::kH4,
                       advisor::StrategyKind::kH5};
  options.candidate_limit = 200;
  options.budget_bytes = budget;
  options.threads = 1;
  PortfolioPoint point;
  const double start = NowSeconds();
  const auto rec = advisor::Recommend(*setup.engine, options);
  point.seconds = NowSeconds() - start;
  if (rec.ok()) {
    point.winner = advisor::StrategyKey(rec->executed_strategy);
    point.whatif_calls = rec->whatif_calls;
  } else {
    point.winner = "error";
  }
  return point;
}

/// Serve layer: one in-memory AdvisorService per point — a cold first
/// commit, then a single-template frequency shift re-selected on the
/// warm engine. Both call counts are deterministic (threads=1); CI gates
/// them exactly and the incremental count staying below the cold one is
/// the serve layer's standing regression check (bench_serve drills in).
ServePoint RunServe(const workload::Workload& w, double budget) {
  ServePoint point;
  workload::NamedWorkload base;
  base.attribute_names.reserve(w.num_attributes());
  for (workload::AttributeId i = 0;
       i < static_cast<workload::AttributeId>(w.num_attributes()); ++i) {
    const workload::AttributeStats& a = w.attribute(i);
    base.attribute_names.push_back(w.table(a.table).name + ".a" +
                                   std::to_string(a.ordinal));
  }
  base.workload = w;

  serve::ServiceOptions options;
  options.advisor.threads = 1;
  options.advisor.budget_bytes = budget;
  options.hooks.sleep = [](double) {};
  auto service = serve::AdvisorService::Start(
      base, serve::MakeModelBackendFactory(), options);
  if (!service.ok()) return point;
  const auto boot = (*service)->Pump();
  if (!boot.ok()) return point;
  point.cold_whatif_calls = boot->whatif_calls;

  const workload::Query& hottest = w.query(0);
  serve::WorkloadDelta shift;
  shift.kind = serve::DeltaKind::kFrequencyShift;
  shift.table = hottest.table;
  shift.attributes = hottest.attributes;
  shift.frequency = hottest.frequency * 3.0;
  if (!(*service)->Submit(shift).ok()) return point;
  const double start = NowSeconds();
  const auto incremental = (*service)->Pump();
  point.seconds = NowSeconds() - start;
  if (incremental.ok() && incremental->committed) {
    point.incremental_whatif_calls = incremental->whatif_calls;
    point.epoch = incremental->epoch;
  }
  return point;
}

/// One serial kernel-on H6 per dispatch pin (native, then forced
/// scalar), each on a fresh engine: records the kernel counters of the
/// native run and whether the scalar rerun was work-identical. All four
/// fields are deterministic, so check-trajectory gates them exactly.
KernelSimdPoint RunKernelSimd(const workload::Workload& w, double budget) {
  KernelSimdPoint point;
  core::RecursiveOptions options;
  options.budget = budget;
  options.threads = 1;
  struct Signature {
    size_t steps = 0;
    uint64_t whatif_calls = 0;
    double objective = 0.0;
  } sig[2];
  for (int pin = 0; pin < 2; ++pin) {
    kernel::ScopedKernelEnabled kernel_on(true);
    kernel::simd::ScopedForceScalar scalar(pin == 1);
    ModelSetup setup(w);
    obs::RunScope scope("bench_trajectory.kernel_simd");
    const core::RecursiveResult r = core::SelectRecursive(*setup.engine,
                                                          options);
    const obs::RunReport report = scope.Finish();
    sig[pin].steps = r.trace.size();
    sig[pin].whatif_calls = r.whatif_calls;
    sig[pin].objective =
        r.trace.empty() ? 0.0 : r.trace.back().objective_after;
    if (pin == 0) {
      const auto counter = [&](const char* name) -> uint64_t {
        const auto it = report.metrics.counters.find(name);
        return it == report.metrics.counters.end() ? 0 : it->second;
      };
      point.fast_path_hits = counter("idxsel.kernel.fast_path_hits");
      point.fallback_lookups = counter("idxsel.kernel.fallback_lookups");
      point.filtered_queries = counter("idxsel.kernel.filtered_queries");
    }
  }
  point.dispatch_identical =
      (sig[0].steps == sig[1].steps &&
       sig[0].whatif_calls == sig[1].whatif_calls &&
       sig[0].objective == sig[1].objective)
          ? 1
          : 0;
  return point;
}

// ------------------------------------------------------ sharded ladder

/// One 100x-scale rung: T tables through the sharded advisor path
/// (idxsel::shard, doc/sharding.md), optionally next to the classic
/// unsharded path on the same workload for the wall-clock comparison.
struct ShardScale {
  size_t tables;
  size_t attributes_per_table;
  size_t queries_per_table;
  bool unsharded_leg;  ///< false once the unsharded path stops being CI-feasible
};

struct ShardPoint {
  size_t tables = 0;
  size_t templates = 0;
  // Deterministic work metrics (gated exactly by check-trajectory).
  uint64_t shards = 0;              ///< shards the arbiter drove
  uint64_t arbiter_rounds = 0;      ///< global commit rounds
  uint64_t steps = 0;               ///< committed construction steps
  uint64_t whatif_calls = 0;        ///< advisor-level calls, sharded leg
  uint64_t queries_full = 0;        ///< templates before compression
  uint64_t queries_compressed = 0;  ///< templates the shards actually priced
  // Timing-dependent (reported, not gated).
  double compression_ratio = 1.0;  ///< compressed / full (derived)
  double sharded_seconds = 0.0;
  double unsharded_seconds = 0.0;  ///< 0 when the leg was skipped
  double speedup = 0.0;            ///< unsharded / sharded (0 when skipped)
};

/// Runs one rung end-to-end through advisor::Recommend — the same entry
/// point production callers use — with `shards` pinned so the rung does
/// not depend on the auto-shard threshold. Shard-count-dependent work
/// numbers are read back from the idxsel.shard.* telemetry counters via
/// an obs::RunScope, exactly as production telemetry would see them.
/// threads=0 lets both legs use every core (exec::ResolveThreads), so the
/// wall-clock comparison is parallel-vs-parallel, not a thread handicap.
ShardPoint RunShard(const ShardScale& scale, double budget_w) {
  ShardPoint point;
  workload::ScalableWorkloadParams params;
  params.num_tables = static_cast<uint32_t>(scale.tables);
  params.attributes_per_table =
      static_cast<uint32_t>(scale.attributes_per_table);
  params.queries_per_table = static_cast<uint32_t>(scale.queries_per_table);
  // Linear row growth reaches 5e10 rows at T=50k; cap per-table size so
  // the cost model stays in its intended regime while T keeps scaling.
  params.rows_per_table_cap = 10'000'000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  point.tables = w.num_tables();
  point.templates = w.num_queries();

  advisor::AdvisorOptions options;
  options.strategy = advisor::StrategyKind::kRecursive;
  options.threads = 0;  // auto
  options.recursive.max_steps = 200;
  {
    const costmodel::CostModel model(&w);
    options.budget_bytes = model.Budget(budget_w);
  }

  {  // Sharded leg: pinned shard count, dedup compression.
    options.shards = 64;
    options.shard_compression.mode = workload::CompressionMode::kDedup;
    ModelSetup setup(w);
    obs::RunScope scope("bench_trajectory.shard");
    const double start = NowSeconds();
    const auto rec = advisor::Recommend(*setup.engine, options);
    point.sharded_seconds = NowSeconds() - start;
    const obs::RunReport report = scope.Finish();
    if (rec.ok()) {
      point.steps = rec->trace.size();
      point.whatif_calls = rec->whatif_calls;
    }
    const auto counter = [&](const char* name) -> uint64_t {
      const auto it = report.metrics.counters.find(name);
      return it == report.metrics.counters.end() ? 0 : it->second;
    };
    point.shards = counter("idxsel.shard.shards");
    point.arbiter_rounds = counter("idxsel.shard.arbiter_rounds");
    point.queries_full = w.num_queries();
    // The telemetry counter tallies queries *saved* by compression;
    // report the template count the shards actually priced.
    point.queries_compressed =
        point.queries_full - counter("idxsel.shard.queries_compressed");
    if (point.queries_full > 0) {
      point.compression_ratio =
          static_cast<double>(point.queries_compressed) /
          static_cast<double>(point.queries_full);
    }
  }

  if (scale.unsharded_leg) {  // Classic path, same workload and budget.
    options.shards = 0;
    options.shard_auto_min_tables = std::numeric_limits<size_t>::max();
    ModelSetup setup(w);
    const double start = NowSeconds();
    const auto rec = advisor::Recommend(*setup.engine, options);
    point.unsharded_seconds = NowSeconds() - start;
    (void)rec;
    if (point.sharded_seconds > 0.0) {
      point.speedup = point.unsharded_seconds / point.sharded_seconds;
    }
  }
  return point;
}

std::string JsonDocument(const std::vector<TrajectoryPoint>& points,
                         const std::vector<ShardPoint>& shard_points,
                         double budget_w, int reps, uint64_t peak_rss_kb) {
  char buf[768];
  std::string out = "{\n" + SidecarHeaderJson("idxsel.bench_trajectory.v1");
  std::snprintf(buf, sizeof buf, "  \"budget_w\": %.2f,\n  \"reps\": %d,\n",
                budget_w, reps);
  out += buf;
  out += "  \"points\": [";
  bool first = true;
  for (const TrajectoryPoint& p : points) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "    {\"n\": %zu, \"q\": %zu,\n"
        "     \"h6\": {\"steps\": %llu, \"whatif_calls\": %llu, "
        "\"seconds\": %.6f, \"steps_per_sec\": %.2f, "
        "\"allocations_per_step\": %.1f},\n"
        "     \"portfolio\": {\"winner\": \"%s\", \"whatif_calls\": %llu, "
        "\"seconds\": %.6f},\n"
        "     \"serve\": {\"cold_whatif_calls\": %llu, "
        "\"incremental_whatif_calls\": %llu, \"epoch\": %llu, "
        "\"seconds\": %.6f},\n"
        "     \"kernel_simd\": {\"fast_path_hits\": %llu, "
        "\"fallback_lookups\": %llu, \"filtered_queries\": %llu, "
        "\"dispatch_identical\": %llu},\n"
        "     \"peak_rss_kb\": %llu}",
        p.n, p.q, static_cast<unsigned long long>(p.h6.steps),
        static_cast<unsigned long long>(p.h6.whatif_calls), p.h6.seconds,
        p.h6.steps_per_sec, p.h6.allocations_per_step,
        p.portfolio.winner.c_str(),
        static_cast<unsigned long long>(p.portfolio.whatif_calls),
        p.portfolio.seconds,
        static_cast<unsigned long long>(p.serve.cold_whatif_calls),
        static_cast<unsigned long long>(p.serve.incremental_whatif_calls),
        static_cast<unsigned long long>(p.serve.epoch), p.serve.seconds,
        static_cast<unsigned long long>(p.kernel_simd.fast_path_hits),
        static_cast<unsigned long long>(p.kernel_simd.fallback_lookups),
        static_cast<unsigned long long>(p.kernel_simd.filtered_queries),
        static_cast<unsigned long long>(p.kernel_simd.dispatch_identical),
        static_cast<unsigned long long>(p.peak_rss_kb));
    out += buf;
  }
  out += "\n  ],\n";
  out += "  \"shard_points\": [";
  first = true;
  for (const ShardPoint& p : shard_points) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "    {\"tables\": %zu, \"templates\": %zu,\n"
        "     \"shard\": {\"shards\": %llu, \"arbiter_rounds\": %llu, "
        "\"steps\": %llu, \"whatif_calls\": %llu, "
        "\"queries_full\": %llu, \"queries_compressed\": %llu, "
        "\"compression_ratio\": %.6f,\n"
        "      \"sharded_seconds\": %.6f, \"unsharded_seconds\": %.6f, "
        "\"speedup\": %.3f}}",
        p.tables, p.templates, static_cast<unsigned long long>(p.shards),
        static_cast<unsigned long long>(p.arbiter_rounds),
        static_cast<unsigned long long>(p.steps),
        static_cast<unsigned long long>(p.whatif_calls),
        static_cast<unsigned long long>(p.queries_full),
        static_cast<unsigned long long>(p.queries_compressed),
        p.compression_ratio, p.sharded_seconds, p.unsharded_seconds,
        p.speedup);
    out += buf;
  }
  out += "\n  ],\n";
  std::snprintf(buf, sizeof buf, "  \"peak_rss_kb\": %llu\n}\n",
                static_cast<unsigned long long>(peak_rss_kb));
  out += buf;
  return out;
}

void WriteJson(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_trajectory: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("results written to %s\n", path.c_str());
}

void Run() {
  const int reps = FullMode() ? 7 : 3;
  const double budget_w = 0.5;
  const std::vector<ScalePoint> ladder = FullMode()
      ? std::vector<ScalePoint>{{25, 25}, {50, 50}, {75, 75}, {100, 100}}
      : std::vector<ScalePoint>{{20, 20}, {35, 35}, {50, 50}};

  std::printf(
      "Perf trajectory: H6 + portfolio over %zu (N, Q) scale points, "
      "%d reps each (first cold, excluded).\n\n",
      ladder.size(), reps);

  obs::ResourceSampler sampler;
  std::vector<TrajectoryPoint> points;
  TablePrinter table({"N", "Q", "h6 steps", "what-if calls", "steps/sec",
                      "allocs/step", "race winner", "serve incr/cold",
                      "peak RSS (MB)"});
  for (const ScalePoint& scale : ladder) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = scale.attributes_per_table;
    params.queries_per_table = scale.queries_per_table;
    workload::Workload w = workload::GenerateScalableWorkload(params);

    const costmodel::CostModel model(&w);
    const double budget = model.Budget(budget_w);

    TrajectoryPoint point;
    point.n = w.num_attributes();
    point.q = w.num_queries();
    {
      ModelSetup setup(w);
      point.h6 = RunH6(*setup.engine, budget, reps);
    }
    point.portfolio = RunPortfolio(w, budget);
    point.serve = RunServe(w, budget);
    point.kernel_simd = RunKernelSimd(w, budget);
    point.peak_rss_kb = static_cast<uint64_t>(sampler.Delta().peak_rss_kb);
    points.push_back(point);

    table.AddRow(
        {std::to_string(point.n), std::to_string(point.q),
         FormatCount(static_cast<int64_t>(point.h6.steps)),
         FormatCount(static_cast<int64_t>(point.h6.whatif_calls)),
         FormatDouble(point.h6.steps_per_sec, 1),
         FormatDouble(point.h6.allocations_per_step, 1),
         point.portfolio.winner,
         FormatCount(
             static_cast<int64_t>(point.serve.incremental_whatif_calls)) +
             "/" +
             FormatCount(static_cast<int64_t>(point.serve.cold_whatif_calls)),
         FormatDouble(static_cast<double>(point.peak_rss_kb) / 1024.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // 100x-scale sharded ladder (idxsel::shard). The top rung — 50k tables,
  // 200k templates, full mode only — is the standing proof that the
  // sharded advisor path finishes a 100x-scale workload end-to-end. The
  // unsharded leg rides along while it stays CI-feasible (drop a rung's
  // flag once it is not). Under IDXSEL_BENCH_ASSERT=1 the sharded path
  // must beat the unsharded one wall-clock on every rung that has both
  // legs (T >= 1k).
  std::vector<ShardScale> shard_ladder = {{1000, 8, 5, true},
                                          {10000, 8, 4, true}};
  if (FullMode()) shard_ladder.push_back({50000, 6, 4, true});

  std::printf("Sharded ladder: %zu rungs through the sharded advisor path "
              "(64 shards, dedup compression, auto threads).\n\n",
              shard_ladder.size());
  std::vector<ShardPoint> shard_points;
  TablePrinter shard_table({"tables", "templates", "shards", "rounds",
                            "steps", "what-if calls", "compress",
                            "sharded s", "unsharded s", "speedup"});
  bool assert_failed = false;
  for (const ShardScale& scale : shard_ladder) {
    const ShardPoint point = RunShard(scale, budget_w);
    shard_points.push_back(point);
    shard_table.AddRow(
        {FormatCount(static_cast<int64_t>(point.tables)),
         FormatCount(static_cast<int64_t>(point.templates)),
         std::to_string(point.shards), std::to_string(point.arbiter_rounds),
         std::to_string(point.steps),
         FormatCount(static_cast<int64_t>(point.whatif_calls)),
         FormatDouble(point.compression_ratio, 3),
         FormatDouble(point.sharded_seconds, 3),
         scale.unsharded_leg ? FormatDouble(point.unsharded_seconds, 3) : "-",
         scale.unsharded_leg ? FormatDouble(point.speedup, 2) + "x" : "-"});
    if (scale.unsharded_leg &&
        point.sharded_seconds >= point.unsharded_seconds) {
      assert_failed = true;
      std::fprintf(stderr,
                   "ASSERT shard: sharded %.3fs did not beat unsharded "
                   "%.3fs at T=%zu\n",
                   point.sharded_seconds, point.unsharded_seconds,
                   point.tables);
    }
  }
  std::printf("%s\n", shard_table.ToString().c_str());

  const uint64_t peak_rss_kb =
      static_cast<uint64_t>(sampler.Delta().peak_rss_kb);
  const std::string json =
      JsonDocument(points, shard_points, budget_w, reps, peak_rss_kb);
  WriteJson("bench_trajectory.json", json);
  WriteJson("BENCH_trajectory.json", json);

  if (assert_failed && std::getenv("IDXSEL_BENCH_ASSERT") != nullptr &&
      std::getenv("IDXSEL_BENCH_ASSERT")[0] == '1') {
    std::fprintf(stderr, "bench_trajectory: shard assertions failed\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("bench_trajectory");
  idxsel::bench::Run();
  return 0;
}
