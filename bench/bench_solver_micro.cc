// google-benchmark micro-benchmarks of the solver kernels: simplex on
// random LPs and branch-and-bound on random selection problems.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "mip/branch_and_bound.h"

namespace idxsel {
namespace {

lp::Model RandomLp(uint64_t seed, size_t vars, size_t rows) {
  Rng rng(seed);
  lp::Model model;
  std::vector<uint32_t> ids;
  for (size_t v = 0; v < vars; ++v) {
    ids.push_back(model.AddVariable(rng.Uniform(-5.0, 5.0), 10.0));
  }
  for (size_t r = 0; r < rows; ++r) {
    lp::Row row;
    row.sense = lp::Sense::kLe;
    row.rhs = rng.Uniform(5.0, 50.0);
    for (size_t v = 0; v < vars; ++v) {
      row.terms.emplace_back(ids[v], rng.Uniform(0.0, 3.0));
    }
    model.AddRow(std::move(row));
  }
  return model;
}

mip::Problem RandomSelectionProblem(uint64_t seed, size_t queries,
                                    size_t candidates) {
  Rng rng(seed);
  mip::Problem p;
  p.query_weight.resize(queries);
  p.base_cost.resize(queries);
  for (size_t j = 0; j < queries; ++j) {
    p.query_weight[j] = rng.Uniform(1.0, 10.0);
    p.base_cost[j] = rng.Uniform(50.0, 100.0);
  }
  p.candidate_costs.resize(candidates);
  p.candidate_memory.resize(candidates);
  double total = 0.0;
  for (size_t k = 0; k < candidates; ++k) {
    p.candidate_memory[k] = rng.Uniform(1.0, 10.0);
    total += p.candidate_memory[k];
    const int touches = static_cast<int>(rng.UniformInt(1, 5));
    for (int u = 0; u < touches; ++u) {
      const auto j = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(queries) - 1));
      p.candidate_costs[k].push_back(
          mip::QueryCost{j, rng.Uniform(1.0, p.base_cost[j])});
    }
  }
  p.budget = 0.3 * total;
  p.Canonicalize();
  return p;
}

void BM_SimplexSolve(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const lp::Model model = RandomLp(7, vars, vars / 2);
  for (auto _ : state) {
    auto r = lp::SolveLp(model);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(40)->Arg(80);

void BM_BranchAndBoundExact(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  const mip::Problem p = RandomSelectionProblem(11, candidates * 2,
                                                candidates);
  for (auto _ : state) {
    const mip::SolveResult r = mip::Solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBoundExact)->Arg(20)->Arg(40)->Arg(80);

void BM_BranchAndBoundGap5(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  const mip::Problem p = RandomSelectionProblem(11, candidates * 2,
                                                candidates);
  mip::SolveOptions options;
  options.mip_gap = 0.05;
  for (auto _ : state) {
    const mip::SolveResult r = mip::Solve(p, options);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BranchAndBoundGap5)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_GreedyByDensity(benchmark::State& state) {
  const size_t candidates = static_cast<size_t>(state.range(0));
  const mip::Problem p = RandomSelectionProblem(13, candidates * 2,
                                                candidates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mip::GreedyByDensity(p).size());
  }
}
BENCHMARK(BM_GreedyByDensity)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace idxsel

BENCHMARK_MAIN();
