# Benchmark harnesses — one binary per paper table/figure plus ablations.
# Included from the top-level CMakeLists so binaries land in build/bench/
# with nothing else next to them.

# Provenance baked into every bench binary so the JSON sidecars are
# self-describing across checkouts (bench_common.h SidecarProvenanceJson).
execute_process(
  COMMAND git rev-parse --short=12 HEAD
  WORKING_DIRECTORY "${CMAKE_SOURCE_DIR}"
  OUTPUT_VARIABLE IDXSEL_GIT_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET)
if(NOT IDXSEL_GIT_SHA)
  set(IDXSEL_GIT_SHA "unknown")
endif()
if(CMAKE_BUILD_TYPE)
  set(IDXSEL_SIDECAR_BUILD_TYPE "${CMAKE_BUILD_TYPE}")
else()
  set(IDXSEL_SIDECAR_BUILD_TYPE "unspecified")
endif()

function(idxsel_bench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
    idxsel_common idxsel_obs idxsel_exec idxsel_workload idxsel_costmodel
    idxsel_rt
    idxsel_candidates idxsel_lp idxsel_mip idxsel_cophy idxsel_selection
    idxsel_core
    idxsel_engine idxsel_frontier idxsel_advisor idxsel_analysis)
  target_compile_definitions(${name} PRIVATE
    IDXSEL_GIT_SHA="${IDXSEL_GIT_SHA}"
    IDXSEL_BUILD_TYPE="${IDXSEL_SIDECAR_BUILD_TYPE}")
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY "${CMAKE_BINARY_DIR}/bench")
endfunction()

function(idxsel_gbench name)
  idxsel_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

idxsel_bench(bench_table1)
idxsel_bench(bench_fig2)
idxsel_bench(bench_fig3)
idxsel_bench(bench_fig4)
idxsel_bench(bench_fig5)
idxsel_bench(bench_fig6)
idxsel_bench(bench_whatif_calls)
idxsel_bench(bench_kernel)
idxsel_bench(bench_extensions)
idxsel_bench(bench_reconfiguration)
idxsel_bench(bench_compression)
idxsel_bench(bench_updates)
idxsel_bench(bench_shuffle)
idxsel_bench(bench_robustness)
idxsel_bench(bench_parallel)
idxsel_bench(bench_trajectory)
idxsel_bench(bench_serve)
# These two drive the long-running AdvisorService; the base link list
# stops at the advisor layer.
target_link_libraries(bench_serve PRIVATE idxsel_serve)
target_link_libraries(bench_trajectory PRIVATE idxsel_serve)
idxsel_gbench(bench_engine_micro)
idxsel_gbench(bench_solver_micro)
idxsel_gbench(bench_obs_micro)
idxsel_gbench(bench_deadline)
