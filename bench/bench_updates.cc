// Ablation — update-aware selection: as the write share of the workload
// grows, maintenance penalties shrink the worthwhile index set. Compares a
// maintenance-aware H6 against a variant that ignores writes (selecting on
// a read-only view of the workload), both evaluated on the true mixed
// workload.

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"

namespace idxsel::bench {
namespace {

/// Read-only view: same templates, writes re-tagged as reads — what a
/// write-oblivious advisor would optimize.
workload::Workload ReadOnlyView(const workload::Workload& mixed) {
  workload::Workload view;
  for (workload::TableId t = 0; t < mixed.num_tables(); ++t) {
    const auto& schema = mixed.table(t);
    view.AddTable(schema.name, schema.row_count);
    for (workload::AttributeId a : schema.attributes) {
      view.AddAttribute(t, mixed.attribute(a).distinct_values,
                        mixed.attribute(a).value_size);
    }
  }
  for (const workload::Query& q : mixed.queries()) {
    auto added = view.AddQuery(q.table, q.attributes, q.frequency,
                               workload::QueryKind::kRead);
    (void)added;
  }
  view.Finalize();
  return view;
}

void Run() {
  std::printf(
      "Update-cost ablation (Example 1, w=0.2): maintenance-aware H6 vs a\n"
      "write-oblivious H6, evaluated on the mixed workload.\n\n");
  TablePrinter table({"write share", "rel. cost (aware)",
                      "rel. cost (oblivious)", "indexes aware/oblivious"});

  for (double share : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    workload::ScalableWorkloadParams params;  // T=10, N_t=50
    params.queries_per_table = 50;
    params.write_share = share;
    ModelSetup mixed(workload::GenerateScalableWorkload(params));
    const double budget = mixed.model->Budget(0.2);
    const double base =
        mixed.engine->WorkloadCost(costmodel::IndexConfig{});

    core::RecursiveOptions options;
    options.budget = budget;
    const core::RecursiveResult aware =
        core::SelectRecursive(*mixed.engine, options);

    ModelSetup read_only(ReadOnlyView(mixed.w));
    const core::RecursiveResult oblivious =
        core::SelectRecursive(*read_only.engine, options);
    const double oblivious_cost =
        mixed.engine->WorkloadCost(oblivious.selection);

    table.AddRow({FormatDouble(share, 2),
                  FormatDouble(aware.objective / base, 4),
                  FormatDouble(oblivious_cost / base, 4),
                  std::to_string(aware.selection.size()) + " / " +
                      std::to_string(oblivious.selection.size())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: with more writes, the aware selector builds fewer indexes\n"
      "and avoids write-hot attributes; the oblivious one keeps paying\n"
      "maintenance it never modelled.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("updates");
  idxsel::bench::Run();
  return 0;
}
