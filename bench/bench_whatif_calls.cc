// Ablation — what-if optimizer call volume (Section III-A's analysis):
// H6 needs ~ 2 * Q * q-bar backend calls regardless of how many index
// combinations it implicitly explores, while CoPhy's model build needs
// ~ Q * q-bar * |I| / N calls, linear in the candidate count.
//
// With IDXSEL_BENCH_ASSERT=1 the binary turns into a perf-smoke check
// (CI's guard against the kernel — or anything else — changing H6's call
// complexity): it exits non-zero unless every H6 call count stays within
// a factor of two of the 2*Q*q-bar estimate.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/format.h"

namespace idxsel::bench {
namespace {

bool AssertMode() {
  const char* v = std::getenv("IDXSEL_BENCH_ASSERT");
  return v != nullptr && v[0] == '1';
}

int Run() {
  std::printf(
      "What-if call accounting: H6 vs CoPhy problem build (Example 1, "
      "w=0.2).\n\n");
  TablePrinter table({"Q", "q-bar", "2*Q*q-bar", "H6 calls", "|I| (IC_max)",
                      "Q*q-bar*|I|/N", "CoPhy calls"});

  int failures = 0;
  for (uint32_t queries_per_table : {20u, 50u, 100u, 200u}) {
    workload::ScalableWorkloadParams params;  // T=10, N_t=50
    params.queries_per_table = queries_per_table;
    const workload::Workload w = workload::GenerateScalableWorkload(params);
    const costmodel::CostModel model(&w);
    costmodel::ModelBackend backend(&model);

    // H6 with its own engine.
    costmodel::WhatIfEngine h6_engine(&w, &backend);
    core::RecursiveOptions options;
    options.budget = model.Budget(0.2);
    const core::RecursiveResult h6 = core::SelectRecursive(h6_engine, options);

    // CoPhy model build with a fresh engine.
    const candidates::CandidateSet all =
        candidates::EnumerateAllCandidates(w, 4);
    costmodel::WhatIfEngine cophy_engine(&w, &backend);
    cophy::BuildProblem(cophy_engine, all, options.budget);

    const double q = static_cast<double>(w.num_queries());
    const double qbar = w.mean_query_width();
    const double n = static_cast<double>(w.num_attributes());
    table.AddRow(
        {FormatCount(static_cast<int64_t>(q)), FormatDouble(qbar, 2),
         FormatCount(static_cast<int64_t>(2.0 * q * qbar)),
         FormatCount(static_cast<int64_t>(h6.whatif_calls)),
         FormatCount(static_cast<int64_t>(all.size())),
         FormatCount(static_cast<int64_t>(q * qbar * all.size() / n)),
         FormatCount(static_cast<int64_t>(cophy_engine.stats().calls))});

    if (AssertMode()) {
      const double estimate = 2.0 * q * qbar;
      const double ratio = static_cast<double>(h6.whatif_calls) / estimate;
      if (ratio < 0.5 || ratio > 2.0) {
        std::fprintf(stderr,
                     "ASSERT FAILED: Q=%u H6 made %llu what-if calls, "
                     "%.2fx the 2*Q*q-bar estimate of %.0f "
                     "(allowed band 0.5x..2.0x)\n",
                     queries_per_table,
                     static_cast<unsigned long long>(h6.whatif_calls), ratio,
                     estimate);
        ++failures;
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (paper): H6's call count stays near the 2*Q*q-bar\n"
      "estimate; CoPhy's grows with the candidate count.\n");
  if (AssertMode() && failures == 0) {
    std::printf("assert mode: all H6 call counts within 2x of 2*Q*q-bar\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("whatif_calls");
  return idxsel::bench::Run();
}
