// Figure 6 — problem complexity of CoPhy's LP: number of variables and
// constraints as a function of the relative candidate-set size;
// N = 100, Q = 100 (the Figure-5 workload), candidate fractions 10%..100%
// of IC_max via H1-M.

#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "common/format.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 50;
  params.queries_per_table = 50;
  ModelSetup setup(workload::GenerateScalableWorkload(params));

  const candidates::CandidateSet all =
      candidates::EnumerateAllCandidates(setup.w, 4);
  std::printf(
      "Figure 6: LP size vs relative candidate-set size; N=%zu, Q=%zu, "
      "|IC_max|=%zu (paper: 2937).\n\n",
      setup.w.num_attributes(), setup.w.num_queries(), all.size());

  TablePrinter table({"candidates (% of IC_max)", "|I|", "# variables",
                      "# constraints", "mean |I_j|"});
  CsvWriter csv({"fraction", "candidates", "variables", "constraints",
                 "mean_applicable"});
  for (int pct = 10; pct <= 100; pct += 10) {
    const size_t count = all.size() * static_cast<size_t>(pct) / 100;
    const candidates::CandidateSet cands =
        pct == 100 ? all
                   : candidates::GenerateCandidates(
                         setup.w, candidates::CandidateHeuristic::kH1M, count,
                         4);
    const cophy::LpStatistics stats =
        cophy::ComputeLpStatistics(setup.w, cands);
    table.AddRow({std::to_string(pct) + "%",
                  FormatCount(static_cast<int64_t>(cands.size())),
                  FormatCount(static_cast<int64_t>(stats.num_variables)),
                  FormatCount(static_cast<int64_t>(stats.num_constraints)),
                  FormatDouble(stats.mean_applicable_candidates, 1)});
    csv.AddRow({FormatDouble(pct / 100.0, 2), std::to_string(cands.size()),
                std::to_string(stats.num_variables),
                std::to_string(stats.num_constraints),
                FormatDouble(stats.mean_applicable_candidates, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  const Status written = csv.WriteFile("fig6.csv");
  std::printf("series written to fig6.csv (%s)\n\n",
              written.ToString().c_str());
  std::printf(
      "Expected shape (paper): both counts grow linearly in the candidate\n"
      "fraction, reaching ~20000 at 100%% for the paper's instance.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("fig6");
  idxsel::bench::Run();
  return 0;
}
