// Ablation — robustness under workload drift (the paper's future-work
// direction, Section VII): a selection tuned for scenario A degrades when
// the workload drifts towards scenario B; tuning on a scenario *blend*
// hedges against the drift at a small cost in the undrifted case.

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "workload/blend.h"

namespace idxsel::bench {
namespace {

void Run() {
  // Two scenarios over the same schema: scenario B keeps A's templates but
  // reverses their popularity (yesterday's hot queries go cold and vice
  // versa) — a drastic but schema-preserving drift model.
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = 50;
  params.seed = 7;
  const workload::Workload scenario_a =
      workload::GenerateScalableWorkload(params);
  workload::Workload scenario_b;
  for (workload::TableId t = 0; t < scenario_a.num_tables(); ++t) {
    scenario_b.AddTable(scenario_a.table(t).name,
                        scenario_a.table(t).row_count);
    for (workload::AttributeId i : scenario_a.table(t).attributes) {
      scenario_b.AddAttribute(t, scenario_a.attribute(i).distinct_values,
                              scenario_a.attribute(i).value_size);
    }
  }
  for (workload::QueryId j = 0; j < scenario_a.num_queries(); ++j) {
    const workload::Query& q = scenario_a.query(j);
    const workload::Query& mirror =
        scenario_a.query(scenario_a.num_queries() - 1 - j);
    auto added = scenario_b.AddQuery(q.table, q.attributes,
                                     mirror.frequency, q.kind);
    (void)added;
  }
  scenario_b.Finalize();

  std::printf(
      "Robustness under drift (Example 1 schema, two query-mix scenarios,\n"
      "w=0.15): selections tuned on A, on B, and on the 50/50 blend,\n"
      "evaluated across drift levels.\n\n");

  auto select_on = [&](const workload::Workload& w) {
    ModelSetup setup{workload::Workload(w)};
    core::RecursiveOptions options;
    options.budget = setup.model->Budget(0.15);
    return core::SelectRecursive(*setup.engine, options).selection;
  };
  const costmodel::IndexConfig tuned_a = select_on(scenario_a);
  const costmodel::IndexConfig tuned_b = select_on(scenario_b);
  const costmodel::IndexConfig tuned_blend =
      select_on(workload::BlendWorkloads(scenario_a, scenario_b, 0.5));

  TablePrinter table({"drift (share of B)", "tuned on A", "tuned on B",
                      "tuned on blend"});
  for (double drift : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const workload::Workload drifted =
        workload::BlendWorkloads(scenario_a, scenario_b, drift);
    ModelSetup eval{workload::Workload(drifted)};
    const double base =
        eval.engine->WorkloadCost(costmodel::IndexConfig{});
    table.AddRow(
        {FormatDouble(drift, 2),
         FormatDouble(eval.engine->WorkloadCost(tuned_a) / base, 4),
         FormatDouble(eval.engine->WorkloadCost(tuned_b) / base, 4),
         FormatDouble(eval.engine->WorkloadCost(tuned_blend) / base, 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: each specialist wins at its own endpoint; the blend-tuned\n"
      "selection stays close to the better specialist across all drift\n"
      "levels — frequencies are linear in eq. (1), so blending optimizes\n"
      "the expected scenario cost exactly.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("robustness");
  idxsel::bench::Run();
  return 0;
}
