// Figure 2 — scan performance vs memory budget for H6 and CoPhy with
// candidate sets from the three heuristics H1-M/H2-M/H3-M (|I| = 500) and
// with the exhaustive set IC_max; N = 500 attributes, Q = 1000 queries,
// w in [0, 0.4].

#include <cstdio>

#include "bench_common.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = 100;           // sum Q = 1000
  ModelSetup setup(workload::GenerateScalableWorkload(params));
  std::printf(
      "Figure 2: relative workload cost vs relative memory budget w;\n"
      "N=%zu, Q=%zu, CoPhy candidate sets |I|=500 via H1-M/H2-M/H3-M and "
      "IC_max.\n\n",
      setup.w.num_attributes(), setup.w.num_queries());

  const candidates::CandidateSet all =
      candidates::EnumerateAllCandidates(setup.w, 4);
  const candidates::CandidateSet h1m = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH1M, 500, 4);
  const candidates::CandidateSet h2m = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH2M, 500, 4);
  const candidates::CandidateSet h3m = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH3M, 500, 4);
  std::printf("|IC_max| = %zu\n\n", all.size());

  const std::vector<double> grid =
      frontier::BudgetGrid(0.0, 0.4, FullMode() ? 9 : 5);
  const double total = setup.model->TotalSingleAttributeMemory();

  std::vector<frontier::FrontierSeries> series;
  series.push_back(frontier::SweepStrategy(*setup.engine, total, grid, "H6",
                                           H6Strategy(*setup.engine)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H1-M(500)",
      CophyStrategy(*setup.engine, h1m)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H2-M(500)",
      CophyStrategy(*setup.engine, h2m)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H3-M(500)",
      CophyStrategy(*setup.engine, h3m)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+IC_max",
      CophyStrategy(*setup.engine, all)));

  for (frontier::FrontierSeries& s : series) {
    frontier::NormalizeCosts(*setup.engine, &s);
  }
  std::printf("%s\n", frontier::RenderSeriesTable(series).c_str());
  const Status csv = frontier::WriteSeriesCsv(series, "fig2.csv");
  std::printf("series written to fig2.csv (%s)\n\n", csv.ToString().c_str());
  std::printf(
      "Expected shape (paper): H6 tracks CoPhy+IC_max (near-optimal) for\n"
      "every budget; CoPhy with heuristic candidate sets is clearly worse,\n"
      "with H2-M/H3-M the weakest.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("fig2");
  idxsel::bench::Run();
  return 0;
}
