// Ablation — workload compression before selection (related work, §VI):
// DB2's "keep the top-k most expensive queries" pre-processing and the v2
// modes (signature dedup, frequency-weighted clustering; used per shard by
// idxsel::shard) vs selecting on the full workload. Selection runs on the
// compressed workload; quality is always evaluated on the *full* workload.
//
// Top-k ranks over signature-*deduped* templates (CompressWorkload,
// kDedup), not raw queries: duplicate templates merge their frequencies
// into one ranked entry instead of occupying several top-k slots, so a
// hot template repeated verbatim cannot crowd distinct templates out of
// the kept set. Every row's compression-loss — the quality gap between
// H6-on-compressed and H6-on-full, both priced on the full workload — is
// written to the bench_compression.json sidecar next to the stdout table.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "workload/compression.h"

namespace idxsel::bench {
namespace {

struct CompressionRow {
  std::string mode;          ///< "topk", "dedup" or "cluster"
  size_t kept = 0;           ///< templates selection actually saw
  double rel_cost = 1.0;     ///< cost(selection) / cost(empty), full workload
  double loss = 0.0;         ///< rel_cost - rel_cost(H6-on-full)
  size_t indexes = 0;
  double seconds = 0.0;
  uint64_t whatif_calls = 0;
};

std::string SidecarJson(size_t full_queries, size_t deduped_queries,
                        double budget_w, double full_rel_cost,
                        const std::vector<CompressionRow>& rows) {
  char buf[512];
  std::string out = "{\n" + SidecarHeaderJson("idxsel.bench_compression.v1");
  std::snprintf(buf, sizeof buf,
                "  \"workload\": {\"queries\": %zu, \"deduped_templates\": "
                "%zu, \"budget_w\": %.2f},\n"
                "  \"full_rel_cost\": %.6f,\n",
                full_queries, deduped_queries, budget_w, full_rel_cost);
  out += buf;
  out += "  \"rows\": [";
  bool first = true;
  for (const CompressionRow& r : rows) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "    {\"mode\": \"%s\", \"kept\": %zu, \"rel_cost\": %.6f, "
        "\"compression_loss\": %.6f, \"indexes\": %zu, "
        "\"whatif_calls\": %llu, \"seconds\": %.6f}",
        r.mode.c_str(), r.kept, r.rel_cost, r.loss, r.indexes,
        static_cast<unsigned long long>(r.whatif_calls), r.seconds);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

void Run() {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = FullMode() ? 500 : 100;
  const double budget_w = 0.2;
  ModelSetup full(workload::GenerateScalableWorkload(params));
  const double budget = full.model->Budget(budget_w);
  const double base = full.engine->WorkloadCost(costmodel::IndexConfig{});

  // Signature dedup (compression v2): merges duplicate templates, adds
  // their frequencies, and keeps a representative source id per template.
  workload::CompressionOptions dedup_options;
  dedup_options.mode = workload::CompressionMode::kDedup;
  const workload::CompressedWorkload deduped =
      workload::CompressWorkload(full.w, dedup_options);

  std::printf(
      "Workload compression study (Example 1, Q=%zu -> %zu deduped "
      "templates, w=%.1f):\nrun H6 on a compressed workload, evaluate on "
      "the full workload.\n\n",
      full.w.num_queries(), deduped.workload.num_queries(), budget_w);

  // One H6 run per compressed workload; quality priced on the FULL engine.
  const auto run_on = [&](const std::string& mode,
                          const workload::Workload& w) {
    ModelSetup setup(w);
    Stopwatch watch;
    core::RecursiveOptions options;
    options.budget = budget;
    const core::RecursiveResult r =
        core::SelectRecursive(*setup.engine, options);
    CompressionRow row;
    row.mode = mode;
    row.kept = w.num_queries();
    row.seconds = watch.ElapsedSeconds();
    row.rel_cost = full.engine->WorkloadCost(r.selection) / base;
    row.indexes = r.selection.size();
    row.whatif_calls = r.whatif_calls;
    return row;
  };

  // Reference: H6 on the uncompressed workload — the loss baseline.
  const CompressionRow full_row = run_on("full", full.w);

  std::vector<CompressionRow> rows;
  // Lossless dedup, then the lossy per-table clustering cap.
  rows.push_back(run_on("dedup", deduped.workload));
  {
    workload::CompressionOptions cluster;
    cluster.mode = workload::CompressionMode::kCluster;
    cluster.max_templates_per_table = FullMode() ? 32 : 16;
    rows.push_back(
        run_on("cluster", workload::CompressWorkload(full.w, cluster).workload));
  }

  // DB2 top-k over the deduped templates, ranked by merged unindexed cost
  // b_j * f_j(0). BaseCost is priced via each template's representative
  // source query (identical table and attribute set).
  std::vector<double> template_costs(deduped.workload.num_queries());
  for (workload::QueryId j = 0; j < deduped.workload.num_queries(); ++j) {
    template_costs[j] = deduped.workload.query(j).frequency *
                        full.engine->BaseCost(deduped.representative[j]);
  }
  for (double share : {0.5, 0.25, 0.1, 0.05}) {
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(share *
                               deduped.workload.num_queries()));
    rows.push_back(run_on(
        "topk",
        workload::CompressTopK(deduped.workload, template_costs, keep)));
  }

  for (CompressionRow& r : rows) r.loss = r.rel_cost - full_row.rel_cost;

  TablePrinter table({"mode", "kept templates", "rel. cost (full workload)",
                      "loss vs full", "indexes", "H6 runtime",
                      "what-if calls"});
  const auto add_row = [&](const CompressionRow& r) {
    table.AddRow({r.mode, FormatCount(static_cast<int64_t>(r.kept)),
                  FormatDouble(r.rel_cost, 4), FormatDouble(r.loss, 4),
                  std::to_string(r.indexes), FormatSeconds(r.seconds),
                  FormatCount(static_cast<int64_t>(r.whatif_calls))});
  };
  add_row(full_row);
  for (const CompressionRow& r : rows) add_row(r);
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: dedup is lossless by construction; moderate top-k saves\n"
      "what-if calls and runtime with little quality loss; aggressive\n"
      "compression starts missing indexes for the dropped queries (the\n"
      "risk Zilio et al. accept).\n");

  const std::string json =
      SidecarJson(full.w.num_queries(), deduped.workload.num_queries(),
                  budget_w, full_row.rel_cost, rows);
  std::FILE* f = std::fopen("bench_compression.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("results written to bench_compression.json\n");
  }
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("compression");
  idxsel::bench::Run();
  return 0;
}
