// Ablation — workload compression before selection (related work, §VI):
// DB2's "keep the top-k most expensive queries" pre-processing vs selecting
// on the full workload. Selection runs on the compressed workload; quality
// is always evaluated on the *full* workload.

#include <cstdio>

#include "bench_common.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "workload/compression.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = FullMode() ? 500 : 100;
  ModelSetup full(workload::GenerateScalableWorkload(params));
  const double budget = full.model->Budget(0.2);
  const double base = full.engine->WorkloadCost(costmodel::IndexConfig{});

  std::printf(
      "Workload compression study (Example 1, Q=%zu, w=0.2): run H6 on a\n"
      "top-k-compressed workload, evaluate on the full workload.\n\n",
      full.w.num_queries());

  // Rank queries by unindexed cost b_j * f_j(0).
  std::vector<double> query_costs(full.w.num_queries());
  for (workload::QueryId j = 0; j < full.w.num_queries(); ++j) {
    query_costs[j] =
        full.w.query(j).frequency * full.engine->BaseCost(j);
  }

  TablePrinter table({"kept queries", "rel. cost (full workload)", "indexes",
                      "H6 runtime", "what-if calls"});
  for (double share : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    const size_t keep =
        std::max<size_t>(1, static_cast<size_t>(share * full.w.num_queries()));
    const workload::Workload compressed =
        workload::CompressTopK(full.w, query_costs, keep);
    ModelSetup setup_c(compressed);

    Stopwatch watch;
    core::RecursiveOptions options;
    options.budget = budget;
    const core::RecursiveResult r =
        core::SelectRecursive(*setup_c.engine, options);
    const double seconds = watch.ElapsedSeconds();

    // Evaluate the selection on the FULL workload.
    const double cost = full.engine->WorkloadCost(r.selection);
    table.AddRow({FormatCount(static_cast<int64_t>(keep)),
                  FormatDouble(cost / base, 4),
                  std::to_string(r.selection.size()), FormatSeconds(seconds),
                  FormatCount(static_cast<int64_t>(r.whatif_calls))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: moderate compression saves what-if calls and runtime with\n"
      "little quality loss; aggressive compression starts missing indexes\n"
      "for the dropped queries (the risk Zilio et al. accept).\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("compression");
  idxsel::bench::Run();
  return 0;
}
