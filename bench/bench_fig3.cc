// Figure 3 — effect of the candidate-set *size*: H6 vs CoPhy with H1-M
// candidate sets of |I| = 100, 1000, and IC_max; N = 500, Q = 1000,
// w in [0, 0.4].

#include <cstdio>

#include "bench_common.h"

namespace idxsel::bench {
namespace {

void Run() {
  workload::ScalableWorkloadParams params;
  params.queries_per_table = 100;  // sum Q = 1000
  ModelSetup setup(workload::GenerateScalableWorkload(params));
  std::printf(
      "Figure 3: relative workload cost vs budget w; CoPhy with H1-M sets "
      "of\nincreasing size vs H6; N=%zu, Q=%zu.\n\n",
      setup.w.num_attributes(), setup.w.num_queries());

  const candidates::CandidateSet all =
      candidates::EnumerateAllCandidates(setup.w, 4);
  const candidates::CandidateSet small = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH1M, 100, 4);
  const candidates::CandidateSet medium = candidates::GenerateCandidates(
      setup.w, candidates::CandidateHeuristic::kH1M, 1000, 4);
  std::printf("|IC_max| = %zu\n\n", all.size());

  const std::vector<double> grid =
      frontier::BudgetGrid(0.0, 0.4, FullMode() ? 9 : 5);
  const double total = setup.model->TotalSingleAttributeMemory();

  std::vector<frontier::FrontierSeries> series;
  series.push_back(frontier::SweepStrategy(*setup.engine, total, grid, "H6",
                                           H6Strategy(*setup.engine)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H1-M(100)",
      CophyStrategy(*setup.engine, small)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+H1-M(1000)",
      CophyStrategy(*setup.engine, medium)));
  series.push_back(frontier::SweepStrategy(
      *setup.engine, total, grid, "CoPhy+IC_max",
      CophyStrategy(*setup.engine, all)));

  for (frontier::FrontierSeries& s : series) {
    frontier::NormalizeCosts(*setup.engine, &s);
  }
  std::printf("%s\n", frontier::RenderSeriesTable(series).c_str());
  const Status csv = frontier::WriteSeriesCsv(series, "fig3.csv");
  std::printf("series written to fig3.csv (%s)\n\n", csv.ToString().c_str());
  std::printf(
      "Expected shape (paper): the smaller CoPhy's candidate set, the worse\n"
      "its frontier; H6 matches the exhaustive-set optimum closely.\n");
}

}  // namespace
}  // namespace idxsel::bench

int main() {
  idxsel::bench::ObsSession obs("fig3");
  idxsel::bench::Run();
  return 0;
}
