// Large-scale scenario: tune the synthetic ERP system (500 tables, 4204
// attributes, 2271 query templates — the paper's Section IV-A dimensions)
// under a tight memory budget, and compare H6 against the frequency rule
// H1 and CoPhy on a reduced candidate set.
//
//   $ ./build/examples/erp_tuning [w_percent]     (default 5 -> w = 0.05)

#include <cstdio>
#include <cstdlib>

#include "candidates/candidates.h"
#include "common/format.h"
#include "common/stopwatch.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "selection/heuristics.h"
#include "workload/erp_generator.h"

using namespace idxsel;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const double w_budget =
      (argc > 1 ? std::atof(argv[1]) : 5.0) / 100.0;

  std::printf("generating ERP-like workload...\n");
  const workload::Workload w = workload::GenerateErpWorkload({});
  std::printf("  %zu tables, %zu attributes, %zu query templates, %.0fM "
              "weighted executions\n\n",
              w.num_tables(), w.num_attributes(), w.num_queries(),
              w.total_frequency() / 1e6);

  const costmodel::CostModel model(&w);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  const double budget = model.Budget(w_budget);
  const double base = engine.WorkloadCost(costmodel::IndexConfig{});
  std::printf("budget A(%.2f) = %s\n\n", w_budget,
              FormatBytes(budget).c_str());

  // H6 — no candidate set needed.
  Stopwatch h6_watch;
  core::RecursiveOptions options;
  options.budget = budget;
  const core::RecursiveResult h6 = core::SelectRecursive(engine, options);
  const double h6_seconds = h6_watch.ElapsedSeconds();

  // H1 and CoPhy need candidates.
  const candidates::CandidateSet candidates_1k =
      candidates::GenerateCandidates(w, candidates::CandidateHeuristic::kH1M,
                                     1000, 4);
  const selection::SelectionResult h1 =
      selection::SelectRuleBased(engine, candidates_1k, budget,
                                 selection::RuleHeuristic::kH1);
  mip::SolveOptions solver;
  solver.mip_gap = 0.05;
  solver.time_limit_seconds = 30.0;
  Stopwatch cophy_watch;
  const cophy::CophyResult cophy =
      cophy::SolveCophy(engine, candidates_1k, budget, solver);
  const double cophy_seconds = cophy_watch.ElapsedSeconds();

  TablePrinter table(
      {"strategy", "rel. cost", "indexes", "memory", "runtime"});
  table.AddRow({"H6 (Algorithm 1)", FormatDouble(h6.objective / base, 4),
                std::to_string(h6.selection.size()),
                FormatBytes(h6.memory), FormatSeconds(h6_seconds)});
  table.AddRow({"H1 (frequency rule)", FormatDouble(h1.objective / base, 4),
                std::to_string(h1.selection.size()),
                FormatBytes(h1.memory), FormatSeconds(h1.runtime_seconds)});
  table.AddRow({std::string("CoPhy+H1-M(1000)") + (cophy.dnf ? " DNF" : ""),
                FormatDouble(engine.WorkloadCost(cophy.selection) / base, 4),
                std::to_string(cophy.selection.size()),
                FormatBytes(engine.ConfigMemory(cophy.selection)),
                FormatSeconds(cophy_seconds, cophy.dnf)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("widest H6 index: ");
  size_t widest = 1;
  const costmodel::Index* widest_index = nullptr;
  for (const costmodel::Index& k : h6.selection.indexes()) {
    if (k.width() >= widest) {
      widest = k.width();
      widest_index = &k;
    }
  }
  if (widest_index != nullptr) {
    std::printf("%s (%zu attributes)\n", widest_index->ToString().c_str(),
                widest);
  }
  return 0;
}
