// Continuous-tuning scenario (the paper's Section VII outlook): tune for
// today's workload, let the workload drift, then re-tune *with
// reconfiguration costs* so only worthwhile changes are made — and print
// the migration DDL.
//
//   $ ./build/examples/continuous_tuning [create_factor]

#include <cstdio>
#include <cstdlib>

#include "common/format.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/ddl.h"
#include "costmodel/reconfiguration.h"
#include "workload/blend.h"
#include "workload/scalable_generator.h"

using namespace idxsel;  // NOLINT: example brevity

namespace {

/// Scenario B: same schema, popularity reversed (hot templates go cold).
workload::Workload ReversePopularity(const workload::Workload& a) {
  workload::Workload b;
  for (workload::TableId t = 0; t < a.num_tables(); ++t) {
    b.AddTable(a.table(t).name, a.table(t).row_count);
    for (workload::AttributeId i : a.table(t).attributes) {
      b.AddAttribute(t, a.attribute(i).distinct_values,
                     a.attribute(i).value_size);
    }
  }
  for (workload::QueryId j = 0; j < a.num_queries(); ++j) {
    const workload::Query& q = a.query(j);
    const double freq = a.query(a.num_queries() - 1 - j).frequency;
    (void)*b.AddQuery(q.table, q.attributes, freq, q.kind);
  }
  b.Finalize();
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const double create_factor = argc > 1 ? std::atof(argv[1]) : 500.0;

  workload::ScalableWorkloadParams params;
  params.num_tables = 4;
  params.attributes_per_table = 12;
  params.queries_per_table = 25;
  const workload::Workload today = workload::GenerateScalableWorkload(params);
  const workload::Workload tomorrow = ReversePopularity(today);
  // The observed drift: half-way between the two mixes.
  const workload::Workload drifted =
      workload::BlendWorkloads(today, tomorrow, 0.5);

  // Day 1: tune for today's workload.
  const costmodel::CostModel model_today(&today);
  costmodel::ModelBackend backend_today(&model_today);
  costmodel::WhatIfEngine engine_today(&today, &backend_today);
  core::RecursiveOptions day1;
  day1.budget = model_today.Budget(0.15);
  const core::RecursiveResult tuned =
      core::SelectRecursive(engine_today, day1);
  std::printf("day 1: %zu indexes, cost %.1f%% of unindexed\n",
              tuned.selection.size(),
              100.0 * tuned.objective /
                  engine_today.WorkloadCost(costmodel::IndexConfig{}));

  // Day 30: the workload drifted; re-tune with reconfiguration costs.
  const costmodel::CostModel model_drift(&drifted);
  costmodel::ModelBackend backend_drift(&model_drift);
  costmodel::WhatIfEngine engine_drift(&drifted, &backend_drift);
  const double base = engine_drift.WorkloadCost(costmodel::IndexConfig{});
  std::printf("day 30 (drifted): existing selection now at %.1f%% of "
              "unindexed\n",
              100.0 * engine_drift.WorkloadCost(tuned.selection) / base);

  costmodel::ReconfigurationParams rparams;
  rparams.create_factor = create_factor;
  const costmodel::ReconfigurationModel reconfig(&engine_drift, rparams);
  core::RecursiveOptions day30;
  day30.budget = model_drift.Budget(0.15);
  day30.existing = &tuned.selection;
  day30.reconfiguration = &reconfig;
  const core::RecursiveResult retuned =
      core::SelectRecursive(engine_drift, day30);

  size_t kept = 0;
  for (const costmodel::Index& k : retuned.selection.indexes()) {
    kept += tuned.selection.Contains(k);
  }
  std::printf(
      "re-tuned with create-factor %.0f: %zu indexes (%zu kept), cost "
      "%.1f%% of unindexed, rebuild traffic %s\n\n",
      create_factor, retuned.selection.size(), kept,
      100.0 * engine_drift.WorkloadCost(retuned.selection) / base,
      FormatBytes(reconfig.Cost(retuned.selection, tuned.selection)).c_str());

  std::printf("migration script:\n%s",
              costmodel::RenderMigration(drifted, tuned.selection,
                                         retuned.selection)
                  .c_str());
  return 0;
}
