// End-to-end advisor on real data: materialize a workload in the bundled
// column store, let Algorithm 1 tune it against *measured* wall-clock
// runtimes (no cost model, Section IV-B style), then verify the speedup by
// executing the workload before and after.
//
//   $ ./build/examples/measured_advisor [rows_per_table]

#include <cstdio>
#include <cstdlib>

#include "common/format.h"
#include "core/recursive_selector.h"
#include "costmodel/what_if.h"
#include "engine/measured_cost.h"
#include "workload/scalable_generator.h"

using namespace idxsel;  // NOLINT: example brevity

namespace {

/// Executes the whole workload once under `config` (one index per query,
/// best applicable) and returns the frequency-weighted total seconds.
double ExecuteWorkload(const workload::Workload& w,
                       const engine::Database& db,
                       engine::MeasuredCostSource& measured,
                       const costmodel::IndexConfig& config) {
  (void)db;
  double total = 0.0;
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    double best = measured.BaseCost(j);
    for (const costmodel::Index& k : config.indexes()) {
      if (w.attribute(k.leading()).table != w.query(j).table) continue;
      best = std::min(best, measured.CostWithIndex(j, k));
    }
    total += w.query(j).frequency * best;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t rows =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 40'000;

  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 25;
  params.queries_per_table = 30;
  params.rows_per_table_step = rows;
  const workload::Workload w = workload::GenerateScalableWorkload(params);

  std::printf("materializing %zu tables x up to %llu rows...\n",
              w.num_tables(),
              static_cast<unsigned long long>(rows * w.num_tables()));
  const engine::Database db(&w, rows * w.num_tables(), /*seed=*/5);
  engine::MeasuredCostSource measured(&db, /*repetitions=*/3, /*seed=*/23);
  costmodel::WhatIfEngine engine(&w, &measured);

  // Budget: 25% of the measured single-attribute index memory.
  double total_single = 0.0;
  for (workload::AttributeId i = 0; i < w.num_attributes(); ++i) {
    total_single += engine.IndexMemory(costmodel::Index(i));
  }
  core::RecursiveOptions options;
  options.budget = 0.25 * total_single;

  std::printf("tuning against measured runtimes (budget %s)...\n",
              FormatBytes(options.budget).c_str());
  const core::RecursiveResult r = core::SelectRecursive(engine, options);
  std::printf("  %zu indexes selected, %zu physical indexes built while "
              "probing\n\n",
              r.selection.size(), measured.indexes_built());

  const double before =
      ExecuteWorkload(w, db, measured, costmodel::IndexConfig{});
  const double after = ExecuteWorkload(w, db, measured, r.selection);
  std::printf("workload execution time (frequency-weighted):\n");
  std::printf("  unindexed: %s\n", FormatSeconds(before).c_str());
  std::printf("  tuned:     %s  (%.1fx speedup)\n",
              FormatSeconds(after).c_str(), before / after);
  for (const costmodel::Index& k : r.selection.indexes()) {
    std::printf("    index %s (%s)\n", k.ToString().c_str(),
                FormatBytes(engine.IndexMemory(k)).c_str());
  }
  return 0;
}
