// Command-line advisor over a workload file: parse a textual workload
// description, run a chosen strategy, print the recommendation report.
//
//   $ ./build/examples/file_advisor <workload-file> [w] [strategy]
//
// With no arguments, a built-in sample workload is used. Strategies:
// h6 (default), h1..h5, h4s (skyline), cophy.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "workload/parser.h"

using namespace idxsel;  // NOLINT: example brevity

namespace {

constexpr char kSampleWorkload[] = R"(# sample web-shop workload
table orders rows=2000000
attr customer_id distinct=150000
attr status distinct=8
attr country distinct=90
attr created_day distinct=1500
attr warehouse distinct=40

table items rows=100000
attr id distinct=100000 size=8
attr category distinct=250

query orders freq=12000 attrs=customer_id
query orders freq=9000 attrs=customer_id,status
query orders freq=1500 attrs=country,status
query orders freq=800 attrs=warehouse,created_day,status
query orders freq=600 write attrs=status
query items freq=4000 attrs=id
query items freq=700 attrs=category
)";

advisor::StrategyKind ParseStrategy(const std::string& name) {
  if (name == "h1") return advisor::StrategyKind::kH1;
  if (name == "h2") return advisor::StrategyKind::kH2;
  if (name == "h3") return advisor::StrategyKind::kH3;
  if (name == "h4") return advisor::StrategyKind::kH4;
  if (name == "h4s") return advisor::StrategyKind::kH4Skyline;
  if (name == "h5") return advisor::StrategyKind::kH5;
  if (name == "cophy") return advisor::StrategyKind::kCophy;
  return advisor::StrategyKind::kRecursive;
}

}  // namespace

int main(int argc, char** argv) {
  Result<workload::NamedWorkload> parsed =
      argc > 1 ? workload::LoadWorkloadFile(argv[1])
               : workload::ParseWorkload(kSampleWorkload);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const workload::NamedWorkload& named = *parsed;
  std::printf("workload: %zu tables, %zu attributes, %zu query templates\n\n",
              named.workload.num_tables(), named.workload.num_attributes(),
              named.workload.num_queries());

  const costmodel::CostModel model(&named.workload);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&named.workload, &backend);

  advisor::AdvisorOptions options;
  options.budget_fraction = argc > 2 ? std::atof(argv[2]) : 0.3;
  options.strategy =
      argc > 3 ? ParseStrategy(argv[3]) : advisor::StrategyKind::kRecursive;
  options.solver.mip_gap = 0.05;
  options.solver.time_limit_seconds = 30.0;

  const Result<advisor::Recommendation> rec =
      advisor::Recommend(engine, options);
  if (!rec.ok()) {
    std::fprintf(stderr, "error: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              advisor::RenderReport(engine, *rec, &named.attribute_names)
                  .c_str());
  return 0;
}
