// Figure-1 walkthrough: run Algorithm 1 on the aggregated TPC-C query
// templates and print the construction steps with real attribute names —
// the programmatic version of the paper's illustration.
//
//   $ ./build/examples/tpcc_advisor [warehouses]

#include <cstdio>
#include <cstdlib>

#include "analysis/interaction.h"
#include "common/format.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "workload/tpcc.h"

using namespace idxsel;  // NOLINT: example brevity

namespace {

std::string PrettyIndex(const workload::NamedWorkload& named,
                        const costmodel::Index& k) {
  std::string out = "[";
  for (size_t u = 0; u < k.width(); ++u) {
    if (u != 0) out += " | ";
    out += named.name(k.attribute(u));
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t warehouses =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 100;
  const workload::NamedWorkload tpcc = workload::MakeTpccWorkload(warehouses);
  const workload::Workload& w = tpcc.workload;

  std::printf("TPC-C (%u warehouses): %zu query templates over %zu tables\n\n",
              warehouses, w.num_queries(), w.num_tables());
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    std::string attrs;
    for (workload::AttributeId a : w.query(j).attributes) {
      if (!attrs.empty()) attrs += ", ";
      attrs += tpcc.name(a);
    }
    std::printf("  q%-2u (freq %5.0f): %s\n", j + 1, w.query(j).frequency,
                attrs.c_str());
  }

  const costmodel::CostModel model(&w);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);

  core::RecursiveOptions options;
  options.budget = model.Budget(1.0);  // unconstrained, like Figure 1
  options.max_steps = 20;
  const core::RecursiveResult r = core::SelectRecursive(engine, options);

  std::printf("\nconstruction steps (Algorithm 1):\n");
  int step_no = 1;
  for (const core::ConstructionStep& step : r.trace) {
    if (step.kind == core::StepKind::kNewSingle) {
      std::printf("  step %2d: new index   %s\n", step_no++,
                  PrettyIndex(tpcc, step.after).c_str());
    } else {
      std::printf("  step %2d: append      %s  (was %s)\n", step_no++,
                  PrettyIndex(tpcc, step.after).c_str(),
                  PrettyIndex(tpcc, step.before).c_str());
    }
  }

  std::printf("\nfinal configuration (%zu indexes, %s):\n",
              r.selection.size(), FormatBytes(r.memory).c_str());
  for (const costmodel::Index& k : r.selection.indexes()) {
    std::printf("  %s\n", PrettyIndex(tpcc, k).c_str());
  }
  const double base = engine.WorkloadCost(costmodel::IndexConfig{});
  std::printf("\nworkload cost reduced to %.1f%% of the unindexed cost\n",
              100.0 * r.objective / base);
  if (!r.runners_up.empty()) {
    std::printf(
        "\nmissed opportunities recorded (Remark 1.3): %zu runner-up moves\n",
        r.runners_up.size());
  }

  // Index-interaction analysis (Schnaitter et al.): which of the selected
  // indexes cannibalize each other?
  const auto interactions =
      analysis::AnalyzeInteractions(engine, r.selection.indexes());
  std::printf("\nstrongest index interactions (degree of interaction):\n%s",
              analysis::RenderInteractions(interactions, 5).c_str());
  return 0;
}
