// Quickstart: define a tiny workload by hand, run the recursive selector
// (Algorithm 1 / H6), and print the chosen indexes with their construction
// trace.
//
//   $ ./build/examples/quickstart [time_limit_ms]
//
// The optional argument is a wall-clock budget in milliseconds: the
// selector then runs as an anytime algorithm and reports whether it
// finished or returned its best-so-far incumbent (doc/robustness.md).
//
// This is the five-minute tour of the public API:
//   1. Workload       — tables, attributes, query templates
//   2. CostModel      — the reproducible Appendix-B cost model
//   3. WhatIfEngine   — caching what-if facade
//   4. SelectRecursive — the paper's contribution
//   5. obs::RunScope  — what the run cost (what-if calls, cache hit rate,
//                       wall time per phase)
//
// Run with IDXSEL_JOURNAL=1 to also export the decision journal — why
// each index was created or extended, and what lost to it — as
// quickstart.journal.jsonl (render it with tools/idxsel_report).

#include <cstdio>
#include <cstdlib>

#include "common/deadline.h"
#include "common/format.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "obs/obs.h"
#include "workload/workload.h"

using idxsel::FormatBytes;
using idxsel::FormatDouble;

int main(int argc, char** argv) {
  using namespace idxsel;  // NOLINT: example brevity

  // 1. A web-shop "orders" table with five columns and four query shapes.
  workload::Workload w;
  const auto orders = w.AddTable("orders", 2'000'000);
  const auto customer_id = w.AddAttribute(orders, 150'000, 4);
  const auto status = w.AddAttribute(orders, 8, 4);
  const auto country = w.AddAttribute(orders, 90, 4);
  const auto created_day = w.AddAttribute(orders, 1'500, 4);
  const auto warehouse = w.AddAttribute(orders, 40, 4);

  // "Frequency" is executions over the tuning window.
  (void)*w.AddQuery(orders, {customer_id}, 12'000);             // point look-up
  (void)*w.AddQuery(orders, {customer_id, status}, 9'000);      // open orders
  (void)*w.AddQuery(orders, {country, status}, 1'500);          // ops dashboard
  (void)*w.AddQuery(orders, {warehouse, created_day, status}, 800);  // picking
  w.Finalize();

  // 2-3. Cost model + caching what-if engine. Turning observability on
  //      before the engine runs makes spans and latency histograms flow
  //      into the run report printed at the bottom.
  obs::SetEnabled(true);
  obs::RunScope obs_run("quickstart H6");
  obs::JournalScope journal_scope({"h6"});
  const costmodel::CostModel model(&w);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);

  // 4. Give the advisor half of the memory all single-attribute indexes
  //    would need, and let it construct a configuration. threads = 0
  //    honors the IDXSEL_THREADS environment override (falling back to
  //    hardware_concurrency); parallel runs return bit-identical results,
  //    so this is purely a wall-clock knob (doc/parallelism.md).
  core::RecursiveOptions options;
  options.budget = model.Budget(0.5);
  options.threads = 0;
  if (argc > 1) {
    const double limit_ms = std::strtod(argv[1], nullptr);
    options.deadline = rt::Deadline::After(limit_ms / 1000.0);
    std::printf("time limit: %s ms\n", FormatDouble(limit_ms, 1).c_str());
  }
  const core::RecursiveResult result = core::SelectRecursive(engine, options);
  std::printf("status: %s\n", result.status.ok()
                                  ? "completed"
                                  : result.status.ToString().c_str());

  const char* names[] = {"customer_id", "status", "country", "created_day",
                         "warehouse"};
  auto index_name = [&](const costmodel::Index& k) {
    std::string out = "(";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ", ";
      out += names[k.attribute(u)];
    }
    return out + ")";
  };

  std::printf("budget: %s\n", FormatBytes(options.budget).c_str());
  std::printf("construction steps:\n");
  for (const core::ConstructionStep& step : result.trace) {
    const char* verb =
        step.kind == core::StepKind::kNewSingle ? "create" : "extend to";
    std::printf("  %-10s %-38s  +%-10s cost %s -> %s\n", verb,
                index_name(step.after).c_str(),
                FormatBytes(step.memory_delta).c_str(),
                FormatDouble(step.objective_before, 0).c_str(),
                FormatDouble(step.objective_after, 0).c_str());
  }
  std::printf("\nfinal selection (%zu indexes, %s):\n",
              result.selection.size(), FormatBytes(result.memory).c_str());
  for (const costmodel::Index& k : result.selection.indexes()) {
    std::printf("  CREATE INDEX ON orders %s\n", index_name(k).c_str());
  }
  const double base = engine.WorkloadCost(costmodel::IndexConfig{});
  std::printf("\nworkload cost: %s -> %s (%.1f%% of unindexed)\n",
              FormatDouble(base, 0).c_str(),
              FormatDouble(result.objective, 0).c_str(),
              100.0 * result.objective / base);

  // 5. What did that run cost us? Counters (what-if calls, cache hit
  //    rate, selector steps) and the span tree of the phases. With
  //    IDXSEL_JOURNAL=1 the decision journal rides along as a sidecar.
  const std::vector<obs::JournalRecord> journal = journal_scope.Finish();
  if (!journal.empty()) {
    const std::string jsonl = obs::JournalToJsonl(journal);
    if (std::FILE* f = std::fopen("quickstart.journal.jsonl", "w")) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
      std::printf("\ndecision journal: quickstart.journal.jsonl "
                  "(%zu records; render with tools/idxsel_report)\n",
                  journal.size());
    }
  }
  std::printf("\n%s", obs_run.Finish().Summary().c_str());
  return 0;
}
