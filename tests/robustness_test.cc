// Robustness suite for idxsel::rt: deadline/cancellation semantics, the
// fault-injecting backend, WhatIfEngine sanitization, and a chaos matrix
// that drives every strategy through fault injection plus tight deadlines.
// Companion to doc/robustness.md.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "advisor/advisor.h"
#include "common/deadline.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "rt/fault_injection.h"
#include "workload/scalable_generator.h"

namespace idxsel::rt {
namespace {

using advisor::AdvisorOptions;
using advisor::FallbackPolicy;
using advisor::Recommend;
using advisor::StrategyKind;
using advisor::StrategyName;
using costmodel::CostModel;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------ Deadline

TEST(DeadlineTest, DefaultIsUnbounded) {
  Deadline d;
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), kInf);
}

TEST(DeadlineTest, InfiniteBudgetStaysUnbounded) {
  const Deadline d = Deadline::After(kInf);
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, NonPositiveBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(0.0).expired());
  EXPECT_TRUE(Deadline::After(-3.5).expired());
  EXPECT_EQ(Deadline::After(0.0).remaining_seconds(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetNotExpired) {
  const Deadline d = Deadline::After(3600.0);
  EXPECT_TRUE(d.bounded());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(DeadlineTest, CancellationTokenFiresAndResets) {
  CancellationToken token;
  Deadline d;  // unbounded, but carries the token
  d.set_cancellation(&token);
  EXPECT_FALSE(d.expired());
  token.RequestCancel();
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
  token.Reset();
  EXPECT_FALSE(d.expired());
}

TEST(DeadlinePollerTest, StrideAmortizesClockReads) {
  const Deadline dead = Deadline::After(0.0);
  DeadlinePoller poller(dead, /*stride=*/64);
  // The first stride-1 calls return false without consulting the clock.
  for (int i = 0; i < 63; ++i) {
    EXPECT_FALSE(poller.Expired()) << "call " << i;
    EXPECT_FALSE(poller.expired());
  }
  // Call 64 hits the clock and latches.
  EXPECT_TRUE(poller.Expired());
  EXPECT_TRUE(poller.expired());
  EXPECT_TRUE(poller.Expired());  // stays expired
}

TEST(DeadlinePollerTest, StrideOneChecksEveryCall) {
  const Deadline dead = Deadline::After(0.0);
  DeadlinePoller poller(dead, /*stride=*/1);
  EXPECT_TRUE(poller.Expired());
}

TEST(DeadlinePollerTest, UnboundedDeadlineNeverExpires) {
  const Deadline dead;
  DeadlinePoller poller(dead);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(poller.Expired());
}

// ------------------------------------------------- FaultInjectingBackend

struct TinyEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit TinyEnv(uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 10;
    params.queries_per_table = 20;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

TEST(FaultInjectionTest, ZeroProbabilitiesPassThrough) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  for (workload::QueryId j = 0; j < env.w.num_queries(); ++j) {
    EXPECT_DOUBLE_EQ(chaos.BaseCost(j), env.backend->BaseCost(j));
  }
  EXPECT_EQ(chaos.stats().total_injected(), 0u);
  EXPECT_EQ(chaos.stats().calls, env.w.num_queries());
}

TEST(FaultInjectionTest, CertainNanCorruptsEveryCall) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.nan_probability = 1.0;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  for (workload::QueryId j = 0; j < 10; ++j) {
    EXPECT_TRUE(std::isnan(chaos.BaseCost(j)));
  }
  EXPECT_EQ(chaos.stats().injected_nan, 10u);
}

TEST(FaultInjectionTest, HealthyWarmupIsTruthful) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.nan_probability = 1.0;
  fopts.healthy_calls = 5;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  for (workload::QueryId j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(chaos.BaseCost(j), env.backend->BaseCost(j));
  }
  EXPECT_TRUE(std::isnan(chaos.BaseCost(5)));
}

TEST(FaultInjectionTest, OutageWindowIsExact) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.fail_after_calls = 2;
  fopts.fail_burst = 3;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  for (workload::QueryId j = 0; j < 8; ++j) {
    const double v = chaos.BaseCost(j);
    if (j >= 2 && j < 5) {
      EXPECT_TRUE(std::isnan(v)) << "call " << j;
    } else {
      EXPECT_DOUBLE_EQ(v, env.backend->BaseCost(j)) << "call " << j;
    }
  }
  EXPECT_EQ(chaos.stats().injected_outage, 3u);
}

TEST(FaultInjectionTest, SameSeedSameFaultSequence) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.seed = 42;
  fopts.nan_probability = 0.2;
  fopts.inf_probability = 0.2;
  fopts.negative_probability = 0.2;
  FaultInjectingBackend a(env.backend.get(), fopts);
  FaultInjectingBackend b(env.backend.get(), fopts);
  for (workload::QueryId j = 0; j < env.w.num_queries(); ++j) {
    const double va = a.BaseCost(j);
    const double vb = b.BaseCost(j);
    // Bitwise-identical fault decisions (NaN != NaN, so compare via bits).
    EXPECT_EQ(std::isnan(va), std::isnan(vb)) << j;
    if (!std::isnan(va)) {
      EXPECT_DOUBLE_EQ(va, vb) << j;
    }
  }
  EXPECT_EQ(a.stats().injected_nan, b.stats().injected_nan);
  EXPECT_EQ(a.stats().injected_inf, b.stats().injected_inf);
  EXPECT_EQ(a.stats().injected_negative, b.stats().injected_negative);
}

TEST(FaultInjectionTest, NegativeInjectionFlipsSign) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.negative_probability = 1.0;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  const double truthful = env.backend->BaseCost(0);
  ASSERT_GT(truthful, 0.0);
  EXPECT_DOUBLE_EQ(chaos.BaseCost(0), -truthful);
}

// ------------------------------------------------ WhatIfEngine sanitization

/// Backend whose answers are overridable per method; unset methods
/// delegate to the truthful inner backend.
struct EvilBackend : public costmodel::WhatIfBackend {
  const costmodel::WhatIfBackend* inner;
  bool evil_base = false;
  bool evil_cost = false;
  bool evil_memory = false;
  bool evil_maintenance = false;
  double evil_value = kNaN;

  explicit EvilBackend(const costmodel::WhatIfBackend* truthful)
      : inner(truthful) {}

  double BaseCost(costmodel::QueryId j) const override {
    return evil_base ? evil_value : inner->BaseCost(j);
  }
  double CostWithIndex(costmodel::QueryId j, const Index& k) const override {
    return evil_cost ? evil_value : inner->CostWithIndex(j, k);
  }
  double IndexMemory(const Index& k) const override {
    return evil_memory ? evil_value : inner->IndexMemory(k);
  }
  double MaintenanceCost(costmodel::QueryId j, const Index& k) const override {
    return evil_maintenance ? evil_value : inner->MaintenanceCost(j, k);
  }
};

TEST(SanitizeTest, HealthyBackendStaysHealthy) {
  TinyEnv env;
  WhatIfEngine engine(&env.w, env.backend.get());
  engine.WorkloadCost(IndexConfig{});
  EXPECT_TRUE(engine.health().ok());
  EXPECT_EQ(engine.stats().sanitized, 0u);
}

TEST(SanitizeTest, NanBaseCostClampedToZero) {
  TinyEnv env;
  EvilBackend evil(env.backend.get());
  evil.evil_base = true;
  evil.evil_value = kNaN;
  WhatIfEngine engine(&env.w, &evil);
  EXPECT_DOUBLE_EQ(engine.BaseCost(0), 0.0);
  EXPECT_GE(engine.stats().sanitized, 1u);
  EXPECT_FALSE(engine.health().ok());
  EXPECT_EQ(engine.health().code(), StatusCode::kInternal);
  EXPECT_NE(engine.health().message().find("NaN"), std::string::npos);
}

TEST(SanitizeTest, GarbageIndexCostFallsBackToBaseCost) {
  TinyEnv env;
  EvilBackend evil(env.backend.get());
  evil.evil_cost = true;
  for (double garbage : {kNaN, kInf, -5.0}) {
    evil.evil_value = garbage;
    WhatIfEngine engine(&env.w, &evil);
    // Find an applicable (query, index) pair so the backend is consulted.
    bool checked = false;
    for (workload::QueryId j = 0; j < env.w.num_queries() && !checked; ++j) {
      for (workload::AttributeId i = 0; i < env.w.num_attributes(); ++i) {
        const Index k(i);
        if (!engine.Applicable(j, k)) continue;
        EXPECT_DOUBLE_EQ(engine.CostWithIndex(j, k), engine.BaseCost(j));
        checked = true;
        break;
      }
    }
    ASSERT_TRUE(checked);
    EXPECT_FALSE(engine.health().ok());
  }
}

TEST(SanitizeTest, GarbageIndexMemoryBecomesInfinite) {
  TinyEnv env;
  EvilBackend evil(env.backend.get());
  evil.evil_memory = true;
  for (double garbage : {kNaN, -1.0}) {
    evil.evil_value = garbage;
    WhatIfEngine engine(&env.w, &evil);
    // +infinity: the index can never fit a finite budget, and the cached
    // value keeps every later feasibility check consistent.
    EXPECT_EQ(engine.IndexMemory(Index(0)), kInf);
    EXPECT_EQ(engine.IndexMemory(Index(0)), kInf);  // cached
    EXPECT_GE(engine.stats().sanitized, 1u);
  }
}

TEST(SanitizeTest, GarbageMaintenanceCostClampedToZero) {
  TinyEnv env;
  EvilBackend evil(env.backend.get());
  evil.evil_maintenance = true;
  evil.evil_value = -100.0;
  WhatIfEngine engine(&env.w, &evil);
  EXPECT_DOUBLE_EQ(engine.MaintenancePenalty(Index(0)), 0.0);
}

TEST(SanitizeTest, WorkloadCostStaysFiniteUnderTotalNanBackend) {
  TinyEnv env;
  FaultInjectionOptions fopts;
  fopts.nan_probability = 1.0;
  FaultInjectingBackend chaos(env.backend.get(), fopts);
  WhatIfEngine engine(&env.w, &chaos);
  IndexConfig config;
  config.Insert(Index(0));
  const double cost = engine.WorkloadCost(config);
  EXPECT_TRUE(std::isfinite(cost));
  EXPECT_GE(cost, 0.0);
  EXPECT_FALSE(engine.health().ok());
}

// ----------------------------------------------------------- chaos matrix

/// Deterministically derives a fault mix from the chaos seed so the 13
/// seeds cover NaN-heavy, Inf-heavy, negative, outage, and latency mixes.
FaultInjectionOptions ChaosOptions(uint64_t seed) {
  FaultInjectionOptions fopts;
  fopts.seed = seed;
  fopts.nan_probability = 0.06 * static_cast<double>(seed % 3);
  fopts.inf_probability = 0.05 * static_cast<double>((seed / 3) % 3);
  fopts.negative_probability = 0.05 * static_cast<double>((seed / 9) % 3);
  fopts.fail_after_calls = 20 * seed;
  fopts.fail_burst = seed % 6;
  fopts.healthy_calls = seed % 4;
  if (seed == 13) {
    // One latency-heavy seed: short stalls, enough to trip the deadline.
    fopts.latency_probability = 0.05;
    fopts.latency_seconds = 1e-4;
  }
  return fopts;
}

class ChaosTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, uint64_t>> {};

TEST_P(ChaosTest, NoCrashNoGarbageUnderFaultsAndDeadline) {
  const StrategyKind strategy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  TinyEnv env(seed);
  FaultInjectingBackend chaos(env.backend.get(), ChaosOptions(seed));
  WhatIfEngine engine(&env.w, &chaos);

  AdvisorOptions options;
  options.strategy = strategy;
  options.budget_fraction = 0.25;
  options.time_limit_seconds = 0.010;  // 10 ms
  options.solver.mip_gap = 0.05;

  auto rec = Recommend(engine, options);
  ASSERT_TRUE(rec.ok()) << StrategyName(strategy) << " seed=" << seed << ": "
                        << rec.status().ToString();
  // No garbage leaks into the recommendation, whatever the backend did.
  EXPECT_TRUE(std::isfinite(rec->budget)) << StrategyName(strategy);
  EXPECT_TRUE(std::isfinite(rec->cost_before)) << StrategyName(strategy);
  EXPECT_TRUE(std::isfinite(rec->cost_after)) << StrategyName(strategy);
  EXPECT_TRUE(std::isfinite(rec->memory)) << StrategyName(strategy);
  EXPECT_GE(rec->cost_after, 0.0);
  // The incumbent respects the (sanitized) budget.
  EXPECT_LE(rec->memory, rec->budget + 1e-6)
      << StrategyName(strategy) << " seed=" << seed;
  // A run whose backend actually misbehaved must be flagged degraded.
  if (!engine.health().ok()) {
    EXPECT_TRUE(rec->degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesTimesSeeds, ChaosTest,
    ::testing::Combine(
        ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                          StrategyKind::kH2, StrategyKind::kH3,
                          StrategyKind::kH4, StrategyKind::kH4Skyline,
                          StrategyKind::kH5, StrategyKind::kCophy),
        ::testing::Range<uint64_t>(1, 14)));

// Same chaos, but with the pipeline explicitly parallel: four lanes
// hammering the (thread-safe) fault-injecting backend through the sharded
// caches. Fault *placement* is scheduler-dependent here — the assertions
// are the structural ones (no crash, no garbage, feasible incumbent),
// which must hold for every interleaving.
class ParallelChaosTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, uint64_t>> {};

TEST_P(ParallelChaosTest, FourThreadsNoCrashNoGarbage) {
  const StrategyKind strategy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  TinyEnv env(seed);
  FaultInjectingBackend chaos(env.backend.get(), ChaosOptions(seed));
  WhatIfEngine engine(&env.w, &chaos);

  AdvisorOptions options;
  options.strategy = strategy;
  options.threads = 4;
  options.budget_fraction = 0.25;
  options.time_limit_seconds = 0.010;
  options.solver.mip_gap = 0.05;

  auto rec = Recommend(engine, options);
  ASSERT_TRUE(rec.ok()) << StrategyName(strategy) << " seed=" << seed;
  EXPECT_TRUE(std::isfinite(rec->cost_after)) << StrategyName(strategy);
  EXPECT_TRUE(std::isfinite(rec->memory)) << StrategyName(strategy);
  EXPECT_GE(rec->cost_after, 0.0);
  EXPECT_LE(rec->memory, rec->budget + 1e-6)
      << StrategyName(strategy) << " seed=" << seed;
  if (!engine.health().ok()) {
    EXPECT_TRUE(rec->degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesSeeds, ParallelChaosTest,
    ::testing::Combine(::testing::Values(StrategyKind::kRecursive,
                                         StrategyKind::kH5,
                                         StrategyKind::kCophy),
                       ::testing::Range<uint64_t>(1, 6)));

TEST(ParallelChaosTest, PortfolioRaceSurvivesFaults) {
  // The full tentpole under chaos: H6 raced against H4 and H5 on four
  // threads, against a misbehaving backend with a tight deadline. The
  // winner must still be feasible and finite.
  TinyEnv env(5);
  FaultInjectingBackend chaos(env.backend.get(), ChaosOptions(5));
  WhatIfEngine engine(&env.w, &chaos);

  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.portfolio = {StrategyKind::kH4, StrategyKind::kH5};
  options.threads = 4;
  options.candidate_limit = 40;
  options.budget_fraction = 0.25;
  options.time_limit_seconds = 0.020;

  auto rec = Recommend(engine, options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(std::isfinite(rec->cost_after));
  EXPECT_LE(rec->memory, rec->budget + 1e-6);
  EXPECT_GE(rec->cost_after, 0.0);
}

// ------------------------------------------- Fig. 2 workload acceptance

class ScalableDeadlineTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ScalableDeadlineTest, FiftyMsDeadlineYieldsTimeoutIncumbent) {
  // The paper's Fig. 2 scalable workload at its default size (10 tables,
  // 50 attributes and 100 queries per table) is far too large for any
  // strategy to finish in 50 ms — every one must cut over to its anytime
  // path and return a feasible incumbent flagged Timeout.
  workload::ScalableWorkloadParams params;  // defaults = Fig. 2 shape
  workload::Workload w = workload::GenerateScalableWorkload(params);
  CostModel model(&w);
  ModelBackend backend(&model);
  WhatIfEngine engine(&w, &backend);

  AdvisorOptions options;
  options.strategy = GetParam();
  options.budget_fraction = 0.25;
  options.time_limit_seconds = 0.050;
  options.solver.mip_gap = 0.05;

  auto rec = Recommend(engine, options);
  ASSERT_TRUE(rec.ok()) << StrategyName(GetParam());
  EXPECT_EQ(rec->status.code(), StatusCode::kTimeout)
      << StrategyName(GetParam()) << ": " << rec->status.ToString();
  EXPECT_TRUE(rec->dnf);
  EXPECT_TRUE(rec->degraded);
  EXPECT_LE(rec->memory, rec->budget + 1e-6);
  EXPECT_TRUE(std::isfinite(rec->cost_after));
  // Terminates promptly: the strategy stops within a poll stride of the
  // wire; the generous bound absorbs sanitizer builds and the unbounded
  // fallback pass.
  EXPECT_LT(rec->runtime_seconds, 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ScalableDeadlineTest,
    ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                      StrategyKind::kH2, StrategyKind::kH3,
                      StrategyKind::kH4, StrategyKind::kH4Skyline,
                      StrategyKind::kH5, StrategyKind::kCophy));

}  // namespace
}  // namespace idxsel::rt
