// Tests for budget grids, strategy sweeps, and series rendering.

#include <gtest/gtest.h>

#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "frontier/frontier.h"
#include "workload/scalable_generator.h"

namespace idxsel::frontier {
namespace {

using costmodel::CostModel;
using costmodel::Index;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  TestEnv() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 8;
    params.queries_per_table = 15;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }
};

TEST(BudgetGridTest, InclusiveEndpointsAndSpacing) {
  const std::vector<double> grid = BudgetGrid(0.0, 0.4, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.4);
  EXPECT_DOUBLE_EQ(grid[1], 0.1);
}

TEST(SweepTest, RunsStrategyAtEveryBudget) {
  TestEnv s;
  const std::vector<double> grid = BudgetGrid(0.0, 0.3, 4);
  size_t invocations = 0;
  const FrontierSeries series = SweepStrategy(
      *s.engine, s.model->TotalSingleAttributeMemory(), grid, "H6",
      [&](double budget) {
        ++invocations;
        core::RecursiveOptions options;
        options.budget = budget;
        StrategyOutcome outcome;
        outcome.selection =
            core::SelectRecursive(*s.engine, options).selection;
        return outcome;
      });
  EXPECT_EQ(invocations, 4u);
  ASSERT_EQ(series.points.size(), 4u);
  EXPECT_EQ(series.label, "H6");
  // w=0 point selects nothing; costs weakly decrease along the sweep.
  EXPECT_EQ(series.points.front().num_indexes, 0u);
  for (size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_LE(series.points[i].cost, series.points[i - 1].cost * 1.02);
    EXPECT_LE(series.points[i].memory, series.points[i].budget + 1e-6);
  }
}

TEST(SweepTest, NormalizeDividesByUnindexedCost) {
  TestEnv s;
  const std::vector<double> grid = BudgetGrid(0.0, 0.2, 3);
  FrontierSeries series =
      SweepStrategy(*s.engine, s.model->TotalSingleAttributeMemory(), grid,
                    "noop", [&](double) { return StrategyOutcome{}; });
  NormalizeCosts(*s.engine, &series);
  for (const FrontierPoint& p : series.points) {
    EXPECT_NEAR(p.cost, 1.0, 1e-9);  // empty selection = baseline
  }
}

TEST(RenderTest, TableContainsLabelsAndDnf) {
  FrontierSeries a;
  a.label = "H6";
  a.points = {{0.1, 100.0, 90.0, 0.5, 3, false}};
  FrontierSeries b;
  b.label = "CoPhy";
  b.points = {{0.1, 100.0, 95.0, 0.4, 4, true}};
  const std::string table = RenderSeriesTable({a, b});
  EXPECT_NE(table.find("H6"), std::string::npos);
  EXPECT_NE(table.find("CoPhy"), std::string::npos);
  EXPECT_NE(table.find("0.4*"), std::string::npos);  // DNF incumbent marker
}

TEST(RenderTest, CsvRoundTrip) {
  FrontierSeries a;
  a.label = "H6";
  a.points = {{0.1, 100.0, 90.0, 0.5, 3, false},
              {0.2, 200.0, 180.0, 0.4, 5, false}};
  const std::string path = ::testing::TempDir() + "/frontier_test.csv";
  ASSERT_TRUE(WriteSeriesCsv({a}, path).ok());
}

}  // namespace
}  // namespace idxsel::frontier
