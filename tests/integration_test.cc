// Cross-module integration tests: the full pipeline
// workload -> candidates -> {H1..H5, CoPhy, H6} -> frontier, checking the
// paper's qualitative claims at laptop scale.

#include <gtest/gtest.h>

#include <algorithm>

#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "engine/measured_cost.h"
#include "frontier/frontier.h"
#include "selection/heuristics.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using candidates::CandidateSet;
using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::IndexConfig;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

/// Sanitizer instrumentation slows the solver roughly an order of
/// magnitude, turning wall-clock-bounded Table-I-regime solves into
/// spurious DNFs; timing-sensitive tests skip themselves there.
constexpr bool RunningUnderSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

struct Pipeline {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;
  CandidateSet all_candidates;

  explicit Pipeline(uint32_t queries_per_table = 30, uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 3;
    params.attributes_per_table = 12;
    params.queries_per_table = queries_per_table;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
    all_candidates = EnumerateAllCandidates(w, 4);
  }
};

TEST(IntegrationTest, H6NearCophyOptimalAndBeatsSmallCandidateSets) {
  if (RunningUnderSanitizer()) {
    GTEST_SKIP() << "60 s paper-budget solve times out under sanitizers";
  }
  Pipeline p(/*queries_per_table=*/15);
  const double budget = p.model->Budget(0.2);

  // The exhaustive-candidate solve is the paper's Table-I "hard" regime;
  // run it exactly like the paper does: 5% MIP gap (plus a safety
  // deadline). The proven bound still brackets the true optimum.
  mip::SolveOptions paper_gap;
  paper_gap.mip_gap = 0.05;
  paper_gap.time_limit_seconds = 60.0;
  const cophy::CophyResult optimal =
      cophy::SolveCophy(*p.engine, p.all_candidates, budget, paper_gap);
  ASSERT_TRUE(optimal.status.ok()) << optimal.status.ToString();

  // CoPhy with a heavily reduced H1-M candidate set.
  const CandidateSet small = candidates::GenerateCandidates(
      p.w, candidates::CandidateHeuristic::kH1M,
      std::max<size_t>(8, p.all_candidates.size() / 20), 4);
  const cophy::CophyResult reduced =
      cophy::SolveCophy(*p.engine, small, budget, paper_gap);
  ASSERT_TRUE(reduced.status.ok());

  core::RecursiveOptions options;
  options.budget = budget;
  const core::RecursiveResult h6 = core::SelectRecursive(*p.engine, options);

  // The figures compare absolute workload costs, so the right robust
  // metric is the achieved cost *reduction* (benefit). On tiny workloads a
  // single jackpot query can keep greedy construction from the last few
  // percent at a budget knife-edge, which would make a residual-cost ratio
  // meaningless while the frontier curves still almost coincide.
  const double base = p.engine->WorkloadCost(IndexConfig{});
  const double benefit_h6 = base - h6.objective;
  const double benefit_optimal = base - optimal.objective;
  const double benefit_reduced = base - reduced.objective;
  // Claim 1: H6 realizes nearly all of the exhaustive-candidate optimum's
  // improvement.
  EXPECT_GE(benefit_h6, 0.90 * benefit_optimal);
  // Claim 2: H6 is at least on par with CoPhy on a 20x-reduced set.
  EXPECT_GE(benefit_h6, 0.95 * benefit_reduced);
  // Sanity: nothing beats the proven lower bound.
  EXPECT_GE(h6.objective, optimal.best_bound * (1.0 - 1e-9));
  EXPECT_GE(reduced.objective, optimal.best_bound * (1.0 - 1e-9));
}

TEST(IntegrationTest, H6BeatsRuleBasedHeuristics) {
  Pipeline p;
  const double budget = p.model->Budget(0.2);
  core::RecursiveOptions options;
  options.budget = budget;
  const double h6 = core::SelectRecursive(*p.engine, options).objective;
  for (selection::RuleHeuristic h :
       {selection::RuleHeuristic::kH1, selection::RuleHeuristic::kH2,
        selection::RuleHeuristic::kH3}) {
    const double rule =
        selection::SelectRuleBased(*p.engine, p.all_candidates, budget, h)
            .objective;
    EXPECT_LE(h6, rule * 1.001);
  }
}

TEST(IntegrationTest, H6FewerWhatIfCallsThanCophyProblemBuild) {
  Pipeline p(60);
  const double budget = p.model->Budget(0.2);

  p.engine->ResetStats();
  core::RecursiveOptions options;
  options.budget = budget;
  const core::RecursiveResult h6 = core::SelectRecursive(*p.engine, options);
  const uint64_t h6_calls = h6.whatif_calls;

  // Fresh engine so CoPhy pays its own calls.
  WhatIfEngine engine2(&p.w, p.backend.get());
  cophy::BuildProblem(engine2, p.all_candidates, budget);
  const uint64_t cophy_calls = engine2.stats().calls;

  EXPECT_LT(h6_calls, cophy_calls)
      << "H6 " << h6_calls << " vs CoPhy " << cophy_calls;
}

TEST(IntegrationTest, ComplementingCandidatesNeverHurtsCophy) {
  // Section III-B: adding H6's indexes to a candidate set can only improve
  // CoPhy's optimal selection.
  Pipeline p;
  const double budget = p.model->Budget(0.15);
  CandidateSet small = candidates::GenerateCandidates(
      p.w, candidates::CandidateHeuristic::kH1M, 12, 4);
  const cophy::CophyResult before =
      cophy::SolveCophy(*p.engine, small, budget);

  core::RecursiveOptions options;
  options.budget = budget;
  const core::RecursiveResult h6 = core::SelectRecursive(*p.engine, options);
  CandidateSet complemented = small;
  for (const costmodel::Index& k : h6.selection.indexes()) {
    complemented.Add(k);
  }
  const cophy::CophyResult after =
      cophy::SolveCophy(*p.engine, complemented, budget);
  ASSERT_TRUE(before.status.ok());
  ASSERT_TRUE(after.status.ok());
  EXPECT_LE(after.objective, before.objective * (1.0 + 1e-9));
  // And the complemented run is at least as good as H6 itself.
  EXPECT_LE(after.objective, h6.objective * (1.0 + 1e-9));
}

TEST(IntegrationTest, FrontierSweepOrdersStrategiesConsistently) {
  Pipeline p;
  const std::vector<double> grid = frontier::BudgetGrid(0.05, 0.35, 4);
  const double total = p.model->TotalSingleAttributeMemory();

  const frontier::FrontierSeries h6_series = frontier::SweepStrategy(
      *p.engine, total, grid, "H6", [&](double budget) {
        core::RecursiveOptions options;
        options.budget = budget;
        frontier::StrategyOutcome outcome;
        outcome.selection =
            core::SelectRecursive(*p.engine, options).selection;
        return outcome;
      });
  const frontier::FrontierSeries h1_series = frontier::SweepStrategy(
      *p.engine, total, grid, "H1", [&](double budget) {
        frontier::StrategyOutcome outcome;
        outcome.selection =
            selection::SelectRuleBased(*p.engine, p.all_candidates, budget,
                                       selection::RuleHeuristic::kH1)
                .selection;
        return outcome;
      });
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_LE(h6_series.points[i].cost, h1_series.points[i].cost * 1.001)
        << "w=" << grid[i];
  }
}

TEST(IntegrationTest, MeasuredCostsPreserveStrategyRanking) {
  // Section IV-B in miniature: feed *measured* engine runtimes into both
  // H6 and the H1 rule; H6 must stay ahead (ranking robustness, not exact
  // values).
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 8;
  params.queries_per_table = 12;
  params.rows_per_table_step = 15'000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const engine::Database db(&w, 15'000, 5);
  engine::MeasuredCostSource measured(&db, /*repetitions=*/3, /*seed=*/17);
  WhatIfEngine engine(&w, &measured);

  // Budget: half of all single-attribute index memory (measured sizes).
  double total = 0.0;
  for (workload::AttributeId i = 0; i < w.num_attributes(); ++i) {
    total += engine.IndexMemory(costmodel::Index(i));
  }
  const double budget = 0.4 * total;

  core::RecursiveOptions options;
  options.budget = budget;
  const core::RecursiveResult h6 = core::SelectRecursive(engine, options);

  const CandidateSet cands = EnumerateAllCandidates(w, 3);
  const selection::SelectionResult h1 = selection::SelectRuleBased(
      engine, cands, budget, selection::RuleHeuristic::kH1);

  EXPECT_LE(engine.WorkloadCost(h6.selection),
            engine.WorkloadCost(h1.selection) * 1.10);
  EXPECT_LE(engine.ConfigMemory(h6.selection), budget * 1.0001);
}

}  // namespace
}  // namespace idxsel
