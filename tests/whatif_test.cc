// Tests for the caching what-if engine: transparency, call accounting, and
// key canonicalization.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/hash.h"
#include "costmodel/cost_model.h"
#include "costmodel/reconfiguration.h"
#include "costmodel/what_if.h"
#include "exec/thread_pool.h"
#include "workload/scalable_generator.h"

namespace idxsel::costmodel {
namespace {

class WhatIfFixture : public ::testing::Test {
 protected:
  WhatIfFixture() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 8;
    params.queries_per_table = 15;
    w_ = workload::GenerateScalableWorkload(params);
    model_ = std::make_unique<CostModel>(&w_);
    backend_ = std::make_unique<ModelBackend>(model_.get());
  }

  workload::Workload w_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<ModelBackend> backend_;
};

TEST_F(WhatIfFixture, CacheTransparency) {
  // Every cost served by the engine equals the backend's answer.
  WhatIfEngine engine(&w_, backend_.get());
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    EXPECT_DOUBLE_EQ(engine.BaseCost(j), model_->UnindexedCost(j));
    for (workload::AttributeId i : w_.query(j).attributes) {
      EXPECT_DOUBLE_EQ(engine.CostWithIndex(j, Index(i)),
                       model_->CostWithIndex(j, Index(i)));
    }
  }
}

TEST_F(WhatIfFixture, RepeatedCallsHitTheCache) {
  WhatIfEngine engine(&w_, backend_.get());
  const Index k(w_.query(0).attributes.front());
  engine.CostWithIndex(0, k);
  const uint64_t calls = engine.stats().calls;
  engine.CostWithIndex(0, k);
  engine.CostWithIndex(0, k);
  EXPECT_EQ(engine.stats().calls, calls);
  EXPECT_GE(engine.stats().cache_hits, 2u);
}

TEST_F(WhatIfFixture, InapplicableIndexDoesNotCallBackend) {
  WhatIfEngine engine(&w_, backend_.get());
  // An attribute not accessed by query 0 on the same table, or any
  // attribute of the other table, is inapplicable.
  const workload::Query& q = w_.query(0);
  workload::AttributeId other = workload::kInvalidAttribute;
  for (workload::AttributeId i = 0; i < w_.num_attributes(); ++i) {
    if (w_.attribute(i).table == q.table &&
        !std::binary_search(q.attributes.begin(), q.attributes.end(), i)) {
      other = i;
      break;
    }
  }
  ASSERT_NE(other, workload::kInvalidAttribute);
  const double base = engine.BaseCost(0);
  const uint64_t calls = engine.stats().calls;
  EXPECT_DOUBLE_EQ(engine.CostWithIndex(0, Index(other)), base);
  EXPECT_EQ(engine.stats().calls, calls);
  EXPECT_GE(engine.stats().skipped_inapplicable, 1u);
}

TEST_F(WhatIfFixture, CanonicalizationSharesEquivalentCalls) {
  WhatIfEngine engine(&w_, backend_.get(), /*canonicalize_keys=*/true);
  // Find a query with >= 2 attributes; permutations of the fully-covered
  // prefix must hit the same cache slot.
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    const auto& attrs = w_.query(j).attributes;
    if (attrs.size() < 2) continue;
    const Index ab = Index(attrs[0]).Append(attrs[1]);
    const Index ba = Index(attrs[1]).Append(attrs[0]);
    engine.CostWithIndex(j, ab);
    const uint64_t calls = engine.stats().calls;
    const double cost = engine.CostWithIndex(j, ba);
    EXPECT_EQ(engine.stats().calls, calls) << "permutation missed cache";
    EXPECT_DOUBLE_EQ(cost, model_->CostWithIndex(j, ab));
    return;
  }
  FAIL() << "no multi-attribute query in the generated workload";
}

TEST_F(WhatIfFixture, NoCanonicalizationKeepsDistinctKeys) {
  WhatIfEngine engine(&w_, backend_.get(), /*canonicalize_keys=*/false);
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    const auto& attrs = w_.query(j).attributes;
    if (attrs.size() < 2) continue;
    const Index ab = Index(attrs[0]).Append(attrs[1]);
    const Index ba = Index(attrs[1]).Append(attrs[0]);
    engine.CostWithIndex(j, ab);
    const uint64_t calls = engine.stats().calls;
    engine.CostWithIndex(j, ba);
    EXPECT_EQ(engine.stats().calls, calls + 1);
    return;
  }
  FAIL() << "no multi-attribute query in the generated workload";
}

TEST_F(WhatIfFixture, WorkloadCostMatchesModel) {
  WhatIfEngine engine(&w_, backend_.get());
  IndexConfig config;
  config.Insert(Index(w_.query(0).attributes.front()));
  double expected = 0.0;
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    expected += w_.query(j).frequency * model_->CostOneIndex(j, config);
  }
  EXPECT_NEAR(engine.WorkloadCost(config), expected, expected * 1e-12);
}

TEST_F(WhatIfFixture, ConfigMemorySumsIndexSizes) {
  WhatIfEngine engine(&w_, backend_.get());
  IndexConfig config;
  config.Insert(Index(0));
  config.Insert(Index(1));
  EXPECT_DOUBLE_EQ(engine.ConfigMemory(config),
                   model_->IndexMemory(Index(0)) +
                       model_->IndexMemory(Index(1)));
}

TEST_F(WhatIfFixture, InvalidateCostCacheForcesRecalls) {
  WhatIfEngine engine(&w_, backend_.get());
  engine.BaseCost(0);
  const uint64_t calls = engine.stats().calls;
  engine.InvalidateCostCache();
  engine.BaseCost(0);
  EXPECT_EQ(engine.stats().calls, calls + 1);
}

TEST_F(WhatIfFixture, ResetStatsZeroesCounters) {
  WhatIfEngine engine(&w_, backend_.get());
  engine.BaseCost(0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().calls, 0u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

#if defined(IDXSEL_OBS)
TEST_F(WhatIfFixture, ResetStatsKeepsCacheGaugesInSyncWithLiveCaches) {
  // Regression: ResetStats() resets *call accounting* only. The cache-size
  // gauges mirror live cache contents and must survive a stats reset, then
  // drop when the caches are actually invalidated.
  obs::Gauge* cost_entries =
      obs::Registry::Default().GetGauge("idxsel.whatif.cost_cache_entries");
  obs::Gauge* config_entries =
      obs::Registry::Default().GetGauge("idxsel.whatif.config_cache_entries");
  const int64_t cost_before = cost_entries->Value();
  const int64_t config_before = config_entries->Value();
  {
    WhatIfEngine engine(&w_, backend_.get());
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      for (workload::AttributeId i : w_.query(j).attributes) {
        engine.CostWithIndex(j, Index(i));
      }
    }
    IndexConfig config;
    config.Insert(Index(w_.query(0).attributes.front()));
    engine.CostWithConfig(0, config);
    const int64_t cost_filled = cost_entries->Value();
    const int64_t config_filled = config_entries->Value();
    EXPECT_GT(cost_filled, cost_before);
    EXPECT_GT(config_filled, config_before);

    engine.ResetStats();
    EXPECT_EQ(engine.stats().calls, 0u);
    EXPECT_EQ(cost_entries->Value(), cost_filled)
        << "ResetStats must not desynchronize the cost-cache gauge";
    EXPECT_EQ(config_entries->Value(), config_filled)
        << "ResetStats must not desynchronize the config-cache gauge";

    engine.InvalidateCostCache();
    EXPECT_EQ(cost_entries->Value(), cost_before);
    EXPECT_EQ(config_entries->Value(), config_before);
  }
  // Engine destruction pays back whatever its caches still held.
  EXPECT_EQ(cost_entries->Value(), cost_before);
  EXPECT_EQ(config_entries->Value(), config_before);
}
#endif  // defined(IDXSEL_OBS)

TEST_F(WhatIfFixture, ConfigCostMatchesMultiIndexModel) {
  WhatIfEngine engine(&w_, backend_.get());
  IndexConfig config;
  config.Insert(Index(w_.query(0).attributes.front()));
  if (w_.query(0).attributes.size() > 1) {
    config.Insert(Index(w_.query(0).attributes.back()));
  }
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    EXPECT_DOUBLE_EQ(engine.CostWithConfig(j, config),
                     model_->CostMultiIndex(j, config));
  }
}

TEST_F(WhatIfFixture, ConfigCostCachedPerRelevantSubset) {
  WhatIfEngine engine(&w_, backend_.get());
  IndexConfig config;
  config.Insert(Index(w_.query(0).attributes.front()));
  engine.CostWithConfig(0, config);
  const uint64_t calls = engine.stats().calls;
  // Adding an index of the *other* table must not invalidate the cache
  // entry for query 0 (key canonicalized to same-table indexes).
  const workload::TableId other_table = 1 - w_.query(0).table;
  config.Insert(Index(w_.table(other_table).attributes.front()));
  engine.CostWithConfig(0, config);
  EXPECT_EQ(engine.stats().calls, calls);
}

TEST_F(WhatIfFixture, ConfigCostAtMostOneIndexCost) {
  WhatIfEngine engine(&w_, backend_.get());
  IndexConfig config;
  for (workload::AttributeId a : w_.query(0).attributes) {
    config.Insert(Index(a));
  }
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    EXPECT_LE(engine.CostWithConfig(j, config),
              engine.CostWithIndex(j, Index(w_.query(0).attributes.front())) *
                  (1.0 + 1e-12));
  }
}

// ------------------------------------------------------- reconfiguration

TEST_F(WhatIfFixture, ReconfigurationCosts) {
  WhatIfEngine engine(&w_, backend_.get());
  ReconfigurationParams params;
  params.create_factor = 2.0;
  params.drop_cost = 10.0;
  const ReconfigurationModel reconfig(&engine, params);

  IndexConfig old_config;
  old_config.Insert(Index(0));
  old_config.Insert(Index(1));
  IndexConfig new_config;
  new_config.Insert(Index(1));
  new_config.Insert(Index(2));

  // Create (2), keep (1), drop (0).
  const double expected = 2.0 * engine.IndexMemory(Index(2)) + 10.0;
  EXPECT_DOUBLE_EQ(reconfig.Cost(new_config, old_config), expected);
}

TEST_F(WhatIfFixture, ReconfigurationIdenticalConfigsAreFree) {
  WhatIfEngine engine(&w_, backend_.get());
  const ReconfigurationModel reconfig(&engine);
  IndexConfig config;
  config.Insert(Index(0));
  EXPECT_DOUBLE_EQ(reconfig.Cost(config, config), 0.0);
}

// ------------------------------------------------------- cache hashing

TEST(WhatIfHashTest, CostKeyHashSpreadsLowAndHighBits) {
  // The cost-cache key hash is HashCombine(SplitMix64(query), index.Hash())
  // — the formula that replaced the multiplicative `hash * 1000003 + id`
  // chain, whose low bits stayed clustered for sequential query ids. Both
  // bit ends matter now: unordered_map buckets mask the low bits, shard
  // selection takes the high bits.
  constexpr size_t kQueries = 512;
  constexpr size_t kAttrs = 64;
  constexpr size_t kBuckets = 256;
  std::vector<size_t> low(kBuckets, 0);
  std::vector<size_t> high(kBuckets, 0);
  for (uint64_t j = 0; j < kQueries; ++j) {
    for (workload::AttributeId i = 0; i < kAttrs; ++i) {
      const uint64_t h = HashCombine(SplitMix64(j), Index(i).Hash());
      ++low[h & (kBuckets - 1)];
      ++high[h >> 56];
    }
  }
  const size_t expected = kQueries * kAttrs / kBuckets;
  for (size_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(low[b], expected / 2) << "low-bit bucket " << b;
    EXPECT_LT(low[b], expected * 2) << "low-bit bucket " << b;
    EXPECT_GT(high[b], expected / 2) << "high-bit bucket " << b;
    EXPECT_LT(high[b], expected * 2) << "high-bit bucket " << b;
  }
}

TEST(WhatIfHashTest, IndexHashFinalizationSpreadsSequentialAttributes) {
  // Single-attribute indexes over sequential attribute ids are the
  // adversarial input for the raw Index::Hash chain; IndexHash's
  // SplitMix64 finalizer must spread them over any power-of-two mask.
  constexpr size_t kIndexes = 16 * 1024;
  constexpr size_t kBuckets = 64;
  std::vector<size_t> bucket(kBuckets, 0);
  IndexHash hasher;
  for (workload::AttributeId i = 0; i < kIndexes; ++i) {
    ++bucket[hasher(Index(i)) & (kBuckets - 1)];
  }
  const size_t expected = kIndexes / kBuckets;
  for (size_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(bucket[b], expected * 3 / 4) << "bucket " << b;
    EXPECT_LT(bucket[b], expected * 5 / 4) << "bucket " << b;
  }
}

// --------------------------------------------------------- concurrency

TEST_F(WhatIfFixture, ConcurrentLookupsAreExactlyOncePerKey) {
  // Hammer one engine from several lanes with overlapping lookups: the
  // sharded caches must compute every key exactly once, so the backend
  // call count equals the serial run's and every answer stays truthful.
  WhatIfEngine serial_engine(&w_, backend_.get());
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    serial_engine.BaseCost(j);
    for (workload::AttributeId i : w_.query(j).attributes) {
      serial_engine.CostWithIndex(j, Index(i));
    }
  }
  const uint64_t serial_calls = serial_engine.stats().calls;

  WhatIfEngine engine(&w_, backend_.get());
  exec::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(
      4 * w_.num_queries(),
      [&](size_t unit) {
        const workload::QueryId j = unit % w_.num_queries();
        if (engine.BaseCost(j) != model_->UnindexedCost(j)) {
          mismatches.fetch_add(1);
        }
        for (workload::AttributeId i : w_.query(j).attributes) {
          if (engine.CostWithIndex(j, Index(i)) !=
              model_->CostWithIndex(j, Index(i))) {
            mismatches.fetch_add(1);
          }
        }
      },
      /*grain=*/1);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.stats().calls, serial_calls)
      << "concurrent lanes must not duplicate backend calls";
  EXPECT_GT(engine.stats().cache_hits, 0u);
}

TEST_F(WhatIfFixture, ConcurrentStatsAccountingBalances) {
  // calls + cache_hits together must equal the number of cost lookups
  // issued, even when lanes race on the same keys.
  WhatIfEngine engine(&w_, backend_.get());
  constexpr size_t kLanes = 4;
  constexpr size_t kRepeats = 50;
  uint64_t lookups = 0;
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    lookups += w_.query(j).attributes.size();
  }
  exec::ThreadPool pool(kLanes);
  pool.ParallelFor(
      kLanes * kRepeats,
      [&](size_t unit) {
        const size_t seed = unit * 2654435761u;
        for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
          const workload::QueryId q =
              (j + seed) % w_.num_queries();
          for (workload::AttributeId i : w_.query(q).attributes) {
            engine.CostWithIndex(q, Index(i));
          }
        }
      },
      /*grain=*/1);
  const WhatIfStats stats = engine.stats();
  EXPECT_EQ(stats.calls + stats.cache_hits, kLanes * kRepeats * lookups);
  EXPECT_EQ(stats.calls, lookups);  // exactly-once per distinct key
}

}  // namespace
}  // namespace idxsel::costmodel
