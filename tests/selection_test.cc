// Tests for the H1-H5 baseline selectors.

#include <gtest/gtest.h>

#include <algorithm>

#include "candidates/candidates.h"
#include "costmodel/cost_model.h"
#include "selection/heuristics.h"
#include "workload/scalable_generator.h"

namespace idxsel::selection {
namespace {

using candidates::CandidateSet;
using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;
  CandidateSet candidates;

  explicit TestEnv(uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 10;
    params.queries_per_table = 25;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
    candidates = EnumerateAllCandidates(w, 3);
  }
};

TEST(SelectionTest, AllHeuristicsRespectBudget) {
  TestEnv s;
  const double budget = s.model->Budget(0.2);
  const std::vector<SelectionResult> results = {
      SelectRuleBased(*s.engine, s.candidates, budget, RuleHeuristic::kH1),
      SelectRuleBased(*s.engine, s.candidates, budget, RuleHeuristic::kH2),
      SelectRuleBased(*s.engine, s.candidates, budget, RuleHeuristic::kH3),
      SelectByBenefit(*s.engine, s.candidates, budget, /*use_skyline=*/false),
      SelectByBenefit(*s.engine, s.candidates, budget, /*use_skyline=*/true),
      SelectByBenefitPerSize(*s.engine, s.candidates, budget),
  };
  for (const SelectionResult& r : results) {
    EXPECT_LE(r.memory, budget + 1e-6) << r.name;
    EXPECT_NEAR(r.memory, s.engine->ConfigMemory(r.selection), 1e-6);
    EXPECT_NEAR(r.objective, s.engine->WorkloadCost(r.selection), 1e-6);
  }
}

TEST(SelectionTest, NamesAreStable) {
  TestEnv s;
  const double budget = s.model->Budget(0.1);
  EXPECT_EQ(SelectRuleBased(*s.engine, s.candidates, budget,
                            RuleHeuristic::kH1)
                .name,
            "H1");
  EXPECT_EQ(SelectRuleBased(*s.engine, s.candidates, budget,
                            RuleHeuristic::kH2)
                .name,
            "H2");
  EXPECT_EQ(SelectRuleBased(*s.engine, s.candidates, budget,
                            RuleHeuristic::kH3)
                .name,
            "H3");
  EXPECT_EQ(SelectByBenefit(*s.engine, s.candidates, budget, false).name,
            "H4");
  EXPECT_EQ(SelectByBenefit(*s.engine, s.candidates, budget, true).name,
            "H4+skyline");
  EXPECT_EQ(SelectByBenefitPerSize(*s.engine, s.candidates, budget).name,
            "H5");
}

TEST(SelectionTest, ZeroBudgetSelectsNothing) {
  TestEnv s;
  for (const SelectionResult& r :
       {SelectRuleBased(*s.engine, s.candidates, 0.0, RuleHeuristic::kH1),
        SelectByBenefit(*s.engine, s.candidates, 0.0, false),
        SelectByBenefitPerSize(*s.engine, s.candidates, 0.0)}) {
    EXPECT_TRUE(r.selection.empty());
    EXPECT_NEAR(r.objective,
                s.engine->WorkloadCost(costmodel::IndexConfig{}), 1e-6);
  }
}

TEST(SelectionTest, SelectionsComeFromTheCandidateSet) {
  TestEnv s;
  const double budget = s.model->Budget(0.3);
  const SelectionResult r = SelectByBenefitPerSize(*s.engine, s.candidates,
                                                   budget);
  for (const costmodel::Index& k : r.selection.indexes()) {
    EXPECT_TRUE(s.candidates.Contains(k)) << k.ToString();
  }
}

TEST(SelectionTest, BenefitGreedyBeatsWorstRule) {
  // H4/H5 use measured benefits and should beat the pure-selectivity rule
  // H2 on this workload (H2 ignores frequency entirely).
  TestEnv s;
  const double budget = s.model->Budget(0.15);
  const double h2 =
      SelectRuleBased(*s.engine, s.candidates, budget, RuleHeuristic::kH2)
          .objective;
  const double h5 =
      SelectByBenefitPerSize(*s.engine, s.candidates, budget).objective;
  EXPECT_LE(h5, h2 + 1e-6);
}

TEST(SelectionTest, SkylineVariantUsesSubsetOfCandidates) {
  TestEnv s;
  const double budget = s.model->Budget(0.25);
  const SelectionResult with = SelectByBenefit(*s.engine, s.candidates,
                                               budget, true);
  const CandidateSet skyline =
      candidates::SkylineFilter(s.candidates, *s.engine);
  for (const costmodel::Index& k : with.selection.indexes()) {
    EXPECT_TRUE(skyline.Contains(k));
  }
}

// Property sweep: every heuristic, at every budget, returns a feasible
// selection whose objective matches the engine's independent evaluation
// and never exceeds the unindexed baseline. (Strict budget monotonicity
// does NOT hold for skip-and-continue greedy fills — a larger budget can
// admit a huge, ranking-early candidate that displaces many better small
// ones; that instability is one of the weaknesses the paper attributes to
// H4/H5-style selection.)
class SelectorSweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SelectorSweepTest, FeasibleAndConsistentAcrossBudgets) {
  TestEnv s(std::get<0>(GetParam()));
  const int which = std::get<1>(GetParam());
  auto run = [&](double budget) {
    switch (which) {
      case 0:
        return SelectRuleBased(*s.engine, s.candidates, budget,
                               RuleHeuristic::kH1);
      case 1:
        return SelectByBenefit(*s.engine, s.candidates, budget, false);
      default:
        return SelectByBenefitPerSize(*s.engine, s.candidates, budget);
    }
  };
  const double base = s.engine->WorkloadCost(costmodel::IndexConfig{});
  for (double w : {0.05, 0.1, 0.2, 0.4}) {
    const double budget = s.model->Budget(w);
    const SelectionResult r = run(budget);
    EXPECT_LE(r.memory, budget + 1e-6) << "w=" << w;
    EXPECT_LE(r.objective, base * (1.0 + 1e-12)) << "w=" << w;
    EXPECT_NEAR(r.objective, s.engine->WorkloadCost(r.selection),
                r.objective * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectorSweepTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace idxsel::selection
