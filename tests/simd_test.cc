// Dispatch-equivalence suite for idxsel::kernel::simd: the vector layer
// under the dense kernel is a pure performance feature, and its contract
// (kernel/simd.h, "FP-reduction-order contract") is that the AVX2 path
// and the scalar template produce bit-identical results in default mode —
// so a whole selection run must be byte-identical across dispatch levels:
// same recommendation, same construction trace, same journal bytes, same
// engine stats(), same telemetry counters, for every strategy, thread
// count, and kernel switch position.
//
// Two halves:
//
//   * the end-to-end matrix — all 8 strategies x threads {1,4} x kernel
//     {on,off} x dispatch {native,forced-scalar}, plus a serial
//     fault-injection probe (the strongest call-order detector we have);
//   * op-level fuzz — DenseCostTable rows of every length 0..67 with
//     random NaN patterns, plus raw reduction/filter/gather blocks,
//     compared bit-for-bit between both dispatch paths and an
//     independently written serial reference.
//
// On a host without AVX2 (or a binary built without the AVX2 TU) both
// dispatch legs run the scalar template and every equality holds
// trivially — same degradation story as kernel_test.cc under
// -DIDXSEL_ENABLE_KERNEL=OFF.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "kernel/kernel.h"
#include "kernel/simd.h"
#include "obs/journal.h"
#include "rt/fault_injection.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using advisor::AdvisorOptions;
using advisor::Recommendation;
using advisor::StrategyKind;
using advisor::StrategyName;
using costmodel::CostModel;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;
using costmodel::WhatIfStats;
namespace simd = kernel::simd;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit Env(size_t tables = 3, size_t attrs = 12, size_t queries = 30,
               uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = tables;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

/// Records journal entries for the duration of one run so the byte-level
/// journal comparison has something to compare (no-op with obs off).
class ScopedJournal {
 public:
  ScopedJournal() : previous_(obs::JournalEnabled()) {
    obs::SetJournalEnabled(true);
  }
  ~ScopedJournal() { obs::SetJournalEnabled(previous_); }
  ScopedJournal(const ScopedJournal&) = delete;
  ScopedJournal& operator=(const ScopedJournal&) = delete;

 private:
  bool previous_;
};

struct Outcome {
  Recommendation rec;
  WhatIfStats engine_stats;
};

std::optional<Outcome> RunWith(Env& env, AdvisorOptions options,
                               bool kernel_on, bool force_scalar) {
  kernel::ScopedKernelEnabled kguard(kernel_on);
  simd::ScopedForceScalar sguard(force_scalar);
  ScopedJournal journal;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return std::nullopt;
  return Outcome{*rec, engine.stats()};
}

/// Counters that must match between the two dispatch runs. Unlike
/// kernel_test.cc's kernel-on/off comparison, the kernel's own counters
/// stay IN here: both runs sit on the same side of the kernel switch, so
/// fast-path hits, fallback lookups, and mask-filtered query counts must
/// agree exactly — FilterMasks keeping a different slot set under AVX2
/// would surface right here. Only the scheduler-dependent counters are
/// excluded under threads > 1 (same list and reasoning as kernel_test.cc).
std::map<std::string, uint64_t> ComparableCounters(
    const obs::RunReport& report, size_t threads) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name == "idxsel.exec.steals") continue;
    if (threads > 1 &&
        (name == "idxsel.mip.nodes" || name == "idxsel.mip.bound_cutoffs" ||
         name == "idxsel.mip.incumbent_updates")) {
      continue;
    }
    out.emplace(name, value);
  }
  return out;
}

void ExpectSameOutcome(const Outcome& native, const Outcome& scalar,
                       const std::string& label, size_t threads = 1) {
  EXPECT_TRUE(native.rec.selection == scalar.rec.selection) << label;
  EXPECT_EQ(native.rec.cost_before, scalar.rec.cost_before) << label;
  EXPECT_EQ(native.rec.cost_after, scalar.rec.cost_after) << label;
  EXPECT_EQ(native.rec.memory, scalar.rec.memory) << label;
  EXPECT_EQ(native.rec.budget, scalar.rec.budget) << label;
  EXPECT_EQ(native.rec.status.code(), scalar.rec.status.code()) << label;
  EXPECT_EQ(native.rec.executed_strategy, scalar.rec.executed_strategy)
      << label;
  EXPECT_EQ(native.rec.whatif_calls, scalar.rec.whatif_calls) << label;

  ASSERT_EQ(native.rec.trace.size(), scalar.rec.trace.size()) << label;
  for (size_t s = 0; s < native.rec.trace.size(); ++s) {
    EXPECT_TRUE(native.rec.trace[s].after == scalar.rec.trace[s].after)
        << label << " step " << s;
    EXPECT_EQ(native.rec.trace[s].kind, scalar.rec.trace[s].kind)
        << label << " step " << s;
    EXPECT_EQ(native.rec.trace[s].ratio, scalar.rec.trace[s].ratio)
        << label << " step " << s;
    EXPECT_EQ(native.rec.trace[s].objective_after,
              scalar.rec.trace[s].objective_after)
        << label << " step " << s;
  }

  // Journal bytes: the full decision provenance — every candidate's
  // benefit, ratio, and margin rendered at %.17g — serializes
  // identically, which is a stronger probe than the trace alone because
  // it covers the *rejected* candidates' reductions too.
  EXPECT_EQ(obs::JournalToJsonl(native.rec.journal),
            obs::JournalToJsonl(scalar.rec.journal))
      << label;

  EXPECT_EQ(native.engine_stats.calls, scalar.engine_stats.calls) << label;
  EXPECT_EQ(native.engine_stats.cache_hits, scalar.engine_stats.cache_hits)
      << label;
  EXPECT_EQ(native.engine_stats.skipped_inapplicable,
            scalar.engine_stats.skipped_inapplicable)
      << label;
  EXPECT_EQ(native.engine_stats.sanitized, scalar.engine_stats.sanitized)
      << label;

  EXPECT_EQ(ComparableCounters(native.rec.report, threads),
            ComparableCounters(scalar.rec.report, threads))
      << label;
}

// ----------------------------------- strategies x threads x kernel matrix

class DispatchEquivalenceTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(DispatchEquivalenceTest, BitIdenticalAcrossDispatchLevels) {
  Env env;
  AdvisorOptions options;
  options.strategy = GetParam();
  options.candidate_limit = 60;
  for (const bool kernel_on : {true, false}) {
    for (const size_t threads : {1u, 4u}) {
      options.threads = threads;
      const std::string label = std::string(StrategyName(GetParam())) +
                                " kernel=" + (kernel_on ? "on" : "off") +
                                " threads=" + std::to_string(threads);
      const auto native =
          RunWith(env, options, kernel_on, /*force_scalar=*/false);
      const auto scalar =
          RunWith(env, options, kernel_on, /*force_scalar=*/true);
      ASSERT_TRUE(native.has_value() && scalar.has_value()) << label;
      ExpectSameOutcome(*native, *scalar, label, threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DispatchEquivalenceTest,
    ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                      StrategyKind::kH2, StrategyKind::kH3,
                      StrategyKind::kH4, StrategyKind::kH4Skyline,
                      StrategyKind::kH5, StrategyKind::kCophy));

// ------------------------------------------------- fault-injection probe

TEST(DispatchChaosTest, SerialBitIdenticalUnderFaults) {
  // The fault injector advances one PRNG per backend call; if the batched
  // what-if path consults the backend at all (it must not — cold units
  // demote to the legacy loop *before* any accounting), fault placement
  // shifts and the runs diverge. Same probe kernel_test.cc aims at the
  // kernel switch, aimed here at the dispatch switch.
  for (const uint64_t seed : {3u, 7u, 11u}) {
    Env env(2, 10, 20, seed);
    rt::FaultInjectionOptions fopts;
    fopts.seed = seed;
    fopts.nan_probability = 0.06;
    fopts.inf_probability = 0.04;
    fopts.negative_probability = 0.05;
    fopts.fail_after_calls = 25 * seed;
    fopts.fail_burst = seed % 5;

    AdvisorOptions options;
    options.strategy = StrategyKind::kRecursive;
    options.threads = 1;
    options.budget_fraction = 0.25;
    options.candidate_limit = 40;

    std::optional<Outcome> runs[2];
    uint64_t backend_calls[2] = {0, 0};
    for (const int pin : {0, 1}) {
      rt::FaultInjectingBackend chaos(env.backend.get(), fopts);
      kernel::ScopedKernelEnabled kguard(true);
      simd::ScopedForceScalar sguard(pin == 1);
      ScopedJournal journal;
      WhatIfEngine engine(&env.w, &chaos);
      const Result<Recommendation> rec = advisor::Recommend(engine, options);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      runs[pin] = Outcome{*rec, engine.stats()};
      backend_calls[pin] = chaos.stats().calls;
    }
    const std::string label = "chaos seed=" + std::to_string(seed);
    ExpectSameOutcome(*runs[0], *runs[1], label);
    EXPECT_EQ(backend_calls[0], backend_calls[1]) << label;
  }
}

// ------------------------------------------------------- op-level fuzz

/// splitmix64 — deterministic fuzz stream (same generator the auditor
/// uses for its synthetic blocks, different seeds).
uint64_t Mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// Serial references, written as the kernel/simd.h doc comments specify
// (MINPD tie semantics for min steps) and independent of simd_impl.h.

double RefSum(const double* row, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) acc += std::isnan(row[t]) ? 0.0 : row[t];
  return acc;
}

double RefMin(const double* row, size_t n) {
  double acc = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n; ++t) {
    const double v =
        std::isnan(row[t]) ? std::numeric_limits<double>::infinity() : row[t];
    acc = acc < v ? acc : v;
  }
  return acc;
}

double RefBenefit(const double* costs, const uint32_t* qids,
                  const double* best, const double* freq, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double gain = best[qids[t]] - costs[t];
    acc += gain > 0.0 ? freq[qids[t]] * gain : 0.0;
  }
  return acc;
}

double RefAppendBenefit(const double* costs, const double* cw,
                        const uint32_t* qids, const double* best,
                        const double* freq, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double new_cost = cw[t] < costs[t] ? cw[t] : costs[t];
    acc += freq[qids[t]] * (best[qids[t]] - new_cost);
  }
  return acc;
}

/// Evaluates `fn` under both dispatch pins and expects both results to
/// carry exactly the bits of `ref`.
template <typename Fn>
void ExpectBitsBothPaths(double ref, Fn&& fn, const std::string& label) {
  {
    simd::ScopedForceScalar pin(true);
    EXPECT_EQ(Bits(ref), Bits(fn())) << label << " [scalar]";
  }
  {
    simd::ScopedForceScalar pin(false);
    EXPECT_EQ(Bits(ref), Bits(fn()))
        << label << " [" << simd::LevelName(simd::SupportedLevel()) << "]";
  }
}

TEST(SimdRowFuzzTest, DenseCostTableRowsBitForBit) {
  // Every row length from empty to well past the 4-lane blocking (0..67),
  // several NaN densities per length, values stored through the real
  // DenseCostTable so the ops read exactly the memory they see in
  // production (atomic rows via kernel::RawValues).
  kernel::DenseCostTable table;
  std::vector<double> pattern, gathered;
  std::vector<uint32_t> slots;
  kernel::IndexId next_id = 0;
  for (uint32_t n = 0; n <= 67; ++n) {
    for (const uint64_t density : {2u, 5u, 9u}) {  // ~1/2, ~1/5, ~1/9 NaN
      uint64_t rng = 0xf022ull + n * 131u + density;
      pattern.resize(n);
      size_t set_count = 0;
      for (uint32_t t = 0; t < n; ++t) {
        const uint64_t r = Mix64(rng);
        if (r % density == 0) {
          pattern[t] = std::numeric_limits<double>::quiet_NaN();
        } else {
          pattern[t] = static_cast<double>(r % 100000) / 64.0;
          ++set_count;
        }
      }
      const std::string label =
          "n=" + std::to_string(n) + " density=" + std::to_string(density);

      // Store through the table (rows exist only once a slot is Put).
      const kernel::IndexId id = next_id++;
      for (uint32_t t = 0; t < n; ++t) {
        if (!std::isnan(pattern[t])) table.Put(id, t, n, pattern[t]);
      }
      const kernel::DenseCostTable::RowView view = table.ViewRow(id);
      if (set_count == 0) {
        ASSERT_EQ(view.values, nullptr) << label;  // never touched
        // Ops on the all-NaN pattern still have defined results.
        ExpectBitsBothPaths(
            0.0, [&] { return simd::SumSetSlots(pattern.data(), n); }, label);
        continue;
      }
      ASSERT_NE(view.values, nullptr) << label;
      ASSERT_EQ(view.len, n) << label;
      const double* row = kernel::RawValues(view.values);

      ExpectBitsBothPaths(
          RefSum(row, n), [&] { return simd::SumSetSlots(row, n); }, label);
      ExpectBitsBothPaths(
          RefMin(row, n), [&] { return simd::MinSetSlots(row, n); }, label);

      // Gather over every slot: cold verdict iff the pattern has a NaN.
      slots.resize(n);
      for (uint32_t t = 0; t < n; ++t) slots[t] = t;
      gathered.resize(n);
      const bool all_set = set_count == n;
      for (const bool pin : {true, false}) {
        simd::ScopedForceScalar guard(pin);
        EXPECT_EQ(simd::GatherRowWarm(row, slots.data(), n, gathered.data()),
                  all_set)
            << label;
      }

      // Gather restricted to the set slots: warm, bitwise round-trip.
      slots.clear();
      for (uint32_t t = 0; t < n; ++t) {
        if (!std::isnan(pattern[t])) slots.push_back(t);
      }
      gathered.resize(slots.size());
      for (const bool pin : {true, false}) {
        simd::ScopedForceScalar guard(pin);
        ASSERT_TRUE(simd::GatherRowWarm(row, slots.data(), slots.size(),
                                        gathered.data()))
            << label;
        for (size_t t = 0; t < slots.size(); ++t) {
          EXPECT_EQ(Bits(gathered[t]), Bits(pattern[slots[t]]))
              << label << " slot " << slots[t];
        }
      }
    }
  }
}

TEST(SimdReductionFuzzTest, BenefitReductionsBitForBit) {
  constexpr size_t kNumQueries = 61;
  std::vector<double> costs, cw, best(kNumQueries), freq(kNumQueries);
  std::vector<uint32_t> qids;
  for (size_t n = 0; n <= 67; ++n) {
    uint64_t rng = 0xbe4ef17ull + n;
    costs.resize(n);
    cw.resize(n);
    qids.resize(n);
    for (size_t j = 0; j < kNumQueries; ++j) {
      best[j] = static_cast<double>(Mix64(rng) % 8192) / 32.0;
      freq[j] = 1.0 + static_cast<double>(Mix64(rng) % 50);
    }
    for (size_t t = 0; t < n; ++t) {
      // Costs straddle best[] so gains come out positive and negative —
      // the KeepIfGtZero blend has to disagree with a plain multiply for
      // the exact path to be meaningfully tested.
      costs[t] = static_cast<double>(Mix64(rng) % 8192) / 32.0;
      cw[t] = static_cast<double>(Mix64(rng) % 8192) / 32.0;
      qids[t] = static_cast<uint32_t>(Mix64(rng) % kNumQueries);
    }
    const std::string label = "n=" + std::to_string(n);
    ExpectBitsBothPaths(
        RefBenefit(costs.data(), qids.data(), best.data(), freq.data(), n),
        [&] {
          return simd::ReduceBenefitIndexed(costs.data(), qids.data(),
                                            best.data(), freq.data(), n);
        },
        "ReduceBenefitIndexed " + label);
    ExpectBitsBothPaths(
        RefAppendBenefit(costs.data(), cw.data(), qids.data(), best.data(),
                         freq.data(), n),
        [&] {
          return simd::ReduceAppendBenefit(costs.data(), cw.data(),
                                           qids.data(), best.data(),
                                           freq.data(), n);
        },
        "ReduceAppendBenefit " + label);
  }
}

TEST(SimdFilterFuzzTest, MaskCompactionMatchesSerialFilter) {
  std::vector<uint64_t> masks;
  std::vector<uint32_t> ref, got;
  for (size_t n = 0; n <= 67; ++n) {
    uint64_t rng = 0xfacadeull + n;
    masks.resize(n);
    for (size_t t = 0; t < n; ++t) {
      // Dense masks so the few-bit `required` below keeps a nontrivial
      // mix of slots (all-keep and all-drop blocks both occur).
      masks[t] = Mix64(rng) | Mix64(rng);
    }
    const uint64_t required = Mix64(rng) & Mix64(rng) & Mix64(rng);
    ref.assign(n, 0u);
    size_t ref_count = 0;
    for (size_t t = 0; t < n; ++t) {
      if ((required & ~masks[t]) == 0) ref[ref_count++] = static_cast<uint32_t>(t);
    }
    got.assign(n, 0u);
    for (const bool pin : {true, false}) {
      simd::ScopedForceScalar guard(pin);
      const size_t got_count =
          simd::FilterMasks(masks.data(), n, required, got.data());
      ASSERT_EQ(got_count, ref_count)
          << "n=" << n << " pin=" << pin;
      for (size_t t = 0; t < ref_count; ++t) {
        EXPECT_EQ(got[t], ref[t]) << "n=" << n << " pin=" << pin;
      }
    }
  }
}

// ------------------------------------------------------ dispatch switches

TEST(SimdDispatchTest, ForceScalarDemotesActiveLevel) {
  const simd::Level supported = simd::SupportedLevel();
  EXPECT_EQ(simd::SupportedLevel(), supported);  // stable across calls
  {
    simd::ScopedForceScalar pin(true);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  {
    simd::ScopedForceScalar pin(false);
    EXPECT_EQ(simd::ActiveLevel(), supported);
  }
  EXPECT_NE(simd::LevelName(simd::Level::kScalar), nullptr);
  EXPECT_NE(simd::LevelName(simd::Level::kAvx2), nullptr);
  EXPECT_STRNE(simd::LevelName(simd::Level::kScalar),
               simd::LevelName(simd::Level::kAvx2));
}

TEST(SimdDispatchTest, RelaxedModeCloseButOptIn) {
  // Relaxed reductions reassociate, so they are NOT bit-identical — only
  // close. This pins both halves: the default path must not silently
  // adopt the relaxed shape, and the relaxed shape must still be a
  // correct sum up to reassociation error.
  constexpr size_t kN = 63;
  std::vector<double> row(kN);
  uint64_t rng = 0x5e1ec7ull;
  for (size_t t = 0; t < kN; ++t) {
    const uint64_t r = Mix64(rng);
    row[t] = (r & 3u) == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : static_cast<double>(r % 10007) / 128.0;
  }
  const double exact = RefSum(row.data(), kN);
  {
    simd::ScopedRelaxed relaxed(false);
    EXPECT_EQ(Bits(simd::SumSetSlots(row.data(), kN)), Bits(exact));
  }
  {
    simd::ScopedRelaxed relaxed(true);
    const double loose = simd::SumSetSlots(row.data(), kN);
    EXPECT_NEAR(loose, exact, 1e-9 * std::abs(exact));
    // Min has no order sensitivity, so even relaxed mode is exact.
    EXPECT_EQ(Bits(simd::MinSetSlots(row.data(), kN)),
              Bits(RefMin(row.data(), kN)));
  }
  EXPECT_FALSE(simd::Relaxed());  // scoped toggles restored
}

}  // namespace
}  // namespace idxsel
