// Tests for the index-interaction analysis (degree of interaction).

#include <gtest/gtest.h>

#include "analysis/interaction.h"
#include "costmodel/cost_model.h"
#include "workload/scalable_generator.h"

namespace idxsel::analysis {
namespace {

using costmodel::CostModel;
using costmodel::ModelBackend;
using workload::AttributeId;
using workload::TableId;

TEST(InteractionTest, IndependentIndexesHaveZeroDegree) {
  // Two attributes that never co-occur in a query: their benefits add.
  workload::Workload w;
  const TableId t = w.AddTable("t", 100000);
  const AttributeId a = w.AddAttribute(t, 1000, 4);
  const AttributeId b = w.AddAttribute(t, 1000, 4);
  ASSERT_TRUE(w.AddQuery(t, {a}, 10.0).ok());
  ASSERT_TRUE(w.AddQuery(t, {b}, 10.0).ok());
  w.Finalize();
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  EXPECT_NEAR(
      DegreeOfInteraction(engine, costmodel::Index(a), costmodel::Index(b)),
      0.0, 1e-9);
}

TEST(InteractionTest, CannibalizingIndexesHavePositiveDegree) {
  // Both attributes serve the same single query: selecting both adds no
  // benefit over the better one (the paper's Property 2).
  workload::Workload w;
  const TableId t = w.AddTable("t", 100000);
  const AttributeId a = w.AddAttribute(t, 1000, 4);
  const AttributeId b = w.AddAttribute(t, 900, 4);
  ASSERT_TRUE(w.AddQuery(t, {a, b}, 10.0).ok());
  w.Finalize();
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  const double degree =
      DegreeOfInteraction(engine, costmodel::Index(a), costmodel::Index(b));
  EXPECT_GT(degree, 0.3);
}

TEST(InteractionTest, AnalyzeSortsByDegree) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 6;
  params.queries_per_table = 12;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);

  std::vector<costmodel::Index> indexes;
  for (AttributeId i = 0; i < 6; ++i) indexes.emplace_back(i);
  const auto entries = AnalyzeInteractions(engine, indexes);
  ASSERT_EQ(entries.size(), 15u);  // C(6,2)
  for (size_t e = 1; e < entries.size(); ++e) {
    EXPECT_GE(entries[e - 1].degree, entries[e].degree);
  }
  for (const InteractionEntry& entry : entries) {
    EXPECT_GE(entry.degree, 0.0);
  }
}

TEST(InteractionTest, RenderShowsTopPairs) {
  workload::Workload w;
  const TableId t = w.AddTable("t", 10000);
  const AttributeId a = w.AddAttribute(t, 100, 4);
  const AttributeId b = w.AddAttribute(t, 100, 4);
  ASSERT_TRUE(w.AddQuery(t, {a, b}, 5.0).ok());
  w.Finalize();
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  const auto entries = AnalyzeInteractions(
      engine, {costmodel::Index(a), costmodel::Index(b)});
  const std::string table = RenderInteractions(entries);
  EXPECT_NE(table.find("doi"), std::string::npos);
  EXPECT_NE(table.find("(0)"), std::string::npos);
}

}  // namespace
}  // namespace idxsel::analysis
