// Tests for idxsel::exec — work-stealing pool, sharded map, and the shared
// deadline poller that make the parallel pipeline safe.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/hash.h"
#include "exec/shared_deadline.h"
#include "exec/sharded_map.h"
#include "exec/thread_pool.h"

namespace idxsel::exec {
namespace {

TEST(ThreadPoolTest, ResolveThreadsContract) {
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_LE(ResolveThreads(0), kMaxThreads);
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(4), 4u);
  EXPECT_EQ(ResolveThreads(100000), kMaxThreads);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen, caller);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in its own loop, so a ParallelFor issued from
  // inside a pool task always makes progress even when every worker is
  // busy in the outer loop.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForUsesMultipleLanes) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single-core machine";
  }
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> lanes;
  pool.ParallelFor(
      256,
      [&](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        std::lock_guard<std::mutex> lock(mu);
        lanes.insert(std::this_thread::get_id());
      },
      /*grain=*/1);
  EXPECT_GE(lanes.size(), 2u);
}

struct IdentityHash {
  size_t operator()(uint64_t v) const { return v; }
};

TEST(ShardedMapTest, GetOrComputeComputesOncePerKey) {
  ShardedMap<uint64_t, int, IdentityHash> map;
  std::atomic<int> computes{0};
  auto [v1, hit1] = map.GetOrCompute(7, [&] {
    computes.fetch_add(1);
    return 70;
  });
  EXPECT_EQ(v1, 70);
  EXPECT_FALSE(hit1);
  auto [v2, hit2] = map.GetOrCompute(7, [&] {
    computes.fetch_add(1);
    return 71;  // must never run
  });
  EXPECT_EQ(v2, 70);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(computes.load(), 1);
}

TEST(ShardedMapTest, ConcurrentGetOrComputeIsExactlyOnce) {
  // Many lanes hammering a small key space: every key is computed exactly
  // once and hits + computes account for every call.
  ShardedMap<uint64_t, uint64_t, IdentityHash> map;
  constexpr size_t kKeys = 64;
  constexpr size_t kCallsPerLane = 2000;
  std::atomic<uint64_t> computes{0};
  std::atomic<uint64_t> hits{0};
  ThreadPool pool(4);
  pool.ParallelFor(
      4,
      [&](size_t lane) {
        for (size_t c = 0; c < kCallsPerLane; ++c) {
          const uint64_t key = (lane * 31 + c) % kKeys;
          auto [value, hit] = map.GetOrCompute(key, [&] {
            computes.fetch_add(1);
            return key * 10;
          });
          ASSERT_EQ(value, key * 10);
          if (hit) hits.fetch_add(1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(computes.load(), kKeys);
  EXPECT_EQ(hits.load() + computes.load(), 4 * kCallsPerLane);
  EXPECT_EQ(map.Size(), kKeys);
}

TEST(ShardedMapTest, ClearReportsErasedCount) {
  ShardedMap<uint64_t, int, IdentityHash> map;
  for (uint64_t k = 0; k < 100; ++k) {
    map.GetOrCompute(k, [] { return 0; });
  }
  EXPECT_EQ(map.Size(), 100u);
  EXPECT_EQ(map.Clear(), 100u);
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Clear(), 0u);
}

TEST(ShardedMapTest, GetFindsOnlyPresentKeys) {
  ShardedMap<uint64_t, int, IdentityHash> map;
  map.GetOrCompute(3, [] { return 33; });
  int out = 0;
  EXPECT_TRUE(map.Get(3, &out));
  EXPECT_EQ(out, 33);
  EXPECT_FALSE(map.Get(4, &out));
}

TEST(ShardedMapTest, ShardSelectionUsesHighBitsAndSpreads) {
  // Sequential keys (worst case for multiplicative hashes) must spread
  // over all shards, and shard choice must not mirror the low hash bits
  // the unordered_map buckets consume.
  using Map = ShardedMap<uint64_t, int, IdentityHash>;
  std::vector<size_t> load(Map::shard_count(), 0);
  constexpr size_t kKeys = 32 * 1024;
  for (uint64_t k = 0; k < kKeys; ++k) ++load[Map::ShardIndex(k)];
  const size_t expected = kKeys / Map::shard_count();
  for (size_t s = 0; s < load.size(); ++s) {
    // Chi-square-ish tolerance: within 25% of uniform.
    EXPECT_GT(load[s], expected * 3 / 4) << "shard " << s;
    EXPECT_LT(load[s], expected * 5 / 4) << "shard " << s;
  }
}

TEST(SharedDeadlineTest, UnboundedNeverExpires) {
  rt::Deadline deadline;  // unbounded
  SharedDeadlinePoller poller(deadline, /*stride=*/1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(poller.Expired());
  EXPECT_FALSE(poller.expired());
}

TEST(SharedDeadlineTest, ExpiredDeadlineLatchesForEveryLane) {
  const rt::Deadline deadline = rt::Deadline::After(0.0);
  SharedDeadlinePoller poller(deadline, /*stride=*/1);
  EXPECT_TRUE(poller.Expired());
  // Latched: every lane sees it without consulting the clock again.
  ThreadPool pool(4);
  std::atomic<int> seen{0};
  pool.ParallelFor(64, [&](size_t) {
    if (poller.Expired()) seen.fetch_add(1);
  });
  EXPECT_EQ(seen.load(), 64);
  EXPECT_TRUE(poller.expired());
}

TEST(SharedDeadlineTest, StrideAmortizesClockReads) {
  // With a large stride the first call ticks the clock and the next
  // stride-1 calls are pure counter increments; this only checks the
  // latch stays false on an unbounded deadline (no way to observe clock
  // reads directly without a fake clock).
  rt::Deadline deadline;
  SharedDeadlinePoller poller(deadline, /*stride=*/1024);
  for (int i = 0; i < 10000; ++i) ASSERT_FALSE(poller.Expired());
}

TEST(HashTest, SplitMix64MixesLowBitsIntoHighBits) {
  // Sequential inputs — the adversarial case for the old multiplicative
  // chain — must produce well-spread high bytes.
  std::vector<size_t> bucket(256, 0);
  constexpr uint64_t kN = 64 * 1024;
  for (uint64_t v = 0; v < kN; ++v) ++bucket[SplitMix64(v) >> 56];
  const size_t expected = kN / 256;
  for (size_t b = 0; b < bucket.size(); ++b) {
    EXPECT_GT(bucket[b], expected / 2) << "bucket " << b;
    EXPECT_LT(bucket[b], expected * 2) << "bucket " << b;
  }
}

}  // namespace
}  // namespace idxsel::exec
