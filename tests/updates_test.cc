// Tests for write queries and index-maintenance costs across the stack:
// cost model, what-if engine, solver penalties, baselines, and Algorithm 1.

#include <gtest/gtest.h>

#include <algorithm>

#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "mip/branch_and_bound.h"
#include "selection/heuristics.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using costmodel::CostModel;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;
using workload::AttributeId;
using workload::QueryId;
using workload::QueryKind;
using workload::TableId;

class UpdatesFixture : public ::testing::Test {
 protected:
  UpdatesFixture() {
    t_ = w_.AddTable("t", 1 << 20);
    a_ = w_.AddAttribute(t_, 1 << 12, 4);
    b_ = w_.AddAttribute(t_, 1 << 6, 4);
    c_ = w_.AddAttribute(t_, 1 << 3, 8);
    read_ab_ = *w_.AddQuery(t_, {a_, b_}, 100.0);
    read_c_ = *w_.AddQuery(t_, {c_}, 10.0);
    write_a_ = *w_.AddQuery(t_, {a_}, 50.0, QueryKind::kWrite);
    w_.Finalize();
    model_ = std::make_unique<CostModel>(&w_);
    backend_ = std::make_unique<ModelBackend>(model_.get());
    engine_ = std::make_unique<WhatIfEngine>(&w_, backend_.get());
  }

  workload::Workload w_;
  TableId t_ = 0;
  AttributeId a_ = 0, b_ = 0, c_ = 0;
  QueryId read_ab_ = 0, read_c_ = 0, write_a_ = 0;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<ModelBackend> backend_;
  std::unique_ptr<WhatIfEngine> engine_;
};

TEST_F(UpdatesFixture, MaintenanceCostRules) {
  // Reads never cause maintenance.
  EXPECT_DOUBLE_EQ(model_->MaintenanceCost(read_ab_, Index(a_)), 0.0);
  // Writes on a covered attribute do.
  EXPECT_GT(model_->MaintenanceCost(write_a_, Index(a_)), 0.0);
  EXPECT_GT(model_->MaintenanceCost(write_a_, Index(b_).Append(a_)), 0.0);
  // Writes on uncovered attributes do not.
  EXPECT_DOUBLE_EQ(model_->MaintenanceCost(write_a_, Index(b_)), 0.0);
  EXPECT_DOUBLE_EQ(model_->MaintenanceCost(write_a_, Index(c_)), 0.0);
}

TEST_F(UpdatesFixture, WiderIndexCostsMoreMaintenance) {
  EXPECT_LT(model_->MaintenanceCost(write_a_, Index(a_)),
            model_->MaintenanceCost(write_a_, Index(a_).Append(b_)));
}

TEST_F(UpdatesFixture, WriteBaseCostIsPointwise) {
  // A point write is cheap compared to scanning the table.
  EXPECT_LT(model_->UnindexedCost(write_a_), 1e4);
  EXPECT_GT(model_->UnindexedCost(read_ab_), 1e5);
}

TEST_F(UpdatesFixture, IndexesNeverSpeedUpWrites) {
  EXPECT_DOUBLE_EQ(model_->CostWithIndex(write_a_, Index(a_)),
                   model_->UnindexedCost(write_a_));
  IndexConfig config;
  config.Insert(Index(a_));
  EXPECT_DOUBLE_EQ(model_->CostMultiIndex(write_a_, config),
                   model_->UnindexedCost(write_a_));
}

TEST_F(UpdatesFixture, EnginePenaltyIsFrequencyWeighted) {
  const double per_execution = model_->MaintenanceCost(write_a_, Index(a_));
  EXPECT_DOUBLE_EQ(engine_->MaintenancePenalty(Index(a_)),
                   50.0 * per_execution);
  EXPECT_DOUBLE_EQ(engine_->MaintenancePenalty(Index(c_)), 0.0);
}

TEST_F(UpdatesFixture, WorkloadCostIncludesPenalties) {
  IndexConfig config;
  config.Insert(Index(a_));
  double expected = 0.0;
  for (QueryId j = 0; j < w_.num_queries(); ++j) {
    expected += w_.query(j).frequency * model_->CostOneIndex(j, config);
  }
  expected += engine_->MaintenancePenalty(Index(a_));
  EXPECT_NEAR(engine_->WorkloadCost(config), expected, expected * 1e-12);
}

TEST_F(UpdatesFixture, RecursiveObjectiveConsistentWithPenalties) {
  core::RecursiveOptions options;
  options.budget = model_->Budget(1.0);
  const core::RecursiveResult r = core::SelectRecursive(*engine_, options);
  EXPECT_NEAR(r.objective, engine_->WorkloadCost(r.selection),
              std::max(1.0, r.objective) * 1e-9);
}

TEST_F(UpdatesFixture, HeavyWritesSuppressIndexSelection) {
  // Crank the write frequency sky-high via a dedicated workload: the
  // maintenance penalty must stop every selector from indexing `a`.
  workload::Workload heavy;
  const TableId t = heavy.AddTable("t", 1 << 20);
  const AttributeId a = heavy.AddAttribute(t, 1 << 12, 4);
  ASSERT_TRUE(heavy.AddQuery(t, {a}, 1.0).ok());  // one rare read
  ASSERT_TRUE(heavy.AddQuery(t, {a}, 1e9, QueryKind::kWrite).ok());
  heavy.Finalize();
  const CostModel model(&heavy);
  ModelBackend backend(&model);
  WhatIfEngine engine(&heavy, &backend);

  core::RecursiveOptions options;
  options.budget = model.Budget(1.0);
  const core::RecursiveResult h6 = core::SelectRecursive(engine, options);
  EXPECT_TRUE(h6.selection.empty());

  const candidates::CandidateSet cands =
      candidates::EnumerateAllCandidates(heavy, 2);
  const cophy::CophyResult cophy =
      cophy::SolveCophy(engine, cands, model.Budget(1.0));
  ASSERT_TRUE(cophy.status.ok());
  EXPECT_TRUE(cophy.selection.empty());

  const selection::SelectionResult h5 =
      selection::SelectByBenefitPerSize(engine, cands, model.Budget(1.0));
  EXPECT_TRUE(h5.selection.empty());
}

TEST_F(UpdatesFixture, CophyAccountsForPenalties) {
  const candidates::CandidateSet cands =
      candidates::EnumerateAllCandidates(w_, 2);
  const cophy::CophyResult result =
      cophy::SolveCophy(*engine_, cands, model_->Budget(1.0));
  ASSERT_TRUE(result.status.ok());
  EXPECT_NEAR(result.objective, engine_->WorkloadCost(result.selection),
              result.objective * 1e-9);
}

// ------------------------------------------------ solver-level penalties

mip::Problem PenaltyProblem() {
  mip::Problem p;
  p.query_weight = {1.0};
  p.base_cost = {100.0};
  p.candidate_costs = {{{0, 10.0}}, {{0, 20.0}}};
  p.candidate_memory = {5.0, 5.0};
  p.candidate_penalty = {95.0, 10.0};  // candidate 0's gain is eaten up
  p.budget = 5.0;                      // room for one
  return p;
}

TEST(MipPenaltyTest, PenaltyFlipsTheOptimalChoice) {
  mip::Problem p = PenaltyProblem();
  p.Canonicalize();
  const mip::SolveResult r = mip::Solve(p);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.selected.size(), 1u);
  // Net: candidate 0 gives 90-95 < 0... wait, gain 90 - penalty 95 = -5;
  // candidate 1 gives 80 - 10 = 70. Candidate 1 wins; objective
  // = 100 - 70 = 30 (cost 20 + penalty 10).
  EXPECT_DOUBLE_EQ(r.objective, 30.0);
}

TEST(MipPenaltyTest, AllPenalizedMeansEmptySelection) {
  mip::Problem p;
  p.query_weight = {1.0};
  p.base_cost = {100.0};
  p.candidate_costs = {{{0, 10.0}}};
  p.candidate_memory = {1.0};
  p.candidate_penalty = {1000.0};
  p.budget = 10.0;
  p.Canonicalize();
  EXPECT_TRUE(p.candidate_costs.empty());  // dropped in canonicalization
  const mip::SolveResult r = mip::Solve(p);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.objective, 100.0);
}

TEST(MipPenaltyTest, GreedyUsesNetDensity) {
  mip::Problem p = PenaltyProblem();
  p.Canonicalize();
  const std::vector<uint32_t> greedy = mip::GreedyByDensity(p);
  ASSERT_EQ(greedy.size(), 1u);
  // After canonicalization candidate 0 (net negative) is gone; the single
  // survivor is original candidate 1.
}

// Brute-force optimality with random penalties.
class PenaltyOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PenaltyOptimalityTest, MatchesBruteForce) {
  Rng rng(GetParam());
  mip::Problem p;
  const size_t queries = 8;
  const size_t candidates = 9;
  p.query_weight.assign(queries, 1.0);
  p.base_cost.resize(queries);
  for (auto& c : p.base_cost) c = rng.Uniform(50, 100);
  p.candidate_costs.resize(candidates);
  p.candidate_memory.resize(candidates);
  p.candidate_penalty.resize(candidates);
  double total_mem = 0.0;
  for (size_t k = 0; k < candidates; ++k) {
    p.candidate_memory[k] = rng.Uniform(1, 5);
    total_mem += p.candidate_memory[k];
    p.candidate_penalty[k] = rng.Uniform(0, 40);
    const auto j = static_cast<uint32_t>(rng.UniformInt(0, queries - 1));
    p.candidate_costs[k].push_back(
        mip::QueryCost{j, rng.Uniform(1.0, p.base_cost[j])});
  }
  p.budget = 0.5 * total_mem;

  // Brute force over subsets (with penalties).
  double best = 0.0;
  for (double c : p.base_cost) best += c;
  const double total_base = best;
  for (uint32_t mask = 1; mask < (1u << candidates); ++mask) {
    double mem = 0.0;
    double penalty = 0.0;
    std::vector<double> cost = p.base_cost;
    for (uint32_t k = 0; k < candidates; ++k) {
      if (!(mask & (1u << k))) continue;
      mem += p.candidate_memory[k];
      penalty += p.candidate_penalty[k];
      for (const auto& qc : p.candidate_costs[k]) {
        cost[qc.query] = std::min(cost[qc.query], qc.cost);
      }
    }
    if (mem > p.budget) continue;
    double objective = penalty;
    for (double c : cost) objective += c;
    best = std::min(best, objective);
  }
  (void)total_base;

  p.Canonicalize();
  const mip::SolveResult r = mip::Solve(p);
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.objective, best, 1e-6) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PenaltyOptimalityTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace idxsel
