// Tests for the bulk-loaded B+-tree index, including differential checks
// against the sorted-permutation index and a brute-force reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "engine/btree_index.h"
#include "engine/composite_index.h"
#include "engine/executor.h"
#include "engine/measured_cost.h"
#include "workload/scalable_generator.h"

namespace idxsel::engine {
namespace {

std::vector<uint32_t> Reference(const ColumnTable& table,
                                const std::vector<uint32_t>& columns,
                                const std::vector<uint32_t>& values) {
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    bool match = true;
    for (size_t u = 0; u < values.size(); ++u) {
      match = match && table.at(columns[u], r) == values[u];
    }
    if (match) rows.push_back(r);
  }
  return rows;
}

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class BTreeFixture : public ::testing::Test {
 protected:
  BTreeFixture() : rng_(11), table_(20'000, {100, 16, 5, 2000}, rng_) {}

  Rng rng_;
  ColumnTable table_;
};

TEST_F(BTreeFixture, SizeAndHeight) {
  const BTreeIndex index(&table_, {0, 1});
  EXPECT_EQ(index.size(), table_.num_rows());
  // 20000 entries / 64 per leaf = 313 leaves; 313 / 32 ~ 10 -> 2 levels.
  EXPECT_GE(index.height(), 2u);
}

TEST_F(BTreeFixture, FullKeyLookupMatchesReference) {
  const BTreeIndex index(&table_, {0, 1});
  for (uint32_t v0 = 0; v0 < 100; v0 += 13) {
    for (uint32_t v1 = 0; v1 < 16; v1 += 5) {
      std::vector<uint32_t> rows;
      index.LookupPrefix(std::vector<uint32_t>{v0, v1}, &rows);
      EXPECT_EQ(Sorted(rows), Reference(table_, {0, 1}, {v0, v1}))
          << v0 << "," << v1;
    }
  }
}

TEST_F(BTreeFixture, PrefixLookupMatchesReference) {
  const BTreeIndex index(&table_, {3, 0});
  for (uint32_t v = 0; v < 2000; v += 97) {
    std::vector<uint32_t> rows;
    index.LookupPrefix(std::vector<uint32_t>{v}, &rows);
    EXPECT_EQ(Sorted(rows), Reference(table_, {3}, {v})) << v;
  }
}

TEST_F(BTreeFixture, MissingKeyReturnsNothing) {
  const BTreeIndex index(&table_, {1});
  std::vector<uint32_t> rows;
  index.LookupPrefix(std::vector<uint32_t>{4096}, &rows);
  EXPECT_TRUE(rows.empty());
}

TEST_F(BTreeFixture, FirstAndLastKeyReachable) {
  const BTreeIndex index(&table_, {2});
  for (uint32_t v : {0u, 4u}) {  // domain edges of a d=5 column
    std::vector<uint32_t> rows;
    index.LookupPrefix(std::vector<uint32_t>{v}, &rows);
    EXPECT_EQ(rows.size(), Reference(table_, {2}, {v}).size());
  }
}

TEST_F(BTreeFixture, AgreesWithCompositeIndex) {
  const BTreeIndex btree(&table_, {0, 1, 2});
  const CompositeIndex composite(&table_, {0, 1, 2});
  Rng rng(77);
  for (int probe = 0; probe < 200; ++probe) {
    const size_t prefix_len = static_cast<size_t>(rng.UniformInt(1, 3));
    std::vector<uint32_t> values;
    const uint32_t domains[] = {100, 16, 5};
    for (size_t u = 0; u < prefix_len; ++u) {
      values.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, domains[u] - 1)));
    }
    std::vector<uint32_t> from_btree;
    std::vector<uint32_t> from_composite;
    btree.LookupPrefix(values, &from_btree);
    composite.LookupPrefix(values, &from_composite);
    EXPECT_EQ(Sorted(from_btree), Sorted(from_composite));
  }
}

TEST_F(BTreeFixture, MemoryAccountsKeysAndRows) {
  const BTreeIndex narrow(&table_, {0});
  const BTreeIndex wide(&table_, {0, 1, 2});
  EXPECT_GT(narrow.memory_bytes(),
            table_.num_rows() * 2 * sizeof(uint32_t) - 1);
  EXPECT_GT(wide.memory_bytes(), narrow.memory_bytes());
}

TEST_F(BTreeFixture, WorksThroughTheExecutor) {
  const Executor executor(&table_, {100, 16, 5, 2000});
  const BTreeIndex index(&table_, {3, 0});
  const std::vector<Predicate> predicates = {{3, 42}, {0, 7}, {1, 3}};
  const ExecutionResult via_btree = executor.WithIndex(predicates, index);
  const ExecutionResult via_scan = executor.ScanOnly(predicates);
  EXPECT_EQ(via_btree.matches, via_scan.matches);
  EXPECT_LT(via_btree.rows_touched, via_scan.rows_touched);
}

TEST(BTreeSmallTableTest, HandlesFewRows) {
  Rng rng(5);
  const ColumnTable tiny(3, {2, 2}, rng);
  const BTreeIndex index(&tiny, {0, 1});
  EXPECT_EQ(index.size(), 3u);
  size_t found = 0;
  for (uint32_t v0 = 0; v0 < 2; ++v0) {
    for (uint32_t v1 = 0; v1 < 2; ++v1) {
      std::vector<uint32_t> rows;
      index.LookupPrefix(std::vector<uint32_t>{v0, v1}, &rows);
      found += rows.size();
    }
  }
  EXPECT_EQ(found, 3u);
}

TEST(BTreeMeasuredTest, BTreeBackedCostSourceWorks) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 5;
  params.queries_per_table = 6;
  params.rows_per_table_step = 10'000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const Database db(&w, 10'000, 3);
  MeasuredCostSource source(&db, 2, 9, IndexImplementation::kBTree);
  const costmodel::Index k(w.query(0).attributes.front());
  EXPECT_GT(source.BaseCost(0), 0.0);
  EXPECT_LE(source.CostWithIndex(0, k), source.BaseCost(0));
  EXPECT_GT(source.IndexMemory(k), 0.0);
}

// Property sweep: random tables and probes, B+-tree vs brute force.
class BTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRandomTest, RandomProbesMatchReference) {
  Rng rng(GetParam());
  const uint64_t rows = static_cast<uint64_t>(500 + rng.UniformInt(0, 1500));
  const std::vector<uint32_t> domains = {
      static_cast<uint32_t>(rng.UniformInt(2, 50)),
      static_cast<uint32_t>(rng.UniformInt(2, 10))};
  const ColumnTable table(rows, domains, rng);
  const BTreeIndex index(&table, {0, 1});
  for (int probe = 0; probe < 50; ++probe) {
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 2));
    std::vector<uint32_t> values;
    std::vector<uint32_t> cols;
    for (size_t u = 0; u < len; ++u) {
      // Probe slightly outside the domain too (missing keys).
      values.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, domains[u] + 1)));
      cols.push_back(static_cast<uint32_t>(u));
    }
    std::vector<uint32_t> rows_found;
    index.LookupPrefix(values, &rows_found);
    EXPECT_EQ(Sorted(rows_found), Reference(table, cols, values))
        << "seed=" << GetParam() << " probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace idxsel::engine
