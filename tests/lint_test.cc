// Golden tests for tools/idxsel_lint: each seeded violation must produce
// its exact diagnostic, each suppression must silence exactly its check,
// and the clean shapes must stay clean. The linter is itself part of the
// project's correctness story (it enforces the DESIGN.md layering DAG and
// the determinism rules CI relies on), so its checks are pinned here the
// same way selection results are pinned in regression_test.cc.

#include "idxsel_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

namespace idxsel::lint {
namespace {

using ::testing::AllOf;
using ::testing::HasSubstr;
using ::testing::IsEmpty;

// Paths mimic a repo tree; the linter classifies by the src/tests/bench
// path segments, so synthetic absolute-ish paths behave like real ones.
FileInput Src(const std::string& rel, const std::string& content) {
  return {"repo/src/" + rel, content};
}

std::vector<std::string> Checks(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.check);
  return out;
}

Options NoOrphan() {
  Options options;
  options.orphan_check = false;  // loose files, no CMake context
  return options;
}

// -- L1: layering -----------------------------------------------------------

TEST(LintLayeringTest, KernelIncludingObsIsNamedViolation) {
  const auto findings = LintFiles(
      {Src("kernel/kernel.cc", "#include \"obs/obs.h\"\n")}, NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/kernel"), HasSubstr("obs"),
                    HasSubstr("common/telemetry.h")));
}

TEST(LintJournalBridgeTest, KernelTouchingJournalTypesIsFlagged) {
  const auto findings = LintFiles(
      {Src("kernel/kernel.cc",
           "void f() { obs::Journal::Default(); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "journal-bridge");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/kernel"),
                    HasSubstr("telemetry::EmitJournal")));
}

TEST(LintJournalBridgeTest, SelectionIncludingJournalHeaderIsFlagged) {
  // selection may include obs/obs.h (spans) under the layering DAG, but
  // the journal header is the consumer side of the bridge — off limits.
  const auto findings = LintFiles(
      {Src("selection/heuristics.cc", "#include \"obs/journal.h\"\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings),
            std::vector<std::string>{"journal-bridge"});
  EXPECT_THAT(findings[0].message, HasSubstr("obs/journal.h"));
}

TEST(LintJournalBridgeTest, ObsAdvisorAndBridgeEmissionAreClean) {
  const auto findings = LintFiles(
      {Src("obs/journal.cc", "void g() { obs::Journal::Default(); }\n"),
       Src("advisor/advisor.cc",
           "#include \"obs/journal.h\"\n"
           "void h() { obs::JournalScope scope; }\n"),
       Src("core/recursive_selector.cc",
           "#include \"common/telemetry.h\"\n"
           "void e() { telemetry::JournalEvent ev; "
           "telemetry::EmitJournal(ev); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintJournalBridgeTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "// idxsel-lint: allow(journal-bridge) reason=doc example\n"
           "void f() { obs::JournalRecord r; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- L1 companion: simd confinement -----------------------------------------

TEST(LintSimdConfinementTest, IntrinsicsHeaderOutsideKernelSimdIsFlagged) {
  const auto findings = LintFiles(
      {Src("core/recursive_selector.cc", "#include <immintrin.h>\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("immintrin.h"), HasSubstr("kernel/simd.h")));
}

TEST(LintSimdConfinementTest, RawIntrinsicCallIsFlagged) {
  const auto findings = LintFiles(
      {Src("costmodel/what_if.cc",
           "double f(const double* p) {\n"
           "  return _mm256_cvtsd_f64(_mm256_castpd256_pd128(v));\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("IDXSEL_FORCE_SCALAR"));
}

TEST(LintSimdConfinementTest, ImplTemplateIncludeOutsideKernelSimdIsFlagged) {
  const auto findings = LintFiles(
      {Src("audit/auditor.cc", "#include \"kernel/simd_impl.h\"\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_THAT(findings[0].message, HasSubstr("implementation template"));
}

TEST(LintSimdConfinementTest, BenchAndTestScopesAreCoveredToo) {
  const auto findings = LintFiles(
      {{"repo/bench/bench_kernel.cc", "#include <immintrin.h>\n"},
       {"repo/tests/simd_test.cc", "void f() { __m128d v; }\n"}},
      NoOrphan());
  EXPECT_EQ(Checks(findings),
            (std::vector<std::string>{"simd-confinement", "simd-confinement"}));
}

TEST(LintSimdConfinementTest, KernelSimdFilesAndDispatchCallersAreClean) {
  const auto findings = LintFiles(
      {Src("kernel/simd_avx2.cc",
           "#include <immintrin.h>\n"
           "#include \"kernel/simd_impl.h\"\n"
           "__m256d f(const double* p) { return _mm256_loadu_pd(p); }\n"),
       Src("kernel/simd_impl.h", "__m128i g();\n"),
       Src("core/recursive_selector.cc",
           "#include \"kernel/simd.h\"\n"
           "double h(const double* r, unsigned long n) {\n"
           "  return kernel::simd::SumSetSlots(r, n);\n"
           "}\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSimdConfinementTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "// idxsel-lint: allow(simd-confinement) reason=doc example\n"
           "void f() { __m256d v; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintLayeringTest, ServeMayUseAdvisorButNothingUsesServe) {
  // serve sits on top of advisor (plus the transitive closure below it);
  // the edge down into serve from any pipeline module is a violation —
  // the service wraps the pipeline, never the other way around.
  const auto clean = LintFiles(
      {Src("serve/service.cc",
           "#include \"advisor/advisor.h\"\n"
           "#include \"costmodel/what_if.h\"\n"
           "#include \"workload/parser.h\"\n")},
      NoOrphan());
  EXPECT_THAT(clean, IsEmpty());

  const auto findings = LintFiles(
      {Src("advisor/advisor.cc", "#include \"serve/service.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/advisor"), HasSubstr("serve")));
}

TEST(LintLayeringTest, CommonDependsOnNothing) {
  const auto findings = LintFiles(
      {Src("common/status.cc", "#include \"workload/workload.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_THAT(findings[0].message, HasSubstr("may not depend on"));
}

TEST(LintLayeringTest, AllowedEdgeAndTransitiveClosureAreClean) {
  const auto findings = LintFiles(
      {Src("core/recursive_selector.cc",
           "#include \"costmodel/what_if.h\"\n"
           "#include \"common/check.h\"\n"   // transitive dep of costmodel
           "#include \"audit/auditor.h\"\n"  // direct dep of core
           "#include \"gtest/gtest.h\"\n")},  // not a src module: ignored
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintLayeringTest, IncludeCycleIsReportedOnce) {
  const auto findings = LintFiles(
      {Src("common/a.h", "#include \"common/b.h\"\n"),
       Src("common/b.h", "#include \"common/a.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "include-cycle");
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("include cycle"), HasSubstr("common/a.h"),
                    HasSubstr("common/b.h")));
}

// -- L2: determinism --------------------------------------------------------

TEST(LintDeterminismTest, RandomDeviceFlagged) {
  const auto findings = LintFiles(
      {Src("selection/greedy.cc", "std::random_device rd;\n")}, NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "determinism-random");
}

TEST(LintDeterminismTest, WallClockFlaggedOutsideRtButNotInRt) {
  const std::string body =
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_EQ(LintFiles({Src("core/x.cc", body)}, NoOrphan()).size(), 1u);
  // rt owns deadlines, obs owns timing; both are exempt by design.
  EXPECT_THAT(LintFiles({Src("rt/deadline.cc", body)}, NoOrphan()),
              IsEmpty());
  EXPECT_THAT(LintFiles({Src("obs/tracer.cc", body)}, NoOrphan()),
              IsEmpty());
}

TEST(LintDeterminismTest, SteadyClockIsAllowedEverywhere) {
  // Monotonic time is deterministic-safe (no wall-clock reads).
  const auto findings = LintFiles(
      {Src("core/x.cc", "auto t = std::chrono::steady_clock::now();\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintDeterminismTest, UnorderedIterFlaggedInCore) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::unordered_map<int, double> benefit;\n"
           "void F() { for (const auto& [k, v] : benefit) Use(k, v); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unordered-iter");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintDeterminismTest, UnorderedIterScopeIsCoreSelectionMip) {
  const std::string body =
      "std::unordered_map<int, double> m;\n"
      "void F() { for (const auto& [k, v] : m) Use(k, v); }\n";
  EXPECT_EQ(LintFiles({Src("selection/h.cc", body)}, NoOrphan()).size(), 1u);
  EXPECT_EQ(LintFiles({Src("mip/p.cc", body)}, NoOrphan()).size(), 1u);
  // Outside the selection-decision modules the pattern is fine.
  EXPECT_THAT(LintFiles({Src("costmodel/c.cc", body)}, NoOrphan()),
              IsEmpty());
}

TEST(LintDeterminismTest, VectorRangeForIsClean) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::vector<double> costs_sorted;\n"
           "void F() { for (double c : costs_sorted) Use(c); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- L3: hygiene ------------------------------------------------------------

TEST(LintHygieneTest, RawDoubleCompareOnCostFlagged) {
  const auto findings = LintFiles(
      {Src("selection/greedy.cc",
           "bool F(double a_cost, double b_cost) {\n"
           "  return a_cost == b_cost;\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "double-compare");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("common/float_cmp.h"));
}

TEST(LintHygieneTest, FloatLiteralCompareFlagged) {
  const auto findings = LintFiles(
      {Src("lp/x.cc", "bool F(double v) { return v != 0.0; }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "double-compare");
}

TEST(LintHygieneTest, FloatCmpHelperFileIsExempt) {
  const auto findings = LintFiles(
      {Src("common/float_cmp.h",
           "inline bool ExactlyZero(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintHygieneTest, IntCompareAndNullptrCompareAreClean) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "bool F(int n, void* p) { return n == 3 && p == nullptr; }\n"
           "bool G(const Opts& o) { return o.reconfiguration == nullptr; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintHygieneTest, CheckMacroWithoutIncludeFlagged) {
  const auto findings = LintFiles(
      {Src("engine/e.cc", "void F(int n) { IDXSEL_CHECK(n > 0); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "missing-check-include");
}

TEST(LintHygieneTest, CheckIncludeSatisfiedDirectlyOrTransitively) {
  // check.h itself defines the macros; both nothing to report.
  const auto direct = LintFiles(
      {Src("engine/e.cc",
           "#include \"common/check.h\"\n"
           "void F(int n) { IDXSEL_CHECK(n > 0); }\n"),
       Src("common/check.h", "#define IDXSEL_CHECK(x) ((void)0)\n")},
      NoOrphan());
  EXPECT_THAT(direct, IsEmpty());
  const auto transitive = LintFiles(
      {Src("engine/e.cc",
           "#include \"engine/e.h\"\n"
           "void F(int n) { IDXSEL_DCHECK_GE(n, 0); }\n"),
       Src("engine/e.h", "#include \"common/check.h\"\n"),
       Src("common/check.h", "#define IDXSEL_DCHECK_GE(a, b) ((void)0)\n")},
      NoOrphan());
  EXPECT_THAT(transitive, IsEmpty());
}

TEST(LintOrphanTest, UnreferencedSourceAndLibraryFlagged) {
  const std::vector<FileInput> files = {
      Src("engine/used.cc", "int x;\n"),
      Src("engine/orphan.cc", "int y;\n"),
      {"repo/src/engine/CMakeLists.txt",
       "add_library(idxsel_engine used.cc)\n"},
      {"repo/tests/CMakeLists.txt",
       "target_link_libraries(engine_test PRIVATE idxsel_other)\n"},
  };
  const auto findings = LintFiles(files, Options{});
  const auto checks = Checks(findings);
  // orphan.cc is not compiled; idxsel_engine is not linked by any test.
  EXPECT_EQ(std::count(checks.begin(), checks.end(), "orphan-source"), 2);
}

// -- Suppressions -----------------------------------------------------------

TEST(LintSuppressionTest, SameLineSuppressionWithReasonSilences) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::unordered_map<int, double> m;\n"
           "void F() { for (const auto& [k, v] : m) Keys(k); }  "
           "// idxsel-lint: allow(unordered-iter) reason=keys re-sorted "
           "below\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSuppressionTest, PrecedingLineSuppressionSilences) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=exact sparsity "
           "test\n"
           "bool F(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSuppressionTest, MissingReasonIsItsOwnFindingAndDoesNotSilence) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "bool F(double v) { return v == 0.0; }  "
           "// idxsel-lint: allow(double-compare)\n")},
      NoOrphan());
  // A reasonless suppression suppresses nothing: the original finding
  // survives alongside the suppression-missing-reason report.
  const auto checks = Checks(findings);
  EXPECT_THAT(checks, ::testing::Contains("suppression-missing-reason"));
  EXPECT_THAT(checks, ::testing::Contains("double-compare"));
  for (const Finding& f : findings) {
    if (f.check == "suppression-missing-reason") {
      EXPECT_THAT(f.message, HasSubstr("reason="));
    }
  }
}

TEST(LintSuppressionTest, WrongCheckNameDoesNotSilence) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "bool F(double v) { return v == 0.0; }  "
           "// idxsel-lint: allow(unordered-iter) reason=wrong check\n")},
      NoOrphan());
  const auto checks = Checks(findings);
  // The real finding survives; the mismatched suppression is fine per se
  // (unordered-iter is a known check, it just doesn't fire here).
  EXPECT_THAT(checks, ::testing::Contains("double-compare"));
}

TEST(LintSuppressionTest, UnknownCheckNameFlagged) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "// idxsel-lint: allow(no-such-check) reason=typo\n"
           "int y;\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unknown-check");
}

// -- Tokenizer robustness ---------------------------------------------------

TEST(LintTokenizerTest, CommentsAndStringsDoNotTriggerChecks) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "// std::random_device in a comment is fine\n"
           "/* rand() in a block comment too */\n"
           "const char* s = \"system_clock is just a string\";\n"
           "const char* r = R\"(rand() inside raw string)\";\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintTokenizerTest, FormatFindingIsStable) {
  const Finding f{"src/core/x.cc", 12, "layering", "boom"};
  EXPECT_EQ(FormatFinding(f), "src/core/x.cc:12: [layering] boom");
}

TEST(LintTokenizerTest, KnownChecksCoverEveryDocumentedName) {
  const auto& checks = KnownChecks();
  for (const char* name :
       {"layering", "include-cycle", "determinism-random",
        "determinism-clock", "unordered-iter", "double-compare",
        "missing-check-include", "orphan-source",
        "suppression-missing-reason", "unknown-check"}) {
    EXPECT_THAT(checks, ::testing::Contains(std::string(name))) << name;
  }
}

}  // namespace
}  // namespace idxsel::lint
