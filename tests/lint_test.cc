// Golden tests for tools/idxsel_lint: each seeded violation must produce
// its exact diagnostic, each suppression must silence exactly its check,
// and the clean shapes must stay clean. The linter is itself part of the
// project's correctness story (it enforces the DESIGN.md layering DAG and
// the determinism rules CI relies on), so its checks are pinned here the
// same way selection results are pinned in regression_test.cc.

#include "idxsel_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

namespace idxsel::lint {
namespace {

using ::testing::AllOf;
using ::testing::HasSubstr;
using ::testing::IsEmpty;

// Paths mimic a repo tree; the linter classifies by the src/tests/bench
// path segments, so synthetic absolute-ish paths behave like real ones.
FileInput Src(const std::string& rel, const std::string& content) {
  return {"repo/src/" + rel, content};
}

std::vector<std::string> Checks(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.check);
  return out;
}

Options NoOrphan() {
  Options options;
  options.orphan_check = false;  // loose files, no CMake context
  return options;
}

// -- L1: layering -----------------------------------------------------------

TEST(LintLayeringTest, KernelIncludingObsIsNamedViolation) {
  const auto findings = LintFiles(
      {Src("kernel/kernel.cc", "#include \"obs/obs.h\"\n")}, NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/kernel"), HasSubstr("obs"),
                    HasSubstr("common/telemetry.h")));
}

TEST(LintJournalBridgeTest, KernelTouchingJournalTypesIsFlagged) {
  const auto findings = LintFiles(
      {Src("kernel/kernel.cc",
           "void f() { obs::Journal::Default(); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "journal-bridge");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/kernel"),
                    HasSubstr("telemetry::EmitJournal")));
}

TEST(LintJournalBridgeTest, SelectionIncludingJournalHeaderIsFlagged) {
  // selection may include obs/obs.h (spans) under the layering DAG, but
  // the journal header is the consumer side of the bridge — off limits.
  const auto findings = LintFiles(
      {Src("selection/heuristics.cc", "#include \"obs/journal.h\"\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings),
            std::vector<std::string>{"journal-bridge"});
  EXPECT_THAT(findings[0].message, HasSubstr("obs/journal.h"));
}

TEST(LintJournalBridgeTest, ObsAdvisorAndBridgeEmissionAreClean) {
  const auto findings = LintFiles(
      {Src("obs/journal.cc", "void g() { obs::Journal::Default(); }\n"),
       Src("advisor/advisor.cc",
           "#include \"obs/journal.h\"\n"
           "void h() { obs::JournalScope scope; }\n"),
       Src("core/recursive_selector.cc",
           "#include \"common/telemetry.h\"\n"
           "void e() { telemetry::JournalEvent ev; "
           "telemetry::EmitJournal(ev); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintJournalBridgeTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "// idxsel-lint: allow(journal-bridge) reason=doc example\n"
           "void f() { obs::JournalRecord r; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- L1 companion: simd confinement -----------------------------------------

TEST(LintSimdConfinementTest, IntrinsicsHeaderOutsideKernelSimdIsFlagged) {
  const auto findings = LintFiles(
      {Src("core/recursive_selector.cc", "#include <immintrin.h>\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("immintrin.h"), HasSubstr("kernel/simd.h")));
}

TEST(LintSimdConfinementTest, RawIntrinsicCallIsFlagged) {
  const auto findings = LintFiles(
      {Src("costmodel/what_if.cc",
           "double f(const double* p) {\n"
           "  return _mm256_cvtsd_f64(_mm256_castpd256_pd128(v));\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("IDXSEL_FORCE_SCALAR"));
}

TEST(LintSimdConfinementTest, ImplTemplateIncludeOutsideKernelSimdIsFlagged) {
  const auto findings = LintFiles(
      {Src("audit/auditor.cc", "#include \"kernel/simd_impl.h\"\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"simd-confinement"});
  EXPECT_THAT(findings[0].message, HasSubstr("implementation template"));
}

TEST(LintSimdConfinementTest, BenchAndTestScopesAreCoveredToo) {
  const auto findings = LintFiles(
      {{"repo/bench/bench_kernel.cc", "#include <immintrin.h>\n"},
       {"repo/tests/simd_test.cc", "void f() { __m128d v; }\n"}},
      NoOrphan());
  EXPECT_EQ(Checks(findings),
            (std::vector<std::string>{"simd-confinement", "simd-confinement"}));
}

TEST(LintSimdConfinementTest, KernelSimdFilesAndDispatchCallersAreClean) {
  const auto findings = LintFiles(
      {Src("kernel/simd_avx2.cc",
           "#include <immintrin.h>\n"
           "#include \"kernel/simd_impl.h\"\n"
           "__m256d f(const double* p) { return _mm256_loadu_pd(p); }\n"),
       Src("kernel/simd_impl.h", "__m128i g();\n"),
       Src("core/recursive_selector.cc",
           "#include \"kernel/simd.h\"\n"
           "double h(const double* r, unsigned long n) {\n"
           "  return kernel::simd::SumSetSlots(r, n);\n"
           "}\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSimdConfinementTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "// idxsel-lint: allow(simd-confinement) reason=doc example\n"
           "void f() { __m256d v; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintLayeringTest, ServeMayUseAdvisorButNothingUsesServe) {
  // serve sits on top of advisor (plus the transitive closure below it);
  // the edge down into serve from any pipeline module is a violation —
  // the service wraps the pipeline, never the other way around.
  const auto clean = LintFiles(
      {Src("serve/service.cc",
           "#include \"advisor/advisor.h\"\n"
           "#include \"costmodel/what_if.h\"\n"
           "#include \"workload/parser.h\"\n")},
      NoOrphan());
  EXPECT_THAT(clean, IsEmpty());

  const auto findings = LintFiles(
      {Src("advisor/advisor.cc", "#include \"serve/service.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("src/advisor"), HasSubstr("serve")));
}

TEST(LintLayeringTest, CommonDependsOnNothing) {
  const auto findings = LintFiles(
      {Src("common/status.cc", "#include \"workload/workload.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
  EXPECT_THAT(findings[0].message, HasSubstr("may not depend on"));
}

TEST(LintLayeringTest, AllowedEdgeAndTransitiveClosureAreClean) {
  const auto findings = LintFiles(
      {Src("core/recursive_selector.cc",
           "#include \"costmodel/what_if.h\"\n"
           "#include \"common/check.h\"\n"   // transitive dep of costmodel
           "#include \"audit/auditor.h\"\n"  // direct dep of core
           "#include \"gtest/gtest.h\"\n")},  // not a src module: ignored
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintLayeringTest, IncludeCycleIsReportedOnce) {
  const auto findings = LintFiles(
      {Src("common/a.h", "#include \"common/b.h\"\n"),
       Src("common/b.h", "#include \"common/a.h\"\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "include-cycle");
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("include cycle"), HasSubstr("common/a.h"),
                    HasSubstr("common/b.h")));
}

// -- L2: determinism --------------------------------------------------------

TEST(LintDeterminismTest, RandomDeviceFlagged) {
  const auto findings = LintFiles(
      {Src("selection/greedy.cc", "std::random_device rd;\n")}, NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "determinism-random");
}

TEST(LintDeterminismTest, WallClockFlaggedOutsideRtButNotInRt) {
  const std::string body =
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_EQ(LintFiles({Src("core/x.cc", body)}, NoOrphan()).size(), 1u);
  // rt owns deadlines, obs owns timing; both are exempt by design.
  EXPECT_THAT(LintFiles({Src("rt/deadline.cc", body)}, NoOrphan()),
              IsEmpty());
  EXPECT_THAT(LintFiles({Src("obs/tracer.cc", body)}, NoOrphan()),
              IsEmpty());
}

TEST(LintDeterminismTest, SteadyClockIsAllowedEverywhere) {
  // Monotonic time is deterministic-safe (no wall-clock reads).
  const auto findings = LintFiles(
      {Src("core/x.cc", "auto t = std::chrono::steady_clock::now();\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintDeterminismTest, UnorderedIterFlaggedInCore) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::unordered_map<int, double> benefit;\n"
           "void F() { for (const auto& [k, v] : benefit) Use(k, v); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unordered-iter");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintDeterminismTest, UnorderedIterScopeIsCoreSelectionMip) {
  const std::string body =
      "std::unordered_map<int, double> m;\n"
      "void F() { for (const auto& [k, v] : m) Use(k, v); }\n";
  EXPECT_EQ(LintFiles({Src("selection/h.cc", body)}, NoOrphan()).size(), 1u);
  EXPECT_EQ(LintFiles({Src("mip/p.cc", body)}, NoOrphan()).size(), 1u);
  // Outside the selection-decision modules the pattern is fine.
  EXPECT_THAT(LintFiles({Src("costmodel/c.cc", body)}, NoOrphan()),
              IsEmpty());
}

TEST(LintDeterminismTest, VectorRangeForIsClean) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::vector<double> costs_sorted;\n"
           "void F() { for (double c : costs_sorted) Use(c); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- L3: hygiene ------------------------------------------------------------

TEST(LintHygieneTest, RawDoubleCompareOnCostFlagged) {
  const auto findings = LintFiles(
      {Src("selection/greedy.cc",
           "bool F(double a_cost, double b_cost) {\n"
           "  return a_cost == b_cost;\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "double-compare");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("common/float_cmp.h"));
}

TEST(LintHygieneTest, FloatLiteralCompareFlagged) {
  const auto findings = LintFiles(
      {Src("lp/x.cc", "bool F(double v) { return v != 0.0; }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "double-compare");
}

TEST(LintHygieneTest, FloatCmpHelperFileIsExempt) {
  const auto findings = LintFiles(
      {Src("common/float_cmp.h",
           "inline bool ExactlyZero(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintHygieneTest, IntCompareAndNullptrCompareAreClean) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "bool F(int n, void* p) { return n == 3 && p == nullptr; }\n"
           "bool G(const Opts& o) { return o.reconfiguration == nullptr; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintHygieneTest, CheckMacroWithoutIncludeFlagged) {
  const auto findings = LintFiles(
      {Src("engine/e.cc", "void F(int n) { IDXSEL_CHECK(n > 0); }\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "missing-check-include");
}

TEST(LintHygieneTest, CheckIncludeSatisfiedDirectlyOrTransitively) {
  // check.h itself defines the macros; both nothing to report.
  const auto direct = LintFiles(
      {Src("engine/e.cc",
           "#include \"common/check.h\"\n"
           "void F(int n) { IDXSEL_CHECK(n > 0); }\n"),
       Src("common/check.h", "#define IDXSEL_CHECK(x) ((void)0)\n")},
      NoOrphan());
  EXPECT_THAT(direct, IsEmpty());
  const auto transitive = LintFiles(
      {Src("engine/e.cc",
           "#include \"engine/e.h\"\n"
           "void F(int n) { IDXSEL_DCHECK_GE(n, 0); }\n"),
       Src("engine/e.h", "#include \"common/check.h\"\n"),
       Src("common/check.h", "#define IDXSEL_DCHECK_GE(a, b) ((void)0)\n")},
      NoOrphan());
  EXPECT_THAT(transitive, IsEmpty());
}

TEST(LintOrphanTest, UnreferencedSourceAndLibraryFlagged) {
  const std::vector<FileInput> files = {
      Src("engine/used.cc", "int x;\n"),
      Src("engine/orphan.cc", "int y;\n"),
      {"repo/src/engine/CMakeLists.txt",
       "add_library(idxsel_engine used.cc)\n"},
      {"repo/tests/CMakeLists.txt",
       "target_link_libraries(engine_test PRIVATE idxsel_other)\n"},
  };
  const auto findings = LintFiles(files, Options{});
  const auto checks = Checks(findings);
  // orphan.cc is not compiled; idxsel_engine is not linked by any test.
  EXPECT_EQ(std::count(checks.begin(), checks.end(), "orphan-source"), 2);
}

// -- L4: concurrency contracts ----------------------------------------------

TEST(LintLockOrderTest, TwoMutexCycleAcrossFilesIsFlagged) {
  // The canonical deadlock: two TUs of one class nest the same pair of
  // locks in opposite orders. The graph is global, so neither file alone
  // is a finding — the cycle only closes once both are scanned.
  const auto findings = LintFiles(
      {Src("shard/select.cc",
           "void ShardedSelector::Rebalance() {\n"
           "  common::MutexLock lock(&budget_mu_);\n"
           "  common::MutexLock inner(&journal_mu_);\n"
           "}\n"),
       Src("shard/report.cc",
           "void ShardedSelector::Report() {\n"
           "  common::MutexLock lock(&journal_mu_);\n"
           "  common::MutexLock inner(&budget_mu_);\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"lock-order"});
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("cycle"), HasSubstr("deadlock"),
                    HasSubstr("ShardedSelector::budget_mu_"),
                    HasSubstr("ShardedSelector::journal_mu_")));
}

TEST(LintLockOrderTest, ReacquiringAHeldLockIsFlagged) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "void Pool::Tick() {\n"
           "  common::MutexLock lock(&mu_);\n"
           "  {\n"
           "    common::MutexLock again(&mu_);\n"
           "  }\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"lock-order"});
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_THAT(findings[0].message, HasSubstr("already held"));
}

TEST(LintLockOrderTest, ConsistentOrderAndSequentialScopesAreClean) {
  const auto findings = LintFiles(
      {Src("shard/select.cc",
           // Same nesting order everywhere: an edge, never a cycle.
           "void ShardedSelector::Rebalance() {\n"
           "  common::MutexLock lock(&budget_mu_);\n"
           "  common::MutexLock inner(&journal_mu_);\n"
           "}\n"
           "void ShardedSelector::Report() {\n"
           "  common::MutexLock lock(&budget_mu_);\n"
           "  common::MutexLock inner(&journal_mu_);\n"
           "}\n"
           // Opposite textual order but never held together: no edge.
           "void ShardedSelector::Drain() {\n"
           "  { common::MutexLock lock(&journal_mu_); }\n"
           "  { common::MutexLock lock(&budget_mu_); }\n"
           "}\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintLockOrderTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.cc",
           "void Pool::Tick() {\n"
           "  common::MutexLock lock(&mu_);\n"
           "  // idxsel-lint: allow(lock-order) reason=golden doc example\n"
           "  common::MutexLock again(&mu_);\n"
           "}\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintGuardedFieldTest, MutableMemberWithoutAnnotationIsFlagged) {
  const auto findings = LintFiles(
      {Src("costmodel/cache.h",
           "class Cache {\n"
           " private:\n"
           "  mutable unsigned long hits_ = 0;\n"
           "};\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"guarded-field"});
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("mutable"), HasSubstr("IDXSEL_GUARDED_BY")));
}

TEST(LintGuardedFieldTest, UnguardedMutexMemberIsFlagged) {
  const auto findings = LintFiles(
      {Src("exec/pool.h",
           "class Pool {\n"
           " private:\n"
           "  common::Mutex mu_;\n"
           "  int n_ = 0;\n"
           "};\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"guarded-field"});
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("mu_"), HasSubstr("guards no")));
}

TEST(LintGuardedFieldTest, AnnotatedAndAtomicMembersAreClean) {
  const auto findings = LintFiles(
      {Src("exec/pool.h",
           "class Pool {\n"
           " private:\n"
           "  common::Mutex mu_;\n"
           "  mutable unsigned long hits_ IDXSEL_GUARDED_BY(mu_) = 0;\n"
           "  mutable std::atomic<unsigned long> misses_{0};\n"
           "};\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintGuardedFieldTest, MutableOutsideConcurrencyModulesIsClean) {
  // workload is single-threaded by contract (doc/parallelism.md); its
  // memoization members don't need guard annotations.
  const auto findings = LintFiles(
      {Src("workload/parser.h",
           "class Parser {\n"
           "  mutable unsigned long bytes_ = 0;\n"
           "};\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintGuardedFieldTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("exec/pool.h",
           "class Pool {\n"
           "  // idxsel-lint: allow(guarded-field) reason=wakeup ordering "
           "only, no guarded state\n"
           "  common::Mutex sleep_mu_;\n"
           "};\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintAtomicOrderingTest, DefaultedMethodCallIsFlagged) {
  const auto findings = LintFiles(
      {Src("kernel/epoch.cc",
           "std::atomic<int> epoch{0};\n"
           "void Bump() { epoch.store(1); }\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"atomic-ordering"});
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message,
              AllOf(HasSubstr("memory_order"), HasSubstr("seq_cst")));
}

TEST(LintAtomicOrderingTest, OperatorFormIsFlagged) {
  const auto findings = LintFiles(
      {Src("exec/counters.cc",
           "std::atomic<unsigned long> tasks{0};\n"
           "void Done() { ++tasks; }\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"atomic-ordering"});
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("in disguise"));
}

TEST(LintAtomicOrderingTest, ExplicitOrderIsCleanEvenAcrossLines) {
  const auto findings = LintFiles(
      {Src("kernel/epoch.cc",
           "std::atomic<int> epoch{0};\n"
           "void Bump() {\n"
           "  epoch.store(1,\n"
           "              std::memory_order_release);\n"
           "}\n"
           "int Read() { return epoch.load(std::memory_order_acquire); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintAtomicOrderingTest, ScopeIsKernelExecCommon) {
  // Cold modules may take the seq_cst default; the fence cost is noise
  // there and the check would only breed reflexive `relaxed`.
  const auto findings = LintFiles(
      {Src("serve/service.cc",
           "std::atomic<int> state{0};\n"
           "void Set() { state.store(1); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintAtomicOrderingTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("kernel/epoch.cc",
           "std::atomic<int> epoch{0};\n"
           "// idxsel-lint: allow(atomic-ordering) reason=cold init path\n"
           "void Bump() { epoch.store(1); }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintPointerOrderTest, AddressAsIntegerIsFlagged) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "bool Less(const Index* a, const Index* b) {\n"
           "  return reinterpret_cast<uintptr_t>(a) < "
           "reinterpret_cast<uintptr_t>(b);\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"pointer-order"});
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_THAT(findings[0].message, HasSubstr("run-dependent"));
}

TEST(LintPointerOrderTest, StdLessOverPointerIsFlagged) {
  const auto findings = LintFiles(
      {Src("selection/greedy.cc",
           "std::map<Index*, double, std::less<Index*>> benefit;\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"pointer-order"});
  EXPECT_THAT(findings[0].message, HasSubstr("orders by address"));
}

TEST(LintPointerOrderTest, RelationalGetCompareIsFlagged) {
  const auto findings = LintFiles(
      {Src("shard/shard.cc",
           "bool Before(const Part& a, const Part& b) {\n"
           "  return a.table.get() < b.table.get();\n"
           "}\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"pointer-order"});
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintPointerOrderTest, StableKeysStreamsAndOtherModulesAreClean) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           // Dense-id ordering is the sanctioned replacement.
           "bool Less(const Index& a, const Index& b) {\n"
           "  return a.id() < b.id();\n"
           "}\n"
           // Shifts are not comparisons.
           "void Dump(std::ostream& os, const Part& p) {\n"
           "  os << p.table.get() << 1;\n"
           "}\n"),
       // obs may hash addresses for trace correlation; it never feeds a
       // selection decision.
       Src("obs/tracer.cc",
           "auto key = reinterpret_cast<uintptr_t>(span);\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintPointerOrderTest, SuppressionSilencesIt) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "// idxsel-lint: allow(pointer-order) reason=golden doc example\n"
           "auto k = reinterpret_cast<uintptr_t>(p);\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- Suppressions -----------------------------------------------------------

TEST(LintSuppressionTest, SameLineSuppressionWithReasonSilences) {
  const auto findings = LintFiles(
      {Src("core/sel.cc",
           "std::unordered_map<int, double> m;\n"
           "void F() { for (const auto& [k, v] : m) Keys(k); }  "
           "// idxsel-lint: allow(unordered-iter) reason=keys re-sorted "
           "below\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSuppressionTest, PrecedingLineSuppressionSilences) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=exact sparsity "
           "test\n"
           "bool F(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSuppressionTest, MissingReasonIsItsOwnFindingAndDoesNotSilence) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "bool F(double v) { return v == 0.0; }  "
           "// idxsel-lint: allow(double-compare)\n")},
      NoOrphan());
  // A reasonless suppression suppresses nothing: the original finding
  // survives alongside the suppression-missing-reason report.
  const auto checks = Checks(findings);
  EXPECT_THAT(checks, ::testing::Contains("suppression-missing-reason"));
  EXPECT_THAT(checks, ::testing::Contains("double-compare"));
  for (const Finding& f : findings) {
    if (f.check == "suppression-missing-reason") {
      EXPECT_THAT(f.message, HasSubstr("reason="));
    }
  }
}

TEST(LintSuppressionTest, WrongCheckNameDoesNotSilence) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "bool F(double v) { return v == 0.0; }  "
           "// idxsel-lint: allow(unordered-iter) reason=wrong check\n")},
      NoOrphan());
  const auto checks = Checks(findings);
  // The real finding survives; the mismatched suppression is fine per se
  // (unordered-iter is a known check, it just doesn't fire here).
  EXPECT_THAT(checks, ::testing::Contains("double-compare"));
}

TEST(LintSuppressionTest, UnknownCheckNameFlagged) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "// idxsel-lint: allow(no-such-check) reason=typo\n"
           "int y;\n")},
      NoOrphan());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unknown-check");
}

TEST(LintSuppressionTest, WrappedReasonInCommentBlockStillSilences) {
  // A suppression whose reason wraps onto a second comment line attaches
  // through the whole contiguous comment block above the finding.
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=exact sparsity\n"
           "// test, the solver zeroes eliminated columns bit-exactly\n"
           "bool F(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSuppressionTest, BlankLineBreaksTheCommentBlock) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=stranded comment\n"
           "\n"
           "bool F(double v) { return v == 0.0; }\n")},
      NoOrphan());
  const auto checks = Checks(findings);
  // Detached from its finding, the suppression silences nothing (and is
  // therefore itself reported as stale).
  EXPECT_THAT(checks, ::testing::Contains("double-compare"));
  EXPECT_THAT(checks, ::testing::Contains("stale-suppression"));
}

TEST(LintSuppressionTest, ReasonedSuppressionThatSilencesNothingIsStale) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "// idxsel-lint: allow(pointer-order) reason=needed before the "
           "refactor\n"
           "int F(int v) { return v + 1; }\n")},
      NoOrphan());
  ASSERT_EQ(Checks(findings), std::vector<std::string>{"stale-suppression"});
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_THAT(findings[0].message, HasSubstr("no longer suppresses"));
}

TEST(LintSuppressionTest, UsedSuppressionIsNotStale) {
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=exact sparsity\n"
           "bool F(double v) { return v == 0.0; }\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

// -- Options::skip and SARIF output ------------------------------------------

TEST(LintSkipTest, SkippedCheckDropsItsFindings) {
  Options options = NoOrphan();
  options.skip = {"double-compare"};
  const auto findings = LintFiles(
      {Src("lp/x.cc", "bool F(double v) { return v == 0.0; }\n")}, options);
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSkipTest, SuppressionOfSkippedCheckIsNotStale) {
  // A --skip run must not demand deleting suppressions the full run still
  // needs; staleness is only judged for checks that actually ran.
  Options options = NoOrphan();
  options.skip = {"double-compare"};
  const auto findings = LintFiles(
      {Src("lp/x.cc",
           "// idxsel-lint: allow(double-compare) reason=exact sparsity\n"
           "bool F(double v) { return v == 0.0; }\n")},
      options);
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintSarifTest, ReportCarriesRuleMessageAndLocation) {
  const std::vector<Finding> findings = {
      {"src/core/x.cc", 12, "pointer-order", "orders by \"address\""}};
  const std::string sarif = SarifReport(findings);
  EXPECT_THAT(
      sarif,
      AllOf(HasSubstr("\"version\": \"2.1.0\""),
            HasSubstr("\"name\": \"idxsel_lint\""),
            HasSubstr("\"ruleId\": \"pointer-order\""),
            HasSubstr("\"uri\": \"src/core/x.cc\""),
            HasSubstr("\"startLine\": 12"),
            // JSON string escaping survives the quoted message.
            HasSubstr("orders by \\\"address\\\"")));
}

TEST(LintSarifTest, EmptyRunIsStillAValidUpload) {
  const std::string sarif = SarifReport({});
  EXPECT_THAT(sarif, AllOf(HasSubstr("\"version\": \"2.1.0\""),
                           HasSubstr("\"results\": []")));
}

// -- Tokenizer robustness ---------------------------------------------------

TEST(LintTokenizerTest, CommentsAndStringsDoNotTriggerChecks) {
  const auto findings = LintFiles(
      {Src("core/x.cc",
           "// std::random_device in a comment is fine\n"
           "/* rand() in a block comment too */\n"
           "const char* s = \"system_clock is just a string\";\n"
           "const char* r = R\"(rand() inside raw string)\";\n")},
      NoOrphan());
  EXPECT_THAT(findings, IsEmpty());
}

TEST(LintTokenizerTest, FormatFindingIsStable) {
  const Finding f{"src/core/x.cc", 12, "layering", "boom"};
  EXPECT_EQ(FormatFinding(f), "src/core/x.cc:12: [layering] boom");
}

TEST(LintTokenizerTest, KnownChecksCoverEveryDocumentedName) {
  const auto& checks = KnownChecks();
  for (const char* name :
       {"layering", "include-cycle", "determinism-random",
        "determinism-clock", "unordered-iter", "double-compare",
        "missing-check-include", "orphan-source", "lock-order",
        "guarded-field", "atomic-ordering", "pointer-order",
        "suppression-missing-reason", "unknown-check",
        "stale-suppression"}) {
    EXPECT_THAT(checks, ::testing::Contains(std::string(name))) << name;
  }
}

}  // namespace
}  // namespace idxsel::lint
