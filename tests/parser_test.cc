// Tests for the textual workload format: parsing, diagnostics, and
// round-tripping.

#include <gtest/gtest.h>

#include <fstream>

#include "workload/parser.h"
#include "workload/tpcc.h"

namespace idxsel::workload {
namespace {

constexpr char kValid[] = R"(# web-shop workload
table orders rows=2000000
attr customer_id distinct=150000 size=4
attr status distinct=8
attr country distinct=90 size=2

table items rows=100000
attr id distinct=100000 size=8

query orders freq=12000 attrs=customer_id
query orders freq=9000 attrs=customer_id,status   # open orders
query orders freq=10 write attrs=status
query items freq=450 attrs=id
)";

TEST(ParserTest, ParsesValidInput) {
  auto parsed = ParseWorkload(kValid);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Workload& w = parsed->workload;
  EXPECT_EQ(w.num_tables(), 2u);
  EXPECT_EQ(w.num_attributes(), 4u);
  EXPECT_EQ(w.num_queries(), 4u);
  EXPECT_EQ(w.table(0).name, "orders");
  EXPECT_EQ(w.table(0).row_count, 2'000'000u);
  EXPECT_EQ(w.attribute(0).distinct_values, 150'000u);
  EXPECT_EQ(w.attribute(0).value_size, 4u);
  EXPECT_EQ(w.attribute(1).value_size, 4u);  // default size
  EXPECT_EQ(w.attribute(2).value_size, 2u);
  EXPECT_EQ(parsed->name(0), "orders.customer_id");
  EXPECT_TRUE(w.Validate().ok());
}

TEST(ParserTest, QueryDetails) {
  auto parsed = ParseWorkload(kValid);
  ASSERT_TRUE(parsed.ok());
  const Workload& w = parsed->workload;
  EXPECT_EQ(w.query(1).attributes.size(), 2u);
  EXPECT_DOUBLE_EQ(w.query(1).frequency, 9000.0);
  EXPECT_EQ(w.query(1).kind, QueryKind::kRead);
  EXPECT_EQ(w.query(2).kind, QueryKind::kWrite);
  EXPECT_EQ(w.query(3).table, 1u);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseWorkload(
      "# header\n\ntable t rows=10\n  \nattr a distinct=5 # trailing\n"
      "query t freq=1 attrs=a\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->workload.num_queries(), 1u);
}

struct BadCase {
  const char* input;
  const char* expected_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, ReportsLineAndReason) {
  auto parsed = ParseWorkload(GetParam().input);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find(GetParam().expected_fragment),
            std::string::npos)
      << parsed.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadCase{"bogus t rows=1\n", "unknown directive"},
        BadCase{"table t\n", "expected"},
        BadCase{"table t rows=0\n", "rows"},
        BadCase{"table t rows=5\ntable t rows=5\n", "duplicate table"},
        BadCase{"attr a distinct=5\n", "attr before any table"},
        BadCase{"table t rows=5\nattr a distinct=0\n", "distinct"},
        BadCase{"table t rows=5\nattr a distinct=2\nattr a distinct=2\n",
                "duplicate attribute"},
        BadCase{"table t rows=5\nattr a distinct=2\n"
                "query nope freq=1 attrs=a\n",
                "unknown table"},
        BadCase{"table t rows=5\nattr a distinct=2\n"
                "query t freq=1 attrs=zzz\n",
                "unknown attribute"},
        BadCase{"table t rows=5\nattr a distinct=2\nquery t freq=0 attrs=a\n",
                "freq"},
        BadCase{"table t rows=5\nattr a distinct=2\nquery t freq=1\n",
                "expected"},
        BadCase{"table t rows=5\nattr a distinct=2 wat=1\n",
                "unknown attr option"}));

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto parsed = ParseWorkload("table t rows=5\nattr a distinct=2\noops\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, RoundTripsThroughFormat) {
  auto parsed = ParseWorkload(kValid);
  ASSERT_TRUE(parsed.ok());
  auto formatted = FormatWorkload(parsed->workload, parsed->attribute_names);
  ASSERT_TRUE(formatted.ok()) << formatted.status().ToString();
  auto reparsed = ParseWorkload(*formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const Workload& a = parsed->workload;
  const Workload& b = reparsed->workload;
  ASSERT_EQ(a.num_queries(), b.num_queries());
  for (QueryId j = 0; j < a.num_queries(); ++j) {
    EXPECT_EQ(a.query(j).attributes, b.query(j).attributes);
    EXPECT_DOUBLE_EQ(a.query(j).frequency, b.query(j).frequency);
    EXPECT_EQ(a.query(j).kind, b.query(j).kind);
  }
}

TEST(ParserTest, TpccRoundTrip) {
  const NamedWorkload tpcc = MakeTpccWorkload(10);
  auto formatted = FormatWorkload(tpcc.workload, tpcc.attribute_names);
  ASSERT_TRUE(formatted.ok()) << formatted.status().ToString();
  auto reparsed = ParseWorkload(*formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->workload.num_queries(), tpcc.workload.num_queries());
  EXPECT_EQ(reparsed->workload.num_attributes(),
            tpcc.workload.num_attributes());
}

TEST(ParserTest, LoadWorkloadFile) {
  const std::string path = ::testing::TempDir() + "/idxsel_parser_test.wl";
  {
    std::ofstream file(path, std::ios::trunc);
    file << kValid;
  }
  auto parsed = LoadWorkloadFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->workload.num_queries(), 4u);
}

TEST(ParserTest, MissingFileIsNotFound) {
  auto parsed = LoadWorkloadFile("/nonexistent/idxsel.wl");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

// -- Malformed-input robustness (no aborts, typed errors) --------------------

TEST(ParserTest, EmptyInputIsInvalidArgument) {
  auto parsed = ParseWorkload("");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("no tables"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ParserTest, CommentOnlyInputIsInvalidArgument) {
  auto parsed = ParseWorkload("# just a comment\n\n   \n# another\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, TruncatedHeaderIsInvalidArgument) {
  // A file cut off mid-header: the table line survives, its rows= did not.
  auto parsed = ParseWorkload("table orders ro");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, FormatRejectsAttributeCountMismatch) {
  auto parsed = ParseWorkload(kValid);
  ASSERT_TRUE(parsed.ok());

  std::vector<std::string> too_few(parsed->attribute_names.begin(),
                                   parsed->attribute_names.end() - 1);
  auto formatted = FormatWorkload(parsed->workload, too_few);
  ASSERT_FALSE(formatted.ok());
  EXPECT_EQ(formatted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(formatted.status().message().find("does not match"),
            std::string::npos)
      << formatted.status().ToString();

  auto empty = FormatWorkload(parsed->workload, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace idxsel::workload
