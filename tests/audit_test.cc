// Tests for audit::InvariantAuditor: a healthy pipeline audits clean after
// real selections, and seeded corruptions are caught with the right
// violation class. The auditor is the only component that can see dense /
// hashed cache divergence from the outside, so its own detection power
// needs pinning.

#include "audit/auditor.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "workload/scalable_generator.h"

namespace idxsel::audit {
namespace {

class AuditFixture : public ::testing::Test {
 protected:
  AuditFixture() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 8;
    params.queries_per_table = 15;
    w_ = workload::GenerateScalableWorkload(params);
    model_ = std::make_unique<costmodel::CostModel>(&w_);
    backend_ = std::make_unique<costmodel::ModelBackend>(model_.get());
  }

  workload::Workload w_;
  std::unique_ptr<costmodel::CostModel> model_;
  std::unique_ptr<costmodel::ModelBackend> backend_;
};

TEST_F(AuditFixture, FreshEngineAuditsClean) {
  costmodel::WhatIfEngine engine(&w_, backend_.get());
  const InvariantAuditor auditor(&engine);
  const AuditReport report = auditor.AuditAll();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.ids_checked, 0u);  // posting lists always audited
}

TEST_F(AuditFixture, PostingListsAuditClean) {
  costmodel::WhatIfEngine engine(&w_, backend_.get());
  const InvariantAuditor auditor(&engine);
  const AuditReport report = auditor.AuditPostingLists();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.ids_checked, w_.num_attributes());
}

TEST_F(AuditFixture, SelectionLeavesCoherentCaches) {
  // Drive the real pipeline (which also exercises the in-loop audit hook
  // when the build runs !NDEBUG), then audit the final cache state.
  costmodel::WhatIfEngine engine(&w_, backend_.get());
  core::RecursiveOptions opts;
  opts.budget = 1e7;
  (void)core::SelectRecursive(engine, opts);
  const InvariantAuditor auditor(&engine);
  const AuditReport report = auditor.AuditAll();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST_F(AuditFixture, ReportSummaryAndMergeAccumulate) {
  AuditReport a;
  a.ids_checked = 2;
  EXPECT_TRUE(a.ok());
  EXPECT_NE(a.Summary().find("audit ok"), std::string::npos);
  a.AddViolation("first");
  AuditReport b;
  b.slots_checked = 3;
  b.AddViolation("second");
  a.Merge(b);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.violation_count, 2u);
  EXPECT_EQ(a.slots_checked, 3u);
  const std::string summary = a.Summary();
  EXPECT_NE(summary.find("first"), std::string::npos);
  EXPECT_NE(summary.find("second"), std::string::npos);
}

TEST(AuditGateTest, ScopedToggleRestores) {
  const bool before = Enabled();
  {
    ScopedAuditEnabled on(true);
    EXPECT_TRUE(Enabled());
    {
      ScopedAuditEnabled off(false);
      EXPECT_FALSE(Enabled());
    }
    EXPECT_TRUE(Enabled());
  }
  EXPECT_EQ(Enabled(), before);
}

#if defined(IDXSEL_KERNEL)

TEST_F(AuditFixture, CorruptArenaTupleIsCaught) {
  costmodel::WhatIfEngine engine(&w_, backend_.get());
  if (!engine.DenseActive()) GTEST_SKIP() << "kernel disabled at runtime";
  // A duplicated attribute violates the tuple invariant the masks rely
  // on. Interning it through the public arena handle simulates a buggy
  // candidate generator slipping a malformed index into the dense path.
  const workload::AttributeId dup[2] = {0, 0};
  engine.arena().Intern(dup, 2);
  const InvariantAuditor auditor(&engine);
  const AuditReport report = auditor.AuditArenaMasks();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("repeats attribute"),
            std::string::npos)
      << report.Summary();
}

TEST_F(AuditFixture, DenseCostSlotsMatchHashedCacheBitForBit) {
  costmodel::WhatIfEngine engine(&w_, backend_.get());
  if (!engine.DenseActive()) GTEST_SKIP() << "kernel disabled at runtime";
  // Touch a few dense slots through the public fast path, then verify the
  // auditor actually walked them (slots_checked > 0) and found twins.
  const workload::AttributeId a = w_.query(0).attributes.front();
  const kernel::IndexId id = engine.arena().Intern(&a, 1);
  const auto& posting = w_.queries_with(a);
  for (uint32_t slot = 0; slot < posting.size(); ++slot) {
    engine.CostWithIndexDense(posting[slot], id, slot);
  }
  const InvariantAuditor auditor(&engine);
  const AuditReport report = auditor.AuditCostTables();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.slots_checked, posting.size());
}

#endif  // IDXSEL_KERNEL

}  // namespace
}  // namespace idxsel::audit
