// idxsel::shard test suite — the bit-identity contract of the sharded
// selector (doc/sharding.md) plus the partition / compression units
// underneath it.
//
// The headline assertions:
//   * SelectSharded == SelectRecursive bitwise — selection, trace values,
//     frontier, objective, memory, and selector-level what-if call count —
//     at every shard count and thread count (compression off).
//   * Advisor-level determinism matrix: shards {1,4,16} x threads {1,4} x
//     kernel {on,off} produce byte-identical recommendations and journal
//     sidecars.
//   * Chaos: one shard with a garbage-returning backend degrades the
//     result flag, never the budget feasibility.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "kernel/kernel.h"
#include "obs/journal.h"
#include "rt/fault_injection.h"
#include "shard/partition.h"
#include "shard/sharded_selector.h"
#include "workload/compression.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using advisor::AdvisorOptions;
using advisor::Recommendation;
using advisor::StrategyKind;
using costmodel::CostModel;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;
using shard::ShardedOptions;
using shard::ShardedResult;
using shard::ShardSet;
using shard::ShardWorkload;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit Env(uint32_t tables = 12, uint32_t attrs = 8,
               uint32_t queries = 10, uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = tables;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

// ---------------------------------------------------------------------------
// Partition units.
// ---------------------------------------------------------------------------

TEST(PartitionTest, CoversEveryQueryBearingTableExactlyOnce) {
  Env env;
  const workload::CompressionOptions none{workload::CompressionMode::kNone};
  for (size_t shards : {1u, 3u, 5u, 100u}) {
    const ShardSet set = shard::PartitionByTable(env.w, shards, none);
    ASSERT_EQ(set.table_shard.size(), env.w.num_tables());
    std::vector<size_t> seen(env.w.num_tables(), 0);
    for (const ShardWorkload& sw : set.shards) {
      for (const workload::TableId t : sw.tables) {
        ++seen[t];
        EXPECT_EQ(set.table_shard[t],
                  static_cast<uint32_t>(&sw - set.shards.data()));
      }
    }
    size_t total_queries = 0;
    for (const ShardWorkload& sw : set.shards) {
      total_queries += sw.local.num_queries();
    }
    EXPECT_EQ(total_queries, env.w.num_queries()) << "shards=" << shards;
    for (size_t t = 0; t < env.w.num_tables(); ++t) {
      bool has_queries = false;
      for (const workload::Query& q : env.w.queries()) {
        has_queries = has_queries || q.table == t;
      }
      EXPECT_EQ(seen[t], has_queries ? 1u : 0u) << "table " << t;
      EXPECT_EQ(set.table_shard[t] == ShardSet::kNoShard, !has_queries);
    }
    // Requesting more shards than query-bearing tables clamps.
    EXPECT_LE(set.shards.size(), env.w.num_tables());
  }
}

TEST(PartitionTest, ShardViewTranslationRoundTrips) {
  Env env;
  const workload::CompressionOptions none{workload::CompressionMode::kNone};
  const ShardSet set = shard::PartitionByTable(env.w, 4, none);
  for (const ShardWorkload& sw : set.shards) {
    ASSERT_EQ(sw.query_to_global.size(), sw.local.num_queries());
    ASSERT_EQ(sw.source_queries, sw.local.num_queries());  // kNone: 1:1
    shard::ShardViewBackend view(&sw, env.backend.get());
    for (size_t j = 0; j < sw.local.num_queries(); ++j) {
      const workload::Query& lq =
          sw.local.queries()[j];
      const workload::Query& gq =
          env.w.queries()[sw.query_to_global[j]];
      EXPECT_EQ(lq.frequency, gq.frequency);
      ASSERT_EQ(lq.attributes.size(), gq.attributes.size());
      for (size_t a = 0; a < lq.attributes.size(); ++a) {
        EXPECT_EQ(sw.attr_to_global[lq.attributes[a]], gq.attributes[a]);
      }
      // The view must answer exactly what the global backend answers.
      EXPECT_EQ(view.BaseCost(static_cast<workload::QueryId>(j)),
                env.backend->BaseCost(sw.query_to_global[j]));
      const costmodel::Index local_single(
          {static_cast<uint32_t>(lq.attributes[0])});
      const costmodel::Index global_single(
          {static_cast<uint32_t>(gq.attributes[0])});
      EXPECT_TRUE(view.ToGlobal(local_single) == global_single);
      EXPECT_EQ(view.CostWithIndex(static_cast<workload::QueryId>(j),
                                   local_single),
                env.backend->CostWithIndex(sw.query_to_global[j],
                                           global_single));
    }
  }
}

// ---------------------------------------------------------------------------
// Compression v2 units.
// ---------------------------------------------------------------------------

/// A workload with exact duplicate templates on purpose.
workload::Workload DuplicateHeavyWorkload() {
  workload::Workload w;
  for (int t = 0; t < 3; ++t) {
    std::string name = "t";
    name += static_cast<char>('0' + t);
    w.AddTable(name, 100000);
  }
  std::vector<workload::AttributeId> attrs;
  for (uint32_t t = 0; t < 3; ++t) {
    for (uint64_t a = 0; a < 4; ++a) {
      attrs.push_back(w.AddAttribute(t, 1000 + 100 * a, 8));
    }
  }
  // Table 0: three copies of {a0,a1}, one {a2}. Table 1: two copies of
  // {a4}. Table 2: distinct sets only.
  auto add = [&w](workload::TableId t,
                  std::vector<workload::AttributeId> as, double f) {
    ASSERT_TRUE(w.AddQuery(t, as, f).ok());
  };
  add(0, {attrs[0], attrs[1]}, 10);
  add(0, {attrs[1], attrs[0]}, 20);  // same set, different order
  add(0, {attrs[0], attrs[1]}, 30);
  add(0, {attrs[2]}, 5);
  add(1, {attrs[4]}, 7);
  add(1, {attrs[4]}, 8);
  add(2, {attrs[8]}, 1);
  add(2, {attrs[9]}, 2);
  w.Finalize();
  return w;
}

TEST(CompressionV2Test, DedupMergesFrequenciesAndKeepsRepresentatives) {
  const workload::Workload w = DuplicateHeavyWorkload();
  workload::CompressionOptions opts;
  opts.mode = workload::CompressionMode::kDedup;
  const workload::CompressedWorkload c = workload::CompressWorkload(w, opts);
  EXPECT_EQ(c.source_queries, w.num_queries());
  EXPECT_EQ(c.workload.num_queries(), 5u);  // 8 templates -> 5 signatures
  ASSERT_EQ(c.representative.size(), c.workload.num_queries());
  double total_before = 0.0, total_after = 0.0;
  for (const workload::Query& q : w.queries()) total_before += q.frequency;
  for (size_t j = 0; j < c.workload.num_queries(); ++j) {
    const workload::Query& cq = c.workload.queries()[j];
    total_after += cq.frequency;
    // The representative is a source template with the same signature.
    const workload::Query& rq = w.queries()[c.representative[j]];
    EXPECT_EQ(rq.table, cq.table);
    EXPECT_EQ(rq.attributes, cq.attributes);
  }
  EXPECT_EQ(total_before, total_after);
  // The merged {a0,a1} template carries 10+20+30.
  bool found = false;
  for (const workload::Query& cq : c.workload.queries()) {
    if (cq.table == 0 && cq.attributes.size() == 2) {
      EXPECT_EQ(cq.frequency, 60.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompressionV2Test, SignatureOfMatchesDedupEquality) {
  const workload::Workload w = DuplicateHeavyWorkload();
  std::map<workload::TemplateSignature, size_t> groups;
  for (size_t j = 0; j < w.num_queries(); ++j) {
    ++groups[workload::SignatureOf(w, static_cast<workload::QueryId>(j))];
  }
  workload::CompressionOptions opts;
  opts.mode = workload::CompressionMode::kDedup;
  EXPECT_EQ(groups.size(),
            workload::CompressWorkload(w, opts).workload.num_queries());
}

TEST(CompressionV2Test, ClusterCapsTemplatesPerTablePreservingFrequency) {
  Env env(/*tables=*/4, /*attrs=*/8, /*queries=*/30);
  workload::CompressionOptions opts;
  opts.mode = workload::CompressionMode::kCluster;
  opts.max_templates_per_table = 6;
  const workload::CompressedWorkload c =
      workload::CompressWorkload(env.w, opts);
  std::vector<size_t> per_table(env.w.num_tables(), 0);
  std::vector<double> freq_before(env.w.num_tables(), 0.0);
  std::vector<double> freq_after(env.w.num_tables(), 0.0);
  for (const workload::Query& q : env.w.queries()) {
    freq_before[q.table] += q.frequency;
  }
  for (const workload::Query& q : c.workload.queries()) {
    ++per_table[q.table];
    freq_after[q.table] += q.frequency;
  }
  for (size_t t = 0; t < env.w.num_tables(); ++t) {
    EXPECT_LE(per_table[t], opts.max_templates_per_table) << "table " << t;
    EXPECT_EQ(freq_before[t], freq_after[t]) << "table " << t;
  }
  EXPECT_LE(c.ratio(), 1.0);
}

TEST(CompressionV2Test, PerTableCompressionIsPartitionInvariant) {
  // Compressing a multi-table workload equals compressing each table
  // alone — the invariance the sharded path's per-shard compression
  // rides on. Compare via the shard builder: shard {t0,t1} compressed
  // must contain exactly the per-table compressions' template multisets.
  Env env(/*tables=*/2, /*attrs=*/8, /*queries=*/40);
  workload::CompressionOptions opts;
  opts.mode = workload::CompressionMode::kCluster;
  opts.max_templates_per_table = 5;
  const ShardWorkload both =
      shard::BuildShardWorkload(env.w, {0, 1}, opts);
  const ShardWorkload only0 = shard::BuildShardWorkload(env.w, {0}, opts);
  const ShardWorkload only1 = shard::BuildShardWorkload(env.w, {1}, opts);
  EXPECT_EQ(both.local.num_queries(),
            only0.local.num_queries() + only1.local.num_queries());
  // Signature + frequency multisets must agree (in global attribute ids).
  auto multiset = [](const ShardWorkload& sw) {
    std::map<std::pair<std::vector<workload::AttributeId>, double>, size_t>
        out;
    for (const workload::Query& q : sw.local.queries()) {
      std::vector<workload::AttributeId> global_attrs;
      for (const workload::AttributeId a : q.attributes) {
        global_attrs.push_back(sw.attr_to_global[a]);
      }
      ++out[{global_attrs, q.frequency}];
    }
    return out;
  };
  auto combined = multiset(only0);
  for (const auto& [key, count] : multiset(only1)) combined[key] += count;
  EXPECT_EQ(multiset(both), combined);
}

// ---------------------------------------------------------------------------
// The bit-identity contract, selector level.
// ---------------------------------------------------------------------------

void ExpectSameAsUnsharded(const core::RecursiveResult& ref,
                           const ShardedResult& got, size_t shards,
                           size_t threads) {
  const std::string tag =
      "shards=" + std::to_string(shards) + " threads=" + std::to_string(threads);
  EXPECT_TRUE(got.status.ok()) << tag << ": " << got.status.ToString();
  EXPECT_TRUE(ref.selection == got.selection) << tag;
  EXPECT_EQ(ref.objective, got.objective) << tag;
  EXPECT_EQ(ref.memory, got.memory) << tag;
  EXPECT_EQ(ref.whatif_calls, got.whatif_calls) << tag;
  ASSERT_EQ(ref.trace.size(), got.trace.size()) << tag;
  for (size_t s = 0; s < ref.trace.size(); ++s) {
    EXPECT_EQ(ref.trace[s].kind, got.trace[s].kind) << tag << " step " << s;
    EXPECT_TRUE(ref.trace[s].before == got.trace[s].before)
        << tag << " step " << s;
    EXPECT_TRUE(ref.trace[s].after == got.trace[s].after)
        << tag << " step " << s;
    EXPECT_EQ(ref.trace[s].objective_before, got.trace[s].objective_before)
        << tag << " step " << s;
    EXPECT_EQ(ref.trace[s].objective_after, got.trace[s].objective_after)
        << tag << " step " << s;
    EXPECT_EQ(ref.trace[s].memory_delta, got.trace[s].memory_delta)
        << tag << " step " << s;
    EXPECT_EQ(ref.trace[s].ratio, got.trace[s].ratio) << tag << " step " << s;
  }
  ASSERT_EQ(ref.frontier.size(), got.frontier.size()) << tag;
  for (size_t s = 0; s < ref.frontier.size(); ++s) {
    EXPECT_EQ(ref.frontier[s], got.frontier[s]) << tag << " step " << s;
  }
}

TEST(ShardedSelectorTest, MatchesUnshardedBitwiseAcrossShardAndThreadCounts) {
  Env env;
  core::RecursiveOptions unsharded;
  unsharded.budget = env.model->Budget(0.3);
  unsharded.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const core::RecursiveResult ref =
      core::SelectRecursive(ref_engine, unsharded);
  ASSERT_TRUE(ref.status.ok());
  ASSERT_GE(ref.trace.size(), 3u) << "budget too small to be interesting";
  const double cost_before = ref.trace[0].objective_before;

  for (size_t shards : {1u, 2u, 4u, 16u}) {
    for (size_t threads : {1u, 4u}) {
      ShardedOptions opts;
      opts.shards = shards;
      opts.threads = threads;
      WhatIfEngine engine(&env.w, env.backend.get());
      const ShardedResult got = shard::SelectSharded(
          engine, opts, unsharded.budget, cost_before);
      ExpectSameAsUnsharded(ref, got, shards, threads);
      EXPECT_EQ(got.stats.arbiter_rounds, ref.trace.size());
      EXPECT_LE(got.stats.shards_used, env.w.num_tables());
    }
  }
}

TEST(ShardedSelectorTest, RespectsMaxStepsAndMinRatio) {
  Env env;
  core::RecursiveOptions unsharded;
  unsharded.budget = env.model->Budget(0.3);
  unsharded.max_steps = 2;
  unsharded.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const core::RecursiveResult ref =
      core::SelectRecursive(ref_engine, unsharded);
  ASSERT_EQ(ref.trace.size(), 2u);

  ShardedOptions opts;
  opts.shards = 4;
  opts.max_steps = 2;
  WhatIfEngine engine(&env.w, env.backend.get());
  const ShardedResult got = shard::SelectSharded(
      engine, opts, unsharded.budget, ref.trace[0].objective_before);
  ExpectSameAsUnsharded(ref, got, 4, 1);
}

TEST(ShardedSelectorTest, TinyBudgetAndZeroBudgetDegenerate) {
  Env env;
  // Zero budget: nothing fits; selection empty, objective = baseline.
  ShardedOptions opts;
  opts.shards = 4;
  WhatIfEngine engine(&env.w, env.backend.get());
  const ShardedResult got = shard::SelectSharded(engine, opts, 0.0, 123.5);
  EXPECT_TRUE(got.status.ok());
  EXPECT_TRUE(got.selection.empty());
  EXPECT_EQ(got.memory, 0.0);
  EXPECT_TRUE(got.trace.empty());
}

TEST(ShardedSelectorTest, SessionReuseAfterMarkDirtyStaysExact) {
  // The serve path: run, shift one table's frequencies in the live
  // workload, MarkDirty that table, run again — the second result must
  // equal a from-scratch unsharded run on the shifted workload.
  Env env;
  const double budget = env.model->Budget(0.3);
  WhatIfEngine engine(&env.w, env.backend.get());
  ShardedOptions opts;
  opts.shards = 4;
  shard::ShardedSelector session(engine, opts);
  WhatIfEngine ref1_engine(&env.w, env.backend.get());
  core::RecursiveOptions unsharded;
  unsharded.budget = budget;
  const core::RecursiveResult ref1 =
      core::SelectRecursive(ref1_engine, unsharded);
  const ShardedResult got1 =
      session.Select(budget, ref1.trace[0].objective_before);
  ExpectSameAsUnsharded(ref1, got1, 4, 1);

  // Shift every template of table 2 (global workload mutated in place,
  // as serve does), then mark only that table dirty.
  for (size_t j = 0; j < env.w.num_queries(); ++j) {
    if (env.w.queries()[j].table != 2) continue;
    ASSERT_TRUE(env.w
                    .UpdateQueryFrequency(static_cast<workload::QueryId>(j),
                                          env.w.queries()[j].frequency * 3.0)
                    .ok());
  }
  engine.InvalidateFrequencyDependentCaches();
  session.MarkDirty(2);

  WhatIfEngine ref2_engine(&env.w, env.backend.get());
  const core::RecursiveResult ref2 =
      core::SelectRecursive(ref2_engine, unsharded);
  const ShardedResult got2 =
      session.Select(budget, ref2.trace[0].objective_before);
  EXPECT_TRUE(ref2.selection == got2.selection);
  EXPECT_EQ(ref2.objective, got2.objective);
  EXPECT_EQ(ref2.memory, got2.memory);
  ASSERT_EQ(ref2.trace.size(), got2.trace.size());
  for (size_t s = 0; s < ref2.trace.size(); ++s) {
    EXPECT_TRUE(ref2.trace[s].after == got2.trace[s].after) << "step " << s;
    EXPECT_EQ(ref2.trace[s].objective_after, got2.trace[s].objective_after)
        << "step " << s;
  }
  // Only the dirty shard was rebuilt: its engine is cold, the other three
  // kept their caches, so the session's second run (whatif_calls is a
  // per-Select delta) issues strictly fewer backend calls than a
  // from-scratch sharded run on the shifted workload.
  WhatIfEngine cold_engine(&env.w, env.backend.get());
  const ShardedResult cold = shard::SelectSharded(
      cold_engine, opts, budget, ref2.trace[0].objective_before);
  EXPECT_LT(got2.whatif_calls, cold.whatif_calls);
}

// ---------------------------------------------------------------------------
// Advisor-level determinism matrix.
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, MatrixShardsThreadsKernelByteIdentical) {
  Env env;
  obs::SetJournalEnabled(true);
  obs::Journal::Default().Clear();

  bool have_ref = false;
  Recommendation ref;
  std::string ref_journal;
  for (size_t shards : {1u, 4u, 16u}) {
    for (size_t threads : {1u, 4u}) {
      for (bool kernel_on : {true, false}) {
        kernel::ScopedKernelEnabled kernel(kernel_on);
        AdvisorOptions options;
        options.strategy = StrategyKind::kRecursive;
        options.shards = shards;
        options.threads = threads;
        WhatIfEngine engine(&env.w, env.backend.get());
        const Result<Recommendation> got =
            advisor::Recommend(engine, options);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const std::string journal = obs::JournalToJsonl(got->journal);
        const std::string tag = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads) +
                                " kernel=" + (kernel_on ? "on" : "off");
        EXPECT_FALSE(journal.empty()) << tag;
        if (!have_ref) {
          have_ref = true;
          ref = *got;
          ref_journal = journal;
          EXPECT_GE(ref.trace.size(), 1u);
          continue;
        }
        EXPECT_TRUE(ref.selection == got->selection) << tag;
        EXPECT_EQ(ref.cost_before, got->cost_before) << tag;
        EXPECT_EQ(ref.cost_after, got->cost_after) << tag;
        EXPECT_EQ(ref.memory, got->memory) << tag;
        EXPECT_EQ(ref.budget, got->budget) << tag;
        ASSERT_EQ(ref.trace.size(), got->trace.size()) << tag;
        for (size_t s = 0; s < ref.trace.size(); ++s) {
          EXPECT_TRUE(ref.trace[s].after == got->trace[s].after)
              << tag << " step " << s;
          EXPECT_EQ(ref.trace[s].objective_after,
                    got->trace[s].objective_after)
              << tag << " step " << s;
          EXPECT_EQ(ref.trace[s].ratio, got->trace[s].ratio)
              << tag << " step " << s;
        }
        // The journal sidecar — the durable byte stream — must be
        // byte-identical across the whole matrix.
        EXPECT_EQ(ref_journal, journal) << tag;
      }
    }
  }
  obs::SetJournalEnabled(false);
}

TEST(ShardedDeterminismTest, ShardedAdvisorMatchesUnshardedSelection) {
  Env env;
  AdvisorOptions unsharded;
  unsharded.strategy = StrategyKind::kRecursive;
  unsharded.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const Result<Recommendation> ref = advisor::Recommend(ref_engine, unsharded);
  ASSERT_TRUE(ref.ok());

  AdvisorOptions sharded = unsharded;
  sharded.shards = 4;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> got = advisor::Recommend(engine, sharded);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(ref->selection == got->selection);
  EXPECT_EQ(ref->cost_before, got->cost_before);
  EXPECT_EQ(ref->cost_after, got->cost_after);
  EXPECT_EQ(ref->memory, got->memory);
  ASSERT_EQ(ref->trace.size(), got->trace.size());
  for (size_t s = 0; s < ref->trace.size(); ++s) {
    EXPECT_TRUE(ref->trace[s].after == got->trace[s].after) << "step " << s;
    EXPECT_EQ(ref->trace[s].objective_after, got->trace[s].objective_after)
        << "step " << s;
  }
}

TEST(ShardedDeterminismTest, ResolveShardCountGatesExtensionsAndPortfolio) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.shards = 4;
  EXPECT_EQ(advisor::ResolveShardCount(options, env.w), 4u);

  AdvisorOptions clamped = options;
  clamped.shards = 1000;
  EXPECT_EQ(advisor::ResolveShardCount(clamped, env.w),
            static_cast<size_t>(env.w.num_tables()));

  AdvisorOptions portfolio = options;
  portfolio.portfolio = {StrategyKind::kH4};
  EXPECT_EQ(advisor::ResolveShardCount(portfolio, env.w), 0u);

  AdvisorOptions paired = options;
  paired.recursive.pair_steps = true;
  EXPECT_EQ(advisor::ResolveShardCount(paired, env.w), 0u);

  AdvisorOptions swap = options;
  swap.recursive.swap_repair = true;
  EXPECT_EQ(advisor::ResolveShardCount(swap, env.w), 0u);

  AdvisorOptions h4 = options;
  h4.strategy = StrategyKind::kH4;
  EXPECT_EQ(advisor::ResolveShardCount(h4, env.w), 0u);

  // Auto mode: off below the table threshold, on at it.
  AdvisorOptions autos;
  autos.strategy = StrategyKind::kRecursive;
  autos.shards = 0;
  autos.shard_auto_min_tables = env.w.num_tables() + 1;
  EXPECT_EQ(advisor::ResolveShardCount(autos, env.w), 0u);
  autos.shard_auto_min_tables = env.w.num_tables();
  EXPECT_EQ(advisor::ResolveShardCount(autos, env.w),
            static_cast<size_t>(env.w.num_tables()));
}

// ---------------------------------------------------------------------------
// Chaos: one faulty shard backend.
// ---------------------------------------------------------------------------

TEST(ShardedChaosTest, OneFaultyShardDegradesButStaysBudgetFeasible) {
  Env env;
  const double budget = env.model->Budget(0.3);
  ShardedOptions opts;
  opts.shards = 4;
  opts.threads = 2;
  opts.wrap_backend = [](size_t s, const costmodel::WhatIfBackend& view)
      -> std::unique_ptr<costmodel::WhatIfBackend> {
    if (s != 1) return nullptr;  // only shard 1 is sick
    rt::FaultInjectionOptions fault;
    fault.seed = 17;
    fault.nan_probability = 0.3;
    fault.negative_probability = 0.1;
    return std::make_unique<rt::FaultInjectingBackend>(&view, fault);
  };
  WhatIfEngine engine(&env.w, env.backend.get());
  const ShardedResult got = shard::SelectSharded(engine, opts, budget, 0.0);
  EXPECT_TRUE(got.status.ok());
  EXPECT_TRUE(got.degraded);
  EXPECT_GE(got.stats.degraded_shards, 1u);
  EXPECT_LE(got.memory, budget);
  // Every selected index has finite, truthful memory (sanitized +inf
  // sizes can never be committed).
  for (const costmodel::Index& k : got.selection.indexes()) {
    EXPECT_TRUE(std::isfinite(env.backend->IndexMemory(k)))
        << k.ToString();
  }
  // The healthy shards' moves are unaffected: re-run without the fault
  // and check the degraded run's selection is a subset of interactions
  // that still fit the budget (weaker than equality — the sick shard's
  // corrupted answers may legitimately change its own proposals).
  ShardedOptions clean_opts;
  clean_opts.shards = 4;
  clean_opts.threads = 2;
  WhatIfEngine clean_engine(&env.w, env.backend.get());
  const ShardedResult clean =
      shard::SelectSharded(clean_engine, clean_opts, budget, 0.0);
  EXPECT_FALSE(clean.degraded);
  EXPECT_EQ(clean.stats.degraded_shards, 0u);
}

TEST(ShardedChaosTest, FaultyShardIsDeterministicAcrossRepeats) {
  Env env;
  const double budget = env.model->Budget(0.3);
  auto run = [&] {
    ShardedOptions opts;
    opts.shards = 4;
    opts.threads = 4;
    opts.wrap_backend = [](size_t s, const costmodel::WhatIfBackend& view)
        -> std::unique_ptr<costmodel::WhatIfBackend> {
      if (s != 2) return nullptr;
      rt::FaultInjectionOptions fault;
      fault.seed = 99;
      fault.nan_probability = 0.5;
      return std::make_unique<rt::FaultInjectingBackend>(&view, fault);
    };
    WhatIfEngine engine(&env.w, env.backend.get());
    return shard::SelectSharded(engine, opts, budget, 0.0);
  };
  const ShardedResult a = run();
  const ShardedResult b = run();
  EXPECT_TRUE(a.selection == b.selection);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.degraded, b.degraded);
}

}  // namespace
}  // namespace idxsel
