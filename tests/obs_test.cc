// Tests for the observability layer: histogram percentile math, span
// nesting and thread-safety, disabled-mode no-ops, registry semantics, and
// an end-to-end advisor run whose trace/metrics JSON must be well-formed
// and carry the promised keys.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "obs/obs.h"
#include "workload/scalable_generator.h"

namespace idxsel::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (values only, no schema): enough to
// prove our hand-rolled serializers emit parseable documents.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

// ---------------------------------------------------------------------------
// Histogram bucket and percentile math.

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);
  // Every bucket's bounds bracket exactly the values mapped into it.
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketOf(lo), b) << "bucket " << b;
    if (b > 0) {
      EXPECT_EQ(Histogram::BucketOf(lo - 1), b - 1) << "bucket " << b;
    }
  }
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram h;
  h.Record(1000);
  // With one sample, every percentile is clamped to the observed value.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-scale buckets guarantee at most 2x relative error.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 495.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram h;
  h.Record(5);
  h.Record(7);  // both land in bucket 3 = [4, 8)
  EXPECT_GE(h.Percentile(0), 5.0);
  EXPECT_LE(h.Percentile(100), 7.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t v = 1; v <= kPerThread; ++v) h.Record(v);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), kPerThread);
}

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(RegistryTest, InterningReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  // Counters, gauges and histograms are separate namespaces.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test.counter")),
            static_cast<void*>(a));
}

TEST(RegistryTest, ResetSparesGauges) {
  Registry registry;
  registry.GetCounter("test.c")->Add(5);
  registry.GetHistogram("test.h")->Record(9);
  registry.GetGauge("test.g")->Set(17);
  registry.ResetCountersAndHistograms();
  EXPECT_EQ(registry.GetCounter("test.c")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("test.h")->Count(), 0u);
  EXPECT_EQ(registry.GetGauge("test.g")->Value(), 17);
}

TEST(RegistryTest, SnapshotDeltaDropsUnchangedCounters) {
  Registry registry;
  registry.GetCounter("test.changed")->Add(1);
  registry.GetCounter("test.stale")->Add(1);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("test.changed")->Add(2);
  const MetricsSnapshot delta = SnapshotDelta(before, registry.Snapshot());
  ASSERT_EQ(delta.counters.count("test.changed"), 1u);
  EXPECT_EQ(delta.counters.at("test.changed"), 2u);
  EXPECT_EQ(delta.counters.count("test.stale"), 0u);
}

TEST(RegistryTest, JsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("test.\"quoted\"\\name")->Add(3);
  registry.GetGauge("test.gauge")->Set(-4);
  registry.GetHistogram("test.hist")->Record(1234);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("idxsel.metrics.v1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans and the tracer.

TEST(SpanTest, DisabledSpanRecordsNothing) {
  SetEnabled(false);
  Tracer& tracer = Tracer::Default();
  const size_t mark = tracer.size();
  {
    Span outer("test", "outer");
    Span inner("test", "inner");
    inner.SetArg("n", 1.0);
  }
  EXPECT_EQ(tracer.size(), mark);
  EXPECT_EQ(internal::tls_span_depth, 0u);
}

TEST(SpanTest, NestingDepthsAndContainment) {
  SetEnabled(true);
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  {
    Span outer("test", "outer");
    {
      Span inner("test", "inner");
    }
  }
  SetEnabled(false);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Children close (and record) before their parents.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
  tracer.Clear();
}

TEST(SpanTest, ThreadsGetDistinctIdsAndAllSpansLand) {
  SetEnabled(true);
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int s = 0; s < kSpansPerThread; ++s) {
        Span span("test", "worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetEnabled(false);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::vector<uint32_t> ids;
  for (const SpanRecord& s : spans) ids.push_back(s.thread_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads));
  tracer.Clear();
}

TEST(TracerTest, CapacityBoundsMemoryAndCountsDrops) {
  Tracer tracer;
  tracer.set_capacity(4);
  SpanRecord record;
  record.category = "test";
  record.name = "r";
  for (int i = 0; i < 10; ++i) tracer.Record(record);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(TracerTest, ChromeJsonAndTreeRender) {
  std::vector<SpanRecord> spans;
  SpanRecord outer;
  outer.category = "cat";
  outer.name = "outer";
  outer.start_ns = 1000;
  outer.duration_ns = 4000;
  SpanRecord inner;
  inner.category = "cat";
  inner.name = "inner";
  inner.start_ns = 2000;
  inner.duration_ns = 1000;
  inner.depth = 1;
  inner.arg_name = "round";
  inner.arg_value = 3.0;
  spans.push_back(inner);
  spans.push_back(outer);

  const std::string json = Tracer::ToChromeJson(spans);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"round\""), std::string::npos);

  const std::string tree = Tracer::RenderTree(spans);
  // The tree sorts by start time and indents by depth.
  EXPECT_LT(tree.find("outer"), tree.find("inner"));
  EXPECT_NE(tree.find("  inner"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: one advisor run must produce well-formed, key-complete
// trace and metrics JSON (the contract doc/observability.md promises).

class ObsAdvisorTest : public ::testing::Test {
 protected:
  ObsAdvisorTest() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 6;
    params.queries_per_table = 10;
    w_ = workload::GenerateScalableWorkload(params);
    model_ = std::make_unique<costmodel::CostModel>(&w_);
    backend_ = std::make_unique<costmodel::ModelBackend>(model_.get());
    engine_ =
        std::make_unique<costmodel::WhatIfEngine>(&w_, backend_.get());
  }

  workload::Workload w_;
  std::unique_ptr<costmodel::CostModel> model_;
  std::unique_ptr<costmodel::ModelBackend> backend_;
  std::unique_ptr<costmodel::WhatIfEngine> engine_;
};

#if defined(IDXSEL_OBS)

TEST_F(ObsAdvisorTest, RecommendProducesSchemaValidReport) {
  SetEnabled(true);
  Tracer::Default().Clear();
  advisor::AdvisorOptions options;
  options.strategy = advisor::StrategyKind::kRecursive;
  const Result<advisor::Recommendation> rec = advisor::Recommend(*engine_, options);
  SetEnabled(false);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  const RunReport& report = rec->report;

  EXPECT_EQ(report.name, "H6 (Algorithm 1)");
  EXPECT_GT(report.wall_seconds, 0.0);

  // Metrics: what-if call accounting and selector step counts made it in.
  const std::string metrics_json = report.MetricsJson();
  EXPECT_TRUE(IsValidJson(metrics_json)) << metrics_json;
  EXPECT_NE(metrics_json.find("\"schema\": \"idxsel.metrics.v1\""),
            std::string::npos);
  ASSERT_EQ(report.metrics.counters.count("idxsel.whatif.calls"), 1u);
  EXPECT_GT(report.metrics.counters.at("idxsel.whatif.calls"), 0u);
  ASSERT_EQ(report.metrics.counters.count("idxsel.whatif.cache_hits"), 1u);
  ASSERT_EQ(report.metrics.counters.count("idxsel.selector.runs"), 1u);
  EXPECT_EQ(report.metrics.counters.at("idxsel.selector.runs"), 1u);
  EXPECT_GT(report.metrics.counters.count("idxsel.selector.rounds"), 0u);
  EXPECT_GT(
      report.metrics.counters.count("idxsel.selector.candidate_evals"), 0u);
  // Per-strategy wall time (runs counter + latency histogram).
  ASSERT_EQ(report.metrics.counters.count("idxsel.strategy.h6.runs"), 1u);
  ASSERT_EQ(report.metrics.histograms.count("idxsel.strategy.h6.wall_ns"),
            1u);
  EXPECT_GT(report.metrics.histograms.at("idxsel.strategy.h6.wall_ns").max,
            0u);

  // Trace: Chrome-loadable JSON with the advisor and selector spans.
  const std::string trace_json = report.TraceJson();
  EXPECT_TRUE(IsValidJson(trace_json)) << trace_json;
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("advisor.recommend"), std::string::npos);
  EXPECT_NE(trace_json.find("h6.run"), std::string::npos);
  EXPECT_NE(trace_json.find("h6.round"), std::string::npos);

  // Combined report document and human-readable digest.
  EXPECT_TRUE(IsValidJson(report.ToJson()));
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("what-if calls"), std::string::npos);
  EXPECT_NE(summary.find("hit rate"), std::string::npos);
  Tracer::Default().Clear();
}

TEST_F(ObsAdvisorTest, CophyRunReportsMipCounters) {
  SetEnabled(true);
  Tracer::Default().Clear();
  advisor::AdvisorOptions options;
  options.strategy = advisor::StrategyKind::kCophy;
  options.candidate_limit = 40;
  const Result<advisor::Recommendation> rec = advisor::Recommend(*engine_, options);
  SetEnabled(false);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  const RunReport& report = rec->report;
  ASSERT_EQ(report.metrics.counters.count("idxsel.mip.solves"), 1u);
  ASSERT_EQ(report.metrics.counters.count("idxsel.mip.nodes"), 1u);
  ASSERT_EQ(report.metrics.counters.count("idxsel.cophy.solves"), 1u);
  EXPECT_NE(report.TraceJson().find("cophy.solve"), std::string::npos);
  EXPECT_NE(report.TraceJson().find("mip.solve"), std::string::npos);
  Tracer::Default().Clear();
}

TEST_F(ObsAdvisorTest, RuntimeDisabledRunRecordsNoSpans) {
  SetEnabled(false);
  Tracer::Default().Clear();
  advisor::AdvisorOptions options;
  const Result<advisor::Recommendation> rec = advisor::Recommend(*engine_, options);
  ASSERT_TRUE(rec.ok());
  // Counters still flow (they are as cheap as the struct fields they
  // mirror); spans and latency histograms stay silent.
  EXPECT_GT(rec->report.metrics.counters.count("idxsel.whatif.calls"), 0u);
  EXPECT_TRUE(rec->report.spans.empty());
  EXPECT_EQ(rec->report.metrics.histograms.count(
                "idxsel.whatif.backend_latency_ns"),
            0u);
}

#endif  // defined(IDXSEL_OBS)

}  // namespace
}  // namespace idxsel::obs
