// Tests for candidate enumeration (IC_max), the H*-M heuristics, the
// skyline filter, and applicability sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "candidates/candidates.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "workload/scalable_generator.h"

namespace idxsel::candidates {
namespace {

using costmodel::CostModel;
using costmodel::ModelBackend;
using workload::AttributeId;
using workload::QueryId;
using workload::TableId;

Workload TinyWorkload() {
  Workload w;
  const TableId t = w.AddTable("t", 10000);
  const AttributeId a = w.AddAttribute(t, 5000, 4);  // selective
  const AttributeId b = w.AddAttribute(t, 100, 4);
  const AttributeId c = w.AddAttribute(t, 4, 4);     // unselective
  (void)a;
  (void)b;
  (void)c;
  EXPECT_TRUE(w.AddQuery(t, {0, 1}, 10.0).ok());
  EXPECT_TRUE(w.AddQuery(t, {1, 2}, 5.0).ok());
  EXPECT_TRUE(w.AddQuery(t, {0, 1, 2}, 1.0).ok());
  w.Finalize();
  return w;
}

TEST(CandidateSetTest, AddDedupsAndKeepsOrder) {
  CandidateSet set;
  EXPECT_TRUE(set.Add(Index({1, 2})));
  EXPECT_FALSE(set.Add(Index({1, 2})));
  EXPECT_TRUE(set.Add(Index(0)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], Index({1, 2}));
  EXPECT_TRUE(set.Contains(Index(0)));
}

TEST(CandidateSetTest, MergeIsUnion) {
  CandidateSet a;
  a.Add(Index(1));
  CandidateSet b;
  b.Add(Index(1));
  b.Add(Index(2));
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(EnumerateTest, TinyWorkloadExhaustive) {
  const Workload w = TinyWorkload();
  const CandidateSet all = EnumerateAllCandidates(w, 4);
  // Subsets of {0,1}: {0},{1},{0,1}; of {1,2}: {2},{1,2}; of {0,1,2}:
  // {0,2},{0,1,2}. Each as one representative => 7 candidates.
  EXPECT_EQ(all.size(), 7u);
  // Representative order: ascending selectivity => most selective first.
  // {0,1} -> (0,1) since d0 > d1.
  EXPECT_TRUE(all.Contains(Index({0, 1})));
  EXPECT_FALSE(all.Contains(Index({1, 0})));
  EXPECT_TRUE(all.Contains(Index({0, 1, 2})));
}

TEST(EnumerateTest, WidthCapRespected) {
  const Workload w = TinyWorkload();
  const CandidateSet narrow = EnumerateAllCandidates(w, 1);
  EXPECT_EQ(narrow.size(), 3u);  // singles only
  for (const Index& k : narrow.indexes()) EXPECT_EQ(k.width(), 1u);

  const CandidateSet wide2 = EnumerateAllCandidates(w, 2);
  for (const Index& k : wide2.indexes()) EXPECT_LE(k.width(), 2u);
}

TEST(EnumerateTest, EveryCandidateCoOccursInSomeQuery) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 12;
  params.queries_per_table = 25;
  const Workload w = workload::GenerateScalableWorkload(params);
  const CandidateSet all = EnumerateAllCandidates(w, 3);
  for (const Index& k : all.indexes()) {
    bool covered = false;
    std::vector<AttributeId> sorted = k.attributes();
    std::sort(sorted.begin(), sorted.end());
    for (const workload::Query& q : w.queries()) {
      covered = std::includes(q.attributes.begin(), q.attributes.end(),
                              sorted.begin(), sorted.end());
      if (covered) break;
    }
    EXPECT_TRUE(covered) << k.ToString();
  }
}

TEST(GenerateTest, RespectsSizeBudgetPerWidth) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 3;
  params.attributes_per_table = 15;
  params.queries_per_table = 40;
  const Workload w = workload::GenerateScalableWorkload(params);
  const CandidateSet set =
      GenerateCandidates(w, CandidateHeuristic::kH1M, 40, 4);
  EXPECT_LE(set.size(), 40u);
  size_t per_width[5] = {0, 0, 0, 0, 0};
  for (const Index& k : set.indexes()) {
    ASSERT_LE(k.width(), 4u);
    ++per_width[k.width()];
  }
  for (uint32_t m = 1; m <= 4; ++m) EXPECT_LE(per_width[m], 10u);
}

TEST(GenerateTest, H1MPicksMostFrequentCombos) {
  const Workload w = TinyWorkload();
  const CandidateSet set =
      GenerateCandidates(w, CandidateHeuristic::kH1M, 4, 1);
  // With width cap 1 and h=4, the most frequent single attributes win:
  // g_0 = 11, g_1 = 16, g_2 = 6 — all three make it (only 3 exist).
  EXPECT_EQ(set.size(), 3u);
}

TEST(GenerateTest, H2MPrefersSelectiveCombos) {
  const Workload w = TinyWorkload();
  const CandidateSet set =
      GenerateCandidates(w, CandidateHeuristic::kH2M, 1, 1);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], Index(0));  // d=5000 is the most selective attribute
}

TEST(GenerateTest, H3MBalancesBoth) {
  const Workload w = TinyWorkload();
  const CandidateSet h3 =
      GenerateCandidates(w, CandidateHeuristic::kH3M, 8, 2);
  EXPECT_GE(h3.size(), 4u);
  // All generated candidates must be subsets of some query (inherited from
  // co-occurrence enumeration).
  EXPECT_TRUE(h3.Contains(Index({0, 1})) || h3.Contains(Index(0)));
}

TEST(GenerateTest, DifferentHeuristicsDiffer) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 20;
  params.queries_per_table = 50;
  const Workload w = workload::GenerateScalableWorkload(params);
  const CandidateSet h1 =
      GenerateCandidates(w, CandidateHeuristic::kH1M, 40, 4);
  const CandidateSet h2 =
      GenerateCandidates(w, CandidateHeuristic::kH2M, 40, 4);
  size_t differing = 0;
  for (const Index& k : h1.indexes()) differing += !h2.Contains(k);
  EXPECT_GT(differing, 0u);
}

TEST(ApplicabilityTest, LeadingAttributeRule) {
  const Workload w = TinyWorkload();
  CandidateSet set;
  set.Add(Index({0, 1}));  // leading 0: queries 0 and 2
  set.Add(Index(2));       // leading 2: queries 1 and 2
  const auto applicability = ComputeApplicability(w, set);
  EXPECT_EQ(applicability[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(applicability[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(applicability[2], (std::vector<uint32_t>{0, 1}));
  EXPECT_NEAR(MeanApplicableCandidates(applicability), 4.0 / 3.0, 1e-12);
}

TEST(SkylineTest, RemovesDominatedCandidates) {
  const Workload w = TinyWorkload();
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);

  CandidateSet set;
  set.Add(Index(0));
  set.Add(Index({0, 1}));
  set.Add(Index({0, 1, 2}));
  set.Add(Index(1));
  set.Add(Index(2));
  const CandidateSet filtered = SkylineFilter(set, engine);
  EXPECT_LE(filtered.size(), set.size());
  // Survivors must each be on some query's (memory, cost) skyline; at the
  // very least the cheapest candidate survives.
  EXPECT_GE(filtered.size(), 1u);
  for (const Index& k : filtered.indexes()) EXPECT_TRUE(set.Contains(k));
}

TEST(SkylineTest, SingleCandidateAlwaysSurvivesIfUseful) {
  const Workload w = TinyWorkload();
  const CostModel model(&w);
  ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&w, &backend);
  CandidateSet set;
  set.Add(Index(0));
  const CandidateSet filtered = SkylineFilter(set, engine);
  EXPECT_EQ(filtered.size(), 1u);
}

// Paper-scale sanity: IC_max for the Example-1 workload should land in the
// thousands, in the ballpark of the published 7504 for sum Q_t = 500.
TEST(EnumerateTest, ExampleOneCandidateCountBallpark) {
  workload::ScalableWorkloadParams params;  // T=10, N_t=50
  params.queries_per_table = 50;            // sum Q = 500
  const Workload w = workload::GenerateScalableWorkload(params);
  const CandidateSet all = EnumerateAllCandidates(w, 4);
  EXPECT_GT(all.size(), 2000u);
  EXPECT_LT(all.size(), 30000u);
}

}  // namespace
}  // namespace idxsel::candidates
