// Tests for the CoPhy re-implementation: LP statistics, problem building,
// agreement between the B&B path and the explicit LP, and optimality.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "costmodel/cost_model.h"
#include "lp/simplex.h"
#include "workload/scalable_generator.h"

namespace idxsel::cophy {
namespace {

using candidates::CandidateSet;
using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  explicit TestEnv(uint32_t queries_per_table = 12, uint32_t attrs = 8,
                 uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries_per_table;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }
};

TEST(LpStatisticsTest, CountsMatchFormulas) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 2);
  const LpStatistics stats = ComputeLpStatistics(s.w, cands);
  const auto applicability = candidates::ComputeApplicability(s.w, cands);
  size_t applicable = 0;
  for (const auto& list : applicability) applicable += list.size();
  EXPECT_EQ(stats.num_variables,
            cands.size() + applicable + s.w.num_queries());
  EXPECT_EQ(stats.num_constraints, s.w.num_queries() + applicable + 1);
  EXPECT_GT(stats.mean_applicable_candidates, 0.0);
}

TEST(LpStatisticsTest, GrowsLinearlyWithCandidates) {
  TestEnv s(30, 12);
  const CandidateSet all = EnumerateAllCandidates(s.w, 3);
  CandidateSet half;
  for (uint32_t c = 0; c < all.size() / 2; ++c) half.Add(all[c]);
  const LpStatistics full_stats = ComputeLpStatistics(s.w, all);
  const LpStatistics half_stats = ComputeLpStatistics(s.w, half);
  EXPECT_GT(full_stats.num_variables, half_stats.num_variables);
  EXPECT_GT(full_stats.num_constraints, half_stats.num_constraints);
}

TEST(BuildProblemTest, DimensionsAndCoefficients) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 2);
  const mip::Problem p = BuildProblem(*s.engine, cands, 1e12);
  ASSERT_EQ(p.num_queries(), s.w.num_queries());
  ASSERT_EQ(p.num_candidates(), cands.size());
  for (workload::QueryId j = 0; j < s.w.num_queries(); ++j) {
    EXPECT_DOUBLE_EQ(p.base_cost[j], s.model->UnindexedCost(j));
    EXPECT_DOUBLE_EQ(p.query_weight[j], s.w.query(j).frequency);
  }
  // Spot-check candidate cost entries against the model.
  for (uint32_t c = 0; c < cands.size(); c += 7) {
    for (const mip::QueryCost& qc : p.candidate_costs[c]) {
      EXPECT_DOUBLE_EQ(qc.cost, s.model->CostWithIndex(qc.query, cands[c]));
    }
  }
}

TEST(SolveCophyTest, UnlimitedBudgetTakesBestIndexPerQuery) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 4);
  const double huge_budget = 1e15;
  const CophyResult result = SolveCophy(*s.engine, cands, huge_budget);
  ASSERT_TRUE(result.status.ok());
  // With unlimited budget the optimum equals per-query minima over all
  // candidates.
  double expected = 0.0;
  for (workload::QueryId j = 0; j < s.w.num_queries(); ++j) {
    double best = s.engine->BaseCost(j);
    for (const costmodel::Index& k : cands.indexes()) {
      if (!s.engine->Applicable(j, k)) continue;
      best = std::min(best, s.engine->CostWithIndex(j, k));
    }
    expected += s.w.query(j).frequency * best;
  }
  EXPECT_NEAR(result.objective, expected, expected * 1e-9);
}

TEST(SolveCophyTest, ZeroBudgetSelectsNothing) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 2);
  const CophyResult result = SolveCophy(*s.engine, cands, 0.0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.selection.empty());
}

TEST(SolveCophyTest, SelectionRespectsBudget) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 3);
  const double budget = s.model->Budget(0.2);
  const CophyResult result = SolveCophy(*s.engine, cands, budget);
  ASSERT_TRUE(result.status.ok());
  EXPECT_LE(s.engine->ConfigMemory(result.selection), budget + 1e-6);
}

TEST(SolveCophyTest, LargerCandidateSetNeverWorse) {
  TestEnv s(20, 10);
  const CandidateSet all = EnumerateAllCandidates(s.w, 3);
  CandidateSet small;
  for (uint32_t c = 0; c < all.size(); c += 4) small.Add(all[c]);
  const double budget = s.model->Budget(0.25);
  const CophyResult with_all = SolveCophy(*s.engine, all, budget);
  const CophyResult with_small = SolveCophy(*s.engine, small, budget);
  ASSERT_TRUE(with_all.status.ok());
  ASSERT_TRUE(with_small.status.ok());
  EXPECT_LE(with_all.objective, with_small.objective + 1e-6);
}

TEST(SolveCophyTest, ObjectiveMatchesEngineEvaluation) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 3);
  const CophyResult result =
      SolveCophy(*s.engine, cands, s.model->Budget(0.3));
  ASSERT_TRUE(result.status.ok());
  EXPECT_NEAR(result.objective, s.engine->WorkloadCost(result.selection),
              result.objective * 1e-9);
}

TEST(SolveCophyTest, DnfOnImpossibleDeadline) {
  TestEnv s(40, 16);
  const CandidateSet cands = EnumerateAllCandidates(s.w, 4);
  mip::SolveOptions opts;
  opts.time_limit_seconds = 0.0;
  const CophyResult result =
      SolveCophy(*s.engine, cands, s.model->Budget(0.3), opts);
  EXPECT_TRUE(result.dnf);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
  // The incumbent is still budget-feasible.
  EXPECT_LE(s.engine->ConfigMemory(result.selection),
            s.model->Budget(0.3) + 1e-6);
}

TEST(SolveCophyTest, DnfOnExpiredAdvisorDeadline) {
  // An rt::Deadline that is already expired (the advisor's global budget
  // running out mid-pipeline) must yield a DNF with a feasible incumbent,
  // even though branch-and-bound "finishes" the truncated instance.
  TestEnv s(40, 16);
  const CandidateSet cands = EnumerateAllCandidates(s.w, 4);
  mip::SolveOptions opts;
  opts.deadline = rt::Deadline::After(0.0);
  const double budget = s.model->Budget(0.3);
  const CophyResult result = SolveCophy(*s.engine, cands, budget, opts);
  EXPECT_TRUE(result.dnf);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
  EXPECT_LE(s.engine->ConfigMemory(result.selection), budget + 1e-6);
}

// The explicit LP relaxation must lower-bound the integer optimum, and the
// integer optimum must be achievable by an integral LP point.
TEST(LpRelaxationTest, LowerBoundsIntegerOptimum) {
  TestEnv s(6, 5);
  const CandidateSet cands = EnumerateAllCandidates(s.w, 2);
  const double budget = s.model->Budget(0.2);

  std::vector<uint32_t> x_vars;
  const lp::Model model =
      BuildLpRelaxation(*s.engine, cands, budget, &x_vars);
  EXPECT_EQ(x_vars.size(), cands.size());
  auto relaxed = lp::SolveLp(model);
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();

  const CophyResult integral = SolveCophy(*s.engine, cands, budget);
  ASSERT_TRUE(integral.status.ok());
  EXPECT_LE(relaxed->objective, integral.objective + 1e-6);
  // Relaxation within a factor; for these small instances it is near-tight.
  EXPECT_GT(relaxed->objective, 0.0);
}

TEST(PreparedCophyTest, MatchesOneShotSolve) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 3);
  const PreparedCophy prepared(*s.engine, cands);
  for (double w : {0.1, 0.2, 0.4}) {
    const double budget = s.model->Budget(w);
    const CophyResult one_shot = SolveCophy(*s.engine, cands, budget);
    const CophyResult reused = prepared.Solve(budget);
    ASSERT_TRUE(one_shot.status.ok());
    ASSERT_TRUE(reused.status.ok());
    EXPECT_NEAR(reused.objective, one_shot.objective,
                one_shot.objective * 1e-9)
        << "w=" << w;
  }
}

TEST(PreparedCophyTest, ReusesWhatIfCalls) {
  TestEnv s;
  const CandidateSet cands = EnumerateAllCandidates(s.w, 3);
  const PreparedCophy prepared(*s.engine, cands);
  const uint64_t calls_after_build = s.engine->stats().calls;
  prepared.Solve(s.model->Budget(0.1));
  prepared.Solve(s.model->Budget(0.3));
  EXPECT_EQ(s.engine->stats().calls, calls_after_build);
}

// Brute-force cross-check of SolveCophy's optimality on tiny instances.
class CophyOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CophyOptimalityTest, MatchesExhaustiveSearch) {
  TestEnv s(5, 4, GetParam());
  const CandidateSet cands = EnumerateAllCandidates(s.w, 2);
  if (cands.size() > 18) GTEST_SKIP() << "instance too large for 2^K";
  const double budget = s.model->Budget(0.3);

  double best = s.engine->WorkloadCost(costmodel::IndexConfig{});
  for (uint32_t mask = 1; mask < (1u << cands.size()); ++mask) {
    costmodel::IndexConfig config;
    for (uint32_t c = 0; c < cands.size(); ++c) {
      if (mask & (1u << c)) config.Insert(cands[c]);
    }
    if (s.engine->ConfigMemory(config) > budget) continue;
    best = std::min(best, s.engine->WorkloadCost(config));
  }

  const CophyResult result = SolveCophy(*s.engine, cands, budget);
  ASSERT_TRUE(result.status.ok());
  EXPECT_NEAR(result.objective, best, best * 1e-9) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CophyOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace idxsel::cophy
