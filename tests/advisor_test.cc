// Tests for the advisor facade: every strategy end to end, report
// rendering, and option validation.

#include <gtest/gtest.h>

#include <cmath>

#include "advisor/advisor.h"
#include "common/deadline.h"
#include "costmodel/cost_model.h"
#include "workload/scalable_generator.h"

namespace idxsel::advisor {
namespace {

using costmodel::CostModel;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  TestEnv() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 10;
    params.queries_per_table = 20;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }
};

class AdvisorStrategyTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(AdvisorStrategyTest, ProducesFeasibleRecommendation) {
  TestEnv env;
  AdvisorOptions options;
  options.strategy = GetParam();
  options.budget_fraction = 0.25;
  options.solver.mip_gap = 0.05;
  options.solver.time_limit_seconds = 20.0;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_LE(rec->memory, rec->budget + 1e-6) << StrategyName(GetParam());
  EXPECT_LE(rec->cost_after, rec->cost_before * (1.0 + 1e-9));
  EXPECT_NEAR(rec->cost_after, env.engine->WorkloadCost(rec->selection),
              rec->cost_after * 1e-9);
  EXPECT_GT(rec->budget, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, AdvisorStrategyTest,
    ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                      StrategyKind::kH2, StrategyKind::kH3,
                      StrategyKind::kH4, StrategyKind::kH4Skyline,
                      StrategyKind::kH5, StrategyKind::kCophy));

TEST(AdvisorTest, ExplicitBudgetOverridesFraction) {
  TestEnv env;
  AdvisorOptions options;
  options.budget_bytes = 12345678.0;
  options.budget_fraction = 0.9;  // would be much larger
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->budget, 12345678.0);
}

TEST(AdvisorTest, NegativeBudgetRejected) {
  TestEnv env;
  AdvisorOptions options;
  options.budget_fraction = -0.1;
  auto rec = Recommend(*env.engine, options);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdvisorTest, RecursiveStrategyCarriesTrace) {
  TestEnv env;
  AdvisorOptions options;
  options.budget_fraction = 0.3;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->trace.size() > 0, rec->selection.size() > 0);
}

TEST(AdvisorTest, CandidateLimitRespected) {
  TestEnv env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kH5;
  options.candidate_limit = 8;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->selection.size(), 8u);
}

TEST(AdvisorTest, RecursiveBeatsRulesByDefault) {
  TestEnv env;
  AdvisorOptions h6;
  AdvisorOptions h2;
  h2.strategy = StrategyKind::kH2;
  auto rec_h6 = Recommend(*env.engine, h6);
  auto rec_h2 = Recommend(*env.engine, h2);
  ASSERT_TRUE(rec_h6.ok());
  ASSERT_TRUE(rec_h2.ok());
  EXPECT_LE(rec_h6->cost_after, rec_h2->cost_after * 1.0001);
}

TEST(AdvisorTest, ReportContainsTheEssentials) {
  TestEnv env;
  AdvisorOptions options;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  const std::string report = RenderReport(*env.engine, *rec);
  EXPECT_NE(report.find("Index recommendation"), std::string::npos);
  EXPECT_NE(report.find("H6"), std::string::npos);
  EXPECT_NE(report.find("budget:"), std::string::npos);
  EXPECT_NE(report.find("recommended indexes"), std::string::npos);
  EXPECT_NE(report.find("what-if calls"), std::string::npos);
}

TEST(AdvisorTest, ReportUsesAttributeNames) {
  TestEnv env;
  std::vector<std::string> names;
  for (workload::AttributeId i = 0; i < env.w.num_attributes(); ++i) {
    names.push_back("col_" + std::to_string(i));
  }
  AdvisorOptions options;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->selection.empty());
  const std::string report = RenderReport(*env.engine, *rec, &names);
  EXPECT_NE(report.find("col_"), std::string::npos);
}

// -- Deadline / anytime semantics --------------------------------------------

class AdvisorDeadlineTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(AdvisorDeadlineTest, ZeroTimeLimitReturnsIncumbentWithTimeout) {
  TestEnv env;
  AdvisorOptions options;
  options.strategy = GetParam();
  options.budget_fraction = 0.25;
  options.time_limit_seconds = 0.0;
  auto rec = Recommend(*env.engine, options);
  // Anytime contract: Recommend() stays ok() and reports the DNF in-band.
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->status.code(), StatusCode::kTimeout)
      << StrategyName(GetParam());
  EXPECT_TRUE(rec->dnf);
  EXPECT_TRUE(rec->degraded);
  // The incumbent is feasible and cost_after reflects it.
  EXPECT_LE(rec->memory, rec->budget + 1e-6);
  EXPECT_NEAR(rec->cost_after, env.engine->WorkloadCost(rec->selection),
              rec->cost_after * 1e-9 + 1e-9);
  EXPECT_TRUE(std::isfinite(rec->cost_after));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, AdvisorDeadlineTest,
    ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                      StrategyKind::kH2, StrategyKind::kH3,
                      StrategyKind::kH4, StrategyKind::kH4Skyline,
                      StrategyKind::kH5, StrategyKind::kCophy));

TEST(AdvisorTest, CancellationTokenTriggersTimeout) {
  TestEnv env;
  rt::CancellationToken token;
  token.RequestCancel();
  AdvisorOptions options;
  options.cancellation = &token;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(rec->dnf);
  EXPECT_LE(rec->memory, rec->budget + 1e-6);
}

TEST(AdvisorTest, FallbackPolicyNoneKeepsPrimaryIncumbent) {
  TestEnv env;
  AdvisorOptions options;
  options.time_limit_seconds = 0.0;
  options.fallback = FallbackPolicy::kNone;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->status.code(), StatusCode::kTimeout);
  EXPECT_FALSE(rec->fell_back);
  EXPECT_EQ(rec->executed_strategy, StrategyKind::kRecursive);
}

TEST(AdvisorTest, GenerousDeadlineDoesNotDegrade) {
  TestEnv env;
  AdvisorOptions options;
  options.time_limit_seconds = 300.0;  // plenty for this tiny workload
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->status.ok()) << rec->status.ToString();
  EXPECT_FALSE(rec->dnf);
  EXPECT_FALSE(rec->degraded);
  EXPECT_FALSE(rec->fell_back);
}

TEST(AdvisorTest, TimedOutReportMentionsDnf) {
  TestEnv env;
  AdvisorOptions options;
  options.time_limit_seconds = 0.0;
  auto rec = Recommend(*env.engine, options);
  ASSERT_TRUE(rec.ok());
  const std::string report = RenderReport(*env.engine, *rec);
  EXPECT_NE(report.find("DNF"), std::string::npos);
}

TEST(AdvisorTest, StrategyNamesAreDistinct) {
  std::set<std::string> names;
  for (StrategyKind kind :
       {StrategyKind::kRecursive, StrategyKind::kH1, StrategyKind::kH2,
        StrategyKind::kH3, StrategyKind::kH4, StrategyKind::kH4Skyline,
        StrategyKind::kH5, StrategyKind::kCophy}) {
    names.insert(StrategyName(kind));
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace idxsel::advisor
