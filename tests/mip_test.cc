// Tests for the branch-and-bound solver: optimality against exhaustive
// enumeration, gap/time-limit semantics, and the lazy greedy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/deadline.h"
#include "common/random.h"
#include "mip/branch_and_bound.h"
#include "mip/problem.h"

namespace idxsel::mip {
namespace {

/// Objective of a selection: sum_j b_j * min(base_j, min_{k in S} f_jk).
double Evaluate(const Problem& p, const std::vector<uint32_t>& selection) {
  std::vector<double> cost = p.base_cost;
  for (uint32_t k : selection) {
    for (const QueryCost& qc : p.candidate_costs[k]) {
      cost[qc.query] = std::min(cost[qc.query], qc.cost);
    }
  }
  double total = 0.0;
  for (size_t j = 0; j < cost.size(); ++j) {
    total += p.query_weight[j] * cost[j];
  }
  return total;
}

double Memory(const Problem& p, const std::vector<uint32_t>& selection) {
  double total = 0.0;
  for (uint32_t k : selection) total += p.candidate_memory[k];
  return total;
}

/// Brute force over all 2^K subsets.
double BruteForceOptimum(const Problem& p) {
  const size_t K = p.num_candidates();
  double best = Evaluate(p, {});
  for (uint32_t mask = 1; mask < (1u << K); ++mask) {
    std::vector<uint32_t> sel;
    for (uint32_t k = 0; k < K; ++k) {
      if (mask & (1u << k)) sel.push_back(k);
    }
    if (Memory(p, sel) > p.budget) continue;
    best = std::min(best, Evaluate(p, sel));
  }
  return best;
}

Problem RandomProblem(uint64_t seed, size_t queries, size_t candidates) {
  Rng rng(seed);
  Problem p;
  p.query_weight.resize(queries);
  p.base_cost.resize(queries);
  for (size_t j = 0; j < queries; ++j) {
    p.query_weight[j] = rng.Uniform(1.0, 10.0);
    p.base_cost[j] = rng.Uniform(50.0, 100.0);
  }
  p.candidate_costs.resize(candidates);
  p.candidate_memory.resize(candidates);
  double total_memory = 0.0;
  for (size_t k = 0; k < candidates; ++k) {
    p.candidate_memory[k] = rng.Uniform(1.0, 10.0);
    total_memory += p.candidate_memory[k];
    const size_t touches = static_cast<size_t>(rng.UniformInt(1, 4));
    std::vector<uint32_t> qs;
    for (size_t u = 0; u < touches; ++u) {
      qs.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(queries) - 1)));
    }
    std::sort(qs.begin(), qs.end());
    qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
    for (uint32_t j : qs) {
      p.candidate_costs[k].push_back(
          QueryCost{j, rng.Uniform(1.0, p.base_cost[j])});
    }
  }
  p.budget = total_memory * 0.4;
  return p;
}

TEST(ProblemTest, CanonicalizeDropsUselessEntries) {
  Problem p;
  p.query_weight = {1.0, 1.0};
  p.base_cost = {10.0, 20.0};
  p.budget = 5.0;
  p.candidate_costs = {
      {{0, 5.0}, {1, 25.0}},  // entry for query 1 useless (25 > 20)
      {{0, 12.0}},            // fully useless
      {{1, 1.0}},             // too big (memory 9 > 5)
  };
  p.candidate_memory = {2.0, 1.0, 9.0};
  const std::vector<uint32_t> mapping = p.Canonicalize();
  ASSERT_EQ(mapping.size(), 1u);
  EXPECT_EQ(mapping[0], 0u);
  ASSERT_EQ(p.candidate_costs.size(), 1u);
  EXPECT_EQ(p.candidate_costs[0].size(), 1u);
  EXPECT_EQ(p.candidate_costs[0][0].query, 0u);
}

TEST(BranchAndBoundTest, EmptyProblem) {
  Problem p;
  p.query_weight = {2.0};
  p.base_cost = {10.0};
  p.budget = 100.0;
  const SolveResult r = Solve(p);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.objective, 20.0);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(BranchAndBoundTest, SingleBeneficialCandidate) {
  Problem p;
  p.query_weight = {1.0};
  p.base_cost = {10.0};
  p.candidate_costs = {{{0, 2.0}}};
  p.candidate_memory = {5.0};
  p.budget = 5.0;
  const SolveResult r = Solve(p);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_DOUBLE_EQ(r.objective, 2.0);
}

TEST(BranchAndBoundTest, BudgetExcludesCandidate) {
  Problem p;
  p.query_weight = {1.0};
  p.base_cost = {10.0};
  p.candidate_costs = {{{0, 2.0}}};
  p.candidate_memory = {5.0};
  p.budget = 4.0;  // cannot afford it
  p.Canonicalize();
  const SolveResult r = Solve(p);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.objective, 10.0);
}

TEST(BranchAndBoundTest, PicksComplementaryOverCannibalizing) {
  // Candidates 0 and 1 both help query 0 (cannibalize); candidate 2 helps
  // query 1. Budget fits two: optimum must pick one of {0,1} plus 2, not
  // both cannibals.
  Problem p;
  p.query_weight = {1.0, 1.0};
  p.base_cost = {100.0, 100.0};
  p.candidate_costs = {{{0, 10.0}}, {{0, 12.0}}, {{1, 30.0}}};
  p.candidate_memory = {10.0, 10.0, 10.0};
  p.budget = 20.0;
  const SolveResult r = Solve(p);
  EXPECT_DOUBLE_EQ(r.objective, 40.0);  // 10 + 30
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_EQ(r.selected[1], 2u);
}

TEST(BranchAndBoundTest, GreedyDensityTrapRequiresSearch) {
  // Density greedy takes candidate 0 (high density, small) which blocks the
  // truly optimal big candidate 1. B&B must recover the optimum.
  Problem p;
  p.query_weight = {1.0, 1.0};
  p.base_cost = {100.0, 100.0};
  p.candidate_costs = {
      {{0, 90.0}},            // benefit 10, memory 1 -> density 10
      {{0, 10.0}, {1, 10.0}}, // benefit 180, memory 100 -> density 1.8
  };
  p.candidate_memory = {1.0, 100.0};
  p.budget = 100.0;  // can afford only the big one
  const SolveResult r = Solve(p);
  EXPECT_DOUBLE_EQ(r.objective, 20.0);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(BranchAndBoundTest, TimeLimitReportsTimeoutWithIncumbent) {
  Problem p = RandomProblem(3, 60, 40);
  p.Canonicalize();
  SolveOptions opts;
  opts.time_limit_seconds = 0.0;  // immediate deadline
  const SolveResult r = Solve(p, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_FALSE(r.proven_optimal);
  // Incumbent from the root greedy is still a valid selection.
  EXPECT_LE(Memory(p, r.selected), p.budget + 1e-9);
  EXPECT_NEAR(Evaluate(p, r.selected), r.objective, 1e-6);
}

TEST(BranchAndBoundTest, ExpiredDeadlineReportsTimeoutWithIncumbent) {
  Problem p = RandomProblem(5, 60, 40);
  p.Canonicalize();
  SolveOptions opts;
  opts.deadline = rt::Deadline::After(0.0);  // expired on arrival
  const SolveResult r = Solve(p, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_FALSE(r.proven_optimal);
  // The greedy root incumbent survives the cut and is feasible.
  EXPECT_LE(Memory(p, r.selected), p.budget + 1e-9);
  EXPECT_NEAR(Evaluate(p, r.selected), r.objective, 1e-6);
}

TEST(BranchAndBoundTest, CancellationStopsSearchWithIncumbent) {
  Problem p = RandomProblem(6, 60, 40);
  p.Canonicalize();
  rt::CancellationToken token;
  token.RequestCancel();
  SolveOptions opts;
  opts.deadline.set_cancellation(&token);
  const SolveResult r = Solve(p, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_LE(Memory(p, r.selected), p.budget + 1e-9);
  EXPECT_NEAR(Evaluate(p, r.selected), r.objective, 1e-6);
}

TEST(BranchAndBoundTest, NodeLimitReportsResourceLimit) {
  Problem p = RandomProblem(4, 60, 40);
  p.Canonicalize();
  SolveOptions opts;
  opts.max_nodes = 1;
  const SolveResult r = Solve(p, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceLimit);
}

TEST(BranchAndBoundTest, MipGapStopsEarlyButWithinGap) {
  Problem p = RandomProblem(7, 80, 60);
  p.Canonicalize();
  SolveOptions exact;
  const SolveResult tight = Solve(p, exact);
  ASSERT_TRUE(tight.status.ok());

  SolveOptions relaxed;
  relaxed.mip_gap = 0.05;
  const SolveResult loose = Solve(p, relaxed);
  ASSERT_TRUE(loose.status.ok());
  EXPECT_LE(loose.nodes, tight.nodes);
  // The relaxed objective is within ~5% of the true optimum.
  EXPECT_LE(loose.objective, tight.objective * 1.06);
}

TEST(GreedyTest, RespectsBudget) {
  const Problem p = RandomProblem(9, 50, 30);
  const std::vector<uint32_t> sel = GreedyByDensity(p);
  EXPECT_LE(Memory(p, sel), p.budget + 1e-9);
}

TEST(GreedyTest, TakesTheOnlyBeneficialCandidate) {
  Problem p;
  p.query_weight = {1.0};
  p.base_cost = {10.0};
  p.candidate_costs = {{{0, 1.0}}};
  p.candidate_memory = {1.0};
  p.budget = 10.0;
  EXPECT_EQ(GreedyByDensity(p), std::vector<uint32_t>{0});
}

TEST(GreedyTest, SkipsCannibalizedSecondCandidate) {
  Problem p;
  p.query_weight = {1.0};
  p.base_cost = {10.0};
  p.candidate_costs = {{{0, 1.0}}, {{0, 2.0}}};
  p.candidate_memory = {1.0, 1.0};
  p.budget = 10.0;
  // After taking candidate 0, candidate 1 has zero marginal benefit.
  EXPECT_EQ(GreedyByDensity(p), std::vector<uint32_t>{0});
}

// Property sweep: exact optimality vs brute force on random instances.
class BnbOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnbOptimalityTest, MatchesBruteForce) {
  Problem p = RandomProblem(GetParam(), /*queries=*/12, /*candidates=*/10);
  const double brute = BruteForceOptimum(p);
  p.Canonicalize();
  const SolveResult r = Solve(p);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, brute, 1e-6) << "seed=" << GetParam();
  EXPECT_LE(Memory(p, r.selected), p.budget + 1e-9);
  EXPECT_NEAR(Evaluate(p, r.selected), r.objective, 1e-6);
  // The reported bound brackets the optimum.
  EXPECT_LE(r.best_bound, r.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbOptimalityTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace idxsel::mip
