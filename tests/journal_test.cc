// Selection-journal correctness: the provenance records behind every
// Recommendation must be byte-identical at any thread count, kernel on
// or off (schema idxsel.journal.v1, doc/observability.md). The suite
// pins that contract for H6, the advisor portfolio, and the CoPhy/MIP
// lane, checks that sanitized what-if answers are journaled as
// rejections under a chaos backend, and exercises Explain() in every
// build config — including the "observability disabled" stub that
// -DIDXSEL_ENABLE_OBS=OFF must still compile and return.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "obs/journal.h"
#include "rt/fault_injection.h"
#include "workload/scalable_generator.h"

#if defined(IDXSEL_KERNEL)
#include "kernel/kernel.h"
#endif

namespace idxsel {
namespace {

using advisor::AdvisorOptions;
using advisor::Recommendation;
using advisor::StrategyKind;
using costmodel::CostModel;
using costmodel::Index;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit Env(size_t tables = 3, size_t attrs = 12, size_t queries = 30) {
    workload::ScalableWorkloadParams params;
    params.num_tables = tables;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = 7;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

/// RAII journal enable (restores the previous state; under obs-off
/// builds SetJournalEnabled is a no-op and journals stay empty).
class ScopedJournal {
 public:
  ScopedJournal() : previous_(obs::JournalEnabled()) {
    obs::SetJournalEnabled(true);
  }
  ~ScopedJournal() { obs::SetJournalEnabled(previous_); }

 private:
  bool previous_;
};

/// One advisor run -> journal JSONL bytes.
std::string JournalBytes(Env& env, AdvisorOptions options) {
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  return rec.ok() ? obs::JournalToJsonl(rec->journal) : std::string();
}

/// Runs `options` at threads {1, 8} x kernel {on, off} and demands
/// byte-identical journal exports across all four legs.
void CheckJournalInvariant(Env& env, AdvisorOptions options,
                           const char* what) {
  ScopedJournal journal;
  std::string reference;
  bool have_reference = false;
  for (const bool kernel_on : {true, false}) {
#if defined(IDXSEL_KERNEL)
    kernel::ScopedKernelEnabled kernel_scope(kernel_on);
#else
    if (kernel_on) continue;  // only the off leg exists in this build
#endif
    for (const size_t threads : {1u, 8u}) {
      options.threads = threads;
      const std::string bytes = JournalBytes(env, options);
#if defined(IDXSEL_OBS)
      EXPECT_FALSE(bytes.empty())
          << what << ": journal empty with journaling enabled";
#else
      EXPECT_TRUE(bytes.empty())
          << what << ": obs-off build must produce empty journals";
#endif
      if (!have_reference) {
        reference = bytes;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(bytes, reference)
          << what << ": journal drifted at threads=" << threads
          << " kernel=" << (kernel_on ? "on" : "off");
    }
  }
}

TEST(JournalDeterminismTest, H6ByteIdenticalAcrossThreadsAndKernel) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  CheckJournalInvariant(env, options, "h6");
}

TEST(JournalDeterminismTest, PortfolioByteIdenticalAcrossThreadsAndKernel) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.portfolio = {StrategyKind::kH4, StrategyKind::kH5};
  options.candidate_limit = 150;
  options.budget_fraction = 0.3;
  CheckJournalInvariant(env, options, "portfolio");
}

TEST(JournalDeterminismTest, CophyMipByteIdenticalAcrossThreadsAndKernel) {
  Env env(2, 8, 16);  // small enough for an exact solve on every leg
  AdvisorOptions options;
  options.strategy = StrategyKind::kCophy;
  options.candidate_limit = 60;
  options.budget_fraction = 0.3;
  CheckJournalInvariant(env, options, "cophy/mip");
}

TEST(JournalDeterminismTest, RepeatedRunsAreByteIdentical) {
  Env env;
  ScopedJournal journal;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;
  const std::string first = JournalBytes(env, options);
  const std::string second = JournalBytes(env, options);
  EXPECT_EQ(first, second);
}

#if defined(IDXSEL_OBS)

TEST(JournalContentTest, H6CommitsCarryWinnersAndObjectives) {
  Env env;
  ScopedJournal journal;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok());
  size_t commits = 0;
  bool saw_advisor_decision = false;
  for (const obs::JournalRecord& r : rec->journal) {
    if (r.strategy == "h6" && r.action == "commit") {
      ++commits;
      EXPECT_FALSE(r.winner.empty());
      EXPECT_FALSE(r.candidates.empty());
      EXPECT_TRUE(r.candidates.front().reject.empty())
          << "winner rides first with no reject reason";
      EXPECT_LE(r.objective_after, r.objective_before)
          << "a commit never worsens the objective";
    }
    if (r.strategy == "advisor" && r.action == "decision") {
      saw_advisor_decision = true;
      EXPECT_EQ(r.winner,
                advisor::StrategyKey(rec->executed_strategy));
    }
  }
  EXPECT_GT(commits, 0u);
  EXPECT_TRUE(saw_advisor_decision);
  EXPECT_EQ(commits, rec->trace.size())
      << "one commit record per committed construction step";
}

TEST(JournalContentTest, ChaosSanitizedWhatifRejectionsAreJournaled) {
  Env env;
  rt::FaultInjectionOptions fopts;
  fopts.seed = 11;
  fopts.inf_probability = 0.4;  // corrupt index sizes -> sanitized to +inf
  fopts.healthy_calls = 40;     // let base costs price truthfully first
  rt::FaultInjectingBackend chaos(env.backend.get(), fopts);
  ScopedJournal journal;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;  // call-exact fault placement needs one lane
  WhatIfEngine engine(&env.w, &chaos);
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok());
  uint64_t sanitized_total = 0;
  size_t sanitized_rejects = 0;
  for (const obs::JournalRecord& r : rec->journal) {
    if (r.strategy != "h6") continue;
    sanitized_total += r.sanitized_whatif;
    for (const obs::JournalCandidate& c : r.candidates) {
      if (c.reject == "sanitized-whatif") {
        ++sanitized_rejects;
        EXPECT_FALSE(std::isfinite(c.memory_delta))
            << "sanitized rejects carry the non-finite sanitized size";
      }
    }
  }
  EXPECT_GT(sanitized_total, 0u)
      << "chaos run must journal its sanitized what-if answers";
  EXPECT_GT(sanitized_rejects, 0u)
      << "at least one sanitized rejection must be listed";
}

TEST(JournalContentTest, JsonlRoundTripsNonFiniteDoubles) {
  obs::JournalRecord record;
  record.strategy = "h6";
  record.action = "commit";
  record.round = 1;
  record.winner = "(1,2)";
  obs::JournalCandidate reject;
  reject.index = "(3)";
  reject.reject = "sanitized-whatif";
  reject.memory_delta = std::numeric_limits<double>::infinity();
  reject.ratio = std::numeric_limits<double>::quiet_NaN();
  record.candidates.push_back(reject);
  const std::string line = record.ToJsonl();
  EXPECT_NE(line.find("\"memory_delta\":\"inf\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"ratio\":\"nan\""), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "JSONL records are single-line";
}

TEST(ExplainTest, SelectedAndRejectedIndexesExplainThemselves) {
  Env env;
  ScopedJournal journal;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->selection.empty());
  const Index& chosen = rec->selection.indexes().front();
  const std::string explain = rec->Explain(chosen);
  EXPECT_NE(explain.find(chosen.ToString()), std::string::npos) << explain;
  EXPECT_NE(explain.find("in the recommended selection"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("chosen"), std::string::npos) << explain;

  // An index no strategy ever evaluated.
  const Index stranger(std::vector<workload::AttributeId>{
      static_cast<workload::AttributeId>(env.w.num_attributes() - 1),
      0, 1, 2});
  const std::string absent = rec->Explain(stranger);
  EXPECT_NE(absent.find("never appeared"), std::string::npos) << absent;
}

TEST(ExplainTest, JournalOffRunPointsAtTheEnableSwitch) {
  Env env;
  obs::SetJournalEnabled(false);
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->journal.empty());
  ASSERT_FALSE(rec->selection.empty());
  const std::string explain = rec->Explain(rec->selection.indexes().front());
  EXPECT_NE(explain.find("IDXSEL_JOURNAL"), std::string::npos) << explain;
}

#else  // !defined(IDXSEL_OBS)

TEST(ExplainTest, ObsOffBuildReturnsWellFormedStub) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.4;
  options.threads = 1;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->journal.empty());
  ASSERT_FALSE(rec->selection.empty());
  const std::string explain = rec->Explain(rec->selection.indexes().front());
  EXPECT_NE(explain.find("observability disabled"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("IDXSEL_ENABLE_OBS"), std::string::npos)
      << explain;
}

#endif  // IDXSEL_OBS

}  // namespace
}  // namespace idxsel
