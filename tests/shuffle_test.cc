// Tests for the DB2-style randomized substitution search and the
// AutoAdmin two-step selector.

#include <gtest/gtest.h>

#include "candidates/candidates.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "selection/autoadmin.h"
#include "selection/shuffle.h"
#include "workload/scalable_generator.h"

namespace idxsel::selection {
namespace {

using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;
  CandidateSet candidates;

  explicit TestEnv(uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 10;
    params.queries_per_table = 20;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
    candidates = EnumerateAllCandidates(w, 3);
  }
};

TEST(ShuffleTest, NeverWorseThanItsStartingSolution) {
  TestEnv env;
  const double budget = env.model->Budget(0.2);
  const SelectionResult h5 =
      SelectByBenefitPerSize(*env.engine, env.candidates, budget);
  ShuffleOptions options;
  options.max_iterations = 500;
  const ShuffleResult shuffled =
      SelectByShuffling(*env.engine, env.candidates, budget, options);
  EXPECT_LE(shuffled.selection.objective, h5.objective * (1.0 + 1e-9));
  EXPECT_LE(shuffled.selection.memory, budget + 1e-6);
}

TEST(ShuffleTest, ObjectiveMatchesIndependentEvaluation) {
  TestEnv env;
  const double budget = env.model->Budget(0.15);
  const ShuffleResult r =
      SelectByShuffling(*env.engine, env.candidates, budget, {});
  EXPECT_NEAR(r.selection.objective,
              env.engine->WorkloadCost(r.selection.selection),
              r.selection.objective * 1e-9);
}

TEST(ShuffleTest, DeterministicPerSeed) {
  TestEnv env;
  const double budget = env.model->Budget(0.2);
  ShuffleOptions options;
  options.seed = 42;
  options.max_iterations = 300;
  const ShuffleResult r1 =
      SelectByShuffling(*env.engine, env.candidates, budget, options);
  const ShuffleResult r2 =
      SelectByShuffling(*env.engine, env.candidates, budget, options);
  EXPECT_DOUBLE_EQ(r1.selection.objective, r2.selection.objective);
  EXPECT_EQ(r1.accepted, r2.accepted);
}

TEST(ShuffleTest, TraceRecordsConvergence) {
  TestEnv env;
  ShuffleOptions options;
  options.max_iterations = 200;
  options.trace_every = 50;
  const ShuffleResult r = SelectByShuffling(
      *env.engine, env.candidates, env.model->Budget(0.2), options);
  ASSERT_GE(r.objective_trace.size(), 2u);
  // The trace never increases (only improving moves are accepted).
  for (size_t i = 1; i < r.objective_trace.size(); ++i) {
    EXPECT_LE(r.objective_trace[i].second,
              r.objective_trace[i - 1].second * (1.0 + 1e-9));
  }
}

TEST(ShuffleTest, IterationBudgetRespected) {
  TestEnv env;
  ShuffleOptions options;
  options.max_iterations = 10;
  const ShuffleResult r = SelectByShuffling(
      *env.engine, env.candidates, env.model->Budget(0.2), options);
  EXPECT_LE(r.iterations, 10u);
}

TEST(ShuffleTest, UntargetedSearchTrailsAlgorithmOne) {
  // Section II-D's claim: random substitution needs a long time; within a
  // modest iteration budget it does not beat the targeted recursive
  // construction.
  TestEnv env;
  const double budget = env.model->Budget(0.2);
  ShuffleOptions options;
  options.max_iterations = 300;
  const ShuffleResult shuffled =
      SelectByShuffling(*env.engine, env.candidates, budget, options);
  core::RecursiveOptions recursive;
  recursive.budget = budget;
  const core::RecursiveResult h6 =
      core::SelectRecursive(*env.engine, recursive);
  EXPECT_LE(h6.objective, shuffled.selection.objective * 1.02);
}

// ------------------------------------------------------------- AutoAdmin

TEST(AutoAdminTest, CandidatesAreBestForSomeQuery) {
  TestEnv env;
  AutoAdminOptions options;
  options.budget = env.model->Budget(0.3);
  const AutoAdminResult r = SelectAutoAdmin(*env.engine, options);
  // Step-1 candidates: at most one per query.
  EXPECT_LE(r.candidates.size(), env.w.num_queries());
  EXPECT_GE(r.candidates.size(), 1u);
}

TEST(AutoAdminTest, RespectsIndexCountConstraint) {
  TestEnv env;
  AutoAdminOptions options;
  options.max_indexes = 3;
  const AutoAdminResult r = SelectAutoAdmin(*env.engine, options);
  EXPECT_LE(r.selection.selection.size(), 3u);
}

TEST(AutoAdminTest, RespectsBudgetConstraint) {
  TestEnv env;
  AutoAdminOptions options;
  options.budget = env.model->Budget(0.1);
  const AutoAdminResult r = SelectAutoAdmin(*env.engine, options);
  EXPECT_LE(r.selection.memory, options.budget + 1e-6);
  EXPECT_NEAR(r.selection.objective,
              env.engine->WorkloadCost(r.selection.selection),
              r.selection.objective * 1e-9);
}

TEST(AutoAdminTest, MoreIndexesNeverHurt) {
  TestEnv env;
  AutoAdminOptions few;
  few.max_indexes = 2;
  AutoAdminOptions many;
  many.max_indexes = 8;
  const AutoAdminResult r_few = SelectAutoAdmin(*env.engine, few);
  const AutoAdminResult r_many = SelectAutoAdmin(*env.engine, many);
  // Greedy enumeration is nested in the count constraint.
  EXPECT_LE(r_many.selection.objective,
            r_few.selection.objective * (1.0 + 1e-9));
}

TEST(AutoAdminTest, UnconstrainedCoversEveryImprovableQuery) {
  TestEnv env;
  AutoAdminOptions options;  // no constraints
  const AutoAdminResult r = SelectAutoAdmin(*env.engine, options);
  EXPECT_LT(r.selection.objective,
            env.engine->WorkloadCost(costmodel::IndexConfig{}));
}

TEST(AutoAdminTest, RecursiveStrategyIsAtLeastComparable) {
  // The paper's H6 does not fix the candidate set up front; under the same
  // memory budget it should not lose materially to AutoAdmin's pruned
  // candidates.
  TestEnv env;
  const double budget = env.model->Budget(0.2);
  AutoAdminOptions options;
  options.budget = budget;
  const AutoAdminResult auto_admin = SelectAutoAdmin(*env.engine, options);
  core::RecursiveOptions recursive;
  recursive.budget = budget;
  recursive.swap_repair = true;
  const core::RecursiveResult h6 =
      core::SelectRecursive(*env.engine, recursive);
  EXPECT_LE(h6.objective, auto_admin.selection.objective * 1.05);
}

}  // namespace
}  // namespace idxsel::selection
