// Tests for the column store, composite indexes, the executor (against a
// naive row-at-a-time reference), and the measured cost source.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/btree_index.h"
#include "engine/column_store.h"
#include "engine/composite_index.h"
#include "engine/executor.h"
#include "engine/measured_cost.h"
#include "workload/scalable_generator.h"

namespace idxsel::engine {
namespace {

/// Ground truth: row-at-a-time evaluation of conjunctive equality.
uint64_t ReferenceCount(const ColumnTable& table,
                        const std::vector<Predicate>& predicates) {
  uint64_t matches = 0;
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    bool all = true;
    for (const Predicate& p : predicates) {
      all = all && table.at(p.column, r) == p.value;
    }
    matches += all;
  }
  return matches;
}

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() : rng_(42), table_(5000, {50, 8, 3, 500}, rng_) {}

  Executor MakeExecutor() { return Executor(&table_, {50, 8, 3, 500}); }

  Rng rng_;
  ColumnTable table_;
};

TEST_F(EngineFixture, ColumnTableShape) {
  EXPECT_EQ(table_.num_rows(), 5000u);
  EXPECT_EQ(table_.num_columns(), 4u);
  EXPECT_EQ(table_.memory_bytes(), 4u * 5000u * sizeof(uint32_t));
}

TEST_F(EngineFixture, ValuesWithinDistinctRange) {
  const uint32_t limits[] = {50, 8, 3, 500};
  for (size_t c = 0; c < 4; ++c) {
    for (uint32_t r = 0; r < table_.num_rows(); ++r) {
      EXPECT_LT(table_.at(c, r), limits[c]);
    }
  }
}

TEST_F(EngineFixture, CompositeIndexIsSortedPermutation) {
  const CompositeIndex index(&table_, {0, 1});
  // Probe the full domain; the union of probes must cover every row once.
  uint64_t covered = 0;
  for (uint32_t v0 = 0; v0 < 50; ++v0) {
    const std::vector<uint32_t> key = {v0};
    covered += index.Probe(key).size();
  }
  EXPECT_EQ(covered, table_.num_rows());
}

TEST_F(EngineFixture, ProbeMatchesReference) {
  const CompositeIndex index(&table_, {0, 1});
  for (uint32_t v0 = 0; v0 < 50; v0 += 7) {
    for (uint32_t v1 = 0; v1 < 8; v1 += 3) {
      const std::vector<uint32_t> key = {v0, v1};
      const auto span = index.Probe(key);
      const uint64_t expected =
          ReferenceCount(table_, {{0, v0}, {1, v1}});
      EXPECT_EQ(span.size(), expected) << v0 << "," << v1;
      for (uint32_t row : span) {
        EXPECT_EQ(table_.at(0, row), v0);
        EXPECT_EQ(table_.at(1, row), v1);
      }
    }
  }
}

TEST_F(EngineFixture, ProbePrefixOnly) {
  const CompositeIndex index(&table_, {2, 3});
  const std::vector<uint32_t> key = {1};  // prefix of width 1
  const auto span = index.Probe(key);
  EXPECT_EQ(span.size(), ReferenceCount(table_, {{2, 1}}));
}

TEST_F(EngineFixture, ProbeMissingKeyIsEmpty) {
  const CompositeIndex index(&table_, {1});
  const std::vector<uint32_t> key = {999};  // outside the domain
  EXPECT_EQ(index.Probe(key).size(), 0u);
}

TEST_F(EngineFixture, IndexMemoryGrowsWithWidth) {
  const CompositeIndex narrow(&table_, {0});
  const CompositeIndex wide(&table_, {0, 1, 2});
  EXPECT_LT(narrow.memory_bytes(), wide.memory_bytes());
}

TEST_F(EngineFixture, ScanOnlyMatchesReference) {
  const Executor executor = MakeExecutor();
  const std::vector<Predicate> predicates = {{0, 3}, {1, 2}};
  const ExecutionResult result = executor.ScanOnly(predicates);
  EXPECT_EQ(result.matches, ReferenceCount(table_, predicates));
  EXPECT_GE(result.rows_touched, table_.num_rows());
}

TEST_F(EngineFixture, WithIndexMatchesReference) {
  const Executor executor = MakeExecutor();
  const CompositeIndex index(&table_, {3, 0});
  const std::vector<Predicate> predicates = {{0, 3}, {3, 17}, {2, 1}};
  const ExecutionResult result = executor.WithIndex(predicates, index);
  EXPECT_EQ(result.matches, ReferenceCount(table_, predicates));
  // Index prefix (3, 0) is fully constrained: far fewer rows touched than
  // the full scan.
  EXPECT_LT(result.rows_touched, table_.num_rows());
}

TEST_F(EngineFixture, CoverablePrefixComputation) {
  const CompositeIndex index(&table_, {3, 0, 1});
  EXPECT_EQ(Executor::CoverablePrefix({{3, 1}}, index), 1u);
  EXPECT_EQ(Executor::CoverablePrefix({{3, 1}, {0, 2}}, index), 2u);
  EXPECT_EQ(Executor::CoverablePrefix({{0, 2}}, index), 0u);  // leading gap
  EXPECT_EQ(Executor::CoverablePrefix({{3, 1}, {1, 2}}, index), 1u);
}

TEST_F(EngineFixture, SelectiveIndexTouchesFewerRowsThanScan) {
  const Executor executor = MakeExecutor();
  const CompositeIndex index(&table_, {3});
  const std::vector<Predicate> predicates = {{3, 42}};
  const ExecutionResult scan = executor.ScanOnly(predicates);
  const ExecutionResult probe = executor.WithIndex(predicates, index);
  EXPECT_EQ(scan.matches, probe.matches);
  EXPECT_LT(probe.rows_touched, scan.rows_touched / 10);
}

// ------------------------------------------------------------- database

TEST(DatabaseTest, ScalesRowsAndClampsDistinct) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 5;
  params.queries_per_table = 5;
  params.rows_per_table_step = 1'000'000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const Database db(&w, /*max_rows_per_table=*/10'000, /*seed=*/1);
  EXPECT_EQ(db.rows(0), 10'000u);
  EXPECT_EQ(db.rows(1), 10'000u);
  for (workload::AttributeId a = 0; a < w.num_attributes(); ++a) {
    const auto& col = db.table(w.attribute(a).table).column(db.ordinal(a));
    const uint32_t max_value = *std::max_element(col.begin(), col.end());
    EXPECT_LT(max_value, 10'000u);
  }
}

// Property sweep: random tables, random plans — every access path agrees
// with the row-at-a-time reference.
class ExecutorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzzTest, AllAccessPathsAgree) {
  Rng rng(GetParam());
  const uint64_t rows = static_cast<uint64_t>(1000 + rng.UniformInt(0, 4000));
  std::vector<uint32_t> domains;
  const size_t num_cols = static_cast<size_t>(rng.UniformInt(2, 5));
  for (size_t c = 0; c < num_cols; ++c) {
    domains.push_back(static_cast<uint32_t>(rng.UniformInt(2, 200)));
  }
  const ColumnTable table(rows, domains, rng);
  const Executor executor(&table, domains);

  for (int round = 0; round < 20; ++round) {
    // Random conjunctive predicate set over distinct columns.
    std::vector<Predicate> predicates;
    for (size_t c = 0; c < num_cols; ++c) {
      if (rng.NextDouble() < 0.5) continue;
      predicates.push_back(Predicate{
          static_cast<uint32_t>(c),
          static_cast<uint32_t>(rng.UniformInt(0, domains[c]))});
    }
    if (predicates.empty()) {
      predicates.push_back(Predicate{0, 0});
    }
    const uint64_t expected = ReferenceCount(table, predicates);
    EXPECT_EQ(executor.ScanOnly(predicates).matches, expected);

    // Random index over a permutation of some columns; run it through both
    // physical representations when applicable.
    std::vector<uint32_t> index_cols;
    for (size_t c = 0; c < num_cols; ++c) {
      index_cols.push_back(static_cast<uint32_t>(c));
    }
    for (size_t c = index_cols.size(); c > 1; --c) {
      std::swap(index_cols[c - 1],
                index_cols[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(c) - 1))]);
    }
    index_cols.resize(static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(index_cols.size()))));
    const CompositeIndex composite(&table, index_cols);
    const BTreeIndex btree(&table, index_cols);
    if (Executor::CoverablePrefix(predicates, composite) >= 1) {
      EXPECT_EQ(executor.WithIndex(predicates, composite).matches, expected)
          << "seed=" << GetParam() << " round=" << round;
      EXPECT_EQ(executor.WithIndex(predicates, btree).matches, expected)
          << "seed=" << GetParam() << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

// ----------------------------------------------------- measured cost source

class MeasuredFixture : public ::testing::Test {
 protected:
  MeasuredFixture() {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 6;
    params.queries_per_table = 8;
    params.rows_per_table_step = 20'000;
    w_ = workload::GenerateScalableWorkload(params);
    db_ = std::make_unique<Database>(&w_, 20'000, 1);
    source_ = std::make_unique<MeasuredCostSource>(db_.get(), 3, 99);
  }

  workload::Workload w_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<MeasuredCostSource> source_;
};

TEST_F(MeasuredFixture, PredicatesMatchQueryTemplates) {
  for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
    EXPECT_EQ(source_->predicates(j).size(), w_.query(j).attributes.size());
  }
}

TEST_F(MeasuredFixture, BaseCostPositiveAndCached) {
  const double c1 = source_->BaseCost(0);
  const double c2 = source_->BaseCost(0);
  EXPECT_GT(c1, 0.0);
  EXPECT_DOUBLE_EQ(c1, c2);  // cached: identical, not just close
}

TEST_F(MeasuredFixture, SelectiveIndexBeatsScan) {
  // Find the most selective attribute of query 0 and index it.
  const workload::Query& q = w_.query(0);
  workload::AttributeId best = q.attributes.front();
  for (workload::AttributeId a : q.attributes) {
    if (w_.attribute(a).distinct_values >
        w_.attribute(best).distinct_values) {
      best = a;
    }
  }
  const double base = source_->BaseCost(0);
  const double indexed = source_->CostWithIndex(0, costmodel::Index(best));
  EXPECT_LE(indexed, base);  // never worse (optimizer min)
}

TEST_F(MeasuredFixture, IndexesAreBuiltLazilyAndCached) {
  const size_t before = source_->indexes_built();
  const costmodel::Index k(w_.query(0).attributes.front());
  source_->CostWithIndex(0, k);
  const size_t after_first = source_->indexes_built();
  EXPECT_EQ(after_first, before + 1);
  source_->CostWithIndex(0, k);
  EXPECT_EQ(source_->indexes_built(), after_first);
}

TEST_F(MeasuredFixture, IndexMemoryPositiveAndWidthMonotone) {
  const workload::Query& q = w_.query(0);
  if (q.attributes.size() < 2) GTEST_SKIP();
  const costmodel::Index narrow(q.attributes[0]);
  const costmodel::Index wide = narrow.Append(q.attributes[1]);
  EXPECT_GT(source_->IndexMemory(narrow), 0.0);
  EXPECT_LT(source_->IndexMemory(narrow), source_->IndexMemory(wide));
}

TEST_F(MeasuredFixture, WorksBehindWhatIfEngine) {
  costmodel::WhatIfEngine engine(&w_, source_.get(),
                                 /*canonicalize_keys=*/true);
  costmodel::IndexConfig config;
  config.Insert(costmodel::Index(w_.query(0).attributes.front()));
  const double cost = engine.WorkloadCost(config);
  EXPECT_GT(cost, 0.0);
  EXPECT_LE(cost, engine.WorkloadCost(costmodel::IndexConfig{}) * 1.001);
}

}  // namespace
}  // namespace idxsel::engine
