// Tests for the dense two-phase simplex solver.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace idxsel::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, TrivialBoundedMinimum) {
  // min -x s.t. x <= 5, 0 <= x <= 10 -> x = 5.
  Model m;
  const uint32_t x = m.AddVariable(-1.0, 10.0);
  m.AddRow(Row{{{x, 1.0}}, Sense::kLe, 5.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->objective, -5.0, kTol);
  EXPECT_NEAR(r->values[x], 5.0, kTol);
}

TEST(SimplexTest, TwoVariableTextbook) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min of negative).
  Model m;
  const uint32_t x = m.AddVariable(-3.0);
  const uint32_t y = m.AddVariable(-5.0);
  m.AddRow(Row{{{x, 1.0}}, Sense::kLe, 4.0});
  m.AddRow(Row{{{y, 2.0}}, Sense::kLe, 12.0});
  m.AddRow(Row{{{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->objective, -36.0, kTol);
  EXPECT_NEAR(r->values[x], 2.0, kTol);
  EXPECT_NEAR(r->values[y], 6.0, kTol);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1 -> x = 2, y = 1.
  Model m;
  const uint32_t x = m.AddVariable(1.0);
  const uint32_t y = m.AddVariable(2.0);
  m.AddRow(Row{{{x, 1.0}, {y, 1.0}}, Sense::kEq, 3.0});
  m.AddRow(Row{{{x, 1.0}, {y, -1.0}}, Sense::kEq, 1.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->values[x], 2.0, kTol);
  EXPECT_NEAR(r->values[y], 1.0, kTol);
  EXPECT_NEAR(r->objective, 4.0, kTol);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x = 4, y = 0 (cost 8).
  Model m;
  const uint32_t x = m.AddVariable(2.0);
  const uint32_t y = m.AddVariable(3.0);
  m.AddRow(Row{{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0});
  m.AddRow(Row{{{x, 1.0}}, Sense::kGe, 1.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->objective, 8.0, kTol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  const uint32_t x = m.AddVariable(1.0, 1.0);
  m.AddRow(Row{{{x, 1.0}}, Sense::kGe, 5.0});  // x >= 5 but x <= 1
  auto r = SolveLp(m);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  const uint32_t x = m.AddVariable(-1.0);  // min -x, x unbounded above
  m.AddRow(Row{{{x, 1.0}}, Sense::kGe, 0.0});
  auto r = SolveLp(m);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // -x <= -2  <=>  x >= 2; min x -> 2.
  Model m;
  const uint32_t x = m.AddVariable(1.0);
  m.AddRow(Row{{{x, -1.0}}, Sense::kLe, -2.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->values[x], 2.0, kTol);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const uint32_t x = m.AddVariable(-1.0);
  const uint32_t y = m.AddVariable(-1.0);
  m.AddRow(Row{{{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0});
  m.AddRow(Row{{{x, 2.0}, {y, 2.0}}, Sense::kLe, 2.0});
  m.AddRow(Row{{{x, 1.0}}, Sense::kLe, 1.0});
  m.AddRow(Row{{{y, 1.0}}, Sense::kLe, 1.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->objective, -1.0, kTol);
}

TEST(SimplexTest, FractionalKnapsackRelaxation) {
  // max 10a + 6b + 4c s.t. a + b + c <= 100 weights 5,4,3... classic:
  // min -(10a+6b+4c) s.t. 5a + 4b + 3c <= 25, a,b,c in [0, 10].
  Model m;
  const uint32_t a = m.AddVariable(-10.0, 10.0);
  const uint32_t b = m.AddVariable(-6.0, 10.0);
  const uint32_t c = m.AddVariable(-4.0, 10.0);
  m.AddRow(Row{{{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLe, 25.0});
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  // Density 2, 1.5, 1.33: take a=5 fully (weight 25) -> objective -50? But
  // a is capped at 10 and weight allows a = 5. Optimal: a = 5, obj = -50.
  EXPECT_NEAR(r->objective, -50.0, kTol);
}

// Property test: on random small LPs with only <= constraints and
// non-negative rhs (always feasible at 0), compare the simplex optimum with
// a brute-force over basic solutions obtained via dense enumeration of
// vertex candidates on a grid. Rather than full vertex enumeration we check
// weak duality-style bounds: the simplex solution must be feasible and at
// least as good as a large random feasible sample.
class SimplexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomTest, BeatsRandomFeasibleSamples) {
  Rng rng(GetParam());
  const size_t n = 4;
  const size_t rows = 5;
  Model m;
  std::vector<uint32_t> vars;
  for (size_t v = 0; v < n; ++v) {
    vars.push_back(m.AddVariable(rng.Uniform(-5.0, 5.0), 10.0));
  }
  std::vector<std::vector<double>> a(rows, std::vector<double>(n));
  std::vector<double> rhs(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.sense = Sense::kLe;
    rhs[r] = rng.Uniform(1.0, 20.0);
    row.rhs = rhs[r];
    for (size_t v = 0; v < n; ++v) {
      a[r][v] = rng.Uniform(0.0, 3.0);
      row.terms.emplace_back(vars[v], a[r][v]);
    }
    m.AddRow(std::move(row));
  }
  auto solved = SolveLp(m);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();

  // Feasibility of the simplex point.
  for (size_t r = 0; r < rows; ++r) {
    double lhs = 0.0;
    for (size_t v = 0; v < n; ++v) lhs += a[r][v] * solved->values[v];
    EXPECT_LE(lhs, rhs[r] + 1e-6);
  }
  for (size_t v = 0; v < n; ++v) {
    EXPECT_GE(solved->values[v], -1e-9);
    EXPECT_LE(solved->values[v], 10.0 + 1e-9);
  }

  // Sampled feasible points cannot beat the reported optimum.
  for (int sample = 0; sample < 300; ++sample) {
    std::vector<double> x(n);
    for (size_t v = 0; v < n; ++v) x[v] = rng.Uniform(0.0, 10.0);
    bool feasible = true;
    for (size_t r = 0; r < rows && feasible; ++r) {
      double lhs = 0.0;
      for (size_t v = 0; v < n; ++v) lhs += a[r][v] * x[v];
      feasible = lhs <= rhs[r];
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (size_t v = 0; v < n; ++v) obj += m.objective_coeff(vars[v]) * x[v];
    EXPECT_GE(obj, solved->objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace idxsel::lp
