// Tests for the workload model and the three generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/blend.h"
#include "workload/compression.h"
#include "workload/erp_generator.h"
#include "workload/scalable_generator.h"
#include "workload/tpcc.h"
#include "workload/workload.h"

namespace idxsel::workload {
namespace {

Workload SmallWorkload() {
  Workload w;
  const TableId t = w.AddTable("t", 1000);
  const AttributeId a = w.AddAttribute(t, 100, 4);
  const AttributeId b = w.AddAttribute(t, 10, 8);
  const AttributeId c = w.AddAttribute(t, 1000, 4);
  EXPECT_TRUE(w.AddQuery(t, {a, b}, 5.0).ok());
  EXPECT_TRUE(w.AddQuery(t, {b, c}, 2.0).ok());
  EXPECT_TRUE(w.AddQuery(t, {a}, 1.0).ok());
  w.Finalize();
  return w;
}

TEST(WorkloadTest, BasicAccessors) {
  Workload w = SmallWorkload();
  EXPECT_EQ(w.num_tables(), 1u);
  EXPECT_EQ(w.num_attributes(), 3u);
  EXPECT_EQ(w.num_queries(), 3u);
  EXPECT_EQ(w.table(0).row_count, 1000u);
  EXPECT_EQ(w.attribute(1).distinct_values, 10u);
  EXPECT_DOUBLE_EQ(w.attribute(1).selectivity(), 0.1);
  EXPECT_EQ(w.rows_of(2), 1000u);
  EXPECT_TRUE(w.Validate().ok());
}

TEST(WorkloadTest, DistinctCountClampedToRowCount) {
  Workload w;
  const TableId t = w.AddTable("t", 50);
  const AttributeId a = w.AddAttribute(t, 1000000, 4);
  EXPECT_EQ(w.attribute(a).distinct_values, 50u);
}

TEST(WorkloadTest, QueryCanonicalization) {
  Workload w;
  const TableId t = w.AddTable("t", 10);
  const AttributeId a = w.AddAttribute(t, 5, 4);
  const AttributeId b = w.AddAttribute(t, 5, 4);
  auto q = w.AddQuery(t, {b, a, b, a}, 1.0);
  ASSERT_TRUE(q.ok());
  w.Finalize();
  EXPECT_EQ(w.query(*q).attributes, (std::vector<AttributeId>{a, b}));
}

TEST(WorkloadTest, RejectsMalformedQueries) {
  Workload w;
  const TableId t1 = w.AddTable("t1", 10);
  const TableId t2 = w.AddTable("t2", 10);
  const AttributeId a1 = w.AddAttribute(t1, 5, 4);
  EXPECT_FALSE(w.AddQuery(t2, {a1}, 1.0).ok());   // wrong table
  EXPECT_FALSE(w.AddQuery(t1, {}, 1.0).ok());     // empty
  EXPECT_FALSE(w.AddQuery(t1, {a1}, 0.0).ok());   // zero frequency
  EXPECT_FALSE(w.AddQuery(99, {a1}, 1.0).ok());   // unknown table
}

TEST(WorkloadTest, OccurrenceWeightsAreFrequencyWeighted) {
  Workload w = SmallWorkload();
  EXPECT_DOUBLE_EQ(w.occurrence_weight(0), 6.0);  // a: queries 0 and 2
  EXPECT_DOUBLE_EQ(w.occurrence_weight(1), 7.0);  // b: queries 0 and 1
  EXPECT_DOUBLE_EQ(w.occurrence_weight(2), 2.0);  // c: query 1
}

TEST(WorkloadTest, InvertedIndexMatchesQueries) {
  Workload w = SmallWorkload();
  EXPECT_EQ(w.queries_with(0), (std::vector<QueryId>{0, 2}));
  EXPECT_EQ(w.queries_with(1), (std::vector<QueryId>{0, 1}));
  EXPECT_EQ(w.queries_with(2), (std::vector<QueryId>{1}));
}

TEST(WorkloadTest, MeanQueryWidthAndTotalFrequency) {
  Workload w = SmallWorkload();
  EXPECT_DOUBLE_EQ(w.mean_query_width(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(w.total_frequency(), 8.0);
}

// ---------------------------------------------------------------- scalable

TEST(ScalableGeneratorTest, ProducesRequestedDimensions) {
  ScalableWorkloadParams params;
  params.num_tables = 4;
  params.attributes_per_table = 20;
  params.queries_per_table = 30;
  const Workload w = GenerateScalableWorkload(params);
  EXPECT_EQ(w.num_tables(), 4u);
  EXPECT_EQ(w.num_attributes(), 80u);
  EXPECT_EQ(w.num_queries(), 120u);
  EXPECT_TRUE(w.Validate().ok());
}

TEST(ScalableGeneratorTest, RowCountsScaleWithTableIndex) {
  ScalableWorkloadParams params;
  params.num_tables = 3;
  params.rows_per_table_step = 1000;
  const Workload w = GenerateScalableWorkload(params);
  EXPECT_EQ(w.table(0).row_count, 1000u);
  EXPECT_EQ(w.table(1).row_count, 2000u);
  EXPECT_EQ(w.table(2).row_count, 3000u);
}

TEST(ScalableGeneratorTest, DeterministicPerSeed) {
  ScalableWorkloadParams params;
  params.num_tables = 2;
  params.queries_per_table = 10;
  const Workload w1 = GenerateScalableWorkload(params);
  const Workload w2 = GenerateScalableWorkload(params);
  ASSERT_EQ(w1.num_queries(), w2.num_queries());
  for (QueryId j = 0; j < w1.num_queries(); ++j) {
    EXPECT_EQ(w1.query(j).attributes, w2.query(j).attributes);
    EXPECT_EQ(w1.query(j).frequency, w2.query(j).frequency);
  }
}

TEST(ScalableGeneratorTest, DifferentSeedsDiffer) {
  ScalableWorkloadParams p1;
  ScalableWorkloadParams p2;
  p2.seed = p1.seed + 1;
  const Workload w1 = GenerateScalableWorkload(p1);
  const Workload w2 = GenerateScalableWorkload(p2);
  bool any_difference = false;
  for (QueryId j = 0; j < w1.num_queries() && !any_difference; ++j) {
    any_difference = w1.query(j).attributes != w2.query(j).attributes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScalableGeneratorTest, QueryWidthsWithinAppendixCBounds) {
  const Workload w = GenerateScalableWorkload({});
  for (const Query& q : w.queries()) {
    EXPECT_GE(q.attributes.size(), 1u);
    EXPECT_LE(q.attributes.size(), 11u);  // Z in [1, 11] before dedup
    EXPECT_GE(q.frequency, 1.0);
    EXPECT_LE(q.frequency, 10000.0);
  }
}

TEST(ScalableGeneratorTest, AttributeDrawSkewsTowardsHighOrdinals) {
  const Workload w = GenerateScalableWorkload({});
  // Appendix C's q draw pushes mass to high ordinals: the upper half of
  // each table's attributes should be accessed more than the lower half.
  double low = 0.0;
  double high = 0.0;
  for (AttributeId i = 0; i < w.num_attributes(); ++i) {
    const auto& stats = w.attribute(i);
    (stats.ordinal < 25 ? low : high) += w.occurrence_weight(i);
  }
  EXPECT_GT(high, low);
}

// --------------------------------------------------------------------- erp

TEST(ErpGeneratorTest, MatchesPublishedDimensions) {
  ErpWorkloadParams params;  // defaults = paper's aggregates
  const Workload w = GenerateErpWorkload(params);
  EXPECT_EQ(w.num_tables(), 500u);
  EXPECT_EQ(w.num_attributes(), 4204u);
  EXPECT_EQ(w.num_queries(), 2271u);
  EXPECT_TRUE(w.Validate().ok());
}

TEST(ErpGeneratorTest, RowCountsWithinPublishedRange) {
  ErpWorkloadParams params;
  const Workload w = GenerateErpWorkload(params);
  for (const TableSchema& t : w.tables()) {
    EXPECT_GE(t.row_count, params.min_rows / 2);  // log-uniform floor
    EXPECT_LE(t.row_count, params.max_rows);
  }
}

TEST(ErpGeneratorTest, ExecutionVolumeMatchesOrder) {
  const Workload w = GenerateErpWorkload({});
  // > 50M weighted executions published; Zipf rounding keeps us near it.
  EXPECT_GT(w.total_frequency(), 4e7);
  EXPECT_LT(w.total_frequency(), 8e7);
}

TEST(ErpGeneratorTest, MostlyPointAccess) {
  const Workload w = GenerateErpWorkload({});
  size_t narrow = 0;
  for (const Query& q : w.queries()) narrow += q.attributes.size() <= 4;
  EXPECT_GT(static_cast<double>(narrow) / w.num_queries(), 0.85);
}

TEST(ErpGeneratorTest, Deterministic) {
  const Workload w1 = GenerateErpWorkload({});
  const Workload w2 = GenerateErpWorkload({});
  ASSERT_EQ(w1.num_queries(), w2.num_queries());
  for (QueryId j = 0; j < w1.num_queries(); j += 97) {
    EXPECT_EQ(w1.query(j).attributes, w2.query(j).attributes);
  }
}

// ------------------------------------------------------------- compression

TEST(CompressionTest, MergeDuplicateTemplatesSumsFrequencies) {
  Workload w;
  const TableId t = w.AddTable("t", 100);
  const AttributeId a = w.AddAttribute(t, 10, 4);
  const AttributeId b = w.AddAttribute(t, 10, 4);
  ASSERT_TRUE(w.AddQuery(t, {a, b}, 3.0).ok());
  ASSERT_TRUE(w.AddQuery(t, {b, a}, 4.0).ok());  // same canonical template
  ASSERT_TRUE(w.AddQuery(t, {a}, 1.0).ok());
  w.Finalize();

  const Workload merged = MergeDuplicateTemplates(w);
  EXPECT_EQ(merged.num_queries(), 2u);
  EXPECT_DOUBLE_EQ(merged.total_frequency(), 8.0);
  // Schema ids preserved.
  EXPECT_EQ(merged.num_attributes(), w.num_attributes());
  EXPECT_EQ(merged.attribute(a).distinct_values, 10u);
}

TEST(CompressionTest, MergeIsLosslessForAdditiveCosts) {
  const Workload w = GenerateScalableWorkload({});
  const Workload merged = MergeDuplicateTemplates(w);
  EXPECT_LE(merged.num_queries(), w.num_queries());
  EXPECT_NEAR(merged.total_frequency(), w.total_frequency(), 1e-6);
  // Occurrence weights are invariant under merging.
  for (AttributeId i = 0; i < w.num_attributes(); ++i) {
    EXPECT_NEAR(merged.occurrence_weight(i), w.occurrence_weight(i), 1e-6);
  }
}

TEST(CompressionTest, TopKKeepsTheMostExpensiveQueries) {
  Workload w;
  const TableId t = w.AddTable("t", 100);
  const AttributeId a = w.AddAttribute(t, 10, 4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.AddQuery(t, {a}, 1.0 + i).ok());
  }
  w.Finalize();
  const std::vector<double> costs = {5.0, 1.0, 4.0, 2.0, 3.0};
  const Workload top2 = CompressTopK(w, costs, 2);
  ASSERT_EQ(top2.num_queries(), 2u);
  // Queries 0 (cost 5) and 2 (cost 4) survive, in original order.
  EXPECT_DOUBLE_EQ(top2.query(0).frequency, 1.0);
  EXPECT_DOUBLE_EQ(top2.query(1).frequency, 3.0);
}

TEST(CompressionTest, TopKClampsToWorkloadSize) {
  const Workload w = GenerateScalableWorkload({});
  std::vector<double> costs(w.num_queries(), 1.0);
  const Workload all = CompressTopK(w, costs, w.num_queries() * 10);
  EXPECT_EQ(all.num_queries(), w.num_queries());
}

// ------------------------------------------------------------------- blend

TEST(BlendTest, SameSchemaDetection) {
  ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 5;
  params.queries_per_table = 5;
  const Workload a = GenerateScalableWorkload(params);
  params.seed += 1;  // same schema stream? No — seed changes attributes too
  const Workload b = GenerateScalableWorkload(params);
  EXPECT_TRUE(SameSchema(a, a));
  // Different seeds draw different distinct counts -> different schema.
  EXPECT_FALSE(SameSchema(a, b));
}

TEST(BlendTest, EndpointsReproduceTheScenarios) {
  Workload a;
  const TableId t = a.AddTable("t", 1000);
  const AttributeId x = a.AddAttribute(t, 10, 4);
  const AttributeId y = a.AddAttribute(t, 20, 4);
  ASSERT_TRUE(a.AddQuery(t, {x}, 10.0).ok());
  a.Finalize();
  Workload b;
  (void)b.AddTable("t", 1000);
  (void)b.AddAttribute(t, 10, 4);
  (void)b.AddAttribute(t, 20, 4);
  ASSERT_TRUE(b.AddQuery(t, {y}, 6.0).ok());
  b.Finalize();

  const Workload at_a = BlendWorkloads(a, b, 0.0);
  EXPECT_EQ(at_a.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(at_a.query(0).frequency, 10.0);

  const Workload at_b = BlendWorkloads(a, b, 1.0);
  EXPECT_EQ(at_b.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(at_b.query(0).frequency, 6.0);

  const Workload mid = BlendWorkloads(a, b, 0.5);
  EXPECT_EQ(mid.num_queries(), 2u);
  EXPECT_DOUBLE_EQ(mid.total_frequency(), 8.0);
}

TEST(BlendTest, SharedTemplatesMerge) {
  Workload a;
  const TableId t = a.AddTable("t", 1000);
  const AttributeId x = a.AddAttribute(t, 10, 4);
  ASSERT_TRUE(a.AddQuery(t, {x}, 10.0).ok());
  a.Finalize();
  Workload b;
  (void)b.AddTable("t", 1000);
  (void)b.AddAttribute(t, 10, 4);
  ASSERT_TRUE(b.AddQuery(t, {x}, 30.0).ok());
  b.Finalize();
  const Workload mid = BlendWorkloads(a, b, 0.25);
  ASSERT_EQ(mid.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(mid.query(0).frequency, 0.75 * 10.0 + 0.25 * 30.0);
}

TEST(BlendTest, ExpectedCostIsLinearInTheBlend) {
  // F_blend(I*) == (1-w) F_a(I*) + w F_b(I*) for any fixed selection —
  // the property that makes blend-tuning optimize the expectation.
  ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 6;
  params.queries_per_table = 10;
  params.seed = 3;
  const Workload a = GenerateScalableWorkload(params);
  // Same schema: regenerate with identical seed, then reuse `a`'s schema
  // via blending a with itself at different weights is trivial; instead
  // check the identity with b = a (frequencies scaled).
  const Workload blend = BlendWorkloads(a, a, 0.3);
  EXPECT_NEAR(blend.total_frequency(), a.total_frequency(), 1e-6);
}

// -------------------------------------------------------------------- tpcc

TEST(TpccTest, TenQueriesOnEightTables) {
  const NamedWorkload named = MakeTpccWorkload(100);
  EXPECT_EQ(named.workload.num_queries(), 10u);
  EXPECT_EQ(named.workload.num_tables(), 8u);
  EXPECT_TRUE(named.workload.Validate().ok());
  EXPECT_EQ(named.attribute_names.size(), named.workload.num_attributes());
}

TEST(TpccTest, NamesResolve) {
  const NamedWorkload named = MakeTpccWorkload(10);
  std::set<std::string> names(named.attribute_names.begin(),
                              named.attribute_names.end());
  EXPECT_TRUE(names.count("STOCK.W_ID"));
  EXPECT_TRUE(names.count("ORD.C_ID"));
  EXPECT_TRUE(names.count("ORDLN.NUMBER"));
}

TEST(TpccTest, CardinalitiesScaleWithWarehouses) {
  const NamedWorkload w10 = MakeTpccWorkload(10);
  const NamedWorkload w100 = MakeTpccWorkload(100);
  // STOCK is table 0: 100k items per warehouse.
  EXPECT_EQ(w10.workload.table(0).row_count, 1'000'000u);
  EXPECT_EQ(w100.workload.table(0).row_count, 10'000'000u);
}

}  // namespace
}  // namespace idxsel::workload
