// Determinism regression suite for the parallel pipeline: every strategy
// must return a bit-identical Recommendation — same indexes, same trace,
// same objective — at 1, 2, and 8 threads, including when an expired
// deadline cuts the run short. This is the contract doc/parallelism.md
// promises; any nondeterminism here is a bug, not a tolerance issue, so
// comparisons use exact equality on doubles throughout.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "advisor/advisor.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "mip/branch_and_bound.h"
#include "mip/problem.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using advisor::AdvisorOptions;
using advisor::Recommendation;
using advisor::StrategyKind;
using costmodel::CostModel;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit Env(size_t tables = 3, size_t attrs = 12, size_t queries = 30) {
    workload::ScalableWorkloadParams params;
    params.num_tables = tables;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = 7;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

void ExpectSameRecommendation(const Recommendation& a,
                              const Recommendation& b, size_t threads) {
  EXPECT_TRUE(a.selection == b.selection) << "threads=" << threads;
  EXPECT_EQ(a.cost_after, b.cost_after) << "threads=" << threads;
  EXPECT_EQ(a.memory, b.memory) << "threads=" << threads;
  EXPECT_EQ(a.status.code(), b.status.code()) << "threads=" << threads;
  EXPECT_EQ(a.executed_strategy, b.executed_strategy)
      << "threads=" << threads;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "threads=" << threads;
  for (size_t s = 0; s < a.trace.size(); ++s) {
    EXPECT_TRUE(a.trace[s].after == b.trace[s].after)
        << "threads=" << threads << " step " << s;
    EXPECT_EQ(a.trace[s].kind, b.trace[s].kind)
        << "threads=" << threads << " step " << s;
    EXPECT_EQ(a.trace[s].ratio, b.trace[s].ratio)
        << "threads=" << threads << " step " << s;
    EXPECT_EQ(a.trace[s].objective_after, b.trace[s].objective_after)
        << "threads=" << threads << " step " << s;
  }
}

/// Runs `options` at 1 thread (reference) and at 2 and 8 threads, and
/// demands bit-identical recommendations.
void CheckAcrossThreadCounts(Env& env, AdvisorOptions options) {
  options.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const Result<Recommendation> ref =
      advisor::Recommend(ref_engine, options);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (size_t threads : {2u, 8u}) {
    options.threads = threads;
    WhatIfEngine engine(&env.w, env.backend.get());
    const Result<Recommendation> got = advisor::Recommend(engine, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameRecommendation(*ref, *got, threads);
    // The what-if accounting must be deterministic too: the concurrent
    // cache computes every key exactly once, so parallel lanes issue the
    // same number of backend calls as the serial run.
    EXPECT_EQ(ref->whatif_calls, got->whatif_calls) << "threads=" << threads;
  }
}

TEST(DeterminismTest, H6AcrossThreadCounts) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, H6WithPairStepsAcrossThreadCounts) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.recursive.pair_steps = true;
  options.recursive.n_best_singles = 10;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, H6MultiIndexEvalAcrossThreadCounts) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.recursive.multi_index_eval = true;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, H4AcrossThreadCounts) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kH4;
  options.candidate_limit = 60;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, H5AcrossThreadCounts) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kH5;
  options.candidate_limit = 60;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, CophyAcrossThreadCounts) {
  Env env(2, 10, 20);
  AdvisorOptions options;
  options.strategy = StrategyKind::kCophy;
  options.candidate_limit = 50;
  CheckAcrossThreadCounts(env, options);
}

TEST(DeterminismTest, ExpiredDeadlineAcrossThreadCounts) {
  // An already-expired deadline is the only timing-independent way to
  // exercise the deadline path: every thread count must return the same
  // (empty or pre-loop) incumbent with the same Timeout status.
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.time_limit_seconds = 0.0;
  options.fallback = advisor::FallbackPolicy::kNone;

  options.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const Result<Recommendation> ref = advisor::Recommend(ref_engine, options);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(ref->dnf);

  for (size_t threads : {2u, 8u}) {
    options.threads = threads;
    WhatIfEngine engine(&env.w, env.backend.get());
    const Result<Recommendation> got = advisor::Recommend(engine, options);
    ASSERT_TRUE(got.ok());
    ExpectSameRecommendation(*ref, *got, threads);
  }
}

TEST(DeterminismTest, SelectorDirectAcrossThreadCounts) {
  // Below the advisor: core::SelectRecursive itself, where the
  // bit-identical guarantee originates (parallel evaluation, serial
  // reduction).
  Env env;
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.25);
  options.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const core::RecursiveResult ref =
      core::SelectRecursive(ref_engine, options);

  for (size_t threads : {2u, 8u}) {
    options.threads = threads;
    WhatIfEngine engine(&env.w, env.backend.get());
    const core::RecursiveResult got = core::SelectRecursive(engine, options);
    EXPECT_TRUE(ref.selection == got.selection) << "threads=" << threads;
    EXPECT_EQ(ref.objective, got.objective) << "threads=" << threads;
    EXPECT_EQ(ref.memory, got.memory) << "threads=" << threads;
    EXPECT_EQ(ref.whatif_calls, got.whatif_calls) << "threads=" << threads;
    ASSERT_EQ(ref.frontier.size(), got.frontier.size());
    for (size_t s = 0; s < ref.frontier.size(); ++s) {
      EXPECT_EQ(ref.frontier[s], got.frontier[s]) << "step " << s;
    }
    ASSERT_EQ(ref.runners_up.size(), got.runners_up.size());
    for (size_t s = 0; s < ref.runners_up.size(); ++s) {
      EXPECT_TRUE(ref.runners_up[s].after == got.runners_up[s].after)
          << "runner-up " << s;
    }
  }
}

TEST(DeterminismTest, MipSolveDirectAcrossThreadCounts) {
  // The solver below CoPhy: parallel subtree exploration must return the
  // serial selection and objective exactly (fixed deterministic split +
  // bound-safe shared pruning + DFS-ordered reduction).
  mip::Problem p;
  const size_t kQueries = 50;
  uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((state >> 11) & 0xfffff) / 1048576.0;
  };
  p.query_weight.assign(kQueries, 1.0);
  p.base_cost.resize(kQueries);
  for (size_t j = 0; j < kQueries; ++j) p.base_cost[j] = 60.0 + 80.0 * next();
  p.candidate_costs.resize(40);
  p.candidate_memory.resize(40);
  for (size_t k = 0; k < 40; ++k) {
    const size_t touched = 2 + static_cast<size_t>(next() * 5);
    for (size_t t = 0; t < touched; ++t) {
      const uint32_t j = static_cast<uint32_t>(next() * kQueries);
      p.candidate_costs[k].push_back(
          {j, p.base_cost[j] * (0.25 + 0.5 * next())});
    }
    p.candidate_memory[k] = 1.0 + 8.0 * next();
  }
  p.budget = 20.0;
  p.Canonicalize();

  mip::SolveOptions serial;
  serial.threads = 1;
  const mip::SolveResult ref = mip::Solve(p, serial);
  ASSERT_TRUE(ref.status.ok());
  ASSERT_TRUE(ref.proven_optimal);

  for (size_t threads : {2u, 8u}) {
    mip::SolveOptions par;
    par.threads = threads;
    const mip::SolveResult got = mip::Solve(p, par);
    EXPECT_EQ(ref.selected, got.selected) << "threads=" << threads;
    EXPECT_EQ(ref.objective, got.objective) << "threads=" << threads;
    EXPECT_EQ(ref.proven_optimal, got.proven_optimal);
    EXPECT_EQ(ref.status.code(), got.status.code());
  }
}

TEST(DeterminismTest, PortfolioPicksDeterministicWinner) {
  // Racing H6 against H4 and H5: the winner is the cheapest feasible
  // selection with ties to the primary, independent of lane timing — so
  // repeated runs and different thread counts agree exactly.
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.portfolio = {StrategyKind::kH4, StrategyKind::kH5};
  options.candidate_limit = 60;

  options.threads = 1;
  WhatIfEngine ref_engine(&env.w, env.backend.get());
  const Result<Recommendation> ref = advisor::Recommend(ref_engine, options);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (size_t threads : {2u, 8u}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      options.threads = threads;
      WhatIfEngine engine(&env.w, env.backend.get());
      const Result<Recommendation> got = advisor::Recommend(engine, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(ref->selection == got->selection)
          << "threads=" << threads << " repeat=" << repeat;
      EXPECT_EQ(ref->cost_after, got->cost_after);
      EXPECT_EQ(ref->executed_strategy, got->executed_strategy);
    }
  }
}

TEST(DeterminismTest, PortfolioWinnerIsNoWorseThanEveryLane) {
  Env env;
  AdvisorOptions portfolio_options;
  portfolio_options.strategy = StrategyKind::kRecursive;
  portfolio_options.portfolio = {StrategyKind::kH4, StrategyKind::kH5};
  portfolio_options.candidate_limit = 60;
  portfolio_options.threads = 4;
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> raced =
      advisor::Recommend(engine, portfolio_options);
  ASSERT_TRUE(raced.ok());

  for (StrategyKind kind :
       {StrategyKind::kRecursive, StrategyKind::kH4, StrategyKind::kH5}) {
    AdvisorOptions single = portfolio_options;
    single.strategy = kind;
    single.portfolio.clear();
    WhatIfEngine lane_engine(&env.w, env.backend.get());
    const Result<Recommendation> lane =
        advisor::Recommend(lane_engine, single);
    ASSERT_TRUE(lane.ok());
    EXPECT_LE(raced->cost_after, lane->cost_after)
        << "lane " << advisor::StrategyName(kind);
  }
}

}  // namespace
}  // namespace idxsel
