// Tests for Algorithm 1 (the recursive selector, H6): step semantics,
// invariants, extension options, and quality against the exact optimum.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "workload/scalable_generator.h"
#include "workload/tpcc.h"

namespace idxsel::core {
namespace {

using costmodel::CostModel;
using costmodel::ModelBackend;

struct TestEnv {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  explicit TestEnv(uint32_t queries = 25, uint32_t attrs = 10,
                 uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }

  RecursiveOptions Options(double budget_w) const {
    RecursiveOptions options;
    options.budget = model->Budget(budget_w);
    return options;
  }
};

TEST(RecursiveTest, ZeroBudgetSelectsNothing) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.0));
  EXPECT_TRUE(r.selection.empty());
  EXPECT_TRUE(r.trace.empty());
  EXPECT_NEAR(r.objective, s.engine->WorkloadCost(costmodel::IndexConfig{}),
              1e-6);
}

TEST(RecursiveTest, BudgetNeverExceeded) {
  TestEnv s;
  for (double w : {0.05, 0.1, 0.2, 0.5}) {
    const RecursiveResult r = SelectRecursive(*s.engine, s.Options(w));
    EXPECT_LE(r.memory, s.model->Budget(w) + 1e-6);
    EXPECT_NEAR(r.memory, s.engine->ConfigMemory(r.selection), 1e-6);
  }
}

TEST(RecursiveTest, ObjectiveMatchesIndependentEvaluation) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.3));
  EXPECT_NEAR(r.objective, s.engine->WorkloadCost(r.selection),
              r.objective * 1e-9);
}

TEST(RecursiveTest, ObjectiveDecreasesMonotonically) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.4));
  ASSERT_FALSE(r.trace.empty());
  for (const ConstructionStep& step : r.trace) {
    if (step.kind == StepKind::kPrune) continue;
    EXPECT_LT(step.objective_after, step.objective_before);
    EXPECT_GT(step.ratio, 0.0);
    EXPECT_GT(step.memory_delta, 0.0);
  }
}

TEST(RecursiveTest, FirstStepIsBestSingleRatio) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.4));
  ASSERT_FALSE(r.trace.empty());
  const ConstructionStep& first = r.trace.front();
  EXPECT_EQ(first.kind, StepKind::kNewSingle);
  ASSERT_EQ(first.after.width(), 1u);
  // No other single-attribute index has a better benefit/size ratio
  // against the empty selection.
  for (workload::AttributeId i = 0; i < s.w.num_attributes(); ++i) {
    double benefit = 0.0;
    for (workload::QueryId j : s.w.queries_with(i)) {
      const double gain = s.engine->BaseCost(j) -
                          s.engine->CostWithIndex(j, costmodel::Index(i));
      if (gain > 0.0) benefit += s.w.query(j).frequency * gain;
    }
    const double ratio =
        benefit / s.engine->IndexMemory(costmodel::Index(i));
    EXPECT_LE(ratio, first.ratio + first.ratio * 1e-9);
  }
}

TEST(RecursiveTest, MorphingReplacesTheExtendedIndex) {
  TestEnv s(60, 12);
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.5));
  bool saw_append = false;
  for (const ConstructionStep& step : r.trace) {
    if (step.kind != StepKind::kAppend) continue;
    saw_append = true;
    // The extension preserves the old index as a strict prefix.
    EXPECT_TRUE(step.after.HasPrefix(step.before));
    EXPECT_EQ(step.after.width(), step.before.width() + 1);
    // The replaced index is gone from the final selection unless it was
    // re-created later.
    // (The extended index may itself have been extended again, so we only
    // check prefix containment of some selected index.)
    bool prefix_survives = false;
    for (const costmodel::Index& k : r.selection.indexes()) {
      prefix_survives = prefix_survives || k.HasPrefix(step.before);
    }
    EXPECT_TRUE(prefix_survives);
  }
  EXPECT_TRUE(saw_append) << "workload produced no multi-attribute index";
}

TEST(RecursiveTest, FrontierIsMonotone) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.5));
  for (size_t i = 1; i < r.frontier.size(); ++i) {
    EXPECT_GE(r.frontier[i].first, r.frontier[i - 1].first);   // memory up
    EXPECT_LE(r.frontier[i].second, r.frontier[i - 1].second); // cost down
  }
}

TEST(RecursiveTest, MaxStepsRespected) {
  TestEnv s;
  RecursiveOptions options = s.Options(0.5);
  options.max_steps = 3;
  const RecursiveResult r = SelectRecursive(*s.engine, options);
  EXPECT_LE(r.trace.size(), 3u);
}

TEST(RecursiveTest, MaxWidthRespected) {
  TestEnv s(60, 12);
  RecursiveOptions options = s.Options(0.6);
  options.max_index_width = 2;
  const RecursiveResult r = SelectRecursive(*s.engine, options);
  for (const costmodel::Index& k : r.selection.indexes()) {
    EXPECT_LE(k.width(), 2u);
  }
}

TEST(RecursiveTest, NBestSinglesRestrictsNewIndexes) {
  TestEnv s;
  RecursiveOptions options = s.Options(0.4);
  options.n_best_singles = 1;
  const RecursiveResult r = SelectRecursive(*s.engine, options);
  // Only one distinct leading attribute can appear via kNewSingle steps.
  std::set<workload::AttributeId> leads;
  for (const ConstructionStep& step : r.trace) {
    if (step.kind == StepKind::kNewSingle) leads.insert(step.after.leading());
  }
  EXPECT_LE(leads.size(), 1u);
}

TEST(RecursiveTest, RunnersUpRecorded) {
  TestEnv s;
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.3));
  // Remark 1(3): whenever at least two moves were available, the runner-up
  // is logged. There must be at least one logged alternative in a
  // multi-step run.
  ASSERT_GT(r.trace.size(), 1u);
  EXPECT_FALSE(r.runners_up.empty());
  for (const ConstructionStep& alt : r.runners_up) {
    EXPECT_GT(alt.ratio, 0.0);
  }
}

TEST(RecursiveTest, PruneUnusedDropsOnlyUnusedIndexes) {
  TestEnv s(60, 12);
  RecursiveOptions options = s.Options(0.5);
  options.prune_unused = true;
  const RecursiveResult pruned = SelectRecursive(*s.engine, options);
  options.prune_unused = false;
  const RecursiveResult plain = SelectRecursive(*s.engine, options);
  // Pruning never worsens the final objective (dropped indexes were unused)
  // and never uses more memory.
  EXPECT_LE(pruned.objective, plain.objective * (1.0 + 1e-9));
  EXPECT_LE(pruned.memory, plain.memory + 1e-6);
  EXPECT_NEAR(pruned.objective, s.engine->WorkloadCost(pruned.selection),
              pruned.objective * 1e-9);
}

TEST(RecursiveTest, PairStepsNeverWorse) {
  TestEnv s(40, 10);
  RecursiveOptions options = s.Options(0.3);
  const RecursiveResult plain = SelectRecursive(*s.engine, options);
  options.pair_steps = true;
  const RecursiveResult pairs = SelectRecursive(*s.engine, options);
  // Pair moves strictly enlarge the move set; with the same greedy rule the
  // result is not guaranteed better, but it must stay budget-feasible and
  // consistent.
  EXPECT_LE(pairs.memory, options.budget + 1e-6);
  EXPECT_NEAR(pairs.objective, s.engine->WorkloadCost(pairs.selection),
              pairs.objective * 1e-9);
}

TEST(RecursiveTest, SwapRepairFixesTheBudgetKnifeEdge) {
  // Constructed knife-edge: attribute `a` (4-byte) has the better
  // benefit-per-byte ratio, so greedy takes it and exhausts the budget;
  // attribute `y` (8-byte) has a *larger absolute* benefit but no longer
  // fits. The repair pass must evict (a) and install (y).
  workload::Workload w;
  const workload::TableId t = w.AddTable("t", 1'000'000);
  const workload::AttributeId a = w.AddAttribute(t, 1000, 4);
  const workload::AttributeId y = w.AddAttribute(t, 1000, 8);
  ASSERT_TRUE(w.AddQuery(t, {a}, 100.0).ok());
  ASSERT_TRUE(w.AddQuery(t, {y}, 70.0).ok());
  w.Finalize();
  const CostModel model(&w);
  ModelBackend backend(&model);
  WhatIfEngine engine(&w, &backend);

  RecursiveOptions options;
  // Fits either single index alone, not both.
  options.budget = 1.2e7;
  const RecursiveResult plain = SelectRecursive(engine, options);
  ASSERT_EQ(plain.selection.size(), 1u);
  EXPECT_EQ(plain.selection.indexes().front(), costmodel::Index(a))
      << "greedy must prefer the denser index first";

  options.swap_repair = true;
  const RecursiveResult repaired = SelectRecursive(engine, options);
  ASSERT_EQ(repaired.selection.size(), 1u);
  EXPECT_EQ(repaired.selection.indexes().front(), costmodel::Index(y));
  EXPECT_LT(repaired.objective, plain.objective);
  EXPECT_LE(repaired.memory, options.budget + 1e-6);
  EXPECT_NEAR(repaired.objective, engine.WorkloadCost(repaired.selection),
              repaired.objective * 1e-9);
  bool saw_swap = false;
  for (const ConstructionStep& step : repaired.trace) {
    saw_swap = saw_swap || step.kind == StepKind::kSwap;
  }
  EXPECT_TRUE(saw_swap);
}

TEST(RecursiveTest, SwapRepairNeverWorsensAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    TestEnv s(25, 10, seed);
    RecursiveOptions options = s.Options(0.2);
    const RecursiveResult plain = SelectRecursive(*s.engine, options);
    options.swap_repair = true;
    const RecursiveResult repaired = SelectRecursive(*s.engine, options);
    EXPECT_LE(repaired.objective, plain.objective * (1.0 + 1e-9))
        << "seed=" << seed;
    EXPECT_LE(repaired.memory, options.budget + 1e-6);
  }
}

TEST(RecursiveTest, MultiIndexEvalConsistent) {
  // Remark 2: the multi-index evaluation mode must stay budget-feasible,
  // agree with the engine's multi-index workload cost, and never be worse
  // than leaving the workload unindexed.
  TestEnv s(40, 10);
  RecursiveOptions options = s.Options(0.3);
  options.multi_index_eval = true;
  const RecursiveResult r = SelectRecursive(*s.engine, options);
  EXPECT_LE(r.memory, options.budget + 1e-6);
  EXPECT_NEAR(r.objective, s.engine->WorkloadCostMultiIndex(r.selection),
              r.objective * 1e-9);
  EXPECT_LE(r.objective, s.engine->WorkloadCost(costmodel::IndexConfig{}));
}

TEST(RecursiveTest, MultiIndexEvalNotWorseThanOneIndexEvaluation) {
  // Under the multi-index cost model, any selection is at most as expensive
  // as its one-index evaluation; the Remark-2 run must inherit this.
  TestEnv s(40, 10);
  RecursiveOptions options = s.Options(0.3);
  options.multi_index_eval = true;
  const RecursiveResult multi = SelectRecursive(*s.engine, options);
  EXPECT_LE(s.engine->WorkloadCostMultiIndex(multi.selection),
            s.engine->WorkloadCost(multi.selection) * (1.0 + 1e-9));
}

TEST(RecursiveTest, DeterministicAcrossRuns) {
  TestEnv s;
  const RecursiveResult r1 = SelectRecursive(*s.engine, s.Options(0.3));
  const RecursiveResult r2 = SelectRecursive(*s.engine, s.Options(0.3));
  EXPECT_EQ(r1.selection.ToString(), r2.selection.ToString());
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
}

TEST(RecursiveTest, WhatIfCallVolumeNearTwoQTimesQBar) {
  // Section III-A: ~ q-bar * Q calls in the first step, ~ 2 * Q * q-bar
  // overall. Allow generous slack — the exact constant depends on the
  // workload shape.
  TestEnv s(100, 25, 3);
  s.engine->ResetStats();
  const RecursiveResult r = SelectRecursive(*s.engine, s.Options(0.2));
  const double qqbar =
      static_cast<double>(s.w.num_queries()) * s.w.mean_query_width();
  EXPECT_GT(r.whatif_calls, 0u);
  EXPECT_LT(static_cast<double>(r.whatif_calls), 4.0 * qqbar);
}

TEST(RecursiveTest, ReconfigurationCostsDiscourageChurn) {
  TestEnv s;
  // Existing selection: whatever a fresh run picks at w=0.2.
  const RecursiveResult fresh = SelectRecursive(*s.engine, s.Options(0.2));
  ASSERT_FALSE(fresh.selection.empty());

  costmodel::ReconfigurationParams params;
  params.create_factor = 1e6;  // prohibitively expensive index builds
  const costmodel::ReconfigurationModel reconfig(s.engine.get(), params);
  RecursiveOptions options = s.Options(0.2);
  options.existing = &fresh.selection;
  options.reconfiguration = &reconfig;
  const RecursiveResult rerun = SelectRecursive(*s.engine, options);
  // With astronomic creation costs, only pre-existing indexes are worth
  // selecting: every committed step must re-create an existing index.
  for (const costmodel::Index& k : rerun.selection.indexes()) {
    EXPECT_TRUE(fresh.selection.Contains(k)) << k.ToString();
  }
}

TEST(RecursiveTest, NearOptimalOnTractableInstances) {
  // Compare against CoPhy with the exhaustive candidate set (the paper's
  // optimality reference) on a small instance; H6 should be within a few
  // percent (the paper reports <= 3% end to end).
  TestEnv s(15, 6, 11);
  const candidates::CandidateSet cands =
      candidates::EnumerateAllCandidates(s.w, 4);
  const double budget = s.model->Budget(0.3);
  const cophy::CophyResult optimal =
      cophy::SolveCophy(*s.engine, cands, budget);
  ASSERT_TRUE(optimal.status.ok());

  RecursiveOptions options;
  options.budget = budget;
  const RecursiveResult h6 = SelectRecursive(*s.engine, options);
  // Compare achieved cost reductions (the quantity the paper's figures
  // plot): greedy construction can miss the last slice of improvement at a
  // budget knife-edge, which residual-cost ratios over-penalize on tiny
  // workloads.
  const double base = s.engine->WorkloadCost(costmodel::IndexConfig{});
  EXPECT_GE(base - h6.objective, 0.95 * (base - optimal.objective))
      << "H6 " << h6.objective << " vs optimal " << optimal.objective;
  EXPECT_GE(h6.objective, optimal.objective * (1.0 - 1e-9));
}

TEST(RecursiveTest, TpccTraceLooksLikeFigureOne) {
  const workload::NamedWorkload tpcc = workload::MakeTpccWorkload(100);
  const CostModel model(&tpcc.workload);
  ModelBackend backend(&model);
  WhatIfEngine engine(&tpcc.workload, &backend);
  RecursiveOptions options;
  options.budget = model.Budget(1.0);
  const RecursiveResult r = SelectRecursive(engine, options);
  // The run builds several indexes, at least one of them multi-attribute
  // (Figure 1 builds composite indexes on STOCK/ORD/ORDLN/...).
  EXPECT_GE(r.selection.size(), 5u);
  bool multi = false;
  for (const costmodel::Index& k : r.selection.indexes()) {
    multi = multi || k.width() > 1;
  }
  EXPECT_TRUE(multi);
  // The indexed workload must beat the unindexed baseline.
  EXPECT_LT(r.objective, engine.WorkloadCost(costmodel::IndexConfig{}));
}

// Property sweep: budget monotonicity of H6 across seeds.
class RecursiveBudgetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecursiveBudgetTest, MoreBudgetNeverHurtsMaterially) {
  // Greedy construction is not perfectly monotone in the budget (a larger
  // budget can admit a high-ratio move that steers the path differently),
  // but material regressions would indicate a bug; allow 2% slack.
  TestEnv s(25, 10, GetParam());
  double previous = std::numeric_limits<double>::infinity();
  for (double w : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const RecursiveResult r = SelectRecursive(*s.engine, s.Options(w));
    EXPECT_LE(r.objective, previous * 1.02) << "w=" << w;
    previous = std::min(previous, r.objective);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursiveBudgetTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace idxsel::core
