// idxsel::serve test suite: delta wire format and admission control,
// backoff/breaker state machines, checkpoint durability (round trip +
// corruption -> clean cold start), deployment-plan prefix invariants,
// incremental re-selection (fewer what-if calls than a cold run), and the
// chaos soak — kill the service at every commit-protocol point, restart,
// and require the recovered state, epoch journal, and checkpoint to be
// byte-identical to a run that never crashed, at threads {1,4} x kernel
// {on,off}. Companion to doc/serve.md.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "kernel/kernel.h"
#include "rt/fault_injection.h"
#include "serve/backoff.h"
#include "serve/checkpoint.h"
#include "serve/delta.h"
#include "serve/plan.h"
#include "serve/service.h"
#include "workload/parser.h"

namespace idxsel::serve {
namespace {

using costmodel::Index;
using costmodel::IndexConfig;
using workload::AttributeId;
using workload::NamedWorkload;
using workload::QueryKind;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Attribute ids in kBaseWorkload: ORDERS.id=0 .cust=1 .date=2 .status=3,
// ITEMS.order=4 .sku=5.
constexpr const char* kBaseWorkload = R"(
table ORDERS rows=100000
attr id distinct=100000
attr cust distinct=5000
attr date distinct=365
attr status distinct=5
table ITEMS rows=500000
attr order distinct=100000
attr sku distinct=20000
query ORDERS freq=500 attrs=cust,date
query ORDERS freq=300 attrs=status,date
query ORDERS freq=200 attrs=id
query ITEMS freq=400 attrs=order,sku
query ITEMS freq=100 write attrs=sku
)";

NamedWorkload BaseWorkload() {
  auto parsed = workload::ParseWorkload(kBaseWorkload);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

WorkloadDelta ShiftDelta(workload::TableId table,
                         std::vector<AttributeId> attrs, double freq) {
  WorkloadDelta d;
  d.kind = DeltaKind::kFrequencyShift;
  d.table = table;
  d.attributes = std::move(attrs);
  d.frequency = freq;
  return d;
}

WorkloadDelta AddDelta(workload::TableId table, std::vector<AttributeId> attrs,
                       double freq, bool write = false) {
  WorkloadDelta d;
  d.kind = DeltaKind::kAddTemplate;
  d.table = table;
  d.attributes = std::move(attrs);
  d.frequency = freq;
  d.write = write;
  return d;
}

WorkloadDelta RemoveDelta(workload::TableId table,
                          std::vector<AttributeId> attrs) {
  WorkloadDelta d;
  d.kind = DeltaKind::kRemoveTemplate;
  d.table = table;
  d.attributes = std::move(attrs);
  return d;
}

WorkloadDelta BudgetDelta(double fraction, double bytes = 0.0) {
  WorkloadDelta d;
  d.kind = DeltaKind::kBudgetChange;
  d.budget_fraction = fraction;
  d.budget_bytes = bytes;
  return d;
}

std::string FreshDir(const std::string& name) {
  // IDXSEL_SERVE_ARTIFACT_DIR redirects all service state (checkpoints,
  // delta logs, epoch journals) somewhere durable — CI's serve-soak job
  // sets it so a failing soak uploads the exact on-disk state for
  // post-mortem instead of losing it with the runner's temp dir.
  const char* base = std::getenv("IDXSEL_SERVE_ARTIFACT_DIR");
  const std::string dir =
      (std::filesystem::path(base != nullptr && *base != '\0'
                                 ? base
                                 : ::testing::TempDir().c_str()) /
       name)
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

/// Backend whose health the test flips: unhealthy -> every cost is NaN
/// (the engine sanitizes, the service's failure detector sees it). Fully
/// deterministic, no clocks, no probabilities.
class ToggleBackend : public costmodel::WhatIfBackend {
 public:
  ToggleBackend(const workload::Workload& w, const bool* healthy)
      : model_(&w), inner_(&model_), healthy_(healthy) {}

  double BaseCost(costmodel::QueryId j) const override {
    return *healthy_ ? inner_.BaseCost(j) : kNaN;
  }
  double CostWithIndex(costmodel::QueryId j,
                       const Index& k) const override {
    return *healthy_ ? inner_.CostWithIndex(j, k) : kNaN;
  }
  double CostWithConfig(costmodel::QueryId j,
                        const IndexConfig& config) const override {
    return *healthy_ ? inner_.CostWithConfig(j, config) : kNaN;
  }
  double IndexMemory(const Index& k) const override {
    return *healthy_ ? inner_.IndexMemory(k) : kNaN;
  }
  double MaintenanceCost(costmodel::QueryId j,
                         const Index& k) const override {
    return *healthy_ ? inner_.MaintenanceCost(j, k) : kNaN;
  }

 private:
  costmodel::CostModel model_;
  costmodel::ModelBackend inner_;
  const bool* healthy_;
};

BackendFactory MakeToggleFactory(const bool* healthy) {
  return [healthy](const workload::Workload& w)
             -> std::unique_ptr<costmodel::WhatIfBackend> {
    return std::make_unique<ToggleBackend>(w, healthy);
  };
}

/// Backend stack with fault injection in front of the analytic model.
class ChaosBackend : public costmodel::WhatIfBackend {
 public:
  ChaosBackend(const workload::Workload& w,
               const rt::FaultInjectionOptions& options)
      : model_(&w), inner_(&model_), chaos_(&inner_, options) {}

  double BaseCost(costmodel::QueryId j) const override {
    return chaos_.BaseCost(j);
  }
  double CostWithIndex(costmodel::QueryId j, const Index& k) const override {
    return chaos_.CostWithIndex(j, k);
  }
  double CostWithConfig(costmodel::QueryId j,
                        const IndexConfig& config) const override {
    return chaos_.CostWithConfig(j, config);
  }
  double IndexMemory(const Index& k) const override {
    return chaos_.IndexMemory(k);
  }
  double MaintenanceCost(costmodel::QueryId j,
                         const Index& k) const override {
    return chaos_.MaintenanceCost(j, k);
  }

  const rt::FaultInjectingBackend& chaos() const { return chaos_; }

 private:
  costmodel::CostModel model_;
  costmodel::ModelBackend inner_;
  rt::FaultInjectingBackend chaos_;
};

// ------------------------------------------------------------ Deltas

TEST(DeltaFormatTest, RoundTripsEveryKind) {
  const WorkloadDelta deltas[] = {
      AddDelta(1, {4, 5}, 123.456789012345, /*write=*/true),
      RemoveDelta(0, {1, 2}),
      ShiftDelta(0, {1, 2}, 0.1),
      BudgetDelta(0.35, 1.5e9),
  };
  for (const WorkloadDelta& d : deltas) {
    const std::string line = FormatDelta(d);
    auto back = ParseDelta(line);
    ASSERT_TRUE(back.ok()) << line << ": " << back.status().ToString();
    EXPECT_EQ(FormatDelta(back.value()), line);
    EXPECT_EQ(back->kind, d.kind);
    EXPECT_EQ(back->table, d.table);
    // Exact bit round trip of the payload doubles.
    EXPECT_EQ(back->frequency, d.frequency);
    EXPECT_EQ(back->budget_fraction, d.budget_fraction);
    EXPECT_EQ(back->budget_bytes, d.budget_bytes);
  }
  // Unsorted attribute lists canonicalize on parse (template identity is
  // the sorted set), so the round trip lands on the canonical line.
  auto unsorted = ParseDelta("shift table=0 attrs=2,1 freq=5");
  ASSERT_TRUE(unsorted.ok());
  EXPECT_EQ(FormatDelta(unsorted.value()), "shift table=0 attrs=1,2 freq=5");
}

TEST(DeltaFormatTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "frobnicate table=1",
      "add table=x freq=1 attrs=1",
      "add table=1 freq=0 attrs=1",     // non-positive frequency
      "add table=1 freq=1 attrs=",      // empty attribute list
      "shift table=1 attrs=1,2",        // missing freq
      "budget fraction=-1 bytes=0",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseDelta(line).ok()) << "accepted: " << line;
  }
}

TEST(DeltaFormatTest, ExactDoubleRoundTrips) {
  const double values[] = {0.0,    1.0,   0.1,  1.0 / 3.0, 1e-300,
                           2.5e17, 123.5, 1e24, 4000.00000000001};
  for (const double v : values) {
    const std::string text = FormatExactDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(DeltaQueueTest, CoalescesSameTemplateKeepingEarliestPosition) {
  DeltaQueue q(8);
  EXPECT_EQ(q.Push(ShiftDelta(0, {1, 2}, 100)), Admission::kAccepted);
  EXPECT_EQ(q.Push(ShiftDelta(0, {3}, 50)), Admission::kAccepted);
  // Unsorted attrs canonicalize to the same key; latest payload wins.
  EXPECT_EQ(q.Push(ShiftDelta(0, {2, 1}, 900)), Admission::kCoalesced);
  const auto drained = q.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].frequency, 900.0);  // earliest position, new payload
  EXPECT_EQ(drained[1].frequency, 50.0);
}

TEST(DeltaQueueTest, AddSupersededByShiftStaysAdd) {
  DeltaQueue q(8);
  EXPECT_EQ(q.Push(AddDelta(1, {4}, 10)), Admission::kAccepted);
  EXPECT_EQ(q.Push(ShiftDelta(1, {4}, 70)), Admission::kCoalesced);
  const auto drained = q.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].kind, DeltaKind::kAddTemplate);
  EXPECT_EQ(drained[0].frequency, 70.0);
}

TEST(DeltaQueueTest, ShedsOnlyNewEntriesAtCapacity) {
  DeltaQueue q(2);
  EXPECT_EQ(q.Push(ShiftDelta(0, {1}, 1)), Admission::kAccepted);
  EXPECT_EQ(q.Push(ShiftDelta(0, {2}, 1)), Admission::kAccepted);
  EXPECT_EQ(q.Push(ShiftDelta(0, {3}, 1)), Admission::kShed);
  // Coalescing an existing key is always admitted, even when full.
  EXPECT_EQ(q.Push(ShiftDelta(0, {1}, 5)), Admission::kCoalesced);
  EXPECT_EQ(q.size(), 2u);
}

// ------------------------------------------------------------ Backoff

TEST(BackoffTest, DeterministicGrowthWithinJitterBand) {
  BackoffOptions opts;
  opts.initial_seconds = 0.1;
  opts.multiplier = 2.0;
  opts.max_seconds = 0.5;
  opts.jitter = 0.25;
  opts.seed = 7;
  ExponentialBackoff a(opts), b(opts);
  double nominal = opts.initial_seconds;
  for (int i = 0; i < 8; ++i) {
    const double da = a.NextDelaySeconds();
    EXPECT_EQ(da, b.NextDelaySeconds()) << "same seed, same schedule";
    EXPECT_GE(da, nominal * (1.0 - opts.jitter) - 1e-12);
    EXPECT_LE(da, nominal + 1e-12);
    nominal = std::min(opts.max_seconds, nominal * opts.multiplier);
  }
  a.Reset();
  const double after_reset = a.NextDelaySeconds();
  EXPECT_LE(after_reset, opts.initial_seconds + 1e-12);
  EXPECT_GE(after_reset, opts.initial_seconds * (1.0 - opts.jitter) - 1e-12);
}

TEST(BreakerTest, TripOpenHalfOpenCloseLifecycle) {
  CircuitBreakerOptions opts;
  opts.trip_after_failures = 3;
  opts.open_ticks = 2;
  CircuitBreaker breaker(opts);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordSuccess());  // resets the failure streak
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.RecordFailure());  // third consecutive: trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowAttempt());
  EXPECT_FALSE(breaker.Tick());
  EXPECT_TRUE(breaker.Tick());  // second tick: half-open
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowAttempt());
  EXPECT_TRUE(breaker.RecordFailure());  // probe failed: re-trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Tick();
  breaker.Tick();
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.RecordSuccess());  // probe ok: closes
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.closes(), 1u);
}

// ------------------------------------------------------------ Checkpoint

Checkpoint SampleCheckpoint() {
  Checkpoint cp;
  cp.epoch = 7;
  cp.cursor = 42;
  cp.budget_fraction = 0.25;
  cp.budget_bytes = 0.0;
  cp.drift = 123.456;
  cp.degraded = true;
  cp.cost_before = 1.25e9;
  cp.cost_after = 9.875e8;
  cp.memory = 3.5e6;
  cp.selection.Insert(Index({1, 2}));
  cp.selection.Insert(Index({5}));
  cp.plan.budget = 3.75e6;
  cp.plan.initial_memory = 2e6;
  cp.plan.final_memory = 3.5e6;
  PlanStep drop;
  drop.create = false;
  drop.index = Index({3});
  drop.benefit = 0.5;
  drop.memory_delta = -1e6;
  drop.memory_after = 1e6;
  cp.plan.steps.push_back(drop);
  PlanStep create;
  create.index = Index({1, 2});
  create.benefit = 1234.5;
  create.memory_delta = 2.5e6;
  create.memory_after = 3.5e6;
  cp.plan.steps.push_back(create);
  cp.workload_text = kBaseWorkload;
  return cp;
}

TEST(CheckpointTest, SerializeDeserializeRoundTrips) {
  const Checkpoint cp = SampleCheckpoint();
  const std::string body = SerializeCheckpoint(cp);
  auto back = DeserializeCheckpoint(body);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch, cp.epoch);
  EXPECT_EQ(back->cursor, cp.cursor);
  EXPECT_EQ(back->budget_fraction, cp.budget_fraction);
  EXPECT_EQ(back->drift, cp.drift);
  EXPECT_EQ(back->degraded, cp.degraded);
  EXPECT_EQ(back->cost_before, cp.cost_before);
  EXPECT_EQ(back->cost_after, cp.cost_after);
  EXPECT_EQ(back->memory, cp.memory);
  EXPECT_EQ(back->selection.ToString(), cp.selection.ToString());
  EXPECT_EQ(back->plan.ToString(), cp.plan.ToString());
  EXPECT_EQ(back->workload_text, cp.workload_text);
  // Determinism: equal checkpoints, equal bytes.
  EXPECT_EQ(SerializeCheckpoint(back.value()), body);
}

TEST(CheckpointTest, RejectsTruncation) {
  const std::string body = SerializeCheckpoint(SampleCheckpoint());
  for (const size_t keep : {0u, 1u, 10u}) {
    auto result = DeserializeCheckpoint(body.substr(0, keep));
    EXPECT_FALSE(result.ok());
  }
  auto result = DeserializeCheckpoint(body.substr(0, body.size() - 10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsBitFlip) {
  std::string body = SerializeCheckpoint(SampleCheckpoint());
  body[body.size() / 2] ^= 0x20;
  auto result = DeserializeCheckpoint(body);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status().ToString();
}

TEST(CheckpointTest, RejectsVersionSkewWithValidChecksum) {
  std::string body = SerializeCheckpoint(SampleCheckpoint());
  // Rewrite the magic, then restore a *valid* checksum so the version
  // check (not the checksum) is what rejects the file.
  const size_t magic_end = body.find('\n');
  std::string skewed = "idxsel.serve.checkpoint.v0" + body.substr(magic_end);
  const size_t checksum_at = skewed.rfind("checksum ");
  skewed.resize(checksum_at);
  char line[32];
  std::snprintf(line, sizeof(line), "checksum %016llx\n",
                static_cast<unsigned long long>(Fnv1a64(skewed)));
  skewed += line;
  auto result = DeserializeCheckpoint(skewed);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version skew"), std::string::npos)
      << result.status().ToString();
}

TEST(CheckpointTest, SaveLoadAtomicAndMissingIsNotFound) {
  const std::string dir = FreshDir("serve_cp");
  const std::string path = dir + "/checkpoint.idxsel";
  EXPECT_EQ(LoadCheckpoint(path).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(SaveCheckpoint(path, SampleCheckpoint()).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 7u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ------------------------------------------------------------ Service

ServiceOptions BaseServiceOptions() {
  ServiceOptions so;
  so.advisor.threads = 1;
  so.hooks.sleep = [](double) {};  // never actually sleep in tests
  return so;
}

TEST(ServiceTest, FirstPumpCommitsAndPlanPrefixesAreFeasible) {
  auto base = BaseWorkload();
  auto service =
      AdvisorService::Start(base, MakeModelBackendFactory(),
                            BaseServiceOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  AdvisorService& svc = **service;
  EXPECT_TRUE(svc.Answer().degraded) << "no commitment yet";

  auto outcome = svc.Pump();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->committed);
  EXPECT_EQ(outcome->epoch, 1u);

  const ServiceAnswer answer = svc.Answer();
  EXPECT_FALSE(answer.degraded);
  EXPECT_GT(answer.recommendation.selection.size(), 0u);
  EXPECT_LT(answer.recommendation.cost_after,
            answer.recommendation.cost_before);
  EXPECT_TRUE(ValidatePlanPrefixes(answer.plan).ok());
  // The initial plan is pure creates, most beneficial first.
  for (size_t i = 0; i < answer.plan.steps.size(); ++i) {
    EXPECT_TRUE(answer.plan.steps[i].create);
    if (i > 0) {
      EXPECT_LE(answer.plan.steps[i].benefit,
                answer.plan.steps[i - 1].benefit);
    }
  }

  // An idle pump is exactly that: no round, no new epoch.
  auto idle = svc.Pump();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->ran_round);
  EXPECT_STREQ(idle->note, "idle");
  EXPECT_EQ(svc.Answer().epoch, 1u);
}

TEST(ServiceTest, FrequencyShiftReselectsIncrementally) {
  auto base = BaseWorkload();
  auto service = AdvisorService::Start(base, MakeModelBackendFactory(),
                                       BaseServiceOptions());
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  auto first = svc.Pump();
  ASSERT_TRUE(first.ok() && first->committed);
  const uint64_t cold_calls = first->whatif_calls;
  ASSERT_GT(cold_calls, 0u);

  // Invert the weight of the two hottest templates.
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {1, 2}, 50)).ok());
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {2, 3}, 900)).ok());
  auto second = svc.Pump();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->committed);
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(svc.stats().engine_rebuilds, 0u)
      << "frequency shifts must not rebuild the engine";

  // The warm engine answers the re-selection almost entirely from cache:
  // strictly fewer backend calls than the cold round (the bench asserts
  // the same on a bigger drift scenario).
  EXPECT_LT(second->whatif_calls, cold_calls);

  // The shifted workload really drives the answer.
  EXPECT_EQ(svc.workload().query(0).frequency, 50.0);
  EXPECT_EQ(svc.workload().query(1).frequency, 900.0);
  EXPECT_TRUE(ValidatePlanPrefixes(svc.Answer().plan).ok());
}

TEST(ServiceTest, StructuralDeltasRebuildAndReselect) {
  auto base = BaseWorkload();
  auto service = AdvisorService::Start(base, MakeModelBackendFactory(),
                                       BaseServiceOptions());
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  ASSERT_TRUE(svc.Pump().ok());
  const size_t queries_before = svc.workload().num_queries();

  ASSERT_TRUE(svc.Submit(AddDelta(1, {4}, 800)).ok());
  auto outcome = svc.Pump();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->committed);
  EXPECT_EQ(svc.workload().num_queries(), queries_before + 1);
  EXPECT_GE(svc.stats().engine_rebuilds, 1u);

  ASSERT_TRUE(svc.Submit(RemoveDelta(1, {4})).ok());
  ASSERT_TRUE(svc.Pump().ok());
  EXPECT_EQ(svc.workload().num_queries(), queries_before);

  // Unknown-template shift/remove deltas are counted and skipped.
  ASSERT_TRUE(svc.Submit(RemoveDelta(0, {0, 3})).ok());
  auto skipped = svc.Pump();
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(svc.stats().deltas_skipped, 1u);
}

TEST(ServiceTest, BudgetShrinkEmitsDropsBeforeBlockedCreates) {
  auto base = BaseWorkload();
  ServiceOptions so = BaseServiceOptions();
  so.advisor.budget_fraction = 0.5;
  auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  ASSERT_TRUE(svc.Pump().ok());
  const ServiceAnswer rich = svc.Answer();
  ASSERT_GT(rich.recommendation.selection.size(), 0u);

  ASSERT_TRUE(svc.Submit(BudgetDelta(0.05)).ok());
  auto outcome = svc.Pump();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->committed);
  const ServiceAnswer poor = svc.Answer();
  EXPECT_LT(poor.recommendation.budget, rich.recommendation.budget);
  EXPECT_LE(poor.recommendation.memory,
            poor.recommendation.budget * (1.0 + 1e-9));
  // The morph plan starts from the rich incumbent and never exceeds the
  // *new* budget mid-flight.
  EXPECT_TRUE(ValidatePlanPrefixes(poor.plan).ok())
      << poor.plan.ToString();
  EXPECT_EQ(poor.plan.initial_memory, rich.recommendation.memory);
}

TEST(ServiceTest, QueueSheddingDegradesButKeepsServing) {
  auto base = BaseWorkload();
  ServiceOptions so = BaseServiceOptions();
  so.queue_capacity = 2;
  auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  ASSERT_TRUE(svc.Pump().ok());
  EXPECT_FALSE(svc.Answer().degraded);

  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {1, 2}, 10)).ok());
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {2, 3}, 20)).ok());
  const Status shed = svc.Submit(ShiftDelta(0, {0}, 30));
  EXPECT_EQ(shed.code(), StatusCode::kResourceLimit);
  EXPECT_EQ(svc.stats().deltas_shed, 1u);
  // Shedding flags the served answer degraded until the next commit.
  EXPECT_TRUE(svc.Answer().degraded);
  ASSERT_TRUE(svc.Pump().ok());
  EXPECT_FALSE(svc.Answer().degraded);
  EXPECT_EQ(svc.workload().query(2).frequency, 200.0)
      << "shed delta must not be applied";
}

TEST(ServiceTest, DriftThresholdAbsorbsSmallShifts) {
  auto base = BaseWorkload();
  const std::string dir = FreshDir("serve_drift");
  ServiceOptions so = BaseServiceOptions();
  so.dir = dir;
  so.drift_threshold = 0.10;  // re-select at >= 10% of total frequency
  auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  ASSERT_TRUE(svc.Pump().ok());
  ASSERT_EQ(svc.Answer().epoch, 1u);

  // Total frequency is 1500; a +30 shift is 2% drift: absorbed.
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {2, 3}, 330)).ok());
  auto absorbed = svc.Pump();
  ASSERT_TRUE(absorbed.ok());
  EXPECT_FALSE(absorbed->ran_round);
  EXPECT_STREQ(absorbed->note, "absorbed");
  EXPECT_EQ(svc.Answer().epoch, 1u);
  EXPECT_EQ(svc.stats().absorb_commits, 1u);
  // The absorb still updated the durable cursor + workload.
  auto cp = LoadCheckpoint(svc.checkpoint_path());
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->epoch, 1u);
  EXPECT_EQ(cp->cursor, 1u);
  EXPECT_GT(cp->drift, 0.0);

  // A further big shift crosses the threshold: re-selection.
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {1, 2}, 1300)).ok());
  auto reselect = svc.Pump();
  ASSERT_TRUE(reselect.ok());
  EXPECT_TRUE(reselect->committed);
  EXPECT_EQ(svc.Answer().epoch, 2u);
}

TEST(ServiceTest, RecoversFromCheckpointByteExactly) {
  auto base = BaseWorkload();
  const std::string dir = FreshDir("serve_recover");
  ServiceOptions so = BaseServiceOptions();
  so.dir = dir;

  std::string selection, checkpoint_bytes;
  double cost_after = 0.0, total_freq = 0.0;
  {
    auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
    ASSERT_TRUE(service.ok());
    AdvisorService& svc = **service;
    ASSERT_TRUE(svc.Pump().ok());
    ASSERT_TRUE(svc.Submit(ShiftDelta(0, {1, 2}, 42.125)).ok());
    ASSERT_TRUE(svc.Submit(AddDelta(1, {4, 5}, 77)).ok());
    ASSERT_TRUE(svc.Pump().ok());
    ASSERT_EQ(svc.Answer().epoch, 2u);
    selection = svc.Answer().recommendation.selection.ToString();
    cost_after = svc.Answer().recommendation.cost_after;
    total_freq = svc.workload().total_frequency();
    ASSERT_TRUE(svc.Stop().ok());
    checkpoint_bytes = ReadFileOrEmpty(svc.checkpoint_path());
  }

  auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  EXPECT_EQ(svc.stats().recoveries, 1u);
  EXPECT_EQ(svc.stats().cold_starts, 0u);
  EXPECT_EQ(svc.Answer().epoch, 2u);
  EXPECT_FALSE(svc.Answer().degraded);
  EXPECT_EQ(svc.Answer().recommendation.selection.ToString(), selection);
  EXPECT_EQ(svc.Answer().recommendation.cost_after, cost_after);
  EXPECT_EQ(svc.workload().total_frequency(), total_freq);
  EXPECT_EQ(svc.workload().query(0).frequency, 42.125);

  // The recovered service keeps committing: its next epoch checkpoint
  // must itself be parseable and monotone.
  ASSERT_TRUE(svc.Submit(ShiftDelta(1, {5}, 3)).ok());
  ASSERT_TRUE(svc.Pump().ok());
  EXPECT_EQ(svc.Answer().epoch, 3u);
  EXPECT_NE(ReadFileOrEmpty(svc.checkpoint_path()), checkpoint_bytes);
}

TEST(ServiceTest, CorruptCheckpointColdStartsCleanly) {
  auto base = BaseWorkload();
  const std::string dir = FreshDir("serve_corrupt");
  ServiceOptions so = BaseServiceOptions();
  so.dir = dir;
  {
    auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)->Submit(ShiftDelta(0, {1, 2}, 750)).ok());
    ASSERT_TRUE((*service)->Pump().ok());
    ASSERT_TRUE((*service)->Stop().ok());
  }
  const std::string cp_path = dir + "/checkpoint.idxsel";
  for (const char* mode : {"truncate", "flip", "garbage"}) {
    std::string body = ReadFileOrEmpty(cp_path);
    ASSERT_FALSE(body.empty());
    if (std::strcmp(mode, "truncate") == 0) {
      body.resize(body.size() / 2);
    } else if (std::strcmp(mode, "flip") == 0) {
      body[body.size() / 3] ^= 0x01;
    } else {
      body = "not a checkpoint at all\n";
    }
    WriteFile(cp_path, body);
    auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
    ASSERT_TRUE(service.ok()) << mode << ": " << service.status().ToString();
    AdvisorService& svc = **service;
    EXPECT_EQ(svc.stats().cold_starts, 1u) << mode;
    EXPECT_EQ(svc.stats().recoveries, 0u) << mode;
    // The cold start replayed the full delta log onto the base workload,
    // so the shifted frequency survives even without a checkpoint.
    EXPECT_EQ(svc.stats().replayed_deltas, 1u) << mode;
    ASSERT_TRUE(svc.Pump().ok());
    EXPECT_EQ(svc.workload().query(0).frequency, 750.0) << mode;
    EXPECT_FALSE(svc.Answer().degraded);
    ASSERT_TRUE(svc.Stop().ok());
    // Leave the (now valid) checkpoint for the next corruption mode.
  }
}

TEST(ServiceTest, BreakerTripsDegradesAndSelfHeals) {
  auto base = BaseWorkload();
  bool healthy = true;
  ServiceOptions so = BaseServiceOptions();
  so.max_round_attempts = 3;
  so.breaker.trip_after_failures = 3;
  so.breaker.open_ticks = 2;
  auto service = AdvisorService::Start(base, MakeToggleFactory(&healthy), so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  ASSERT_TRUE(svc.Pump().ok());
  const ServiceAnswer good = svc.Answer();
  ASSERT_FALSE(good.degraded);

  // Backend goes bad: the round fails (sanitized garbage), retries with
  // flushed caches, and the third consecutive failure trips the breaker.
  healthy = false;
  ASSERT_TRUE(svc.Submit(ShiftDelta(0, {1, 2}, 5000)).ok());
  auto failed = svc.Pump();
  ASSERT_TRUE(failed.ok());
  EXPECT_FALSE(failed->committed);
  EXPECT_TRUE(failed->degraded);
  EXPECT_EQ(failed->attempts, 3u);
  EXPECT_EQ(svc.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(svc.stats().retries, 2u);
  EXPECT_EQ(svc.stats().breaker_trips, 1u);
  EXPECT_GE(svc.stats().cache_flushes, 3u);
  EXPECT_EQ(svc.state(), ServiceState::kDegraded);

  // While open the service fails fast — no round, stale answer, flagged.
  auto open1 = svc.Pump();
  ASSERT_TRUE(open1.ok());
  EXPECT_STREQ(open1->note, "breaker-open");
  const ServiceAnswer stale = svc.Answer();
  EXPECT_TRUE(stale.degraded);
  EXPECT_EQ(stale.recommendation.selection.ToString(),
            good.recommendation.selection.ToString())
      << "must keep serving the last commitment";

  // Second open tick half-opens; the probe fails against the sick
  // backend and snaps back to open.
  auto probe_fail = svc.Pump();
  ASSERT_TRUE(probe_fail.ok());
  EXPECT_STREQ(probe_fail->note, "probe-failed");
  EXPECT_EQ(svc.breaker_state(), BreakerState::kOpen);

  // Backend heals: two ticks to half-open, probe succeeds, caches are
  // flushed (they hold sanitized fallbacks), and the pending shift
  // finally commits a clean epoch.
  healthy = true;
  ASSERT_TRUE(svc.Pump().ok());  // tick 1
  auto healed = svc.Pump();      // tick 2: half-open -> probe -> round
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->committed);
  EXPECT_EQ(svc.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(svc.stats().breaker_closes, 1u);
  EXPECT_EQ(svc.state(), ServiceState::kIdle);
  const ServiceAnswer fresh = svc.Answer();
  EXPECT_FALSE(fresh.degraded);
  EXPECT_EQ(svc.workload().query(0).frequency, 5000.0);
  EXPECT_TRUE(std::isfinite(fresh.recommendation.cost_after));
}

TEST(ServiceTest, WatchdogCancelsHungRound) {
  auto base = BaseWorkload();
  rt::FaultInjectionOptions chaos;
  chaos.latency_probability = 1.0;
  chaos.latency_seconds = 0.05;
  ServiceOptions so = BaseServiceOptions();
  so.round_time_limit_seconds = 0.01;
  so.max_round_attempts = 1;
  so.breaker.trip_after_failures = 100;
  auto service = AdvisorService::Start(
      base,
      [&chaos](const workload::Workload& w)
          -> std::unique_ptr<costmodel::WhatIfBackend> {
        return std::make_unique<ChaosBackend>(w, chaos);
      },
      so);
  ASSERT_TRUE(service.ok());
  AdvisorService& svc = **service;
  auto outcome = svc.Pump();
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  EXPECT_TRUE(outcome->degraded);
  EXPECT_GE(svc.stats().watchdog_cancels, 1u);
  EXPECT_EQ(svc.state(), ServiceState::kDegraded);
  EXPECT_TRUE(svc.Answer().degraded);
}

// ------------------------------------------------ FaultInjectingBackend

TEST(FaultInjectionBurstTest, RecurringOutagesAreSeedDeterministic) {
  auto base = BaseWorkload();
  costmodel::CostModel model(&base.workload);
  costmodel::ModelBackend inner(&model);
  rt::FaultInjectionOptions opts;
  opts.seed = 11;
  opts.healthy_calls = 5;
  opts.outage_burst = 3;
  opts.outage_gap_min = 2;
  opts.outage_gap_max = 6;

  auto schedule = [&](const rt::FaultInjectingBackend& backend) {
    std::vector<bool> failed;
    for (size_t call = 0; call < 200; ++call) {
      failed.push_back(std::isnan(backend.BaseCost(0)));
    }
    return failed;
  };
  rt::FaultInjectingBackend a(&inner, opts), b(&inner, opts);
  const auto fa = schedule(a), fb = schedule(b);
  EXPECT_EQ(fa, fb) << "same seed, same outage schedule";
  // The first healthy_calls are never corrupted.
  for (size_t i = 0; i < 5; ++i) EXPECT_FALSE(fa[i]) << "call " << i;
  // Bursts are exactly outage_burst long and separated by gaps in
  // [gap_min, gap_max].
  size_t i = 5, bursts = 0;
  while (i < fa.size()) {
    if (!fa[i]) {
      ++i;
      continue;
    }
    size_t len = 0;
    while (i < fa.size() && fa[i]) {
      ++len;
      ++i;
    }
    if (i == fa.size()) break;  // run truncated by the sample window
    EXPECT_EQ(len, 3u);
    ++bursts;
    size_t gap = 0;
    while (i + gap < fa.size() && !fa[i + gap]) ++gap;
    if (i + gap < fa.size()) {
      EXPECT_GE(gap, 2u);
      EXPECT_LE(gap, 6u);
    }
    i += gap;
  }
  EXPECT_GT(bursts, 3u) << "expected several bursts in 200 calls";
  EXPECT_EQ(a.stats().injected_outage, b.stats().injected_outage);
  EXPECT_GT(a.stats().injected_outage, 0u);

  // A different seed yields a different schedule.
  opts.seed = 12;
  rt::FaultInjectingBackend c(&inner, opts);
  EXPECT_NE(schedule(c), fa);
}

// ------------------------------------------------------------ Chaos soak

struct SimulatedCrash {};

struct SoakOp {
  bool is_pump = false;
  WorkloadDelta delta;
};

std::vector<SoakOp> SoakScript() {
  std::vector<SoakOp> ops;
  auto pump = [&] { ops.push_back({true, {}}); };
  auto submit = [&](const WorkloadDelta& d) { ops.push_back({false, d}); };
  pump();  // initial selection
  submit(ShiftDelta(0, {1, 2}, 120));
  submit(ShiftDelta(1, {4, 5}, 640));
  pump();
  submit(AddDelta(1, {4}, 350));
  submit(ShiftDelta(0, {0}, 10));
  pump();
  submit(BudgetDelta(0.08));
  pump();
  submit(RemoveDelta(0, {2, 3}));
  submit(ShiftDelta(0, {1, 2}, 2000));
  pump();
  pump();  // trailing idle pump
  return ops;
}

struct SoakResult {
  uint64_t epoch = 0;
  std::string selection;
  double cost_after = 0.0;
  std::string plan;
  std::string checkpoint_bytes;
  std::string epochs_bytes;
  std::string deltas_bytes;
  uint64_t hook_count = 0;  ///< hooks seen across all incarnations
  uint64_t restarts = 0;
};

/// Runs the soak script against `dir`, crashing (by throwing through the
/// commit-protocol hooks) at the `crash_at`-th hook invocation of each
/// incarnation's life, restarting until the script completes. crash_points
/// empty = fault-free. The op being executed when a crash hits is skipped
/// iff it was a Submit (its only hook fires after the delta is journaled);
/// a crashed Pump is re-executed against the recovered state.
SoakResult RunSoak(const NamedWorkload& base, const std::string& dir,
                   const std::vector<uint64_t>& crash_points, size_t threads) {
  SoakResult result;
  const std::vector<SoakOp> ops = SoakScript();
  size_t next_op = 0;
  size_t next_crash = 0;
  uint64_t hooks_seen = 0;

  while (true) {
    ServiceOptions so;
    so.advisor.threads = threads;
    so.dir = dir;
    so.hooks.sleep = [](double) {};
    so.hooks.at = [&](const char*) {
      ++hooks_seen;
      if (next_crash < crash_points.size() &&
          hooks_seen == crash_points[next_crash]) {
        ++next_crash;
        throw SimulatedCrash{};
      }
    };
    auto service = AdvisorService::Start(base, MakeModelBackendFactory(), so);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    if (!service.ok()) return result;
    AdvisorService& svc = **service;
    try {
      while (next_op < ops.size()) {
        const SoakOp& op = ops[next_op];
        if (op.is_pump) {
          auto outcome = svc.Pump();
          EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
          if (outcome->committed) {
            EXPECT_TRUE(ValidatePlanPrefixes(svc.Answer().plan).ok())
                << svc.Answer().plan.ToString();
          }
        } else {
          const Status submitted = svc.Submit(op.delta);
          EXPECT_TRUE(submitted.ok()) << submitted.ToString();
        }
        ++next_op;
      }
      const ServiceAnswer answer = svc.Answer();
      result.epoch = answer.epoch;
      result.selection = answer.recommendation.selection.ToString();
      result.cost_after = answer.recommendation.cost_after;
      result.plan = answer.plan.ToString();
      EXPECT_TRUE(svc.Stop().ok());
      result.checkpoint_bytes = ReadFileOrEmpty(svc.checkpoint_path());
      result.epochs_bytes = ReadFileOrEmpty(svc.epoch_log_path());
      result.deltas_bytes = ReadFileOrEmpty(svc.delta_log_path());
      result.hook_count = hooks_seen;
      return result;
    } catch (const SimulatedCrash&) {
      ++result.restarts;
      // A crash inside Submit fires only after the delta hit the log:
      // replay restores it, so the op must not be re-submitted.
      if (!ops[next_op].is_pump) ++next_op;
    }
  }
}

class ChaosSoakTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(ChaosSoakTest, KillAndRecoverIsByteIdenticalToFaultFreeRun) {
  const size_t threads = std::get<0>(GetParam());
  const bool kernel_on = std::get<1>(GetParam());
  kernel::ScopedKernelEnabled scoped(kernel_on);
  auto base = BaseWorkload();

  const std::string tag = std::to_string(threads) +
                          (kernel_on ? "k1" : "k0");
  const SoakResult clean =
      RunSoak(base, FreshDir("soak_clean_" + tag), {}, threads);
  ASSERT_GT(clean.epoch, 0u);
  ASSERT_GT(clean.hook_count, 0u);
  ASSERT_FALSE(clean.checkpoint_bytes.empty());
  ASSERT_FALSE(clean.epochs_bytes.empty());

  // Kill at every single hook point of the protocol, one run each.
  for (uint64_t crash_at = 1; crash_at <= clean.hook_count; ++crash_at) {
    const SoakResult crashed = RunSoak(
        base, FreshDir("soak_crash_" + tag), {crash_at}, threads);
    ASSERT_EQ(crashed.restarts, 1u) << "crash point " << crash_at;
    EXPECT_EQ(crashed.epoch, clean.epoch) << "crash point " << crash_at;
    EXPECT_EQ(crashed.selection, clean.selection)
        << "crash point " << crash_at;
    EXPECT_EQ(crashed.cost_after, clean.cost_after)
        << "crash point " << crash_at;
    EXPECT_EQ(crashed.plan, clean.plan) << "crash point " << crash_at;
    EXPECT_EQ(crashed.checkpoint_bytes, clean.checkpoint_bytes)
        << "crash point " << crash_at;
    EXPECT_EQ(crashed.epochs_bytes, clean.epochs_bytes)
        << "crash point " << crash_at;
    EXPECT_EQ(crashed.deltas_bytes, clean.deltas_bytes)
        << "crash point " << crash_at;
  }

  // Double kill: crash, recover, crash again mid-recovered-run.
  const SoakResult twice = RunSoak(base, FreshDir("soak_twice_" + tag),
                                   {3, clean.hook_count / 2 + 5}, threads);
  EXPECT_EQ(twice.restarts, 2u);
  EXPECT_EQ(twice.checkpoint_bytes, clean.checkpoint_bytes);
  EXPECT_EQ(twice.epochs_bytes, clean.epochs_bytes);
  EXPECT_EQ(twice.selection, clean.selection);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosSoakTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{4}),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<size_t, bool>>& param_info) {
      return "Threads" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "KernelOn" : "KernelOff");
    });

// ------------------------------------------------------ Workload updates

TEST(UpdateQueryFrequencyTest, MatchesFreshlyBuiltWorkloadBitExactly) {
  auto shifted = BaseWorkload();
  ASSERT_TRUE(shifted.workload.UpdateQueryFrequency(0, 1234.5625).ok());
  ASSERT_TRUE(shifted.workload.UpdateQueryFrequency(4, 0.375).ok());

  // Build the same workload from scratch with the shifted frequencies by
  // round-tripping through the textual format.
  auto text = workload::FormatWorkload(shifted.workload,
                                       shifted.attribute_names);
  ASSERT_TRUE(text.ok());
  auto fresh = workload::ParseWorkload(text.value());
  ASSERT_TRUE(fresh.ok());

  EXPECT_EQ(shifted.workload.total_frequency(),
            fresh->workload.total_frequency());
  EXPECT_EQ(shifted.workload.mean_query_width(),
            fresh->workload.mean_query_width());
  for (size_t a = 0; a < shifted.workload.num_attributes(); ++a) {
    EXPECT_EQ(shifted.workload.occurrence_weight(
                  static_cast<AttributeId>(a)),
              fresh->workload.occurrence_weight(static_cast<AttributeId>(a)))
        << "attribute " << a;
  }

  // Rejections: unknown query, non-positive frequency.
  EXPECT_FALSE(shifted.workload.UpdateQueryFrequency(99, 1.0).ok());
  EXPECT_FALSE(shifted.workload.UpdateQueryFrequency(0, 0.0).ok());
  EXPECT_FALSE(shifted.workload.UpdateQueryFrequency(0, -2.0).ok());
}

TEST(UpdateQueryFrequencyTest, MaintenanceInvalidationTracksShifts) {
  auto base = BaseWorkload();
  costmodel::CostModel model(&base.workload);
  costmodel::ModelBackend backend(&model);
  costmodel::WhatIfEngine engine(&base.workload, &backend);
  const Index sku({5});  // covered by the write template (query 4)
  const double penalty_before = engine.MaintenancePenalty(sku);
  ASSERT_GT(penalty_before, 0.0);

  ASSERT_TRUE(base.workload.UpdateQueryFrequency(4, 300.0).ok());
  engine.InvalidateFrequencyDependentCaches();
  const double penalty_after = engine.MaintenancePenalty(sku);
  EXPECT_DOUBLE_EQ(penalty_after, penalty_before * 3.0);

  // Per-execution costs were untouched: the shifted engine agrees with a
  // fresh engine without any further backend calls for cached pairs.
  costmodel::WhatIfEngine fresh(&base.workload, &backend);
  EXPECT_EQ(engine.CostWithIndex(4, sku), fresh.CostWithIndex(4, sku));
  EXPECT_EQ(engine.MaintenancePenalty(sku), fresh.MaintenancePenalty(sku));
}

}  // namespace
}  // namespace idxsel::serve
