// Tests for status/result, the deterministic PRNG, the formatters, the
// CHECK macro family, and the float comparison helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/csv.h"
#include "common/float_cmp.h"
#include "common/format.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace idxsel {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Timeout("8 hours exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.ToString(), "Timeout: 8 hours exceeded");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kInfeasible, StatusCode::kTimeout,
        StatusCode::kResourceLimit, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 8.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 8.25);
  }
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, RoundUniformStaysInClosedRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.RoundUniform(0.5, 10.5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 11);  // round(10.4999..) caps at 10, but 10.5 rounds to 11
  }
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 6));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(3));
  EXPECT_TRUE(seen.count(6));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == fork.Next();
  EXPECT_LT(same, 2);
}

TEST(FormatTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.25), "1.25");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.30001, 2), "0.3");
  EXPECT_EQ(FormatDouble(-0.0001, 2), "0");
}

TEST(FormatTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.276), "276 ms");
  EXPECT_EQ(FormatSeconds(4.1), "4.1 s");
  EXPECT_EQ(FormatSeconds(470.0), "7.8 min");
  EXPECT_EQ(FormatSeconds(1e9, /*dnf=*/true), "DNF");
}

TEST(FormatTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024), "3 MiB");
}

TEST(FormatTest, FormatCountGroupsThousands) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(97550), "97 550");
  EXPECT_EQ(FormatCount(-1234567), "-1 234 567");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "bbbb"});
  t.AddRow({"xxx", "y"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| xxx | y    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"col1", "col2"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "with\nnewline"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(CsvTest, RoundTripsToFile) {
  CsvWriter csv({"x"});
  csv.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/idxsel_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
}

TEST(CheckDeathTest, FailureAbortsWithFileLineAndExpression) {
  // The diagnostic must carry file:line and the failing expression — it is
  // frequently the only artifact a CI abort leaves behind.
  EXPECT_DEATH(IDXSEL_CHECK(1 + 1 == 3),
               "CHECK failed at .*common_test\\.cc:[0-9]+: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckOpVariantsAbortOnViolation) {
  EXPECT_DEATH(IDXSEL_CHECK_EQ(2, 3), "CHECK failed");
  EXPECT_DEATH(IDXSEL_CHECK_LT(5, 4), "CHECK failed");
}

TEST(CheckTest, PassingCheckEvaluatesOperandsExactlyOnce) {
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  IDXSEL_CHECK(bump() > 0);
  EXPECT_EQ(evals, 1);
  evals = 0;
  IDXSEL_CHECK_GE(bump(), 1);
  EXPECT_EQ(evals, 1);
}

TEST(CheckTest, DcheckCompilesOutUnderNdebugButStaysTypeChecked) {
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  IDXSEL_DCHECK(bump() > 0);
  IDXSEL_DCHECK_EQ(bump(), bump());
#ifdef NDEBUG
  // NDEBUG: conditions are dead code — never evaluated, yet the compiler
  // saw them (a stale DCHECK expression is a build error, not a landmine).
  EXPECT_EQ(evals, 0);
#else
  EXPECT_EQ(evals, 3);
#endif
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(IDXSEL_DCHECK(false), "CHECK failed");
  EXPECT_DEATH(IDXSEL_DCHECK_NE(7, 7), "CHECK failed");
}
#endif

TEST(FloatCmpTest, ExactlyEqualIsBitwiseIntentIeee) {
  EXPECT_TRUE(ExactlyEqual(1.5, 1.5));
  EXPECT_FALSE(ExactlyEqual(1.5, std::nextafter(1.5, 2.0)));
  EXPECT_TRUE(ExactlyEqual(0.0, -0.0));  // IEEE ==, not bit equality
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ExactlyEqual(nan, nan));
}

TEST(FloatCmpTest, ExactlyZero) {
  EXPECT_TRUE(ExactlyZero(0.0));
  EXPECT_TRUE(ExactlyZero(-0.0));
  EXPECT_FALSE(ExactlyZero(std::numeric_limits<double>::denorm_min()));
}

TEST(FloatCmpTest, ApproxEqualToleratesRoundingButNotNan) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.0 + 1e-6));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ApproxEqual(inf, inf));
  EXPECT_FALSE(ApproxEqual(inf, -inf));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ApproxEqual(nan, nan));
  EXPECT_FALSE(ApproxEqual(nan, 1.0));
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Just sanity: non-negative and monotone.
  const double t1 = watch.ElapsedSeconds();
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace idxsel
