// Fuzz harness for the CSV writer (src/common/csv.cc).
//
// Benches dump result series through CsvWriter with cell text that can
// contain anything a workload or index name contains — commas, quotes,
// newlines. The harness builds a document from attacker-controlled cells
// and re-parses it with an independent RFC-4180 reference reader, asserting
// the cell grid round-trips exactly. A mismatch means the escaping rules
// corrupt data in some downstream spreadsheet import.
//
// Input encoding: byte 0 picks the column count (1..8); the rest is a
// sequence of length-prefixed cells (one length byte, then that many
// content bytes) laid out row-major.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/csv.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_csv: invariant violated: %s\n", what);
    std::abort();
  }
}

// Minimal RFC-4180 reader: '\n' terminates records outside quotes, '"'
// toggles quoting, '""' inside quotes is a literal quote. Deliberately
// written against the spec, not against csv.cc, so a writer bug cannot
// hide behind a matching reader bug.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"' && cell.empty()) {
      quoted = true;
    } else if (ch == ',') {
      row.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      cell += ch;
    }
  }
  return rows;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const size_t cols = 1 + data[0] % 8;

  // Decode length-prefixed cells.
  std::vector<std::string> cells;
  for (size_t i = 1; i < size;) {
    const size_t len = data[i++];
    const size_t take = len < size - i ? len : size - i;
    cells.emplace_back(reinterpret_cast<const char*>(data + i), take);
    i += take;
  }
  while (cells.size() % cols != 0) cells.emplace_back();
  if (cells.size() < cols) cells.resize(cols);

  std::vector<std::vector<std::string>> grid;
  for (size_t i = 0; i < cells.size(); i += cols) {
    grid.emplace_back(cells.begin() + static_cast<std::ptrdiff_t>(i),
                      cells.begin() + static_cast<std::ptrdiff_t>(i + cols));
  }

  idxsel::CsvWriter csv(grid[0]);
  for (size_t r = 1; r < grid.size(); ++r) csv.AddRow(grid[r]);
  const std::string doc = csv.ToString();

  const auto parsed = ParseCsv(doc);
  Require(parsed.size() == grid.size(), "row count changed in round-trip");
  for (size_t r = 0; r < grid.size(); ++r) {
    Require(parsed[r].size() == cols, "column count changed in round-trip");
    for (size_t c = 0; c < cols; ++c) {
      Require(parsed[r][c] == grid[r][c], "cell corrupted in round-trip");
    }
  }
  return 0;
}
