// Corpus-replay driver for toolchains without libFuzzer (the default GCC
// build). Compiled into each harness when IDXSEL_FUZZ_STANDALONE is
// defined; with clang the harness links -fsanitize=fuzzer and libFuzzer
// supplies main() instead.
//
// Usage: <harness> <file-or-directory>...
//
// Every regular file found (directories are scanned one level deep, the
// layout of tests/fuzz/corpus/<harness>/) is fed to LLVMFuzzerTestOneInput
// once. Exit 0 means every input replayed without tripping an invariant;
// harness failures abort, which is what CI's fuzz-smoke leg watches for.

#ifdef IDXSEL_FUZZ_STANDALONE

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int ReplayFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (ReplayFile(entry.path().string()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(arg.string()) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("replayed %d corpus input(s), all invariants held\n", replayed);
  return 0;
}

#endif  // IDXSEL_FUZZ_STANDALONE
