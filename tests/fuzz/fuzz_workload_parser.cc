// Fuzz harness for the textual workload parser (src/workload/parser.cc).
//
// The parser is the library's untrusted-input boundary: real deployments
// feed it schema/statistics files exported from other systems. The harness
// asserts two properties on arbitrary bytes:
//
//   1. ParseWorkload never crashes, hangs, or trips a sanitizer — it either
//      returns a workload or a Status with a line number.
//   2. Accepted inputs are a formatter fixpoint: FormatWorkload(parse(x))
//      re-parses successfully and formats to the same text. A drift here
//      means save/load of a tuning problem silently changes it.
//
// Built with libFuzzer under clang (-fsanitize=fuzzer,address); under other
// toolchains tests/fuzz/standalone_main.cc supplies a corpus-replay main()
// so the same invariants run as a plain CI smoke test.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/parser.h"
#include "workload/workload.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_workload_parser: invariant violated: %s\n",
                 what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto parsed = idxsel::workload::ParseWorkload(text);
  if (!parsed.ok()) {
    // Rejections must carry a message; an empty error string would leave
    // users with no way to locate the bad line.
    Require(!parsed.status().ToString().empty(), "error without message");
    return 0;
  }

  auto formatted = idxsel::workload::FormatWorkload(
      parsed->workload, parsed->attribute_names);
  Require(formatted.ok(), "accepted workload failed to format");

  auto reparsed = idxsel::workload::ParseWorkload(*formatted);
  Require(reparsed.ok(), "formatted workload failed to re-parse");

  auto reformatted = idxsel::workload::FormatWorkload(
      reparsed->workload, reparsed->attribute_names);
  Require(reformatted.ok(), "re-parsed workload failed to format");
  Require(*reformatted == *formatted, "format/parse is not a fixpoint");
  return 0;
}
