// Tests for Index/IndexConfig and the Appendix-B cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/cost_model.h"
#include "costmodel/index.h"
#include "workload/scalable_generator.h"
#include "workload/workload.h"

namespace idxsel::costmodel {
namespace {

using workload::AttributeId;
using workload::TableId;

class CostModelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = w_.AddTable("t", 1 << 20);  // n = 1,048,576 rows
    a_ = w_.AddAttribute(t_, 1 << 10, 4);  // d = 1024, very selective
    b_ = w_.AddAttribute(t_, 1 << 4, 8);   // d = 16
    c_ = w_.AddAttribute(t_, 1 << 2, 4);   // d = 4, unselective
    q_ab_ = *w_.AddQuery(t_, {a_, b_}, 10.0);
    q_b_ = *w_.AddQuery(t_, {b_}, 1.0);
    q_abc_ = *w_.AddQuery(t_, {a_, b_, c_}, 2.0);
    w_.Finalize();
    model_ = std::make_unique<CostModel>(&w_);
  }

  workload::Workload w_;
  TableId t_ = 0;
  AttributeId a_ = 0, b_ = 0, c_ = 0;
  workload::QueryId q_ab_ = 0, q_b_ = 0, q_abc_ = 0;
  std::unique_ptr<CostModel> model_;
};

// ----------------------------------------------------------------- Index

TEST(IndexTest, BasicProperties) {
  const Index k({3, 1, 7});
  EXPECT_EQ(k.width(), 3u);
  EXPECT_EQ(k.leading(), 3u);
  EXPECT_TRUE(k.Contains(1));
  EXPECT_FALSE(k.Contains(2));
  EXPECT_EQ(k.ToString(), "(3,1,7)");
}

TEST(IndexTest, AppendPreservesOrder) {
  const Index k = Index(5).Append(2).Append(9);
  EXPECT_EQ(k.attributes(), (std::vector<AttributeId>{5, 2, 9}));
}

TEST(IndexTest, PrefixAndHasPrefix) {
  const Index k({4, 2, 6});
  EXPECT_EQ(k.Prefix(2), Index({4, 2}));
  EXPECT_TRUE(k.HasPrefix(Index({4, 2})));
  EXPECT_TRUE(k.HasPrefix(k));
  EXPECT_FALSE(k.HasPrefix(Index({2, 4})));
  EXPECT_FALSE(Index({4}).HasPrefix(k));
}

TEST(IndexTest, CoverablePrefixLength) {
  const Index k({4, 2, 6});
  EXPECT_EQ(k.CoverablePrefixLength({2, 4, 6}), 3u);
  EXPECT_EQ(k.CoverablePrefixLength({2, 4}), 2u);
  EXPECT_EQ(k.CoverablePrefixLength({4, 6}), 1u);  // 2 missing breaks it
  EXPECT_EQ(k.CoverablePrefixLength({2, 6}), 0u);  // leading 4 missing
  EXPECT_EQ(k.CoverablePrefixLength({}), 0u);
}

TEST(IndexTest, OrderSensitiveEqualityAndHash) {
  const Index ab({1, 2});
  const Index ba({2, 1});
  EXPECT_NE(ab, ba);
  // Hash may collide in theory, but not for these tiny tuples.
  EXPECT_NE(ab.Hash(), ba.Hash());
}

TEST(IndexConfigTest, InsertEraseContains) {
  IndexConfig config;
  EXPECT_TRUE(config.Insert(Index({1, 2})));
  EXPECT_FALSE(config.Insert(Index({1, 2})));
  EXPECT_TRUE(config.Contains(Index({1, 2})));
  EXPECT_TRUE(config.Insert(Index(3)));
  EXPECT_EQ(config.size(), 2u);
  EXPECT_TRUE(config.Erase(Index({1, 2})));
  EXPECT_FALSE(config.Erase(Index({1, 2})));
  EXPECT_EQ(config.size(), 1u);
}

TEST(IndexConfigTest, CanonicalOrderIndependentOfInsertion) {
  IndexConfig c1;
  c1.Insert(Index({2}));
  c1.Insert(Index({1}));
  IndexConfig c2;
  c2.Insert(Index({1}));
  c2.Insert(Index({2}));
  EXPECT_EQ(c1, c2);
}

// ------------------------------------------------------------- CostModel

TEST_F(CostModelFixture, IndexMemoryMatchesAppendixBFormula) {
  const double n = static_cast<double>(w_.table(t_).row_count);
  const double position_list = std::ceil(std::ceil(std::log2(n)) * n / 8.0);
  EXPECT_DOUBLE_EQ(model_->IndexMemory(Index(a_)), position_list + 4.0 * n);
  EXPECT_DOUBLE_EQ(model_->IndexMemory(Index(b_)), position_list + 8.0 * n);
  EXPECT_DOUBLE_EQ(model_->IndexMemory(Index(a_).Append(b_)),
                   position_list + 12.0 * n);
}

TEST_F(CostModelFixture, BudgetIsFractionOfSingleAttributeTotal) {
  const double total = model_->TotalSingleAttributeMemory();
  EXPECT_GT(total, 0.0);
  EXPECT_DOUBLE_EQ(model_->Budget(0.2), 0.2 * total);
  EXPECT_DOUBLE_EQ(model_->Budget(0.0), 0.0);
}

TEST_F(CostModelFixture, IndexReducesCost) {
  const double base = model_->UnindexedCost(q_ab_);
  const double with_a = model_->CostWithIndex(q_ab_, Index(a_));
  const double with_ab = model_->CostWithIndex(q_ab_, Index(a_).Append(b_));
  EXPECT_LT(with_a, base);
  EXPECT_LT(with_ab, with_a);  // wider coverable prefix helps further
}

TEST_F(CostModelFixture, InapplicableIndexFallsBackToScan) {
  // Index on (c) is applicable to q_ab only if c is accessed — it is not.
  EXPECT_FALSE(model_->Applicable(q_ab_, Index(c_)));
  EXPECT_DOUBLE_EQ(model_->CostWithIndex(q_ab_, Index(c_)),
                   model_->UnindexedCost(q_ab_));
}

TEST_F(CostModelFixture, ExtensionInvariantForNonCoveringQueries) {
  // q_b does not access a, so an index (b) and its extension (b, a) must
  // cost exactly the same — the invariant Algorithm 1's caching relies on.
  const Index kb(b_);
  const Index kba = kb.Append(a_);
  EXPECT_DOUBLE_EQ(model_->CostWithIndex(q_b_, kb),
                   model_->CostWithIndex(q_b_, kba));
}

TEST_F(CostModelFixture, PrefixOrderWithinCoveredSetIsIrrelevant) {
  const Index ab = Index(a_).Append(b_);
  const Index ba = Index(b_).Append(a_);
  EXPECT_DOUBLE_EQ(model_->CostWithIndex(q_ab_, ab),
                   model_->CostWithIndex(q_ab_, ba));
}

TEST_F(CostModelFixture, CostOneIndexTakesTheMinimum) {
  IndexConfig config;
  config.Insert(Index(a_));
  config.Insert(Index(b_));
  const double expected = std::min(model_->CostWithIndex(q_ab_, Index(a_)),
                                   model_->CostWithIndex(q_ab_, Index(b_)));
  EXPECT_DOUBLE_EQ(model_->CostOneIndex(q_ab_, config), expected);
}

TEST_F(CostModelFixture, EmptyConfigEqualsUnindexed) {
  EXPECT_DOUBLE_EQ(model_->CostOneIndex(q_abc_, IndexConfig{}),
                   model_->UnindexedCost(q_abc_));
  EXPECT_DOUBLE_EQ(model_->CostMultiIndex(q_abc_, IndexConfig{}),
                   model_->UnindexedCost(q_abc_));
}

TEST_F(CostModelFixture, MultiIndexNeverWorseThanOneIndex) {
  IndexConfig config;
  config.Insert(Index(a_));
  config.Insert(Index(c_));
  EXPECT_LE(model_->CostMultiIndex(q_abc_, config),
            model_->CostOneIndex(q_abc_, config) + 1e-9);
}

TEST_F(CostModelFixture, CostsNeverNegativeOrAboveBase) {
  const IndexConfig config(std::vector<Index>{Index(a_), Index(b_)});
  for (workload::QueryId j : {q_ab_, q_b_, q_abc_}) {
    const double cost = model_->CostOneIndex(j, config);
    EXPECT_GT(cost, 0.0);
    EXPECT_LE(cost, model_->UnindexedCost(j));
  }
}

// Property sweep: monotonicity of f_j in the selection (adding an index
// never increases one-index costs) across generated workloads.
class CostMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostMonotonicityTest, AddingIndexNeverIncreasesCost) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 10;
  params.queries_per_table = 20;
  params.seed = GetParam();
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const CostModel model(&w);

  IndexConfig config;
  for (AttributeId i = 0; i < w.num_attributes(); i += 3) {
    IndexConfig bigger = config;
    bigger.Insert(Index(i));
    for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
      EXPECT_LE(model.CostOneIndex(j, bigger),
                model.CostOneIndex(j, config) + 1e-9)
          << "seed=" << GetParam() << " j=" << j << " i=" << i;
    }
    config = bigger;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostMonotonicityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace idxsel::costmodel
