// Equivalence suite for idxsel::kernel: the flat cost-evaluation kernel
// (interned indexes, attribute masks, inverted posting lists, dense
// delta-costed H6 steps) is a pure performance layer. Its hard contract —
// see doc/cost_model.md ("The flat evaluation kernel") — is that every
// recommendation, construction trace, what-if accounting figure, and
// shared telemetry counter is bit-identical with the kernel on and off,
// at every thread count, for every strategy, including under fault
// injection. Comparisons therefore use exact equality on doubles
// throughout, exactly like determinism_test.cc.
//
// The kernel-specific counters (idxsel.kernel.*) are the one sanctioned
// difference: they are definitionally zero when the kernel is off, so the
// report comparison excludes that prefix (and the scheduler-dependent
// steal counter) and a dedicated test asserts they are populated when the
// kernel is on.
//
// The whole file also compiles and passes under -DIDXSEL_ENABLE_KERNEL=OFF
// (the escape hatch): ScopedKernelEnabled still exists, both runs take the
// legacy path, and every equality holds trivially.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "advisor/advisor.h"
#include "costmodel/cost_model.h"
#include "costmodel/what_if.h"
#include "kernel/kernel.h"
#include "rt/fault_injection.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using advisor::AdvisorOptions;
using advisor::Recommendation;
using advisor::StrategyKind;
using advisor::StrategyName;
using costmodel::CostModel;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;
using costmodel::WhatIfStats;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;

  explicit Env(size_t tables = 3, size_t attrs = 12, size_t queries = 30,
               uint64_t seed = 7) {
    workload::ScalableWorkloadParams params;
    params.num_tables = tables;
    params.attributes_per_table = attrs;
    params.queries_per_table = queries;
    params.seed = seed;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
  }
};

/// One Recommend() run with the kernel runtime switch pinned, plus the
/// engine- and backend-side accounting the contract covers.
struct Outcome {
  Recommendation rec;
  WhatIfStats engine_stats;
};

std::optional<Outcome> RunWith(Env& env, AdvisorOptions options,
                               bool kernel_on) {
  kernel::ScopedKernelEnabled guard(kernel_on);
  WhatIfEngine engine(&env.w, env.backend.get());
  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return std::nullopt;
  return Outcome{*rec, engine.stats()};
}

/// Counter deltas that must match exactly between kernel-on and
/// kernel-off runs: everything except the kernel's own counters (zero by
/// definition when it is off) and, under threads > 1, the
/// scheduler-dependent ones — work-steal counts and the MIP search-size
/// tallies, whose node/cutoff totals depend on which lane improves the
/// shared bound first (the determinism contract covers the *solution*,
/// not the search-tree size; see doc/parallelism.md).
std::map<std::string, uint64_t> ComparableCounters(
    const obs::RunReport& report, size_t threads) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name.rfind("idxsel.kernel.", 0) == 0) continue;
    if (name == "idxsel.exec.steals") continue;
    if (threads > 1 &&
        (name == "idxsel.mip.nodes" || name == "idxsel.mip.bound_cutoffs" ||
         name == "idxsel.mip.incumbent_updates")) {
      continue;
    }
    out.emplace(name, value);
  }
  return out;
}

void ExpectSameOutcome(const Outcome& on, const Outcome& off,
                       const std::string& label, size_t threads = 1) {
  EXPECT_TRUE(on.rec.selection == off.rec.selection) << label;
  EXPECT_EQ(on.rec.cost_before, off.rec.cost_before) << label;
  EXPECT_EQ(on.rec.cost_after, off.rec.cost_after) << label;
  EXPECT_EQ(on.rec.memory, off.rec.memory) << label;
  EXPECT_EQ(on.rec.budget, off.rec.budget) << label;
  EXPECT_EQ(on.rec.status.code(), off.rec.status.code()) << label;
  EXPECT_EQ(on.rec.executed_strategy, off.rec.executed_strategy) << label;
  EXPECT_EQ(on.rec.whatif_calls, off.rec.whatif_calls) << label;

  // The committed construction trace, step by step.
  ASSERT_EQ(on.rec.trace.size(), off.rec.trace.size()) << label;
  for (size_t s = 0; s < on.rec.trace.size(); ++s) {
    EXPECT_TRUE(on.rec.trace[s].after == off.rec.trace[s].after)
        << label << " step " << s;
    EXPECT_EQ(on.rec.trace[s].kind, off.rec.trace[s].kind)
        << label << " step " << s;
    EXPECT_EQ(on.rec.trace[s].ratio, off.rec.trace[s].ratio)
        << label << " step " << s;
    EXPECT_EQ(on.rec.trace[s].objective_after, off.rec.trace[s].objective_after)
        << label << " step " << s;
  }

  // Engine accounting: the dense fast path must count exactly like the
  // hashed cache it fronts (a dense hit is a cache hit on a key the
  // hashed run also hit — see the InheritRow invariant in
  // doc/cost_model.md).
  EXPECT_EQ(on.engine_stats.calls, off.engine_stats.calls) << label;
  EXPECT_EQ(on.engine_stats.cache_hits, off.engine_stats.cache_hits) << label;
  EXPECT_EQ(on.engine_stats.skipped_inapplicable,
            off.engine_stats.skipped_inapplicable)
      << label;
  EXPECT_EQ(on.engine_stats.sanitized, off.engine_stats.sanitized) << label;

  // Shared telemetry: every counter outside idxsel.kernel.* agrees.
  EXPECT_EQ(ComparableCounters(on.rec.report, threads),
            ComparableCounters(off.rec.report, threads))
      << label;
}

void CheckKernelEquivalence(Env& env, AdvisorOptions options,
                            const std::string& what) {
  for (size_t threads : {1u, 4u}) {
    options.threads = threads;
    const std::string label = what + " threads=" + std::to_string(threads);
    const auto on = RunWith(env, options, /*kernel_on=*/true);
    const auto off = RunWith(env, options, /*kernel_on=*/false);
    ASSERT_TRUE(on.has_value() && off.has_value()) << label;
    ExpectSameOutcome(*on, *off, label, threads);
  }
}

// --------------------------------------------------- strategies x threads

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategyEquivalenceTest, BitIdenticalKernelOnOff) {
  Env env;
  AdvisorOptions options;
  options.strategy = GetParam();
  options.candidate_limit = 60;
  CheckKernelEquivalence(env, options, StrategyName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    ::testing::Values(StrategyKind::kRecursive, StrategyKind::kH1,
                      StrategyKind::kH2, StrategyKind::kH3,
                      StrategyKind::kH4, StrategyKind::kH4Skyline,
                      StrategyKind::kH5, StrategyKind::kCophy));

// ------------------------------------------------------------ H6 variants

TEST(KernelEquivalenceTest, H6WithPairSteps) {
  // Pair moves are evaluated through the legacy path even in kernel mode
  // (they intern their result for commit); the mixed rounds must still be
  // bit-identical.
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.recursive.pair_steps = true;
  options.recursive.n_best_singles = 10;
  CheckKernelEquivalence(env, options, "H6 pair_steps");
}

TEST(KernelEquivalenceTest, H6MultiIndexEval) {
  // multi_index_eval disables the kernel fast path (use_kernel_ gate);
  // this pins the gate: flipping the runtime switch must be a no-op.
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.recursive.multi_index_eval = true;
  CheckKernelEquivalence(env, options, "H6 multi_index_eval");
}

TEST(KernelEquivalenceTest, H6TightBudgetExercisesSwapRepair) {
  // A small budget forces prune/swap repair steps, covering the
  // selected-ids resync paths in kernel mode.
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.05;
  CheckKernelEquivalence(env, options, "H6 tight budget");
}

TEST(KernelEquivalenceTest, PortfolioRace) {
  Env env;
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.portfolio = {StrategyKind::kH4, StrategyKind::kH5};
  options.candidate_limit = 60;
  CheckKernelEquivalence(env, options, "portfolio");
}

// ------------------------------------------------------------ chaos matrix

/// Same deterministic fault mixes as robustness_test.cc's chaos matrix.
rt::FaultInjectionOptions ChaosOptions(uint64_t seed) {
  rt::FaultInjectionOptions fopts;
  fopts.seed = seed;
  fopts.nan_probability = 0.06 * static_cast<double>(seed % 3);
  fopts.inf_probability = 0.05 * static_cast<double>((seed / 3) % 3);
  fopts.negative_probability = 0.05 * static_cast<double>((seed / 9) % 3);
  fopts.fail_after_calls = 20 * seed;
  fopts.fail_burst = seed % 6;
  fopts.healthy_calls = seed % 4;
  return fopts;
}

struct ChaosOutcome {
  Recommendation rec;
  WhatIfStats engine_stats;
  rt::FaultInjectionStats backend_stats;
};

std::optional<ChaosOutcome> RunChaos(uint64_t seed, StrategyKind strategy,
                                     bool kernel_on) {
  Env env(2, 10, 20, seed);
  rt::FaultInjectingBackend chaos(env.backend.get(), ChaosOptions(seed));
  kernel::ScopedKernelEnabled guard(kernel_on);
  WhatIfEngine engine(&env.w, &chaos);

  AdvisorOptions options;
  options.strategy = strategy;
  options.threads = 1;  // serial + unbounded deadline: fully deterministic
  options.budget_fraction = 0.25;
  options.candidate_limit = 40;
  options.solver.mip_gap = 0.05;

  const Result<Recommendation> rec = advisor::Recommend(engine, options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return std::nullopt;
  return ChaosOutcome{*rec, engine.stats(), chaos.stats()};
}

class ChaosEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, uint64_t>> {};

TEST_P(ChaosEquivalenceTest, SerialBitIdenticalUnderFaults) {
  // The fault injector advances one PRNG per backend call, so fault
  // *placement* is a function of the backend call sequence. Serial runs
  // with no deadline are therefore the strongest equivalence probe we
  // have: if the kernel reorders, adds, or drops even one backend call,
  // the injected faults land elsewhere and the recommendations diverge.
  const StrategyKind strategy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const std::string label =
      std::string(StrategyName(strategy)) + " seed=" + std::to_string(seed);

  const auto on = RunChaos(seed, strategy, /*kernel_on=*/true);
  const auto off = RunChaos(seed, strategy, /*kernel_on=*/false);
  ASSERT_TRUE(on.has_value() && off.has_value()) << label;
  ExpectSameOutcome(Outcome{on->rec, on->engine_stats},
                    Outcome{off->rec, off->engine_stats}, label);

  // Backend call-order accounting: same number of calls consumed the
  // same PRNG stream, so every injection tally matches exactly.
  EXPECT_EQ(on->backend_stats.calls, off->backend_stats.calls) << label;
  EXPECT_EQ(on->backend_stats.injected_nan, off->backend_stats.injected_nan)
      << label;
  EXPECT_EQ(on->backend_stats.injected_inf, off->backend_stats.injected_inf)
      << label;
  EXPECT_EQ(on->backend_stats.injected_negative,
            off->backend_stats.injected_negative)
      << label;
  EXPECT_EQ(on->backend_stats.injected_outage,
            off->backend_stats.injected_outage)
      << label;
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesSeeds, ChaosEquivalenceTest,
    ::testing::Combine(::testing::Values(StrategyKind::kRecursive,
                                         StrategyKind::kH4Skyline,
                                         StrategyKind::kCophy),
                       ::testing::Range<uint64_t>(1, 14)));

TEST(ChaosEquivalenceTest, ParallelStructuralUnderFaultsAndDeadline) {
  // With four lanes and a live deadline, fault placement and expiry are
  // scheduler-dependent, so bit-identity is not required — but the kernel
  // path must uphold the same structural guarantees as the legacy one
  // (robustness_test.cc's chaos contract): no crash, no garbage, a
  // feasible incumbent, degraded flagged when the backend misbehaved.
  for (const bool kernel_on : {true, false}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Env env(2, 10, 20, seed);
      rt::FaultInjectingBackend chaos(env.backend.get(), ChaosOptions(seed));
      kernel::ScopedKernelEnabled guard(kernel_on);
      WhatIfEngine engine(&env.w, &chaos);

      AdvisorOptions options;
      options.strategy = StrategyKind::kRecursive;
      options.threads = 4;
      options.budget_fraction = 0.25;
      options.time_limit_seconds = 0.010;

      const Result<Recommendation> rec = advisor::Recommend(engine, options);
      ASSERT_TRUE(rec.ok())
          << "kernel=" << kernel_on << " seed=" << seed << ": "
          << rec.status().ToString();
      EXPECT_TRUE(std::isfinite(rec->cost_after)) << "seed=" << seed;
      EXPECT_TRUE(std::isfinite(rec->memory)) << "seed=" << seed;
      EXPECT_GE(rec->cost_after, 0.0);
      EXPECT_LE(rec->memory, rec->budget + 1e-6)
          << "kernel=" << kernel_on << " seed=" << seed;
      if (!engine.health().ok()) {
        EXPECT_TRUE(rec->degraded);
      }
    }
  }
}

// --------------------------------------------------------- kernel telemetry

#if defined(IDXSEL_KERNEL) && defined(IDXSEL_OBS)
TEST(KernelTelemetryTest, CountersPopulatedWhenKernelOn) {
  // A workload/budget shape that reliably commits append (morph) steps —
  // the mask filter only fires on multi-attribute extension rounds, where
  // some posting-list query lacks full cover of the extended index (same
  // shape core_test.cc uses to provoke morphing).
  Env env(2, 12, 60);
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.5;
  options.threads = 1;

  const auto on = RunWith(env, options, /*kernel_on=*/true);
  ASSERT_TRUE(on.has_value());
  const auto& counters = on->rec.report.metrics.counters;
  // An H6 run of this size resolves thousands of costs through the dense
  // table and filters non-exploiting queries by mask; all three kernel
  // counters must show up in the run report.
  const auto fast = counters.find("idxsel.kernel.fast_path_hits");
  ASSERT_NE(fast, counters.end());
  EXPECT_GT(fast->second, 0u);
  const auto fallback = counters.find("idxsel.kernel.fallback_lookups");
  ASSERT_NE(fallback, counters.end());
  EXPECT_GT(fallback->second, 0u);
  const auto filtered = counters.find("idxsel.kernel.filtered_queries");
  ASSERT_NE(filtered, counters.end());
  EXPECT_GT(filtered->second, 0u);

  // And they are the *only* sanctioned difference: the kernel-off run
  // reports none of them.
  const auto off = RunWith(env, options, /*kernel_on=*/false);
  ASSERT_TRUE(off.has_value());
  for (const auto& [name, value] : off->rec.report.metrics.counters) {
    EXPECT_NE(name.rfind("idxsel.kernel.", 0), 0u)
        << name << "=" << value << " reported with kernel off";
  }
}

TEST(KernelTelemetryTest, FilteredQueriesDeterministicAcrossThreads) {
  // kernel.filtered_queries is a pure function of the evaluated moves, so
  // even though parallel units tally it concurrently, the total matches
  // the serial run exactly.
  Env env(2, 12, 60);
  AdvisorOptions options;
  options.strategy = StrategyKind::kRecursive;
  options.budget_fraction = 0.5;

  options.threads = 1;
  const auto serial = RunWith(env, options, /*kernel_on=*/true);
  ASSERT_TRUE(serial.has_value());
  options.threads = 4;
  const auto parallel = RunWith(env, options, /*kernel_on=*/true);
  ASSERT_TRUE(parallel.has_value());

  const auto& a = serial->rec.report.metrics.counters;
  const auto& b = parallel->rec.report.metrics.counters;
  for (const char* name :
       {"idxsel.kernel.fast_path_hits", "idxsel.kernel.fallback_lookups",
        "idxsel.kernel.filtered_queries"}) {
    const auto sa = a.find(name);
    const auto sb = b.find(name);
    ASSERT_NE(sa, a.end()) << name;
    ASSERT_NE(sb, b.end()) << name;
    EXPECT_EQ(sa->second, sb->second) << name;
  }
}
#endif  // IDXSEL_KERNEL && IDXSEL_OBS

// ------------------------------------------------------- dense engine API

#if defined(IDXSEL_KERNEL)
TEST(DenseEngineTest, DenseLookupsMatchKeyedLookups) {
  // Below the strategies: every dense accessor agrees bit-for-bit with
  // its keyed twin, on both cold and warm lookups.
  Env env;
  kernel::ScopedKernelEnabled guard(true);
  WhatIfEngine dense_engine(&env.w, env.backend.get());
  WhatIfEngine keyed_engine(&env.w, env.backend.get());
  ASSERT_TRUE(dense_engine.DenseActive());

  for (workload::AttributeId a = 0; a < env.w.num_attributes(); a += 3) {
    const costmodel::Index k(a);
    const kernel::IndexId id = dense_engine.InternIndex(k);
    EXPECT_EQ(dense_engine.IndexMemoryDense(id), keyed_engine.IndexMemory(k));
    EXPECT_EQ(dense_engine.MaintenancePenaltyDense(id),
              keyed_engine.MaintenancePenalty(k));
    const auto& posting = env.w.queries_with(k.leading());
    for (uint32_t s = 0; s < posting.size(); ++s) {
      const double cold =
          dense_engine.CostWithIndexDense(posting[s], id, s);
      EXPECT_EQ(cold, keyed_engine.CostWithIndex(posting[s], k))
          << "attr " << a << " slot " << s;
      // Warm: the dense row answers without consulting the backend, and
      // counts a cache hit exactly like the hashed cache would.
      const uint64_t hits_before = dense_engine.stats().cache_hits;
      EXPECT_EQ(dense_engine.CostWithIndexDense(posting[s], id, s), cold);
      EXPECT_EQ(dense_engine.stats().cache_hits, hits_before + 1);
    }
  }
  EXPECT_EQ(dense_engine.stats().calls, keyed_engine.stats().calls);
}

TEST(DenseEngineTest, MaterializeRoundTripsInterning) {
  Env env;
  kernel::ScopedKernelEnabled guard(true);
  WhatIfEngine engine(&env.w, env.backend.get());
  ASSERT_TRUE(engine.DenseActive());
  const costmodel::Index k(std::vector<workload::AttributeId>{4, 1, 9});
  const kernel::IndexId id = engine.InternIndex(k);
  EXPECT_TRUE(engine.MaterializeIndex(id) == k);
  EXPECT_EQ(engine.InternIndex(k), id);  // idempotent
}
#endif  // IDXSEL_KERNEL

}  // namespace
}  // namespace idxsel
