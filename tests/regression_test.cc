// Focused regression and contract tests that cut across modules: solver
// bound validity, skyline guarantees, reconfiguration accounting in the
// trace, determinism of generated artifacts, and advisor-over-engine
// integration.

#include <gtest/gtest.h>

#include <algorithm>

#include "advisor/advisor.h"
#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/reconfiguration.h"
#include "engine/measured_cost.h"
#include "lp/simplex.h"
#include "mip/branch_and_bound.h"
#include "selection/shuffle.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using candidates::CandidateSet;
using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  explicit Env(uint64_t seed = 7, double write_share = 0.0) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 8;
    params.queries_per_table = 14;
    params.seed = seed;
    params.write_share = write_share;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }
};

// ---------------------------------------------------------------- solver

TEST(SolverBoundTest, TimeoutBoundNeverExceedsTrueOptimum) {
  // Even when stopped immediately, the reported best_bound must
  // lower-bound the exhaustive optimum.
  Rng rng(31);
  mip::Problem p;
  const size_t queries = 10;
  const size_t candidates = 12;
  p.query_weight.assign(queries, 1.0);
  p.base_cost.resize(queries);
  for (auto& c : p.base_cost) c = rng.Uniform(50, 100);
  p.candidate_costs.resize(candidates);
  p.candidate_memory.resize(candidates);
  double total = 0.0;
  for (size_t k = 0; k < candidates; ++k) {
    p.candidate_memory[k] = rng.Uniform(1, 6);
    total += p.candidate_memory[k];
    const auto j = static_cast<uint32_t>(rng.UniformInt(0, queries - 1));
    p.candidate_costs[k].push_back(
        mip::QueryCost{j, rng.Uniform(1.0, p.base_cost[j])});
  }
  p.budget = 0.4 * total;

  double optimum = 0.0;
  for (double c : p.base_cost) optimum += c;
  for (uint32_t mask = 1; mask < (1u << candidates); ++mask) {
    double mem = 0.0;
    std::vector<double> cost = p.base_cost;
    for (uint32_t k = 0; k < candidates; ++k) {
      if (!(mask & (1u << k))) continue;
      mem += p.candidate_memory[k];
      for (const auto& qc : p.candidate_costs[k]) {
        cost[qc.query] = std::min(cost[qc.query], qc.cost);
      }
    }
    if (mem > p.budget) continue;
    double objective = 0.0;
    for (double c : cost) objective += c;
    optimum = std::min(optimum, objective);
  }

  p.Canonicalize();
  mip::SolveOptions options;
  options.time_limit_seconds = 0.0;  // immediate stop
  const mip::SolveResult r = mip::Solve(p, options);
  EXPECT_LE(r.best_bound, optimum + 1e-6);
  EXPECT_GE(r.objective, optimum - 1e-6);  // incumbent is feasible
}

// -------------------------------------------------------------- skyline

TEST(SkylineGuaranteeTest, EveryQueryKeepsItsBestCandidate) {
  Env env;
  const CandidateSet all = EnumerateAllCandidates(env.w, 3);
  const CandidateSet filtered = candidates::SkylineFilter(all, *env.engine);
  // For every query, the minimum achievable cost over the filtered set
  // equals the minimum over the full set — domination never removes a
  // per-query winner.
  for (workload::QueryId j = 0; j < env.w.num_queries(); ++j) {
    double best_all = env.engine->BaseCost(j);
    for (const Index& k : all.indexes()) {
      if (!env.engine->Applicable(j, k)) continue;
      best_all = std::min(best_all, env.engine->CostWithIndex(j, k));
    }
    double best_filtered = env.engine->BaseCost(j);
    for (const Index& k : filtered.indexes()) {
      if (!env.engine->Applicable(j, k)) continue;
      best_filtered = std::min(best_filtered,
                               env.engine->CostWithIndex(j, k));
    }
    EXPECT_NEAR(best_filtered, best_all,
                std::max(1.0, best_all) * 1e-9)
        << "query " << j;
  }
}

// ------------------------------------------------------- reconfiguration

TEST(ReconfigTraceTest, TraceObjectivesIncludeReconfigurationCosts) {
  Env env;
  // Existing selection: a fresh small run.
  core::RecursiveOptions bootstrap;
  bootstrap.budget = env.model->Budget(0.1);
  const core::RecursiveResult initial =
      core::SelectRecursive(*env.engine, bootstrap);
  ASSERT_FALSE(initial.selection.empty());

  costmodel::ReconfigurationParams params;
  params.create_factor = 2.0;
  const costmodel::ReconfigurationModel reconfig(env.engine.get(), params);
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.2);
  options.existing = &initial.selection;
  options.reconfiguration = &reconfig;
  const core::RecursiveResult r = core::SelectRecursive(*env.engine, options);

  // Final trace objective equals F(selection) + R(selection, existing).
  ASSERT_FALSE(r.trace.empty());
  const double expected = env.engine->WorkloadCost(r.selection) +
                          reconfig.Cost(r.selection, initial.selection);
  EXPECT_NEAR(r.trace.back().objective_after, expected, expected * 1e-9);
}

// ------------------------------------------------------------ determinism

TEST(DeterminismTest, DatabaseContentIsSeedStable) {
  Env env;
  const engine::Database db1(&env.w, 5000, 17);
  const engine::Database db2(&env.w, 5000, 17);
  for (workload::TableId t = 0; t < env.w.num_tables(); ++t) {
    for (size_t c = 0; c < db1.table(t).num_columns(); ++c) {
      ASSERT_EQ(db1.table(t).column(c), db2.table(t).column(c));
    }
  }
  const engine::Database db3(&env.w, 5000, 18);
  EXPECT_NE(db1.table(0).column(0), db3.table(0).column(0));
}

TEST(DeterminismTest, CandidateEnumerationIsOrderStable) {
  Env env;
  const CandidateSet a = EnumerateAllCandidates(env.w, 3);
  const CandidateSet b = EnumerateAllCandidates(env.w, 3);
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t c = 0; c < a.size(); ++c) EXPECT_EQ(a[c], b[c]);
}

// ------------------------------------------------ advisor over the engine

TEST(AdvisorEngineTest, RecommendationOverMeasuredCosts) {
  workload::ScalableWorkloadParams params;
  params.num_tables = 2;
  params.attributes_per_table = 6;
  params.queries_per_table = 8;
  params.rows_per_table_step = 8000;
  const workload::Workload w = workload::GenerateScalableWorkload(params);
  const engine::Database db(&w, 8000, 3);
  engine::MeasuredCostSource measured(&db, 2, 5);
  WhatIfEngine engine(&w, &measured);

  advisor::AdvisorOptions options;
  options.budget_fraction = 0.5;
  auto rec = advisor::Recommend(engine, options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_LE(rec->cost_after, rec->cost_before * (1.0 + 1e-9));
  EXPECT_LE(rec->memory, rec->budget + 1e-6);
  const std::string report = advisor::RenderReport(engine, *rec);
  EXPECT_NE(report.find("recommended indexes"), std::string::npos);
}

// ---------------------------------------------------- shuffle with writes

TEST(ShuffleWritesTest, PenaltiesEnterTheShuffleObjective) {
  Env env(7, /*write_share=*/0.4);
  const CandidateSet cands = EnumerateAllCandidates(env.w, 2);
  selection::ShuffleOptions options;
  options.max_iterations = 200;
  const selection::ShuffleResult r = selection::SelectByShuffling(
      *env.engine, cands, env.model->Budget(0.3), options);
  // Tracker objective (with penalties) must match the engine's evaluation.
  EXPECT_NEAR(r.selection.objective,
              env.engine->WorkloadCost(r.selection.selection),
              std::max(1.0, r.selection.objective) * 1e-9);
}

// --------------------------------------------------- LP relaxation values

TEST(LpRelaxationValuesTest, XVariablesStayInUnitBox) {
  Env env(3);
  const CandidateSet cands = EnumerateAllCandidates(env.w, 2);
  if (cands.size() > 40) GTEST_SKIP() << "dense simplex would be slow";
  std::vector<uint32_t> x_vars;
  const lp::Model model = cophy::BuildLpRelaxation(
      *env.engine, cands, env.model->Budget(0.2), &x_vars);
  auto solved = lp::SolveLp(model);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  for (uint32_t x : x_vars) {
    EXPECT_GE(solved->values[x], -1e-9);
    EXPECT_LE(solved->values[x], 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace idxsel
