// Cross-module property sweeps: randomized workloads, every strategy, and
// the invariants that must hold regardless of seed or configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "advisor/advisor.h"
#include "candidates/candidates.h"
#include "cophy/cophy.h"
#include "core/recursive_selector.h"
#include "costmodel/cost_model.h"
#include "costmodel/ddl.h"
#include "selection/heuristics.h"
#include "workload/blend.h"
#include "workload/compression.h"
#include "workload/parser.h"
#include "workload/scalable_generator.h"

namespace idxsel {
namespace {

using candidates::CandidateSet;
using candidates::EnumerateAllCandidates;
using costmodel::CostModel;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::ModelBackend;
using costmodel::WhatIfEngine;

struct Env {
  workload::Workload w;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<ModelBackend> backend;
  std::unique_ptr<WhatIfEngine> engine;

  explicit Env(uint64_t seed, double write_share = 0.0) {
    workload::ScalableWorkloadParams params;
    params.num_tables = 2;
    params.attributes_per_table = 8;
    params.queries_per_table = 15;
    params.seed = seed;
    params.write_share = write_share;
    w = workload::GenerateScalableWorkload(params);
    model = std::make_unique<CostModel>(&w);
    backend = std::make_unique<ModelBackend>(model.get());
    engine = std::make_unique<WhatIfEngine>(&w, backend.get());
  }
};

class CrossSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossSeedTest, WorkloadCostSubmodularityOnSamples) {
  // Adding an index to a larger configuration helps at most as much as
  // adding it to a smaller one (the property the B&B bounds rely on).
  Env env(GetParam());
  const CandidateSet cands = EnumerateAllCandidates(env.w, 2);
  if (cands.size() < 3) GTEST_SKIP();
  const Index& x = cands[0];
  const Index& y = cands[cands.size() / 2];
  const Index& z = cands[cands.size() - 1];

  IndexConfig small;
  small.Insert(x);
  IndexConfig large = small;
  large.Insert(y);

  IndexConfig small_z = small;
  small_z.Insert(z);
  IndexConfig large_z = large;
  large_z.Insert(z);

  const double gain_small = env.engine->WorkloadCost(small) -
                            env.engine->WorkloadCost(small_z);
  const double gain_large = env.engine->WorkloadCost(large) -
                            env.engine->WorkloadCost(large_z);
  EXPECT_GE(gain_small,
            gain_large - std::max(1.0, std::abs(gain_large)) * 1e-9);
}

TEST_P(CrossSeedTest, EveryStrategyAgreesWithEngineEvaluation) {
  Env env(GetParam());
  advisor::AdvisorOptions options;
  options.budget_fraction = 0.2;
  options.solver.mip_gap = 0.05;
  options.solver.time_limit_seconds = 10.0;
  for (advisor::StrategyKind kind :
       {advisor::StrategyKind::kRecursive, advisor::StrategyKind::kH1,
        advisor::StrategyKind::kH4, advisor::StrategyKind::kH5,
        advisor::StrategyKind::kCophy}) {
    options.strategy = kind;
    auto rec = advisor::Recommend(*env.engine, options);
    ASSERT_TRUE(rec.ok()) << advisor::StrategyName(kind);
    EXPECT_NEAR(rec->cost_after, env.engine->WorkloadCost(rec->selection),
                std::max(1.0, rec->cost_after) * 1e-9)
        << advisor::StrategyName(kind);
    EXPECT_LE(rec->memory, rec->budget + 1e-6);
  }
}

TEST_P(CrossSeedTest, H6DominatesItsOwnFrontierPrefix) {
  // The frontier trace is exactly reproducible: replaying the trace's
  // selections never disagrees with the recorded costs.
  Env env(GetParam());
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.4);
  const core::RecursiveResult r = core::SelectRecursive(*env.engine, options);
  ASSERT_EQ(r.frontier.size(), r.trace.size());
  for (size_t s = 0; s < r.trace.size(); ++s) {
    EXPECT_NEAR(r.trace[s].objective_after, r.frontier[s].second,
                std::max(1.0, r.frontier[s].second) * 1e-9);
  }
}

TEST_P(CrossSeedTest, CompressedSelectionRemainsValidOnFullWorkload) {
  Env env(GetParam());
  std::vector<double> costs(env.w.num_queries());
  for (workload::QueryId j = 0; j < env.w.num_queries(); ++j) {
    costs[j] = env.w.query(j).frequency * env.engine->BaseCost(j);
  }
  const workload::Workload compressed =
      workload::CompressTopK(env.w, costs, env.w.num_queries() / 2);
  Env compressed_env(GetParam());  // placeholder engine; rebuild below
  const CostModel compressed_model(&compressed);
  ModelBackend compressed_backend(&compressed_model);
  WhatIfEngine compressed_engine(&compressed, &compressed_backend);
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.2);
  const core::RecursiveResult r =
      core::SelectRecursive(compressed_engine, options);
  // Attribute ids are preserved, so the selection evaluates on the full
  // workload and never exceeds its unindexed cost.
  EXPECT_LE(env.engine->WorkloadCost(r.selection),
            env.engine->WorkloadCost(IndexConfig{}) * (1.0 + 1e-12));
}

TEST_P(CrossSeedTest, DdlRoundTripNamesEveryIndex) {
  Env env(GetParam());
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.3);
  const core::RecursiveResult r = core::SelectRecursive(*env.engine, options);
  const std::string ddl = RenderCreateStatements(env.w, r.selection);
  size_t statements = 0;
  for (size_t pos = 0; (pos = ddl.find("CREATE INDEX", pos)) !=
                       std::string::npos;
       pos += 12) {
    ++statements;
  }
  EXPECT_EQ(statements, r.selection.size());
}

TEST_P(CrossSeedTest, WriteHeavyWorkloadsSelectFewerIndexes) {
  Env read_only(GetParam(), 0.0);
  Env write_heavy(GetParam(), 0.7);
  core::RecursiveOptions options;
  options.budget = read_only.model->Budget(0.3);
  const auto reads =
      core::SelectRecursive(*read_only.engine, options);
  options.budget = write_heavy.model->Budget(0.3);
  const auto writes =
      core::SelectRecursive(*write_heavy.engine, options);
  // Fewer read queries to serve (and penalties to pay): never more
  // indexes than the read-only twin, up to small structural noise.
  EXPECT_LE(writes.selection.size(), reads.selection.size() + 2);
}

TEST_P(CrossSeedTest, FormatParseRoundTripPreservesSelectionBehaviour) {
  // Serialize the workload to text, parse it back, and check that the
  // recursive selector makes identical decisions on the reparse.
  Env env(GetParam());
  std::vector<std::string> names;
  for (workload::AttributeId i = 0; i < env.w.num_attributes(); ++i) {
    names.push_back(env.w.table(env.w.attribute(i).table).name + ".c" +
                    std::to_string(i));
  }
  auto text = workload::FormatWorkload(env.w, names);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto reparsed = workload::ParseWorkload(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  const CostModel model2(&reparsed->workload);
  ModelBackend backend2(&model2);
  WhatIfEngine engine2(&reparsed->workload, &backend2);
  core::RecursiveOptions options;
  options.budget = env.model->Budget(0.25);
  const auto original = core::SelectRecursive(*env.engine, options);
  const auto roundtrip = core::SelectRecursive(engine2, options);
  EXPECT_EQ(original.selection.ToString(), roundtrip.selection.ToString());
  EXPECT_NEAR(original.objective, roundtrip.objective,
              original.objective * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------- parser

TEST(ParserFuzzTest, GarbageNeverCrashes) {
  Rng rng(99);
  const std::string alphabet =
      "table attr query rows= distinct= freq= attrs= write #,\n\t =x1 ";
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const size_t length = static_cast<size_t>(rng.UniformInt(0, 200));
    for (size_t c = 0; c < length; ++c) {
      text += alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    // Must return a Status (ok or not) without crashing.
    auto parsed = workload::ParseWorkload(text);
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->workload.Validate().ok());
    }
  }
}

}  // namespace
}  // namespace idxsel
