// Tests for DDL rendering of index selections.

#include <gtest/gtest.h>

#include "costmodel/ddl.h"
#include "workload/tpcc.h"

namespace idxsel::costmodel {
namespace {

using workload::AttributeId;
using workload::TableId;

class DdlFixture : public ::testing::Test {
 protected:
  DdlFixture() {
    t_ = w_.AddTable("orders", 1000);
    a_ = w_.AddAttribute(t_, 10, 4);
    b_ = w_.AddAttribute(t_, 10, 4);
    u_ = w_.AddTable("items", 500);
    c_ = w_.AddAttribute(u_, 10, 4);
    w_.Finalize();
    names_ = {"orders.customer_id", "orders.status", "items.id"};
  }

  workload::Workload w_;
  TableId t_ = 0, u_ = 0;
  AttributeId a_ = 0, b_ = 0, c_ = 0;
  std::vector<std::string> names_;
};

TEST_F(DdlFixture, IndexNameWithAndWithoutNames) {
  const Index k = Index(a_).Append(b_);
  EXPECT_EQ(IndexName(w_, k), "idx_orders_a0_a1");
  EXPECT_EQ(IndexName(w_, k, &names_), "idx_orders_customer_id_status");
}

TEST_F(DdlFixture, CreateStatements) {
  IndexConfig config;
  config.Insert(Index(a_).Append(b_));
  config.Insert(Index(c_));
  const std::string ddl = RenderCreateStatements(w_, config, &names_);
  EXPECT_NE(ddl.find("CREATE INDEX idx_orders_customer_id_status ON orders "
                     "(customer_id, status);"),
            std::string::npos);
  EXPECT_NE(ddl.find("CREATE INDEX idx_items_id ON items (id);"),
            std::string::npos);
}

TEST_F(DdlFixture, MigrationDropsThenCreates) {
  IndexConfig current;
  current.Insert(Index(a_));
  current.Insert(Index(c_));
  IndexConfig target;
  target.Insert(Index(a_));           // kept: no statement
  target.Insert(Index(a_).Append(b_));  // new: CREATE
  const std::string script = RenderMigration(w_, current, target, &names_);
  EXPECT_NE(script.find("DROP INDEX idx_items_id;"), std::string::npos);
  EXPECT_NE(script.find("CREATE INDEX idx_orders_customer_id_status"),
            std::string::npos);
  // Kept index appears nowhere.
  EXPECT_EQ(script.find("idx_orders_customer_id ON"), std::string::npos);
  // DROP precedes CREATE.
  EXPECT_LT(script.find("DROP"), script.find("CREATE"));
}

TEST_F(DdlFixture, IdenticalConfigsProduceEmptyMigration) {
  IndexConfig config;
  config.Insert(Index(a_));
  EXPECT_TRUE(RenderMigration(w_, config, config).empty());
}

TEST(DdlTpccTest, TpccSelectionRendersCleanly) {
  const workload::NamedWorkload tpcc = workload::MakeTpccWorkload(10);
  IndexConfig config;
  config.Insert(Index(0).Append(1));  // STOCK.W_ID, STOCK.I_ID
  const std::string ddl = RenderCreateStatements(
      tpcc.workload, config, &tpcc.attribute_names);
  EXPECT_EQ(ddl, "CREATE INDEX idx_STOCK_W_ID_I_ID ON STOCK (W_ID, I_ID);\n");
}

}  // namespace
}  // namespace idxsel::costmodel
