#include "core/recursive_selector.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "audit/auditor.h"
#include "common/check.h"
#include "common/float_cmp.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "exec/shared_deadline.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"

#if defined(IDXSEL_KERNEL)
#include "kernel/simd.h"
#endif

namespace idxsel::core {
namespace {

constexpr double kEps = 1e-9;

#if defined(IDXSEL_OBS)
/// Registry counters of the selector, resolved once per process. The
/// Runner accumulates plain locals during a run and publishes them here in
/// one batch at the end, keeping the construction loop free of atomics.
struct SelectorMetrics {
  obs::Counter* runs;
  obs::Counter* rounds;
  obs::Counter* steps_create;
  obs::Counter* steps_append;
  obs::Counter* steps_prune;
  obs::Counter* steps_swap;
  obs::Counter* candidate_evals;
  obs::Counter* ratio_ties;
  obs::Histogram* run_latency;
#if defined(IDXSEL_KERNEL)
  /// Queries rejected by the 64-bit mask full-cover filter before any
  /// per-query work — the kernel's "posting-list-filtered" volume.
  obs::Counter* kernel_filtered;
#endif

  static const SelectorMetrics& Get() {
    static const SelectorMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      SelectorMetrics m;
      m.runs = registry.GetCounter("idxsel.selector.runs");
      m.rounds = registry.GetCounter("idxsel.selector.rounds");
      m.steps_create = registry.GetCounter("idxsel.selector.steps_create");
      m.steps_append = registry.GetCounter("idxsel.selector.steps_append");
      m.steps_prune = registry.GetCounter("idxsel.selector.steps_prune");
      m.steps_swap = registry.GetCounter("idxsel.selector.steps_swap");
      m.candidate_evals =
          registry.GetCounter("idxsel.selector.candidate_evals");
      m.ratio_ties = registry.GetCounter("idxsel.selector.ratio_ties");
      m.run_latency =
          registry.GetHistogram("idxsel.selector.run_latency_ns");
#if defined(IDXSEL_KERNEL)
      m.kernel_filtered =
          registry.GetCounter("idxsel.kernel.filtered_queries");
#endif
      return m;
    }();
    return metrics;
  }
};
#endif

/// A candidate elementary move under evaluation.
struct Move {
  StepKind kind = StepKind::kNewSingle;
  size_t selected_pos = 0;  ///< For appends: position in the selection.
  Index after;              ///< Resulting index (kernel mode: filled lazily
                            ///< by MaterializeMove for best/runner-up only).
#if defined(IDXSEL_KERNEL)
  /// Interned id of `after`. In a kernel-mode round every candidate carries
  /// one (tie-breaks then compare tuples through the arena, no Index
  /// needed); in legacy rounds none does.
  kernel::IndexId after_id = kernel::kInvalidIndexId;
#endif
  double benefit = 0.0;     ///< (F+R) reduction; > 0 for eligible moves.
  double memory_delta = 0.0;
  double ratio = -std::numeric_limits<double>::infinity();
  bool valid = false;
};

#if defined(IDXSEL_KERNEL)
namespace kernel = idxsel::kernel;

/// Per-attribute scratch of one append-evaluation unit: benefit
/// accumulator, interned extension id, and an epoch stamp that makes
/// clearing O(touched) instead of O(num_attributes). Thread-local because
/// parallel rounds run units concurrently — each unit executes wholly on
/// one thread, and the epoch isolates successive units on the same thread.
struct AppendScratch {
  std::vector<double> benefit;
  std::vector<kernel::IndexId> ext_id;
  std::vector<uint64_t> epoch;
  std::vector<workload::AttributeId> touched;
  uint64_t current = 0;

  // Batched-evaluation lane state: per-attribute CSR bookkeeping plus the
  // flat per-unit buffers the simd reductions stream. Capacity persists
  // across units and rounds — the steady state stays allocation-free.
  std::vector<uint32_t> count;     ///< CSR entries per touched attribute
  std::vector<uint32_t> offset;    ///< CSR segment start per attribute
  std::vector<uint32_t> kept;      ///< slots surviving the mask filter
  std::vector<uint32_t> covered;   ///< confirmed fully-covered slots
  std::vector<workload::QueryId> cov_qid;  ///< posting[slot] per entry
  std::vector<double> cov_cw;      ///< CostWithout per covered entry
  std::vector<uint32_t> slot_csr;  ///< (attr, entry) -> slot, attr-grouped
  std::vector<workload::QueryId> qid_csr;
  std::vector<double> cw_csr;
  std::vector<double> batch;       ///< gathered candidate-row costs

  void Begin(size_t num_attributes) {
    if (benefit.size() < num_attributes) {
      benefit.resize(num_attributes);
      ext_id.resize(num_attributes);
      epoch.resize(num_attributes, 0);
      count.resize(num_attributes);
      offset.resize(num_attributes);
    }
    ++current;
    touched.clear();
  }

  static AppendScratch& Local() {
    static thread_local AppendScratch scratch;
    return scratch;
  }
};
#endif

class Runner {
 public:
  Runner(WhatIfEngine& engine, const RecursiveOptions& opts)
      : engine_(engine),
        w_(engine.workload()),
        opts_(opts),
        poller_(opts.deadline),
        threads_(exec::ResolveThreads(opts.threads)) {
    if (threads_ > 1) pool_.emplace(threads_);
#if defined(IDXSEL_KERNEL)
    // Sampled once: a mid-run kernel::SetEnabled must not flip evaluation
    // modes between rounds. Reconfiguration deltas need materialized
    // indexes per candidate and Remark-2 evaluation re-costs whole
    // configurations, so both run the legacy paths.
    use_kernel_ = engine.DenseActive() && opts.reconfiguration == nullptr &&
                  !opts.multi_index_eval;
#endif
  }

  RecursiveResult Run() {
    IDXSEL_OBS_SPAN(run_span, "selector", "h6.run");
    Stopwatch watch;
    // Sampled once per run: a sink installed mid-run must not make later
    // rounds journal while earlier ones did not (or vice versa), which
    // would break byte-identity between otherwise identical runs.
    journal_ = telemetry::JournalActive();

    // Dead-on-arrival budgets (advisor spent it all upstream) return the
    // empty — trivially feasible — incumbent without touching the engine.
    if (opts_.deadline.expired()) {
      RecursiveResult result;
      result.status = Status::Timeout("recursive selector: deadline expired");
      result.runtime_seconds = watch.ElapsedSeconds();
      return result;
    }

    const uint64_t calls_before = engine_.stats().calls;

    best_cost_.resize(w_.num_queries());
    second_cost_.assign(w_.num_queries(),
                        std::numeric_limits<double>::infinity());
    best_owner_.assign(w_.num_queries(), kNoOwner);
    single_costs_.resize(w_.num_attributes());
    single_costs_ready_.assign(w_.num_attributes(), 0);
    freq_.resize(w_.num_queries());
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      freq_[j] = w_.query(j).frequency;
    }
#if defined(IDXSEL_KERNEL)
    if (use_kernel_) {
      // Intern every single-attribute index up front: ids become
      // deterministic, and the parallel single-ranking lanes never contend
      // on the arena lock.
      single_ids_.resize(w_.num_attributes());
      for (workload::AttributeId i = 0; i < w_.num_attributes(); ++i) {
        single_ids_[i] = engine_.arena().Intern(&i, 1);
      }
    }
#endif
    objective_ = 0.0;
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      best_cost_[j] = engine_.BaseCost(j);
      objective_ += w_.query(j).frequency * best_cost_[j];
    }

    RankSingles();

    RecursiveResult result;
    while (result.trace.size() < opts_.max_steps && !poller_.Expired()) {
      IDXSEL_OBS_SPAN(round_span, "selector", "h6.round");
      IDXSEL_OBS_ONLY(round_span.SetArg(
          "round", static_cast<double>(result.trace.size()));)
      Move best;
      Move runner_up;
      if (journal_) ResetRoundLog();
      if (opts_.multi_index_eval) {
        EvaluateNewSinglesMulti(&best, &runner_up);
        EvaluateAppendsMulti(&best, &runner_up);
#if defined(IDXSEL_KERNEL)
      } else if (use_kernel_) {
        EvaluateNewSinglesKernel(&best, &runner_up);
        EvaluateAppendsKernel(&best, &runner_up);
        if (opts_.pair_steps) EvaluatePairs(&best, &runner_up);
#endif
      } else {
        EvaluateNewSingles(&best, &runner_up);
        EvaluateAppends(&best, &runner_up);
        if (opts_.pair_steps) EvaluatePairs(&best, &runner_up);
      }
      // A round cut short by the deadline saw only a prefix of the moves;
      // committing its "best" would bias construction toward whatever the
      // enumeration happened to visit first. Keep the pre-round incumbent.
      if (poller_.expired()) break;
      if (!best.valid || best.ratio <= opts_.min_ratio) {
        stop_reason_ = best.valid ? "min-ratio" : "no-eligible-move";
        break;
      }
      // Kernel-mode candidates travel as interned ids; the one committed
      // (and the traced runner-up) are the only ones ever materialized.
      MaterializeMove(&best);
      MaterializeMove(&runner_up);
      ++committed_rounds_;
      if (best.kind == StepKind::kAppend ||
          best.kind == StepKind::kAppendPair) {
        ++append_steps_;
      } else {
        ++create_steps_;
      }

      const double objective_before = objective_ + ReconfigTotal();
      if (opts_.multi_index_eval) {
        CommitMulti(best);
      } else {
        Commit(best);
      }
      const double objective_after = objective_ + ReconfigTotal();

#if defined(IDXSEL_AUDIT)
      // End-of-round is the auditor's quiescent point: the pool's lanes
      // have joined and the commit's dense-row inheritance is complete, so
      // dense tables and hashed caches must agree exactly here. Debug
      // builds and the sanitizer CI legs (IDXSEL_AUDIT=1 env) run this;
      // -DIDXSEL_ENABLE_AUDIT=OFF compiles the site out.
      if (audit::Enabled()) {
        const audit::InvariantAuditor auditor(&engine_);
        audit::InvariantAuditor::CheckClean(auditor.AuditAll());
      }
#endif

      if (journal_) {
        EmitCommitRecord(best, runner_up, objective_before, objective_after);
        // A max-steps exit skips the next round's reset; clear here so the
        // stop record never re-lists rejects the commit already carries.
        ResetRoundLog();
      }

      ConstructionStep step;
      step.kind = best.kind;
      if (best.kind == StepKind::kAppend ||
          best.kind == StepKind::kAppendPair) {
        step.before = replaced_;
      }
      step.after = best.after;
      step.objective_before = objective_before;
      step.objective_after = objective_after;
      step.memory_delta = best.memory_delta;
      step.ratio = best.ratio;
      result.trace.push_back(step);
      if (runner_up.valid) {
        ConstructionStep alt;
        alt.kind = runner_up.kind;
        alt.after = runner_up.after;
        alt.memory_delta = runner_up.memory_delta;
        alt.ratio = runner_up.ratio;
        result.runners_up.push_back(alt);
      }
      if (opts_.prune_unused) PruneUnused(&result);
      result.frontier.emplace_back(used_memory_, objective_);
    }

    if (journal_) EmitStopRecord();

    // The repair pass relies on the one-index bookkeeping.
    if (opts_.swap_repair && !opts_.multi_index_eval) SwapRepair(&result);

    for (const Index& k : selected_) result.selection.Insert(k);
    result.objective = objective_;
    result.memory = used_memory_;
    result.runtime_seconds = watch.ElapsedSeconds();
    result.whatif_calls = engine_.stats().calls - calls_before;
    result.status =
        poller_.expired()
            ? Status::Timeout("recursive selector: deadline expired")
            : Status::Ok();
#if defined(IDXSEL_OBS)
    const SelectorMetrics& metrics = SelectorMetrics::Get();
    metrics.runs->Add(1);
    metrics.rounds->Add(committed_rounds_);
    metrics.steps_create->Add(create_steps_);
    metrics.steps_append->Add(append_steps_);
    metrics.steps_prune->Add(prune_steps_);
    metrics.steps_swap->Add(swap_steps_);
    metrics.candidate_evals->Add(candidate_evals_);
    metrics.ratio_ties->Add(ratio_ties_);
#if defined(IDXSEL_KERNEL)
    metrics.kernel_filtered->Add(
        kernel_filtered_.load(std::memory_order_relaxed));
#endif
    if (obs::Enabled()) {
      metrics.run_latency->Record(
          static_cast<uint64_t>(result.runtime_seconds * 1e9));
    }
#endif
    return result;
  }

 private:
  // -- Selection journal (decision provenance) -------------------------------
  //
  // Emitted through the telemetry bridge (common/telemetry.h), never
  // through obs directly, and only at serial points — Consider() and the
  // commit block run single-threaded in both the serial and the parallel
  // evaluation paths, so the journal is byte-identical at any thread
  // count, kernel on or off (kernel-mode moves carry bit-identical values
  // and materialize to the same labels).

  /// Listed rejected moves per round; everything beyond is only counted.
  static constexpr size_t kJournalRejectCap = 32;

  struct RejectedMove {
    Move move;
    const char* reason;
  };

  void ResetRoundLog() {
    round_rejects_.clear();
    round_evals_ = 0;
    round_no_benefit_ = 0;
    round_budget_exceeded_ = 0;
    round_sanitized_ = 0;
  }

  void LogRejectedMove(Move move, const char* reason) {
    if (reason[0] == 's') {
      ++round_sanitized_;
    } else {
      ++round_budget_exceeded_;
    }
    if (round_rejects_.size() < kJournalRejectCap) {
      round_rejects_.push_back(RejectedMove{std::move(move), reason});
    }
  }

  /// Canonical label of a move's resulting index; kernel-mode moves that
  /// were never materialized resolve through the (const, stats-free)
  /// arena lookup.
  std::string MoveLabel(const Move& move) const {
#if defined(IDXSEL_KERNEL)
    if (move.after.empty() && move.after_id != kernel::kInvalidIndexId) {
      return engine_.MaterializeIndex(move.after_id).ToString();
    }
#endif
    return move.after.ToString();
  }

  std::string RoundNote() const {
    return "evals=" + std::to_string(round_evals_) +
           " no_benefit=" + std::to_string(round_no_benefit_) +
           " budget_exceeded=" + std::to_string(round_budget_exceeded_) +
           " listed_rejects=" + std::to_string(round_rejects_.size());
  }

  /// Appends the round's capped reject list to `candidates`, with labels
  /// owned by `labels` (pre-reserved so c_str() pointers stay stable).
  void AppendRejects(std::vector<std::string>* labels,
                     std::vector<telemetry::JournalCandidate>* candidates)
      const {
    for (const RejectedMove& rejected : round_rejects_) {
      labels->push_back(MoveLabel(rejected.move));
      telemetry::JournalCandidate candidate;
      candidate.index = labels->back().c_str();
      candidate.reject = rejected.reason;
      candidate.benefit = rejected.move.benefit;
      candidate.memory_delta = rejected.move.memory_delta;
      candidate.ratio = rejected.move.memory_delta > 0.0
                            ? rejected.move.benefit /
                                  rejected.move.memory_delta
                            : 0.0;
      candidates->push_back(candidate);
    }
  }

  void EmitCommitRecord(const Move& best, const Move& runner_up,
                        double objective_before, double objective_after) {
    std::vector<std::string> labels;
    labels.reserve(2 + round_rejects_.size());
    std::vector<telemetry::JournalCandidate> candidates;
    candidates.reserve(2 + round_rejects_.size());

    labels.push_back(best.after.ToString());
    telemetry::JournalCandidate winner;
    winner.index = labels.back().c_str();
    winner.benefit = best.benefit;
    winner.memory_delta = best.memory_delta;
    winner.ratio = best.ratio;
    candidates.push_back(winner);
    if (runner_up.valid) {
      labels.push_back(runner_up.after.ToString());
      telemetry::JournalCandidate second;
      second.index = labels.back().c_str();
      second.reject = "dominated";
      second.benefit = runner_up.benefit;
      second.memory_delta = runner_up.memory_delta;
      second.ratio = runner_up.ratio;
      candidates.push_back(second);
    }
    AppendRejects(&labels, &candidates);

    telemetry::JournalEvent event;
    event.strategy = "h6";
    event.action = "commit";
    event.round = committed_rounds_;
    event.winner = labels.front().c_str();
    event.winner_ratio = best.ratio;
    event.margin = runner_up.valid ? best.ratio - runner_up.ratio : 0.0;
    event.objective_before = objective_before;
    event.objective_after = objective_after;
    event.memory_after = used_memory_;
    event.sanitized_whatif = round_sanitized_;
    event.candidates = candidates.data();
    event.num_candidates = candidates.size();
    const std::string note = RoundNote();
    event.note = note.c_str();
    telemetry::EmitJournal(event);
  }

  /// Terminal record. A timeout stop drops the in-flight round's reject
  /// list: a deadline can fire anywhere mid-evaluation, so the partial
  /// list is the one journal ingredient that is *not* deterministic.
  void EmitStopRecord() {
    telemetry::JournalEvent event;
    event.strategy = "h6";
    event.action = "stop";
    event.round = committed_rounds_;
    event.objective_after = objective_;
    event.memory_after = used_memory_;
    std::vector<std::string> labels;
    std::vector<telemetry::JournalCandidate> candidates;
    if (poller_.expired()) {
      event.note = "timeout";
    } else {
      event.note = stop_reason_;
      event.sanitized_whatif = round_sanitized_;
      labels.reserve(round_rejects_.size());
      candidates.reserve(round_rejects_.size());
      AppendRejects(&labels, &candidates);
      event.candidates = candidates.data();
      event.num_candidates = candidates.size();
    }
    telemetry::EmitJournal(event);
  }

  void EmitPruneRecord(const Index& pruned, double objective_before,
                       double objective_after, double memory_delta) {
    const std::string label = pruned.ToString();
    telemetry::JournalEvent event;
    event.strategy = "h6";
    event.action = "prune";
    event.round = committed_rounds_;
    event.winner = label.c_str();
    event.objective_before = objective_before;
    event.objective_after = objective_after;
    event.memory_after = used_memory_;
    telemetry::JournalCandidate candidate;
    candidate.index = label.c_str();
    candidate.reject = "dominated";
    candidate.memory_delta = memory_delta;
    event.candidates = &candidate;
    event.num_candidates = 1;
    event.note = "unused by every query";
    telemetry::EmitJournal(event);
  }

  void EmitSwapRecord(const Index& added, const std::vector<Index>& evicted,
                      double objective_before, double objective_after) {
    const std::string label = added.ToString();
    std::string note = "evicted=";
    for (size_t e = 0; e < evicted.size(); ++e) {
      if (e != 0) note += ',';
      note += evicted[e].ToString();
    }
    telemetry::JournalEvent event;
    event.strategy = "h6";
    event.action = "swap";
    event.round = committed_rounds_;
    event.winner = label.c_str();
    event.objective_before = objective_before;
    event.objective_after = objective_after;
    event.memory_after = used_memory_;
    event.note = note.c_str();
    telemetry::EmitJournal(event);
  }

  // -- Reconfiguration accounting -------------------------------------------

  bool InExisting(const Index& k) const {
    return opts_.existing != nullptr && opts_.existing->Contains(k);
  }

  /// R-delta of adding `added` (and removing `removed` if non-empty).
  double ReconfigDelta(const Index* removed, const Index& added) const {
    if (opts_.reconfiguration == nullptr) return 0.0;
    double delta = 0.0;
    if (!InExisting(added)) delta += opts_.reconfiguration->CreateCost(added);
    if (removed != nullptr) {
      if (!InExisting(*removed)) {
        delta -= opts_.reconfiguration->CreateCost(*removed);
      }
      // A replaced index that pre-exists must now be dropped; it enters
      // I-bar \ I. (Dropping costs are part of ReconfigurationParams.)
    }
    return delta;
  }

  /// Current total R(I, I-bar) (0 when no model configured).
  double ReconfigTotal() const {
    if (opts_.reconfiguration == nullptr) return 0.0;
    costmodel::IndexConfig current;
    for (const Index& k : selected_) current.Insert(k);
    static const costmodel::IndexConfig kEmpty;
    return opts_.reconfiguration->Cost(
        current, opts_.existing != nullptr ? *opts_.existing : kEmpty);
  }

  // -- Move evaluation -------------------------------------------------------

  static constexpr size_t kNoOwner = ~size_t{0};

  /// min(f_j(0), min over selected indexes except `skip_pos`) in O(1) via
  /// the incrementally maintained best/second-best bookkeeping.
  double CostWithout(workload::QueryId j, size_t skip_pos) const {
    return best_owner_[j] == skip_pos ? second_cost_[j] : best_cost_[j];
  }

  /// Registers cost `c` of selected position `pos` for query j in the
  /// best/second-best bookkeeping.
  void InsertCost(workload::QueryId j, size_t pos, double c) {
    if (c < best_cost_[j]) {
      second_cost_[j] = best_cost_[j];
      objective_ -= w_.query(j).frequency * (best_cost_[j] - c);
      best_cost_[j] = c;
      best_owner_[j] = pos;
    } else if (c < second_cost_[j]) {
      second_cost_[j] = c;
    }
  }

  /// Recomputes best/second-best/owner for query j from scratch (base cost
  /// plus every applicable selected index); O(|selection|) engine cache
  /// hits. Used for queries affected by a replacement.
  void RecomputeQuery(workload::QueryId j) {
    const double old_best = best_cost_[j];
    double b1 = engine_.BaseCost(j);
    double b2 = std::numeric_limits<double>::infinity();
    size_t owner = kNoOwner;
    for (size_t p = 0; p < selected_.size(); ++p) {
      if (!engine_.Applicable(j, selected_[p])) continue;
      const double c = engine_.CostWithIndex(j, selected_[p]);
      if (c < b1) {
        b2 = b1;
        b1 = c;
        owner = p;
      } else if (c < b2) {
        b2 = c;
      }
    }
    best_cost_[j] = b1;
    second_cost_[j] = b2;
    best_owner_[j] = owner;
    objective_ += w_.query(j).frequency * (b1 - old_best);
  }

  /// Cached per-attribute f_j({i}) cost arrays, SoA-aligned with the
  /// posting list w_.queries_with(i) (element s belongs to posting[s]);
  /// the engine is consulted once per pair, every later step reads the
  /// flat array — and the benefit reduction streams it 4 lanes at a time.
  const std::vector<double>& SingleCosts(workload::AttributeId i) {
    if (!single_costs_ready_[i]) {
      single_costs_ready_[i] = 1;
      auto& list = single_costs_[i];
      const auto& posting = w_.queries_with(i);
      list.reserve(posting.size());
#if defined(IDXSEL_KERNEL)
      if (use_kernel_) {
        // Same values, same engine accounting as the keyed loop below (the
        // dense path falls back to it per slot); warming here also fills
        // {i}'s dense row, which every later step reads hash-free.
        const kernel::IndexId id = single_ids_[i];
        for (uint32_t s = 0; s < posting.size(); ++s) {
          list.push_back(
              engine_.CostWithIndexDense(posting[s], id, s));
        }
        return list;
      }
#endif
      const Index k(i);
      for (workload::QueryId j : posting) {
        list.push_back(engine_.CostWithIndex(j, k));
      }
    }
    return single_costs_[i];
  }

  bool SingleSelected(workload::AttributeId i) const {
    for (const Index& k : selected_) {
      if (k.width() == 1 && k.leading() == i) return true;
    }
    return false;
  }

  /// Strict "a beats b" order on candidate moves: ratio, then the
  /// deterministic lexicographic tuple tie-break. Kernel-mode rounds
  /// compare through the arena (every move carries an id, no Index value
  /// exists yet); arena order and Index::operator< are both plain
  /// lexicographic comparison of the attribute tuples, so the two modes
  /// agree on every tie.
  bool MoveBetter(const Move& a, const Move& b) const {
    if (!ExactlyEqual(a.ratio, b.ratio)) return a.ratio > b.ratio;
#if defined(IDXSEL_KERNEL)
    if (a.after_id != kernel::kInvalidIndexId &&
        b.after_id != kernel::kInvalidIndexId) {
      return engine_.arena().Less(a.after_id, b.after_id);
    }
#endif
    return a.after < b.after;
  }

  void Consider(Move move, Move* best, Move* runner_up) {
    ++candidate_evals_;
    if (journal_) ++round_evals_;
    if (!(move.benefit > kEps) || !(move.memory_delta > 0.0)) {
      // A non-finite memory delta can only come from a sanitized what-if
      // size (WhatIfEngine maps garbage sizes to +infinity); everything
      // else here simply does not improve the objective.
      if (journal_) {
        if (!std::isfinite(move.memory_delta)) {
          LogRejectedMove(std::move(move), "sanitized-whatif");
        } else {
          ++round_no_benefit_;
        }
      }
      return;
    }
    if (used_memory_ + move.memory_delta > opts_.budget + kEps) {
      if (journal_) {
        const char* reason = std::isfinite(move.memory_delta)
                                 ? "budget-exceeded"
                                 : "sanitized-whatif";
        LogRejectedMove(std::move(move), reason);
      }
      return;
    }
    move.ratio = move.benefit / move.memory_delta;
    move.valid = true;
    // A ratio tie means the deterministic tuple ordering — not the step
    // criterion — decides the move; worth counting because ties make the
    // greedy's choice sensitive to index enumeration order.
    if (best->valid && ExactlyEqual(move.ratio, best->ratio)) ++ratio_ties_;
    if (!best->valid || MoveBetter(move, *best)) {
      if (best->valid) *runner_up = *best;
      *best = move;
    } else if (!runner_up->valid || MoveBetter(move, *runner_up)) {
      *runner_up = move;
    }
  }

  /// Evaluates `n` independent units of move generation and reduces their
  /// candidate moves into best/runner-up. `eval(u, out)` must append unit
  /// u's moves to `out` in the order the serial code would have Considered
  /// them, must not touch Runner state other than the (read-only during a
  /// round) bookkeeping and the thread-safe engine, and must not Consider
  /// itself.
  ///
  /// Serial path (threads == 1): evaluate-then-Consider per unit — the
  /// same moves in the same order as the historical interleaved code,
  /// since Consider only folds into best/runner-up, which no evaluation
  /// reads. Parallel path: all units evaluate concurrently into per-unit
  /// buffers, then one serial pass Considers them in unit order. Both
  /// paths therefore Consider the identical move sequence: bit-identical
  /// selections, FP sums, and telemetry regardless of thread count.
  template <typename Eval>
  void EvaluateUnits(size_t n, const Eval& eval, Move* best,
                     Move* runner_up) {
    if (n == 0) return;
    if (!pool_.has_value()) {
      for (size_t u = 0; u < n; ++u) {
        if (poller_.Expired()) return;
        serial_moves_.clear();
        eval(u, serial_moves_);
        for (const Move& move : serial_moves_) {
          Consider(move, best, runner_up);
        }
      }
      return;
    }
    // Buffers are members so steady-state rounds reuse their capacity.
    if (unit_buffers_.size() < n) unit_buffers_.resize(n);
    for (size_t u = 0; u < n; ++u) unit_buffers_[u].clear();
    pool_->ParallelFor(n, [&](size_t u) {
      if (poller_.Expired()) return;
      eval(u, unit_buffers_[u]);
    });
    // A deadline hit mid-evaluation leaves some buffers empty; the main
    // loop discards the whole round (same contract as the serial early
    // return), so skip the reduction.
    if (poller_.expired()) return;
    for (size_t u = 0; u < n; ++u) {
      for (const Move& move : unit_buffers_[u]) {
        Consider(move, best, runner_up);
      }
    }
  }

  /// Benefit of creating single-attribute index {i} against the current
  /// state: sum_j b_j max(0, best_cost_j - f_j({i})).
  double SingleBenefit(workload::AttributeId i) {
    const std::vector<double>& costs = SingleCosts(i);
    const auto& posting = w_.queries_with(i);
#if defined(IDXSEL_KERNEL)
    // Vectorized reduction; in default (non-relaxed) mode bit-identical
    // to the serial loop below, so kernel-off runs may use it too.
    return kernel::simd::ReduceBenefitIndexed(costs.data(), posting.data(),
                                              best_cost_.data(), freq_.data(),
                                              costs.size());
#else
    double benefit = 0.0;
    for (size_t s = 0; s < costs.size(); ++s) {
      const workload::QueryId j = posting[s];
      const double gain = best_cost_[j] - costs[s];
      if (gain > 0.0) benefit += freq_[j] * gain;
    }
    return benefit;
#endif
  }

  /// Step 2's ranking of single-attribute indexes, reused for Remark 1(1).
  /// Deadline expiry truncates the ranking; the main loop then observes the
  /// latched expiry before running a round, so a partial ranking is never
  /// acted on.
  void RankSingles() {
    std::vector<std::pair<double, workload::AttributeId>> ranked;
    if (!pool_.has_value()) {
      ranked.reserve(w_.num_attributes());
      for (workload::AttributeId i = 0; i < w_.num_attributes(); ++i) {
        if (poller_.Expired()) break;
        const double mem = engine_.IndexMemory(Index(i));
        const double ratio = SingleBenefit(i) / std::max(1.0, mem);
        ranked.emplace_back(-ratio, i);
      }
    } else {
      // Each lane ranks its own attributes: SingleCosts(i) and the ready
      // flag live in per-attribute slots (distinct memory locations), so
      // the warm-up writes never collide; per-attribute FP sums run in the
      // same within-attribute order as serial. An expiry mid-ranking
      // leaves holes, but the latched verdict then prevents any round (and
      // the repair pass) from consuming the ranking — same contract as the
      // serial early break.
      ranked.assign(w_.num_attributes(),
                    {0.0, workload::AttributeId{0}});
      pool_->ParallelFor(w_.num_attributes(), [&](size_t u) {
        if (poller_.Expired()) return;
        const workload::AttributeId i =
            static_cast<workload::AttributeId>(u);
        const double mem = engine_.IndexMemory(Index(i));
        const double ratio = SingleBenefit(i) / std::max(1.0, mem);
        ranked[u] = {-ratio, i};
      });
      if (poller_.expired()) ranked.clear();
    }
    std::sort(ranked.begin(), ranked.end());
    const size_t keep = std::min(opts_.n_best_singles, ranked.size());
    eligible_singles_.clear();
    eligible_singles_.reserve(keep);
    for (size_t r = 0; r < keep; ++r) {
      eligible_singles_.push_back(ranked[r].second);
    }
    std::sort(eligible_singles_.begin(), eligible_singles_.end());
  }

  void EvaluateNewSingles(Move* best, Move* runner_up) {
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId i = eligible_singles_[u];
          if (SingleSelected(i)) return;  // step (3a): I and {i} disjoint
          const Index k(i);
          Move move;
          move.kind = StepKind::kNewSingle;
          move.after = k;
          move.benefit = SingleBenefit(i) - ReconfigDelta(nullptr, k) -
                         engine_.MaintenancePenalty(k);
          move.memory_delta = engine_.IndexMemory(k);
          out.push_back(std::move(move));
        },
        best, runner_up);
  }

  void EvaluateAppends(Move* best, Move* runner_up) {
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() >= opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);

          // Accumulate benefit deltas per extension attribute by iterating
          // the queries that fully cover k — the only ones whose cost can
          // change. The maps are unit-local, so their (deterministic)
          // iteration order is identical in serial and parallel runs.
          std::unordered_map<workload::AttributeId, double> benefit;
          std::unordered_map<workload::AttributeId, Index> extended;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            const double cost_without = CostWithout(j, pos);
            for (workload::AttributeId a : q_attrs) {
              if (k.Contains(a)) continue;
              auto [it, inserted] = extended.try_emplace(a);
              if (inserted) it->second = k.Append(a);
              const double new_cost = std::min(
                  cost_without, engine_.CostWithIndex(j, it->second));
              benefit[a] +=
                  w_.query(j).frequency * (best_cost_[j] - new_cost);
            }
          }
          // Emit in ascending attribute order: emission order fixes the
          // first-touch order of the size/maintenance caches (hence the
          // backend call sequence) and the ratio-tie telemetry, and the
          // kernel-mode evaluation emits in exactly this order.
          std::vector<workload::AttributeId> order;
          order.reserve(benefit.size());
          // idxsel-lint: allow(unordered-iter) reason=key-collection only; the sort below restores deterministic order before any decision
          for (const auto& [a, gain] : benefit) order.push_back(a);
          std::sort(order.begin(), order.end());
          for (workload::AttributeId a : order) {
            const Index& k_ext = extended.at(a);
            Move move;
            move.kind = StepKind::kAppend;
            move.selected_pos = pos;
            move.after = k_ext;
            move.benefit = benefit.at(a) - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

#if defined(IDXSEL_KERNEL)
  /// Kernel-mode step (3a): identical move set, values, and engine
  /// accounting as EvaluateNewSingles (reconfiguration is never configured
  /// here, so its delta — 0 — drops out), but sizes and maintenance come
  /// from the dense id-addressed tables and no Index is materialized.
  void EvaluateNewSinglesKernel(Move* best, Move* runner_up) {
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId i = eligible_singles_[u];
          if (SingleSelected(i)) return;  // step (3a): I and {i} disjoint
          const kernel::IndexId id = single_ids_[i];
          Move move;
          move.kind = StepKind::kNewSingle;
          move.after_id = id;
          move.benefit =
              SingleBenefit(i) - engine_.MaintenancePenaltyDense(id);
          move.memory_delta = engine_.IndexMemoryDense(id);
          out.push_back(std::move(move));
        },
        best, runner_up);
  }

  /// Kernel-mode step (3b), batched. Same move set, values, and engine
  /// accounting as EvaluateAppends, restructured around the simd layer:
  ///
  ///   1. the full-cover test (attrs(k) subset of q_j) streams 4 query
  ///      masks per step over the posting-order mirror
  ///      (simd::FilterMasks); lossy-mask hits are still confirmed on the
  ///      tuple;
  ///   2. one discovery pass interns extensions in the legacy first-touch
  ///      order and lays the affected (slot, query, cost-without) triples
  ///      out as a per-candidate CSR, ascending slots per candidate —
  ///      exactly the legacy per-candidate accumulation order;
  ///   3. when every candidate row is warm (the steady state: round r-1
  ///      filled them), each candidate is costed in one
  ///      CostWithIndexBatch pass over its dense row and reduced by
  ///      simd::ReduceAppendBenefit — bit-identical benefits in default
  ///      mode, identical bulk stats, zero backend interaction;
  ///   4. ANY cold slot demotes the whole unit to the legacy query-outer
  ///      loop, so backend calls (and rt::FaultInjectingBackend's PRNG
  ///      stream) keep the exact historical order. Per-candidate
  ///      fallback would regroup calls candidate-by-candidate — that is
  ///      why the demotion is all-or-nothing per unit.
  void EvaluateAppendsKernel(Move* best, Move* runner_up) {
    const kernel::IndexArena& arena = engine_.arena();
    const kernel::QueryMasks& qmasks = engine_.query_masks();
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const kernel::IndexId kid = selected_ids_[pos];
          const uint32_t kwidth = arena.width(kid);
          if (kwidth >= opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemoryDense(kid);
          const uint64_t kmask = arena.mask(kid);
          AppendScratch& scratch = AppendScratch::Local();
          scratch.Begin(w_.num_attributes());
          const workload::AttributeId lead = arena.leading(kid);
          const auto& posting = w_.queries_with(lead);

          // (1) mask full-cover filter, 4 query masks per step.
          if (scratch.kept.size() < posting.size()) {
            scratch.kept.resize(posting.size());
          }
          const size_t kept_n = kernel::simd::FilterMasks(
              qmasks.posting_masks(lead), posting.size(), kmask,
              scratch.kept.data());
          if (kept_n != posting.size()) {
            kernel_filtered_.fetch_add(posting.size() - kept_n,
                                       std::memory_order_relaxed);
          }

          // (2) discovery: confirm lossy-mask hits, snapshot
          // cost-without, intern extensions (first-touch order — id
          // assignment identical to the legacy interleaved loop), count
          // CSR entries.
          scratch.covered.clear();
          scratch.cov_qid.clear();
          scratch.cov_cw.clear();
          size_t total_pairs = 0;
          for (size_t t = 0; t < kept_n; ++t) {
            const uint32_t s = scratch.kept[t];
            const workload::QueryId j = posting[s];
            const auto& q_attrs = w_.query(j).attributes;
            if (!qmasks.exact() &&
                selected_[pos].CoverablePrefixLength(q_attrs) != kwidth) {
              continue;
            }
            scratch.covered.push_back(s);
            scratch.cov_qid.push_back(j);
            scratch.cov_cw.push_back(CostWithout(j, pos));
            for (workload::AttributeId a : q_attrs) {
              if (arena.Contains(kid, a)) continue;
              if (scratch.epoch[a] != scratch.current) {
                scratch.epoch[a] = scratch.current;
                scratch.benefit[a] = 0.0;
                scratch.count[a] = 0;
                scratch.ext_id[a] = engine_.arena().InternAppend(kid, a);
                scratch.touched.push_back(a);
              }
              ++scratch.count[a];
              ++total_pairs;
            }
          }

          if (!scratch.touched.empty()) {
            // (2b) CSR offsets, then an ascending-slot fill per candidate
            // (count doubles as the fill cursor and ends back at the
            // segment length).
            uint32_t csr_acc = 0;
            for (workload::AttributeId a : scratch.touched) {
              scratch.offset[a] = csr_acc;
              csr_acc += scratch.count[a];
              scratch.count[a] = 0;
            }
            if (scratch.slot_csr.size() < total_pairs) {
              scratch.slot_csr.resize(total_pairs);
              scratch.qid_csr.resize(total_pairs);
              scratch.cw_csr.resize(total_pairs);
              scratch.batch.resize(total_pairs);
            }
            for (size_t e = 0; e < scratch.covered.size(); ++e) {
              const workload::QueryId j = scratch.cov_qid[e];
              for (workload::AttributeId a : w_.query(j).attributes) {
                if (arena.Contains(kid, a)) continue;
                const uint32_t idx = scratch.offset[a] + scratch.count[a]++;
                scratch.slot_csr[idx] = scratch.covered[e];
                scratch.qid_csr[idx] = j;
                scratch.cw_csr[idx] = scratch.cov_cw[e];
              }
            }

            // (3) warmth peek — raw reads, no accounting, so a cold
            // candidate leaves nothing to compensate before the fallback.
            bool all_warm = true;
            for (workload::AttributeId a : scratch.touched) {
              if (!engine_.PeekDenseCostBlock(
                      scratch.ext_id[a],
                      scratch.slot_csr.data() + scratch.offset[a],
                      scratch.count[a],
                      scratch.batch.data() + scratch.offset[a])) {
                all_warm = false;
                break;
              }
            }

            if (all_warm) {
              // (3a) batched what-if + vector reduction per candidate.
              for (workload::AttributeId a : scratch.touched) {
                const uint32_t off = scratch.offset[a];
                const uint32_t cnt = scratch.count[a];
                const bool warm = engine_.CostWithIndexBatch(
                    scratch.ext_id[a], scratch.slot_csr.data() + off, cnt,
                    scratch.batch.data() + off);
                // Slots only ever transition unset -> set within a round.
                IDXSEL_DCHECK(warm);
                scratch.benefit[a] = kernel::simd::ReduceAppendBenefit(
                    scratch.batch.data() + off, scratch.cw_csr.data() + off,
                    scratch.qid_csr.data() + off, best_cost_.data(),
                    freq_.data(), cnt);
              }
            } else {
              // (3b) whole-unit legacy order: query-outer,
              // attribute-inner, per-call dense lookups. The extension
              // keeps k's leading attribute, so it shares k's posting
              // list and the covered slot is also its dense row slot.
              for (size_t e = 0; e < scratch.covered.size(); ++e) {
                const uint32_t s = scratch.covered[e];
                const workload::QueryId j = scratch.cov_qid[e];
                const double cost_without = scratch.cov_cw[e];
                for (workload::AttributeId a : w_.query(j).attributes) {
                  if (arena.Contains(kid, a)) continue;
                  const double new_cost = std::min(
                      cost_without,
                      engine_.CostWithIndexDense(j, scratch.ext_id[a], s));
                  scratch.benefit[a] +=
                      freq_[j] * (best_cost_[j] - new_cost);
                }
              }
            }
          }

          std::sort(scratch.touched.begin(), scratch.touched.end());
          for (workload::AttributeId a : scratch.touched) {
            const kernel::IndexId eid = scratch.ext_id[a];
            Move move;
            move.kind = StepKind::kAppend;
            move.selected_pos = pos;
            move.after_id = eid;
            move.benefit = scratch.benefit[a] -
                           (engine_.MaintenancePenaltyDense(eid) -
                            engine_.MaintenancePenaltyDense(kid));
            move.memory_delta = engine_.IndexMemoryDense(eid) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  /// Fills `after` of a kernel-mode move; only the committed move and the
  /// traced runner-up ever pay the materialization.
  void MaterializeMove(Move* move) {
    if (move->valid && move->after_id != kernel::kInvalidIndexId &&
        move->after.empty()) {
      move->after = engine_.MaterializeIndex(move->after_id);
    }
  }
#else
  void MaterializeMove(Move*) {}
#endif

  /// Remark 1(4): evaluate two-attribute moves. New pairs are seeded from
  /// the eligible singles; append pairs extend fully-covered indexes by two
  /// co-occurring attributes at once.
  void EvaluatePairs(Move* best, Move* runner_up) {
    // New two-attribute indexes {a, b} for co-occurring (a, b).
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId a = eligible_singles_[u];
          std::unordered_map<workload::AttributeId, double> benefit;
          std::unordered_map<workload::AttributeId, Index> pair_index;
          for (workload::QueryId j : w_.queries_with(a)) {
            for (workload::AttributeId b : w_.query(j).attributes) {
              if (b == a) continue;
              auto [it, inserted] = pair_index.try_emplace(b);
              if (inserted) it->second = Index(a).Append(b);
              const double new_cost = std::min(
                  best_cost_[j], engine_.CostWithIndex(j, it->second));
              benefit[b] +=
                  w_.query(j).frequency * (best_cost_[j] - new_cost);
            }
          }
          // Ascending emission: see EvaluateAppends.
          std::vector<workload::AttributeId> order;
          order.reserve(benefit.size());
          // idxsel-lint: allow(unordered-iter) reason=key-collection only; the sort below restores deterministic order before any decision
          for (const auto& [b, gain] : benefit) order.push_back(b);
          std::sort(order.begin(), order.end());
          for (workload::AttributeId b : order) {
            const Index& k_pair = pair_index.at(b);
            Move move;
            move.kind = StepKind::kNewPair;
            move.after = k_pair;
#if defined(IDXSEL_KERNEL)
            // Kernel-mode tie-breaks compare ids, so every candidate of a
            // round must carry one.
            if (use_kernel_) move.after_id = engine_.InternIndex(k_pair);
#endif
            move.benefit = benefit.at(b) - ReconfigDelta(nullptr, k_pair) -
                           engine_.MaintenancePenalty(k_pair);
            move.memory_delta = engine_.IndexMemory(k_pair);
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
    if (poller_.expired()) return;
    // Append pairs k -> k ++ a ++ b.
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() + 2 > opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);
          std::unordered_map<uint64_t, double> benefit;
          std::unordered_map<uint64_t, Index> ext;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            const double cost_without = CostWithout(j, pos);
            for (workload::AttributeId a : q_attrs) {
              if (k.Contains(a)) continue;
              for (workload::AttributeId b : q_attrs) {
                if (b == a || k.Contains(b)) continue;
                const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
                auto [it, inserted] = ext.try_emplace(key);
                if (inserted) it->second = k.Append(a).Append(b);
                const double new_cost = std::min(
                    cost_without, engine_.CostWithIndex(j, it->second));
                benefit[key] +=
                    w_.query(j).frequency * (best_cost_[j] - new_cost);
              }
            }
          }
          // Ascending (a, b) emission: see EvaluateAppends.
          std::vector<uint64_t> order;
          order.reserve(benefit.size());
          // idxsel-lint: allow(unordered-iter) reason=key-collection only; the sort below restores deterministic order before any decision
          for (const auto& [key, gain] : benefit) order.push_back(key);
          std::sort(order.begin(), order.end());
          for (uint64_t key : order) {
            const Index& k_ext = ext.at(key);
            Move move;
            move.kind = StepKind::kAppendPair;
            move.selected_pos = pos;
            move.after = k_ext;
#if defined(IDXSEL_KERNEL)
            if (use_kernel_) move.after_id = engine_.InternIndex(k_ext);
#endif
            move.benefit = benefit.at(key) - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  // -- Remark-2 (multi-index) evaluation --------------------------------------

  costmodel::IndexConfig CurrentConfig() const {
    costmodel::IndexConfig config;
    for (const Index& k : selected_) config.Insert(k);
    return config;
  }

  void EvaluateNewSinglesMulti(Move* best, Move* runner_up) {
    const costmodel::IndexConfig current = CurrentConfig();
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId i = eligible_singles_[u];
          if (SingleSelected(i)) return;
          const Index k(i);
          costmodel::IndexConfig hypothetical = current;
          hypothetical.Insert(k);
          double benefit = 0.0;
          for (workload::QueryId j : w_.queries_with(i)) {
            benefit +=
                w_.query(j).frequency *
                (best_cost_[j] - engine_.CostWithConfig(j, hypothetical));
          }
          Move move;
          move.kind = StepKind::kNewSingle;
          move.after = k;
          move.benefit = benefit - ReconfigDelta(nullptr, k) -
                         engine_.MaintenancePenalty(k);
          move.memory_delta = engine_.IndexMemory(k);
          out.push_back(std::move(move));
        },
        best, runner_up);
  }

  void EvaluateAppendsMulti(Move* best, Move* runner_up) {
    const costmodel::IndexConfig current = CurrentConfig();
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() >= opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);

          // Collect candidate extension attributes from fully-covering
          // queries.
          std::vector<workload::AttributeId> extensions;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            for (workload::AttributeId a : q_attrs) {
              if (!k.Contains(a)) extensions.push_back(a);
            }
          }
          std::sort(extensions.begin(), extensions.end());
          extensions.erase(
              std::unique(extensions.begin(), extensions.end()),
              extensions.end());

          for (workload::AttributeId a : extensions) {
            const Index k_ext = k.Append(a);
            costmodel::IndexConfig hypothetical = current;
            hypothetical.Erase(k);
            hypothetical.Insert(k_ext);
            double benefit = 0.0;
            for (workload::QueryId j : w_.queries_with(k.leading())) {
              const auto& q_attrs = w_.query(j).attributes;
              if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
              if (!std::binary_search(q_attrs.begin(), q_attrs.end(), a)) {
                continue;
              }
              benefit +=
                  w_.query(j).frequency *
                  (best_cost_[j] - engine_.CostWithConfig(j, hypothetical));
            }
            Move move;
            move.kind = StepKind::kAppend;
            move.selected_pos = pos;
            move.after = k_ext;
            move.benefit = benefit - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  void CommitMulti(const Move& move) {
    replaced_ = Index();
    objective_ += engine_.MaintenancePenalty(move.after);
    if (move.kind == StepKind::kAppend || move.kind == StepKind::kAppendPair) {
      objective_ -= engine_.MaintenancePenalty(selected_[move.selected_pos]);
    }
    if (move.kind == StepKind::kNewSingle || move.kind == StepKind::kNewPair) {
      selected_.push_back(move.after);
    } else {
      replaced_ = selected_[move.selected_pos];
      selected_[move.selected_pos] = move.after;
    }
    used_memory_ += move.memory_delta;
    // Refresh the costs of every query the new configuration could touch
    // (same-table queries of the changed index).
    const costmodel::IndexConfig config = CurrentConfig();
    for (workload::QueryId j : w_.queries_with(move.after.leading())) {
      const double cost = engine_.CostWithConfig(j, config);
      objective_ += w_.query(j).frequency * (cost - best_cost_[j]);
      best_cost_[j] = cost;
    }
  }

  // -- Committing ------------------------------------------------------------

  void Commit(const Move& move) {
#if defined(IDXSEL_KERNEL)
    if (use_kernel_) {
      CommitKernel(move);
      return;
    }
#endif
    replaced_ = Index();
    // Maintenance penalties are part of the tracked objective.
    objective_ += engine_.MaintenancePenalty(move.after);
    if (move.kind == StepKind::kAppend || move.kind == StepKind::kAppendPair) {
      objective_ -= engine_.MaintenancePenalty(selected_[move.selected_pos]);
    }
    if (move.kind == StepKind::kNewSingle || move.kind == StepKind::kNewPair) {
      const size_t pos = selected_.size();
      selected_.push_back(move.after);
      for (workload::QueryId j : w_.queries_with(move.after.leading())) {
        InsertCost(j, pos, engine_.CostWithIndex(j, move.after));
      }
    } else {
      replaced_ = selected_[move.selected_pos];
      // Only queries that fully cover the old index *and* constrain the
      // first appended attribute can change cost; everything else keeps
      // f_j(k_new) == f_j(k_old) (cost-model invariant), so consulting the
      // engine for them would waste what-if calls.
      const workload::AttributeId first_appended =
          move.after.attribute(replaced_.width());
      affected_scratch_.clear();
      for (workload::QueryId j : w_.queries_with(replaced_.leading())) {
        const auto& q_attrs = w_.query(j).attributes;
        if (!std::binary_search(q_attrs.begin(), q_attrs.end(),
                                first_appended)) {
          continue;
        }
        if (replaced_.CoverablePrefixLength(q_attrs) != replaced_.width()) {
          continue;
        }
        affected_scratch_.push_back(j);
      }
      selected_[move.selected_pos] = move.after;
      for (workload::QueryId j : affected_scratch_) RecomputeQuery(j);
    }
    used_memory_ += move.memory_delta;
  }

#if defined(IDXSEL_KERNEL)
  /// Kernel-mode Commit: the same mutations and engine accounting as the
  /// legacy branch above, addressed by interned ids; an append finishes by
  /// letting the morphed index inherit the replaced index's dense cost row
  /// (delta costing — only re-estimated slots were written before this).
  void CommitKernel(const Move& move) {
    const kernel::IndexArena& arena = engine_.arena();
    const kernel::QueryMasks& qmasks = engine_.query_masks();
    IDXSEL_DCHECK(move.after_id != kernel::kInvalidIndexId);
    IDXSEL_DCHECK(!move.after.empty());  // MaterializeMove ran
    replaced_ = Index();
    objective_ += engine_.MaintenancePenaltyDense(move.after_id);
    if (move.kind == StepKind::kAppend ||
        move.kind == StepKind::kAppendPair) {
      objective_ -=
          engine_.MaintenancePenaltyDense(selected_ids_[move.selected_pos]);
    }
    if (move.kind == StepKind::kNewSingle ||
        move.kind == StepKind::kNewPair) {
      const size_t pos = selected_.size();
      selected_.push_back(move.after);
      selected_ids_.push_back(move.after_id);
      const auto& posting = w_.queries_with(arena.leading(move.after_id));
      for (uint32_t s = 0; s < posting.size(); ++s) {
        InsertCost(posting[s], pos,
                   engine_.CostWithIndexDense(posting[s], move.after_id, s));
      }
    } else {
      replaced_ = selected_[move.selected_pos];
      const kernel::IndexId replaced_id = selected_ids_[move.selected_pos];
      const uint64_t rmask = arena.mask(replaced_id);
      const uint32_t rwidth = arena.width(replaced_id);
      const workload::AttributeId first_appended =
          arena.attrs(move.after_id)[rwidth];
      const uint64_t abit = kernel::AttrBit(first_appended);
      affected_scratch_.clear();
      // Affected = constrains the first appended attribute AND fully
      // covers the replaced index — one combined mask subset test, 4
      // masks per step over the posting-order mirror, with tuple
      // confirmation only when masks are lossy.
      const workload::AttributeId rlead = arena.leading(replaced_id);
      const auto& posting = w_.queries_with(rlead);
      if (commit_kept_.size() < posting.size()) {
        commit_kept_.resize(posting.size());
      }
      const size_t kept_n =
          kernel::simd::FilterMasks(qmasks.posting_masks(rlead),
                                    posting.size(), rmask | abit,
                                    commit_kept_.data());
      if (kept_n != posting.size()) {
        kernel_filtered_.fetch_add(posting.size() - kept_n,
                                   std::memory_order_relaxed);
      }
      for (size_t t = 0; t < kept_n; ++t) {
        const workload::QueryId j = posting[commit_kept_[t]];
        if (!qmasks.exact()) {
          const auto& q_attrs = w_.query(j).attributes;
          if (!std::binary_search(q_attrs.begin(), q_attrs.end(),
                                  first_appended) ||
              replaced_.CoverablePrefixLength(q_attrs) != rwidth) {
            continue;
          }
        }
        affected_scratch_.push_back(j);
      }
      selected_[move.selected_pos] = move.after;
      selected_ids_[move.selected_pos] = move.after_id;
      for (workload::QueryId j : affected_scratch_) RecomputeQueryKernel(j);
      // Every query not re-estimated above keeps f_j(k ⊕ a) == f_j(k)
      // (cost-model invariant), so the new row inherits the old one.
      engine_.InheritCostRow(replaced_id, move.after_id);
    }
    used_memory_ += move.memory_delta;
  }

  /// Applicable() on ids: a clear leading bit is a definitive reject; an
  /// exact-mask hit is definitive too (queries only constrain attributes
  /// of their own table, so leading membership implies same-table).
  bool ApplicableKernel(workload::QueryId j, kernel::IndexId id) const {
    const kernel::QueryMasks& qmasks = engine_.query_masks();
    const workload::AttributeId lead = engine_.arena().leading(id);
    if (qmasks.DefinitelyAbsent(j, lead)) return false;
    if (qmasks.exact()) return true;
    const auto& q_attrs = w_.query(j).attributes;
    return std::binary_search(q_attrs.begin(), q_attrs.end(), lead);
  }

  /// RecomputeQuery through the dense tables — identical values and
  /// engine accounting (the dense misses fall back to the keyed path).
  void RecomputeQueryKernel(workload::QueryId j) {
    const double old_best = best_cost_[j];
    double b1 = engine_.BaseCost(j);
    double b2 = std::numeric_limits<double>::infinity();
    size_t owner = kNoOwner;
    for (size_t p = 0; p < selected_.size(); ++p) {
      if (!ApplicableKernel(j, selected_ids_[p])) continue;
      const double c = engine_.CostWithIndexDenseSlow(j, selected_ids_[p]);
      if (c < b1) {
        b2 = b1;
        b1 = c;
        owner = p;
      } else if (c < b2) {
        b2 = c;
      }
    }
    best_cost_[j] = b1;
    second_cost_[j] = b2;
    best_owner_[j] = owner;
    objective_ += w_.query(j).frequency * (b1 - old_best);
  }
#endif

  /// Rebuilds every per-query and objective bookkeeping from selected_.
  void RebuildState() {
    objective_ = 0.0;
    used_memory_ = 0.0;
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      best_cost_[j] = engine_.BaseCost(j);
      second_cost_[j] = std::numeric_limits<double>::infinity();
      best_owner_[j] = kNoOwner;
      objective_ += w_.query(j).frequency * best_cost_[j];
    }
    for (size_t p = 0; p < selected_.size(); ++p) {
      for (workload::QueryId j : w_.queries_with(selected_[p].leading())) {
        InsertCost(j, p, engine_.CostWithIndex(j, selected_[p]));
      }
      objective_ += engine_.MaintenancePenalty(selected_[p]);
      used_memory_ += engine_.IndexMemory(selected_[p]);
    }
  }

  /// Post-construction repair (see RecursiveOptions::swap_repair): evict
  /// the least-contributing indexes to afford a high-benefit single that
  /// ran out of budget; commit only exact improvements.
  void SwapRepair(RecursiveResult* result) {
    bool improved = true;
    while (improved && !poller_.Expired()) {
      improved = false;
      // Objective increase if selected index p were removed (its owned
      // queries fall back to their second-best plan), net of its freed
      // maintenance penalty.
      std::vector<double> removal_delta(selected_.size(), 0.0);
      for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
        if (best_owner_[j] == kNoOwner) continue;
        removal_delta[best_owner_[j]] +=
            w_.query(j).frequency * (second_cost_[j] - best_cost_[j]);
      }
      for (size_t p = 0; p < selected_.size(); ++p) {
        removal_delta[p] -= engine_.MaintenancePenalty(selected_[p]);
      }
      std::vector<size_t> eviction_order(selected_.size());
      for (size_t p = 0; p < selected_.size(); ++p) eviction_order[p] = p;
      std::sort(eviction_order.begin(), eviction_order.end(),
                [&](size_t x, size_t y) {
                  return removal_delta[x] < removal_delta[y];
                });

      for (workload::AttributeId i : eligible_singles_) {
        if (poller_.Expired()) return;  // committed swaps already improved
        if (SingleSelected(i)) continue;
        const Index k(i);
        const double gain =
            SingleBenefit(i) - engine_.MaintenancePenalty(k);
        if (gain <= kEps) continue;
        const double need = engine_.IndexMemory(k);
        double available = opts_.budget - used_memory_;
        if (need <= available) continue;  // main loop already rejected it

        // Greedily evict the cheapest-to-lose indexes until k fits.
        std::vector<size_t> evict;
        for (size_t p : eviction_order) {
          if (available >= need) break;
          available += engine_.IndexMemory(selected_[p]);
          evict.push_back(p);
        }
        if (available < need) continue;

        // Exact evaluation of the hypothetical configuration.
        costmodel::IndexConfig hypothetical;
        std::vector<char> evicted(selected_.size(), 0);
        for (size_t p : evict) evicted[p] = 1;
        for (size_t p = 0; p < selected_.size(); ++p) {
          if (!evicted[p]) hypothetical.Insert(selected_[p]);
        }
        hypothetical.Insert(k);
        const double new_objective = engine_.WorkloadCost(hypothetical);
        if (new_objective >= objective_ * (1.0 - 1e-12)) continue;

        ConstructionStep step;
        step.kind = StepKind::kSwap;
        step.after = k;
        step.objective_before = objective_;
        std::vector<Index> evicted_indexes;
        if (journal_) {
          evicted_indexes.reserve(evict.size());
          for (size_t p : evict) evicted_indexes.push_back(selected_[p]);
        }
        selected_.assign(hypothetical.indexes().begin(),
                         hypothetical.indexes().end());
#if defined(IDXSEL_KERNEL)
        if (use_kernel_) {
          // Keep the id view aligned; later prune/recompute rounds (and
          // the next repair iteration's bookkeeping) read it.
          selected_ids_.clear();
          for (const Index& kept : selected_) {
            selected_ids_.push_back(engine_.InternIndex(kept));
          }
        }
#endif
        RebuildState();
        step.objective_after = objective_;
        step.memory_delta = 0.0;  // net change is below the budget anyway
        step.ratio = 0.0;
        result->trace.push_back(step);
        result->frontier.emplace_back(used_memory_, objective_);
        ++swap_steps_;
        if (journal_) {
          EmitSwapRecord(k, evicted_indexes, step.objective_before,
                         step.objective_after);
        }
        improved = true;
        break;  // re-derive eviction order against the new state
      }
    }
  }

  /// Remark 1(2): drops selected indexes that are no query's current best —
  /// F is unchanged and the freed memory allows more steps.
  void PruneUnused(RecursiveResult* result) {
    std::vector<char> used(selected_.size(), 0);
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      if (best_owner_[j] != kNoOwner) used[best_owner_[j]] = 1;
    }
    bool any_dropped = false;
    for (size_t p = selected_.size(); p-- > 0;) {
      if (used[p]) continue;
      any_dropped = true;
      ConstructionStep step;
      step.kind = StepKind::kPrune;
      step.before = selected_[p];
      step.objective_before = objective_;
      // Dropping an unused index also sheds its maintenance penalty.
      objective_ -= engine_.MaintenancePenalty(selected_[p]);
      step.objective_after = objective_;
      step.memory_delta = -engine_.IndexMemory(selected_[p]);
      result->trace.push_back(step);
      ++prune_steps_;
      used_memory_ -= engine_.IndexMemory(selected_[p]);
      if (journal_) {
        EmitPruneRecord(selected_[p], step.objective_before,
                        step.objective_after, step.memory_delta);
      }
      selected_.erase(selected_.begin() + static_cast<long>(p));
#if defined(IDXSEL_KERNEL)
      if (use_kernel_) {
        selected_ids_.erase(selected_ids_.begin() + static_cast<long>(p));
      }
#endif
    }
    if (any_dropped) {
      // Positions shifted: rebuild the per-query owner bookkeeping.
      for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
#if defined(IDXSEL_KERNEL)
        if (use_kernel_) {
          RecomputeQueryKernel(j);
          continue;
        }
#endif
        RecomputeQuery(j);
      }
    }
  }

  WhatIfEngine& engine_;
  const workload::Workload& w_;
  const RecursiveOptions& opts_;
  // Amortized view of opts_.deadline, shared by every poll site — and by
  // every parallel lane — so the latched expiry is visible across
  // evaluation/repair phases and across threads.
  exec::SharedDeadlinePoller poller_;
  size_t threads_;
  // Private pool (threads_ - 1 workers; the evaluating thread participates
  // in every ParallelFor). Per-runner so concurrently racing strategies
  // (advisor portfolio mode) and tests each get exactly the lane count
  // they asked for.
  std::optional<exec::ThreadPool> pool_;

  std::vector<Index> selected_;
  // Per query: cheapest cost over {f_j(0)} + selected indexes, the position
  // of the selected index attaining it (kNoOwner = base cost), and the
  // second-cheapest — giving O(1) CostWithout().
  std::vector<double> best_cost_;
  std::vector<double> second_cost_;
  std::vector<size_t> best_owner_;
  std::vector<workload::AttributeId> eligible_singles_;
#if defined(IDXSEL_KERNEL)
  std::vector<uint32_t> commit_kept_;  ///< CommitKernel filter scratch
#endif
  std::vector<std::vector<double>> single_costs_;  ///< posting-order SoA
  std::vector<char> single_costs_ready_;
  /// b_j per query, flat — the gather table of the simd reductions
  /// (workload::Query::frequency sits inside an AoS Query record).
  std::vector<double> freq_;
  std::vector<workload::QueryId> affected_scratch_;
  // Move buffers of EvaluateUnits, members so steady-state rounds reuse
  // their capacity instead of reallocating per round.
  std::vector<Move> serial_moves_;
  std::vector<std::vector<Move>> unit_buffers_;
#if defined(IDXSEL_KERNEL)
  bool use_kernel_ = false;
  std::vector<kernel::IndexId> selected_ids_;  ///< Parallel to selected_.
  std::vector<kernel::IndexId> single_ids_;    ///< Per attribute: id of {i}.
  /// Mask-filtered query count; atomic because parallel evaluation units
  /// flush their per-unit tallies concurrently. Published to
  /// idxsel.kernel.filtered_queries in the end-of-run batch.
  std::atomic<uint64_t> kernel_filtered_{0};
#endif
  double objective_ = 0.0;
  double used_memory_ = 0.0;
  Index replaced_;

  // Journal state; only touched at serial points and only while a sink was
  // installed when the run began (see Run()).
  bool journal_ = false;
  const char* stop_reason_ = "max-steps";
  std::vector<RejectedMove> round_rejects_;
  uint64_t round_evals_ = 0;
  uint64_t round_no_benefit_ = 0;
  uint64_t round_budget_exceeded_ = 0;
  uint64_t round_sanitized_ = 0;

  // Run telemetry, published to obs::Registry in one batch (see Run()).
  uint64_t committed_rounds_ = 0;
  uint64_t create_steps_ = 0;
  uint64_t append_steps_ = 0;
  uint64_t prune_steps_ = 0;
  uint64_t swap_steps_ = 0;
  uint64_t candidate_evals_ = 0;
  uint64_t ratio_ties_ = 0;
};

}  // namespace

RecursiveResult SelectRecursive(WhatIfEngine& engine,
                                const RecursiveOptions& options) {
  Runner runner(engine, options);
  return runner.Run();
}

}  // namespace idxsel::core
