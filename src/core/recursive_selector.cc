#include "core/recursive_selector.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "exec/shared_deadline.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"

namespace idxsel::core {
namespace {

constexpr double kEps = 1e-9;

#if defined(IDXSEL_OBS)
/// Registry counters of the selector, resolved once per process. The
/// Runner accumulates plain locals during a run and publishes them here in
/// one batch at the end, keeping the construction loop free of atomics.
struct SelectorMetrics {
  obs::Counter* runs;
  obs::Counter* rounds;
  obs::Counter* steps_create;
  obs::Counter* steps_append;
  obs::Counter* steps_prune;
  obs::Counter* steps_swap;
  obs::Counter* candidate_evals;
  obs::Counter* ratio_ties;
  obs::Histogram* run_latency;

  static const SelectorMetrics& Get() {
    static const SelectorMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      SelectorMetrics m;
      m.runs = registry.GetCounter("idxsel.selector.runs");
      m.rounds = registry.GetCounter("idxsel.selector.rounds");
      m.steps_create = registry.GetCounter("idxsel.selector.steps_create");
      m.steps_append = registry.GetCounter("idxsel.selector.steps_append");
      m.steps_prune = registry.GetCounter("idxsel.selector.steps_prune");
      m.steps_swap = registry.GetCounter("idxsel.selector.steps_swap");
      m.candidate_evals =
          registry.GetCounter("idxsel.selector.candidate_evals");
      m.ratio_ties = registry.GetCounter("idxsel.selector.ratio_ties");
      m.run_latency =
          registry.GetHistogram("idxsel.selector.run_latency_ns");
      return m;
    }();
    return metrics;
  }
};
#endif

/// A candidate elementary move under evaluation.
struct Move {
  StepKind kind = StepKind::kNewSingle;
  size_t selected_pos = 0;  ///< For appends: position in the selection.
  Index after;              ///< Resulting index.
  double benefit = 0.0;     ///< (F+R) reduction; > 0 for eligible moves.
  double memory_delta = 0.0;
  double ratio = -std::numeric_limits<double>::infinity();
  bool valid = false;
};

class Runner {
 public:
  Runner(WhatIfEngine& engine, const RecursiveOptions& opts)
      : engine_(engine),
        w_(engine.workload()),
        opts_(opts),
        poller_(opts.deadline),
        threads_(exec::ResolveThreads(opts.threads)) {
    if (threads_ > 1) pool_.emplace(threads_);
  }

  RecursiveResult Run() {
    IDXSEL_OBS_SPAN(run_span, "selector", "h6.run");
    Stopwatch watch;

    // Dead-on-arrival budgets (advisor spent it all upstream) return the
    // empty — trivially feasible — incumbent without touching the engine.
    if (opts_.deadline.expired()) {
      RecursiveResult result;
      result.status = Status::Timeout("recursive selector: deadline expired");
      result.runtime_seconds = watch.ElapsedSeconds();
      return result;
    }

    const uint64_t calls_before = engine_.stats().calls;

    best_cost_.resize(w_.num_queries());
    second_cost_.assign(w_.num_queries(),
                        std::numeric_limits<double>::infinity());
    best_owner_.assign(w_.num_queries(), kNoOwner);
    single_costs_.resize(w_.num_attributes());
    single_costs_ready_.assign(w_.num_attributes(), 0);
    objective_ = 0.0;
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      best_cost_[j] = engine_.BaseCost(j);
      objective_ += w_.query(j).frequency * best_cost_[j];
    }

    RankSingles();

    RecursiveResult result;
    while (result.trace.size() < opts_.max_steps && !poller_.Expired()) {
      IDXSEL_OBS_SPAN(round_span, "selector", "h6.round");
      IDXSEL_OBS_ONLY(round_span.SetArg(
          "round", static_cast<double>(result.trace.size()));)
      Move best;
      Move runner_up;
      if (opts_.multi_index_eval) {
        EvaluateNewSinglesMulti(&best, &runner_up);
        EvaluateAppendsMulti(&best, &runner_up);
      } else {
        EvaluateNewSingles(&best, &runner_up);
        EvaluateAppends(&best, &runner_up);
        if (opts_.pair_steps) EvaluatePairs(&best, &runner_up);
      }
      // A round cut short by the deadline saw only a prefix of the moves;
      // committing its "best" would bias construction toward whatever the
      // enumeration happened to visit first. Keep the pre-round incumbent.
      if (poller_.expired()) break;
      if (!best.valid || best.ratio <= opts_.min_ratio) break;
      ++committed_rounds_;
      if (best.kind == StepKind::kAppend ||
          best.kind == StepKind::kAppendPair) {
        ++append_steps_;
      } else {
        ++create_steps_;
      }

      const double objective_before = objective_ + ReconfigTotal();
      if (opts_.multi_index_eval) {
        CommitMulti(best);
      } else {
        Commit(best);
      }
      const double objective_after = objective_ + ReconfigTotal();

      ConstructionStep step;
      step.kind = best.kind;
      if (best.kind == StepKind::kAppend ||
          best.kind == StepKind::kAppendPair) {
        step.before = replaced_;
      }
      step.after = best.after;
      step.objective_before = objective_before;
      step.objective_after = objective_after;
      step.memory_delta = best.memory_delta;
      step.ratio = best.ratio;
      result.trace.push_back(step);
      if (runner_up.valid) {
        ConstructionStep alt;
        alt.kind = runner_up.kind;
        alt.after = runner_up.after;
        alt.memory_delta = runner_up.memory_delta;
        alt.ratio = runner_up.ratio;
        result.runners_up.push_back(alt);
      }
      if (opts_.prune_unused) PruneUnused(&result);
      result.frontier.emplace_back(used_memory_, objective_);
    }

    // The repair pass relies on the one-index bookkeeping.
    if (opts_.swap_repair && !opts_.multi_index_eval) SwapRepair(&result);

    for (const Index& k : selected_) result.selection.Insert(k);
    result.objective = objective_;
    result.memory = used_memory_;
    result.runtime_seconds = watch.ElapsedSeconds();
    result.whatif_calls = engine_.stats().calls - calls_before;
    result.status =
        poller_.expired()
            ? Status::Timeout("recursive selector: deadline expired")
            : Status::Ok();
#if defined(IDXSEL_OBS)
    const SelectorMetrics& metrics = SelectorMetrics::Get();
    metrics.runs->Add(1);
    metrics.rounds->Add(committed_rounds_);
    metrics.steps_create->Add(create_steps_);
    metrics.steps_append->Add(append_steps_);
    metrics.steps_prune->Add(prune_steps_);
    metrics.steps_swap->Add(swap_steps_);
    metrics.candidate_evals->Add(candidate_evals_);
    metrics.ratio_ties->Add(ratio_ties_);
    if (obs::Enabled()) {
      metrics.run_latency->Record(
          static_cast<uint64_t>(result.runtime_seconds * 1e9));
    }
#endif
    return result;
  }

 private:
  // -- Reconfiguration accounting -------------------------------------------

  bool InExisting(const Index& k) const {
    return opts_.existing != nullptr && opts_.existing->Contains(k);
  }

  /// R-delta of adding `added` (and removing `removed` if non-empty).
  double ReconfigDelta(const Index* removed, const Index& added) const {
    if (opts_.reconfiguration == nullptr) return 0.0;
    double delta = 0.0;
    if (!InExisting(added)) delta += opts_.reconfiguration->CreateCost(added);
    if (removed != nullptr) {
      if (!InExisting(*removed)) {
        delta -= opts_.reconfiguration->CreateCost(*removed);
      }
      // A replaced index that pre-exists must now be dropped; it enters
      // I-bar \ I. (Dropping costs are part of ReconfigurationParams.)
    }
    return delta;
  }

  /// Current total R(I, I-bar) (0 when no model configured).
  double ReconfigTotal() const {
    if (opts_.reconfiguration == nullptr) return 0.0;
    costmodel::IndexConfig current;
    for (const Index& k : selected_) current.Insert(k);
    static const costmodel::IndexConfig kEmpty;
    return opts_.reconfiguration->Cost(
        current, opts_.existing != nullptr ? *opts_.existing : kEmpty);
  }

  // -- Move evaluation -------------------------------------------------------

  static constexpr size_t kNoOwner = ~size_t{0};

  /// min(f_j(0), min over selected indexes except `skip_pos`) in O(1) via
  /// the incrementally maintained best/second-best bookkeeping.
  double CostWithout(workload::QueryId j, size_t skip_pos) const {
    return best_owner_[j] == skip_pos ? second_cost_[j] : best_cost_[j];
  }

  /// Registers cost `c` of selected position `pos` for query j in the
  /// best/second-best bookkeeping.
  void InsertCost(workload::QueryId j, size_t pos, double c) {
    if (c < best_cost_[j]) {
      second_cost_[j] = best_cost_[j];
      objective_ -= w_.query(j).frequency * (best_cost_[j] - c);
      best_cost_[j] = c;
      best_owner_[j] = pos;
    } else if (c < second_cost_[j]) {
      second_cost_[j] = c;
    }
  }

  /// Recomputes best/second-best/owner for query j from scratch (base cost
  /// plus every applicable selected index); O(|selection|) engine cache
  /// hits. Used for queries affected by a replacement.
  void RecomputeQuery(workload::QueryId j) {
    const double old_best = best_cost_[j];
    double b1 = engine_.BaseCost(j);
    double b2 = std::numeric_limits<double>::infinity();
    size_t owner = kNoOwner;
    for (size_t p = 0; p < selected_.size(); ++p) {
      if (!engine_.Applicable(j, selected_[p])) continue;
      const double c = engine_.CostWithIndex(j, selected_[p]);
      if (c < b1) {
        b2 = b1;
        b1 = c;
        owner = p;
      } else if (c < b2) {
        b2 = c;
      }
    }
    best_cost_[j] = b1;
    second_cost_[j] = b2;
    best_owner_[j] = owner;
    objective_ += w_.query(j).frequency * (b1 - old_best);
  }

  /// Cached per-attribute (query, f_j({i})) lists; the engine is consulted
  /// once per pair, every later step reads the flat array.
  const std::vector<std::pair<workload::QueryId, double>>& SingleCosts(
      workload::AttributeId i) {
    if (!single_costs_ready_[i]) {
      single_costs_ready_[i] = 1;
      auto& list = single_costs_[i];
      const Index k(i);
      list.reserve(w_.queries_with(i).size());
      for (workload::QueryId j : w_.queries_with(i)) {
        list.emplace_back(j, engine_.CostWithIndex(j, k));
      }
    }
    return single_costs_[i];
  }

  bool SingleSelected(workload::AttributeId i) const {
    for (const Index& k : selected_) {
      if (k.width() == 1 && k.leading() == i) return true;
    }
    return false;
  }

  void Consider(Move move, Move* best, Move* runner_up) {
    ++candidate_evals_;
    if (!(move.benefit > kEps) || !(move.memory_delta > 0.0)) return;
    if (used_memory_ + move.memory_delta > opts_.budget + kEps) return;
    move.ratio = move.benefit / move.memory_delta;
    move.valid = true;
    // A ratio tie means the deterministic `after < after` ordering — not
    // the step criterion — decides the move; worth counting because ties
    // make the greedy's choice sensitive to index enumeration order.
    if (best->valid && move.ratio == best->ratio) ++ratio_ties_;
    auto better = [](const Move& a, const Move& b) {
      if (a.ratio != b.ratio) return a.ratio > b.ratio;
      return a.after < b.after;  // deterministic tie-break
    };
    if (!best->valid || better(move, *best)) {
      if (best->valid) *runner_up = *best;
      *best = move;
    } else if (!runner_up->valid || better(move, *runner_up)) {
      *runner_up = move;
    }
  }

  /// Evaluates `n` independent units of move generation and reduces their
  /// candidate moves into best/runner-up. `eval(u, out)` must append unit
  /// u's moves to `out` in the order the serial code would have Considered
  /// them, must not touch Runner state other than the (read-only during a
  /// round) bookkeeping and the thread-safe engine, and must not Consider
  /// itself.
  ///
  /// Serial path (threads == 1): evaluate-then-Consider per unit — the
  /// same moves in the same order as the historical interleaved code,
  /// since Consider only folds into best/runner-up, which no evaluation
  /// reads. Parallel path: all units evaluate concurrently into per-unit
  /// buffers, then one serial pass Considers them in unit order. Both
  /// paths therefore Consider the identical move sequence: bit-identical
  /// selections, FP sums, and telemetry regardless of thread count.
  void EvaluateUnits(size_t n,
                     const std::function<void(size_t, std::vector<Move>&)>& eval,
                     Move* best, Move* runner_up) {
    if (n == 0) return;
    if (!pool_.has_value()) {
      std::vector<Move> moves;
      for (size_t u = 0; u < n; ++u) {
        if (poller_.Expired()) return;
        moves.clear();
        eval(u, moves);
        for (const Move& move : moves) Consider(move, best, runner_up);
      }
      return;
    }
    std::vector<std::vector<Move>> buffers(n);
    pool_->ParallelFor(n, [&](size_t u) {
      if (poller_.Expired()) return;
      eval(u, buffers[u]);
    });
    // A deadline hit mid-evaluation leaves some buffers empty; the main
    // loop discards the whole round (same contract as the serial early
    // return), so skip the reduction.
    if (poller_.expired()) return;
    for (size_t u = 0; u < n; ++u) {
      for (const Move& move : buffers[u]) Consider(move, best, runner_up);
    }
  }

  /// Benefit of creating single-attribute index {i} against the current
  /// state: sum_j b_j max(0, best_cost_j - f_j({i})).
  double SingleBenefit(workload::AttributeId i) {
    double benefit = 0.0;
    for (const auto& [j, cost] : SingleCosts(i)) {
      const double gain = best_cost_[j] - cost;
      if (gain > 0.0) benefit += w_.query(j).frequency * gain;
    }
    return benefit;
  }

  /// Step 2's ranking of single-attribute indexes, reused for Remark 1(1).
  /// Deadline expiry truncates the ranking; the main loop then observes the
  /// latched expiry before running a round, so a partial ranking is never
  /// acted on.
  void RankSingles() {
    std::vector<std::pair<double, workload::AttributeId>> ranked;
    if (!pool_.has_value()) {
      ranked.reserve(w_.num_attributes());
      for (workload::AttributeId i = 0; i < w_.num_attributes(); ++i) {
        if (poller_.Expired()) break;
        const double mem = engine_.IndexMemory(Index(i));
        const double ratio = SingleBenefit(i) / std::max(1.0, mem);
        ranked.emplace_back(-ratio, i);
      }
    } else {
      // Each lane ranks its own attributes: SingleCosts(i) and the ready
      // flag live in per-attribute slots (distinct memory locations), so
      // the warm-up writes never collide; per-attribute FP sums run in the
      // same within-attribute order as serial. An expiry mid-ranking
      // leaves holes, but the latched verdict then prevents any round (and
      // the repair pass) from consuming the ranking — same contract as the
      // serial early break.
      ranked.assign(w_.num_attributes(),
                    {0.0, workload::AttributeId{0}});
      pool_->ParallelFor(w_.num_attributes(), [&](size_t u) {
        if (poller_.Expired()) return;
        const workload::AttributeId i =
            static_cast<workload::AttributeId>(u);
        const double mem = engine_.IndexMemory(Index(i));
        const double ratio = SingleBenefit(i) / std::max(1.0, mem);
        ranked[u] = {-ratio, i};
      });
      if (poller_.expired()) ranked.clear();
    }
    std::sort(ranked.begin(), ranked.end());
    const size_t keep = std::min(opts_.n_best_singles, ranked.size());
    eligible_singles_.clear();
    eligible_singles_.reserve(keep);
    for (size_t r = 0; r < keep; ++r) {
      eligible_singles_.push_back(ranked[r].second);
    }
    std::sort(eligible_singles_.begin(), eligible_singles_.end());
  }

  void EvaluateNewSingles(Move* best, Move* runner_up) {
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId i = eligible_singles_[u];
          if (SingleSelected(i)) return;  // step (3a): I and {i} disjoint
          const Index k(i);
          Move move;
          move.kind = StepKind::kNewSingle;
          move.after = k;
          move.benefit = SingleBenefit(i) - ReconfigDelta(nullptr, k) -
                         engine_.MaintenancePenalty(k);
          move.memory_delta = engine_.IndexMemory(k);
          out.push_back(std::move(move));
        },
        best, runner_up);
  }

  void EvaluateAppends(Move* best, Move* runner_up) {
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() >= opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);

          // Accumulate benefit deltas per extension attribute by iterating
          // the queries that fully cover k — the only ones whose cost can
          // change. The maps are unit-local, so their (deterministic)
          // iteration order is identical in serial and parallel runs.
          std::unordered_map<workload::AttributeId, double> benefit;
          std::unordered_map<workload::AttributeId, Index> extended;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            const double cost_without = CostWithout(j, pos);
            for (workload::AttributeId a : q_attrs) {
              if (k.Contains(a)) continue;
              auto [it, inserted] = extended.try_emplace(a);
              if (inserted) it->second = k.Append(a);
              const double new_cost = std::min(
                  cost_without, engine_.CostWithIndex(j, it->second));
              benefit[a] +=
                  w_.query(j).frequency * (best_cost_[j] - new_cost);
            }
          }
          for (const auto& [a, gain] : benefit) {
            const Index& k_ext = extended.at(a);
            Move move;
            move.kind = StepKind::kAppend;
            move.selected_pos = pos;
            move.after = k_ext;
            move.benefit = gain - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  /// Remark 1(4): evaluate two-attribute moves. New pairs are seeded from
  /// the eligible singles; append pairs extend fully-covered indexes by two
  /// co-occurring attributes at once.
  void EvaluatePairs(Move* best, Move* runner_up) {
    // New two-attribute indexes {a, b} for co-occurring (a, b).
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId a = eligible_singles_[u];
          std::unordered_map<workload::AttributeId, double> benefit;
          std::unordered_map<workload::AttributeId, Index> pair_index;
          for (workload::QueryId j : w_.queries_with(a)) {
            for (workload::AttributeId b : w_.query(j).attributes) {
              if (b == a) continue;
              auto [it, inserted] = pair_index.try_emplace(b);
              if (inserted) it->second = Index(a).Append(b);
              const double new_cost = std::min(
                  best_cost_[j], engine_.CostWithIndex(j, it->second));
              benefit[b] +=
                  w_.query(j).frequency * (best_cost_[j] - new_cost);
            }
          }
          for (const auto& [b, gain] : benefit) {
            const Index& k_pair = pair_index.at(b);
            Move move;
            move.kind = StepKind::kNewPair;
            move.after = k_pair;
            move.benefit = gain - ReconfigDelta(nullptr, k_pair) -
                           engine_.MaintenancePenalty(k_pair);
            move.memory_delta = engine_.IndexMemory(k_pair);
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
    if (poller_.expired()) return;
    // Append pairs k -> k ++ a ++ b.
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() + 2 > opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);
          std::unordered_map<uint64_t, double> benefit;
          std::unordered_map<uint64_t, Index> ext;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            const double cost_without = CostWithout(j, pos);
            for (workload::AttributeId a : q_attrs) {
              if (k.Contains(a)) continue;
              for (workload::AttributeId b : q_attrs) {
                if (b == a || k.Contains(b)) continue;
                const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
                auto [it, inserted] = ext.try_emplace(key);
                if (inserted) it->second = k.Append(a).Append(b);
                const double new_cost = std::min(
                    cost_without, engine_.CostWithIndex(j, it->second));
                benefit[key] +=
                    w_.query(j).frequency * (best_cost_[j] - new_cost);
              }
            }
          }
          for (const auto& [key, gain] : benefit) {
            const Index& k_ext = ext.at(key);
            Move move;
            move.kind = StepKind::kAppendPair;
            move.selected_pos = pos;
            move.after = k_ext;
            move.benefit = gain - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  // -- Remark-2 (multi-index) evaluation --------------------------------------

  costmodel::IndexConfig CurrentConfig() const {
    costmodel::IndexConfig config;
    for (const Index& k : selected_) config.Insert(k);
    return config;
  }

  void EvaluateNewSinglesMulti(Move* best, Move* runner_up) {
    const costmodel::IndexConfig current = CurrentConfig();
    EvaluateUnits(
        eligible_singles_.size(),
        [&](size_t u, std::vector<Move>& out) {
          const workload::AttributeId i = eligible_singles_[u];
          if (SingleSelected(i)) return;
          const Index k(i);
          costmodel::IndexConfig hypothetical = current;
          hypothetical.Insert(k);
          double benefit = 0.0;
          for (workload::QueryId j : w_.queries_with(i)) {
            benefit +=
                w_.query(j).frequency *
                (best_cost_[j] - engine_.CostWithConfig(j, hypothetical));
          }
          Move move;
          move.kind = StepKind::kNewSingle;
          move.after = k;
          move.benefit = benefit - ReconfigDelta(nullptr, k) -
                         engine_.MaintenancePenalty(k);
          move.memory_delta = engine_.IndexMemory(k);
          out.push_back(std::move(move));
        },
        best, runner_up);
  }

  void EvaluateAppendsMulti(Move* best, Move* runner_up) {
    const costmodel::IndexConfig current = CurrentConfig();
    EvaluateUnits(
        selected_.size(),
        [&](size_t pos, std::vector<Move>& out) {
          const Index& k = selected_[pos];
          if (k.width() >= opts_.max_index_width) return;
          const double base_mem = engine_.IndexMemory(k);

          // Collect candidate extension attributes from fully-covering
          // queries.
          std::vector<workload::AttributeId> extensions;
          for (workload::QueryId j : w_.queries_with(k.leading())) {
            const auto& q_attrs = w_.query(j).attributes;
            if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
            for (workload::AttributeId a : q_attrs) {
              if (!k.Contains(a)) extensions.push_back(a);
            }
          }
          std::sort(extensions.begin(), extensions.end());
          extensions.erase(
              std::unique(extensions.begin(), extensions.end()),
              extensions.end());

          for (workload::AttributeId a : extensions) {
            const Index k_ext = k.Append(a);
            costmodel::IndexConfig hypothetical = current;
            hypothetical.Erase(k);
            hypothetical.Insert(k_ext);
            double benefit = 0.0;
            for (workload::QueryId j : w_.queries_with(k.leading())) {
              const auto& q_attrs = w_.query(j).attributes;
              if (k.CoverablePrefixLength(q_attrs) != k.width()) continue;
              if (!std::binary_search(q_attrs.begin(), q_attrs.end(), a)) {
                continue;
              }
              benefit +=
                  w_.query(j).frequency *
                  (best_cost_[j] - engine_.CostWithConfig(j, hypothetical));
            }
            Move move;
            move.kind = StepKind::kAppend;
            move.selected_pos = pos;
            move.after = k_ext;
            move.benefit = benefit - ReconfigDelta(&k, k_ext) -
                           (engine_.MaintenancePenalty(k_ext) -
                            engine_.MaintenancePenalty(k));
            move.memory_delta = engine_.IndexMemory(k_ext) - base_mem;
            out.push_back(std::move(move));
          }
        },
        best, runner_up);
  }

  void CommitMulti(const Move& move) {
    replaced_ = Index();
    objective_ += engine_.MaintenancePenalty(move.after);
    if (move.kind == StepKind::kAppend || move.kind == StepKind::kAppendPair) {
      objective_ -= engine_.MaintenancePenalty(selected_[move.selected_pos]);
    }
    if (move.kind == StepKind::kNewSingle || move.kind == StepKind::kNewPair) {
      selected_.push_back(move.after);
    } else {
      replaced_ = selected_[move.selected_pos];
      selected_[move.selected_pos] = move.after;
    }
    used_memory_ += move.memory_delta;
    // Refresh the costs of every query the new configuration could touch
    // (same-table queries of the changed index).
    const costmodel::IndexConfig config = CurrentConfig();
    for (workload::QueryId j : w_.queries_with(move.after.leading())) {
      const double cost = engine_.CostWithConfig(j, config);
      objective_ += w_.query(j).frequency * (cost - best_cost_[j]);
      best_cost_[j] = cost;
    }
  }

  // -- Committing ------------------------------------------------------------

  void Commit(const Move& move) {
    replaced_ = Index();
    // Maintenance penalties are part of the tracked objective.
    objective_ += engine_.MaintenancePenalty(move.after);
    if (move.kind == StepKind::kAppend || move.kind == StepKind::kAppendPair) {
      objective_ -= engine_.MaintenancePenalty(selected_[move.selected_pos]);
    }
    if (move.kind == StepKind::kNewSingle || move.kind == StepKind::kNewPair) {
      const size_t pos = selected_.size();
      selected_.push_back(move.after);
      for (workload::QueryId j : w_.queries_with(move.after.leading())) {
        InsertCost(j, pos, engine_.CostWithIndex(j, move.after));
      }
    } else {
      replaced_ = selected_[move.selected_pos];
      // Only queries that fully cover the old index *and* constrain the
      // first appended attribute can change cost; everything else keeps
      // f_j(k_new) == f_j(k_old) (cost-model invariant), so consulting the
      // engine for them would waste what-if calls.
      const workload::AttributeId first_appended =
          move.after.attribute(replaced_.width());
      affected_scratch_.clear();
      for (workload::QueryId j : w_.queries_with(replaced_.leading())) {
        const auto& q_attrs = w_.query(j).attributes;
        if (!std::binary_search(q_attrs.begin(), q_attrs.end(),
                                first_appended)) {
          continue;
        }
        if (replaced_.CoverablePrefixLength(q_attrs) != replaced_.width()) {
          continue;
        }
        affected_scratch_.push_back(j);
      }
      selected_[move.selected_pos] = move.after;
      for (workload::QueryId j : affected_scratch_) RecomputeQuery(j);
    }
    used_memory_ += move.memory_delta;
  }

  /// Rebuilds every per-query and objective bookkeeping from selected_.
  void RebuildState() {
    objective_ = 0.0;
    used_memory_ = 0.0;
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      best_cost_[j] = engine_.BaseCost(j);
      second_cost_[j] = std::numeric_limits<double>::infinity();
      best_owner_[j] = kNoOwner;
      objective_ += w_.query(j).frequency * best_cost_[j];
    }
    for (size_t p = 0; p < selected_.size(); ++p) {
      for (workload::QueryId j : w_.queries_with(selected_[p].leading())) {
        InsertCost(j, p, engine_.CostWithIndex(j, selected_[p]));
      }
      objective_ += engine_.MaintenancePenalty(selected_[p]);
      used_memory_ += engine_.IndexMemory(selected_[p]);
    }
  }

  /// Post-construction repair (see RecursiveOptions::swap_repair): evict
  /// the least-contributing indexes to afford a high-benefit single that
  /// ran out of budget; commit only exact improvements.
  void SwapRepair(RecursiveResult* result) {
    bool improved = true;
    while (improved && !poller_.Expired()) {
      improved = false;
      // Objective increase if selected index p were removed (its owned
      // queries fall back to their second-best plan), net of its freed
      // maintenance penalty.
      std::vector<double> removal_delta(selected_.size(), 0.0);
      for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
        if (best_owner_[j] == kNoOwner) continue;
        removal_delta[best_owner_[j]] +=
            w_.query(j).frequency * (second_cost_[j] - best_cost_[j]);
      }
      for (size_t p = 0; p < selected_.size(); ++p) {
        removal_delta[p] -= engine_.MaintenancePenalty(selected_[p]);
      }
      std::vector<size_t> eviction_order(selected_.size());
      for (size_t p = 0; p < selected_.size(); ++p) eviction_order[p] = p;
      std::sort(eviction_order.begin(), eviction_order.end(),
                [&](size_t x, size_t y) {
                  return removal_delta[x] < removal_delta[y];
                });

      for (workload::AttributeId i : eligible_singles_) {
        if (poller_.Expired()) return;  // committed swaps already improved
        if (SingleSelected(i)) continue;
        const Index k(i);
        const double gain =
            SingleBenefit(i) - engine_.MaintenancePenalty(k);
        if (gain <= kEps) continue;
        const double need = engine_.IndexMemory(k);
        double available = opts_.budget - used_memory_;
        if (need <= available) continue;  // main loop already rejected it

        // Greedily evict the cheapest-to-lose indexes until k fits.
        std::vector<size_t> evict;
        for (size_t p : eviction_order) {
          if (available >= need) break;
          available += engine_.IndexMemory(selected_[p]);
          evict.push_back(p);
        }
        if (available < need) continue;

        // Exact evaluation of the hypothetical configuration.
        costmodel::IndexConfig hypothetical;
        std::vector<char> evicted(selected_.size(), 0);
        for (size_t p : evict) evicted[p] = 1;
        for (size_t p = 0; p < selected_.size(); ++p) {
          if (!evicted[p]) hypothetical.Insert(selected_[p]);
        }
        hypothetical.Insert(k);
        const double new_objective = engine_.WorkloadCost(hypothetical);
        if (new_objective >= objective_ * (1.0 - 1e-12)) continue;

        ConstructionStep step;
        step.kind = StepKind::kSwap;
        step.after = k;
        step.objective_before = objective_;
        selected_.assign(hypothetical.indexes().begin(),
                         hypothetical.indexes().end());
        RebuildState();
        step.objective_after = objective_;
        step.memory_delta = 0.0;  // net change is below the budget anyway
        step.ratio = 0.0;
        result->trace.push_back(step);
        result->frontier.emplace_back(used_memory_, objective_);
        ++swap_steps_;
        improved = true;
        break;  // re-derive eviction order against the new state
      }
    }
  }

  /// Remark 1(2): drops selected indexes that are no query's current best —
  /// F is unchanged and the freed memory allows more steps.
  void PruneUnused(RecursiveResult* result) {
    std::vector<char> used(selected_.size(), 0);
    for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
      if (best_owner_[j] != kNoOwner) used[best_owner_[j]] = 1;
    }
    bool any_dropped = false;
    for (size_t p = selected_.size(); p-- > 0;) {
      if (used[p]) continue;
      any_dropped = true;
      ConstructionStep step;
      step.kind = StepKind::kPrune;
      step.before = selected_[p];
      step.objective_before = objective_;
      // Dropping an unused index also sheds its maintenance penalty.
      objective_ -= engine_.MaintenancePenalty(selected_[p]);
      step.objective_after = objective_;
      step.memory_delta = -engine_.IndexMemory(selected_[p]);
      result->trace.push_back(step);
      ++prune_steps_;
      used_memory_ -= engine_.IndexMemory(selected_[p]);
      selected_.erase(selected_.begin() + static_cast<long>(p));
    }
    if (any_dropped) {
      // Positions shifted: rebuild the per-query owner bookkeeping.
      for (workload::QueryId j = 0; j < w_.num_queries(); ++j) {
        RecomputeQuery(j);
      }
    }
  }

  WhatIfEngine& engine_;
  const workload::Workload& w_;
  const RecursiveOptions& opts_;
  // Amortized view of opts_.deadline, shared by every poll site — and by
  // every parallel lane — so the latched expiry is visible across
  // evaluation/repair phases and across threads.
  exec::SharedDeadlinePoller poller_;
  size_t threads_;
  // Private pool (threads_ - 1 workers; the evaluating thread participates
  // in every ParallelFor). Per-runner so concurrently racing strategies
  // (advisor portfolio mode) and tests each get exactly the lane count
  // they asked for.
  std::optional<exec::ThreadPool> pool_;

  std::vector<Index> selected_;
  // Per query: cheapest cost over {f_j(0)} + selected indexes, the position
  // of the selected index attaining it (kNoOwner = base cost), and the
  // second-cheapest — giving O(1) CostWithout().
  std::vector<double> best_cost_;
  std::vector<double> second_cost_;
  std::vector<size_t> best_owner_;
  std::vector<workload::AttributeId> eligible_singles_;
  std::vector<std::vector<std::pair<workload::QueryId, double>>> single_costs_;
  std::vector<char> single_costs_ready_;
  std::vector<workload::QueryId> affected_scratch_;
  double objective_ = 0.0;
  double used_memory_ = 0.0;
  Index replaced_;

  // Run telemetry, published to obs::Registry in one batch (see Run()).
  uint64_t committed_rounds_ = 0;
  uint64_t create_steps_ = 0;
  uint64_t append_steps_ = 0;
  uint64_t prune_steps_ = 0;
  uint64_t swap_steps_ = 0;
  uint64_t candidate_evals_ = 0;
  uint64_t ratio_ties_ = 0;
};

}  // namespace

RecursiveResult SelectRecursive(WhatIfEngine& engine,
                                const RecursiveOptions& options) {
  Runner runner(engine, options);
  return runner.Run();
}

}  // namespace idxsel::core
