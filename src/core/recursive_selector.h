// Algorithm 1 — the recursive, constructive multi-attribute index-selection
// strategy (heuristic H6). This is the paper's primary contribution.
//
// Starting from the empty selection, each construction step evaluates two
// kinds of elementary moves:
//   (3a) create a new single-attribute index {i},
//   (3b) append attribute i to the end of an existing index k ("morphing":
//        k is *replaced* by k ++ i).
// The move with the best ratio of additional performance (cost reduction of
// F, plus reconfiguration-cost delta R when configured) per additional
// memory is committed; the loop stops when the budget would be exceeded by
// every improving move, a step limit is reached, or no move improves F.
//
// Because each step is evaluated *in the presence of the already selected
// indexes*, index interaction is accounted for in a targeted way
// (Section II-D), and the sequence of committed steps traces out an
// approximation of the performance/memory efficient frontier — one run
// yields the whole H6 curve of Figures 2-5.
//
// What-if frugality: the selector itself determines which queries a move
// can affect (leading-attribute applicability + coverable-prefix growth)
// and only consults the WhatIfEngine for those, exactly reproducing the
// paper's ~2 * Q * q-bar call volume. All other lookups are cache hits.
//
// Remark-1 extensions implemented:
//   (1) `n_best_singles`  — consider only the n best single-attribute
//        indexes (ranked in the first step) as new-single moves.
//   (2) `prune_unused`    — drop selected indexes that no query uses
//        anymore, reclaiming their memory.
//   (3) missed opportunities — the runner-up move of every step is
//        recorded in the trace for later inspection/reuse.
//   (4) `pair_steps`      — additionally consider appending attribute
//        *pairs* and creating two-attribute indexes in one step.

#ifndef IDXSEL_CORE_RECURSIVE_SELECTOR_H_
#define IDXSEL_CORE_RECURSIVE_SELECTOR_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "costmodel/cost_model.h"
#include "costmodel/index.h"
#include "costmodel/reconfiguration.h"
#include "costmodel/what_if.h"

namespace idxsel::core {

using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::ReconfigurationModel;
using costmodel::WhatIfEngine;

/// Kind of elementary construction move.
enum class StepKind {
  kNewSingle,  ///< Step (3a): add {i}.
  kAppend,     ///< Step (3b): replace k by k ++ i.
  kNewPair,    ///< Remark 1(4): add {i1, i2} directly.
  kAppendPair, ///< Remark 1(4): replace k by k ++ i1 ++ i2.
  kPrune,      ///< Remark 1(2): drop an unused index (no ratio).
  kSwap,       ///< Repair pass: evict low-value indexes for a big one.
};

/// One committed (or runner-up) construction step.
struct ConstructionStep {
  StepKind kind = StepKind::kNewSingle;
  Index before;  ///< Empty for kNew*; the replaced index for kAppend*.
  Index after;   ///< The created / extended index (empty for kPrune).
  double objective_before = 0.0;  ///< F + R before the step.
  double objective_after = 0.0;   ///< F + R after the step.
  double memory_delta = 0.0;      ///< P(new) - P(old), > 0 except kPrune.
  double ratio = 0.0;             ///< Benefit per additional byte.
};

/// Options of Algorithm 1.
struct RecursiveOptions {
  double budget = 0.0;  ///< A; committed selections never exceed it.
  size_t max_steps = std::numeric_limits<size_t>::max();
  /// Remark 1(1): only the n best single-attribute indexes (by first-step
  /// ratio) remain eligible as kNewSingle moves. Default: all.
  size_t n_best_singles = std::numeric_limits<size_t>::max();
  /// Remark 1(2): drop indexes no query uses after each step.
  bool prune_unused = false;
  /// Remark 1(4): also evaluate attribute-pair moves.
  bool pair_steps = false;
  /// Upper limit on index width (paper: unlimited).
  size_t max_index_width = std::numeric_limits<size_t>::max();
  /// Minimal improvement ratio to keep going (0 = any improvement).
  double min_ratio = 0.0;
  /// Remark 2: evaluate moves in the multiple-indexes-per-query setting via
  /// WhatIfEngine::CostWithConfig. Query costs then depend on the whole
  /// current selection, so affected queries are re-estimated against the
  /// hypothetical configuration ("what-if calls ... have to be refreshed").
  bool multi_index_eval = false;
  /// Repair pass addressing the greedy budget knife-edge the paper's
  /// Section V acknowledges: after construction ends, try evicting the
  /// selected indexes contributing least in order to afford a
  /// high-benefit single-attribute index that no longer fits. Swaps are
  /// evaluated exactly and only committed when the total objective
  /// improves — a *targeted* version of the random substitution used by
  /// the DB2 advisor [9]. Off by default (plain Algorithm 1).
  bool swap_repair = false;
  /// Existing selection I-bar* and reconfiguration model; when set, the
  /// step criterion uses F + R instead of F (eq. 3).
  const IndexConfig* existing = nullptr;
  const ReconfigurationModel* reconfiguration = nullptr;
  /// Wall-clock budget / cancellation (default: unbounded). Polled between
  /// units of work — per single-attribute ranking, per candidate move, per
  /// construction round — so the construction loop never commits a
  /// half-evaluated step. On expiry the run stops and returns the
  /// incumbent built so far with Status::Timeout: Algorithm 1 is naturally
  /// anytime because every committed prefix of the trace is a feasible,
  /// budget-respecting selection. See doc/robustness.md.
  rt::Deadline deadline;
  /// Worker threads for evaluating each round's candidate moves (and the
  /// step-2 single-attribute ranking). 1 = serial (default), 0 = auto
  /// (exec::DefaultThreads()), n = exactly n lanes. Parallel runs return
  /// *bit-identical* results to serial ones: moves are evaluated in
  /// parallel into per-unit buffers but reduced serially in the serial
  /// code's order, so FP sums, tie-breaks, and even the candidate_evals /
  /// ratio_ties telemetry match. See doc/parallelism.md.
  size_t threads = 1;
};

/// Result of one run.
struct RecursiveResult {
  IndexConfig selection;
  double objective = 0.0;  ///< Final F(selection).
  double memory = 0.0;     ///< Final P(selection).
  double runtime_seconds = 0.0;  ///< Selector time (incl. cache hits,
                                 ///< excl. backend what-if work; see stats).
  std::vector<ConstructionStep> trace;       ///< Committed steps, in order.
  std::vector<ConstructionStep> runners_up;  ///< Remark 1(3), per step.
  /// (memory, F) after every committed step — the H6 frontier curve.
  std::vector<std::pair<double, double>> frontier;
  uint64_t whatif_calls = 0;  ///< Backend calls issued during this run.
  /// OK on natural termination; Timeout when the deadline cut construction
  /// short (selection/objective/memory then describe the best-so-far
  /// incumbent, which is still budget-feasible).
  Status status;
};

/// Runs Algorithm 1 against `engine` (one-index-per-query evaluation,
/// Example 1(i) — the setting of every evaluation in the paper).
RecursiveResult SelectRecursive(WhatIfEngine& engine,
                                const RecursiveOptions& options);

}  // namespace idxsel::core

#endif  // IDXSEL_CORE_RECURSIVE_SELECTOR_H_
