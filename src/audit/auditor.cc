#include "audit/auditor.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.h"

#if defined(IDXSEL_KERNEL)
#include "kernel/kernel.h"
#endif

namespace idxsel::audit {

namespace {

#if defined(IDXSEL_KERNEL)
/// Bit-identical double comparison: the dense tables and the hashed
/// caches must hold the *same* computation's result, so even a 1-ulp
/// difference is a coherence bug, and NaN payloads must round-trip.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}
#endif

}  // namespace

std::string AuditReport::Summary() const {
  char buf[96];
  if (ok()) {
    std::snprintf(buf, sizeof(buf), "audit ok: %llu ids, %llu slots",
                  static_cast<unsigned long long>(ids_checked),
                  static_cast<unsigned long long>(slots_checked));
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "audit FAILED: %llu violation(s) in %llu ids / %llu slots",
                static_cast<unsigned long long>(violation_count),
                static_cast<unsigned long long>(ids_checked),
                static_cast<unsigned long long>(slots_checked));
  std::string out = buf;
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  if (violation_count > violations.size()) {
    out += "\n  ... (";
    out += std::to_string(violation_count - violations.size());
    out += " more)";
  }
  return out;
}

void AuditReport::Merge(const AuditReport& other) {
  ids_checked += other.ids_checked;
  slots_checked += other.slots_checked;
  violation_count += other.violation_count;
  for (const std::string& v : other.violations) {
    if (violations.size() >= kMaxMessages) break;
    violations.push_back(v);
  }
}

void AuditReport::AddViolation(std::string message) {
  ++violation_count;
  if (violations.size() < kMaxMessages) {
    violations.push_back(std::move(message));
  }
}

InvariantAuditor::InvariantAuditor(const costmodel::WhatIfEngine* engine)
    : engine_(engine) {
  IDXSEL_CHECK(engine != nullptr);
}

AuditReport InvariantAuditor::AuditCostTables() const {
  AuditReport report;
#if defined(IDXSEL_KERNEL)
  if (!engine_->DenseActive()) return report;
  const kernel::IndexArena& arena = engine_->arena();
  const workload::Workload& w = engine_->workload();
  const size_t n = arena.size();
  for (kernel::IndexId id = 0; id < n; ++id) {
    ++report.ids_checked;
    const costmodel::Index k = engine_->MaterializeIndex(id);
    const auto& posting = w.queries_with(arena.leading(id));

    // Dense cost row vs hashed cost cache under the canonical key.
    for (uint32_t slot = 0; slot < posting.size(); ++slot) {
      const double dense = engine_->PeekDenseCost(id, slot);
      if (std::isnan(dense)) continue;  // unset slot: nothing to validate
      ++report.slots_checked;
      const workload::QueryId j = posting[slot];
      double hashed = 0.0;
      if (!engine_->PeekCachedCost(j, k, &hashed)) {
        report.AddViolation(
            "dense cost slot (id=" + std::to_string(id) + ", query=" +
            std::to_string(j) +
            ") is set but the hashed cache has no entry for the canonical "
            "key — InheritCostRow copied a slot whose source was never "
            "filed, or canonicalization diverged");
        continue;
      }
      if (!SameBits(dense, hashed)) {
        report.AddViolation(
            "dense cost slot (id=" + std::to_string(id) + ", query=" +
            std::to_string(j) + ") holds " + std::to_string(dense) +
            " but the hashed cache holds " + std::to_string(hashed) +
            " — the two layouts answered the same what-if question "
            "differently");
      }
    }

    // Dense memory table vs hashed memory cache (keyed by the full index).
    const double dense_mem = engine_->PeekDenseMemory(id);
    if (!std::isnan(dense_mem)) {
      ++report.slots_checked;
      double hashed_mem = 0.0;
      if (!engine_->PeekCachedMemory(k, &hashed_mem)) {
        report.AddViolation("dense memory entry for id=" +
                            std::to_string(id) +
                            " is set but the hashed memory cache has no "
                            "entry for the index");
      } else if (!SameBits(dense_mem, hashed_mem)) {
        report.AddViolation(
            "dense memory entry for id=" + std::to_string(id) + " holds " +
            std::to_string(dense_mem) + " but the hashed cache holds " +
            std::to_string(hashed_mem));
      }
    }
  }
#endif
  return report;
}

AuditReport InvariantAuditor::AuditArenaMasks() const {
  AuditReport report;
#if defined(IDXSEL_KERNEL)
  if (!engine_->DenseActive()) return report;
  const kernel::IndexArena& arena = engine_->arena();
  const size_t n = arena.size();
  for (kernel::IndexId id = 0; id < n; ++id) {
    ++report.ids_checked;
    const uint32_t width = arena.width(id);
    const workload::AttributeId* attrs = arena.attrs(id);
    if (width == 0) {
      report.AddViolation("arena id=" + std::to_string(id) +
                          " has width 0 (empty tuples are not indexes)");
      continue;
    }
    const uint64_t expected = kernel::MaskOf(attrs, width);
    if (arena.mask(id) != expected) {
      report.AddViolation(
          "arena id=" + std::to_string(id) +
          " precomputed mask disagrees with MaskOf(attrs) — mask-based "
          "applicability filters are unsound for this tuple");
    }
    if (arena.leading(id) != attrs[0]) {
      report.AddViolation("arena id=" + std::to_string(id) +
                          " leading() is not attrs[0]");
    }
    // Index tuples never repeat an attribute; widths are tiny, so the
    // quadratic scan is cheaper than sorting a scratch copy.
    for (uint32_t u = 0; u < width; ++u) {
      for (uint32_t v = u + 1; v < width; ++v) {
        if (attrs[u] == attrs[v]) {
          report.AddViolation("arena id=" + std::to_string(id) +
                              " repeats attribute " +
                              std::to_string(attrs[u]));
        }
      }
    }
  }
#endif
  return report;
}

AuditReport InvariantAuditor::AuditPostingLists() const {
  AuditReport report;
  const workload::Workload& w = engine_->workload();
  for (workload::AttributeId a = 0; a < w.num_attributes(); ++a) {
    ++report.ids_checked;
    const auto& posting = w.queries_with(a);
    for (size_t i = 0; i < posting.size(); ++i) {
      ++report.slots_checked;
      if (i > 0 && posting[i - 1] >= posting[i]) {
        report.AddViolation(
            "posting list of attribute " + std::to_string(a) +
            " is not strictly ascending at position " + std::to_string(i) +
            " — posting-list cursors and dense row slots assume sorted, "
            "duplicate-free postings");
      }
      const auto& q_attrs = w.query(posting[i]).attributes;
      if (!std::binary_search(q_attrs.begin(), q_attrs.end(), a)) {
        report.AddViolation("posting list of attribute " +
                            std::to_string(a) + " lists query " +
                            std::to_string(posting[i]) +
                            " which does not reference the attribute");
      }
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditAll() const {
  AuditReport report = AuditCostTables();
  report.Merge(AuditArenaMasks());
  report.Merge(AuditPostingLists());
  return report;
}

void InvariantAuditor::CheckClean(const AuditReport& report) {
  if (report.ok()) return;
  std::fprintf(stderr, "%s\n", report.Summary().c_str());
  IDXSEL_CHECK(report.ok() && "invariant audit failed");
}

}  // namespace idxsel::audit
