#include "audit/auditor.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"

#if defined(IDXSEL_KERNEL)
#include "kernel/kernel.h"
#include "kernel/simd.h"
#endif

namespace idxsel::audit {

namespace {

#if defined(IDXSEL_KERNEL)
/// Bit-identical double comparison: the dense tables and the hashed
/// caches must hold the *same* computation's result, so even a 1-ulp
/// difference is a coherence bug, and NaN payloads must round-trip.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

std::string BitsHex(double x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(x)));
  return buf;
}

/// splitmix64 — the synthetic SIMD blocks must be reproducible across
/// runs and hosts, so the stream is seeded from the block size alone.
uint64_t Mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Serial reference loops for the SIMD cross-validation, written exactly
// as the contracts in kernel/simd.h specify and deliberately NOT sharing
// code with simd_impl.h — a shared bug could not hide from a shared
// template, so the auditor re-derives each reduction independently.
// Min steps use MINPD tie semantics ((a < b) ? a : b) like both
// templates, which is the only tie order the contract promises.

double RefBenefit(const double* costs, const uint32_t* qids,
                  const double* best, const double* freq, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double gain = best[qids[t]] - costs[t];
    acc += gain > 0.0 ? freq[qids[t]] * gain : 0.0;
  }
  return acc;
}

double RefAppendBenefit(const double* costs, const double* cw,
                        const uint32_t* qids, const double* best,
                        const double* freq, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double new_cost = cw[t] < costs[t] ? cw[t] : costs[t];
    acc += freq[qids[t]] * (best[qids[t]] - new_cost);
  }
  return acc;
}

double RefSumSetSlots(const double* row, size_t n) {
  double acc = 0.0;
  for (size_t t = 0; t < n; ++t) {
    acc += std::isnan(row[t]) ? 0.0 : row[t];
  }
  return acc;
}

double RefMinSetSlots(const double* row, size_t n) {
  double acc = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n; ++t) {
    const double v =
        std::isnan(row[t]) ? std::numeric_limits<double>::infinity() : row[t];
    acc = acc < v ? acc : v;
  }
  return acc;
}

size_t RefFilterMasks(const uint64_t* masks, size_t n, uint64_t required,
                      uint32_t* out) {
  size_t count = 0;
  for (size_t t = 0; t < n; ++t) {
    if ((required & ~masks[t]) == 0) {
      out[count++] = static_cast<uint32_t>(t);
    }
  }
  return count;
}

/// Runs `fn` once per dispatch path — scalar pinned, then unpinned (AVX2
/// where the binary and CPU carry it, scalar again otherwise) — and
/// reports a violation unless both agree bit-for-bit with `ref`.
template <typename Fn>
void CheckBothPaths(AuditReport& report, const char* op, size_t n, double ref,
                    Fn&& fn) {
  double scalar = 0.0;
  {
    const kernel::simd::ScopedForceScalar pin(true);
    scalar = fn();
  }
  double dispatched = 0.0;
  {
    const kernel::simd::ScopedForceScalar unpin(false);
    dispatched = fn();
  }
  ++report.slots_checked;
  if (!SameBits(ref, scalar)) {
    report.AddViolation(std::string(op) + " (n=" + std::to_string(n) +
                        "): scalar template returned " + BitsHex(scalar) +
                        " but the serial reference is " + BitsHex(ref) +
                        " — the scalar fallback broke the exact "
                        "FP-reduction-order contract");
  }
  if (!SameBits(ref, dispatched)) {
    report.AddViolation(
        std::string(op) + " (n=" + std::to_string(n) + "): " +
        kernel::simd::LevelName(kernel::simd::SupportedLevel()) +
        " dispatch returned " + BitsHex(dispatched) +
        " but the serial reference is " + BitsHex(ref) +
        " — SIMD-vs-scalar cross-validation is no longer bit-identical");
  }
}
#endif

}  // namespace

std::string AuditReport::Summary() const {
  char buf[96];
  if (ok()) {
    std::snprintf(buf, sizeof(buf), "audit ok: %llu ids, %llu slots",
                  static_cast<unsigned long long>(ids_checked),
                  static_cast<unsigned long long>(slots_checked));
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "audit FAILED: %llu violation(s) in %llu ids / %llu slots",
                static_cast<unsigned long long>(violation_count),
                static_cast<unsigned long long>(ids_checked),
                static_cast<unsigned long long>(slots_checked));
  std::string out = buf;
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  if (violation_count > violations.size()) {
    out += "\n  ... (";
    out += std::to_string(violation_count - violations.size());
    out += " more)";
  }
  return out;
}

void AuditReport::Merge(const AuditReport& other) {
  ids_checked += other.ids_checked;
  slots_checked += other.slots_checked;
  violation_count += other.violation_count;
  for (const std::string& v : other.violations) {
    if (violations.size() >= kMaxMessages) break;
    violations.push_back(v);
  }
}

void AuditReport::AddViolation(std::string message) {
  ++violation_count;
  if (violations.size() < kMaxMessages) {
    violations.push_back(std::move(message));
  }
}

InvariantAuditor::InvariantAuditor(const costmodel::WhatIfEngine* engine)
    : engine_(engine) {
  IDXSEL_CHECK(engine != nullptr);
}

AuditReport InvariantAuditor::AuditCostTables() const {
  AuditReport report;
#if defined(IDXSEL_KERNEL)
  if (!engine_->DenseActive()) return report;
  const kernel::IndexArena& arena = engine_->arena();
  const workload::Workload& w = engine_->workload();
  const size_t n = arena.size();
  for (kernel::IndexId id = 0; id < n; ++id) {
    ++report.ids_checked;
    const costmodel::Index k = engine_->MaterializeIndex(id);
    const auto& posting = w.queries_with(arena.leading(id));

    // Dense cost row vs hashed cost cache under the canonical key.
    for (uint32_t slot = 0; slot < posting.size(); ++slot) {
      const double dense = engine_->PeekDenseCost(id, slot);
      if (std::isnan(dense)) continue;  // unset slot: nothing to validate
      ++report.slots_checked;
      const workload::QueryId j = posting[slot];
      double hashed = 0.0;
      if (!engine_->PeekCachedCost(j, k, &hashed)) {
        report.AddViolation(
            "dense cost slot (id=" + std::to_string(id) + ", query=" +
            std::to_string(j) +
            ") is set but the hashed cache has no entry for the canonical "
            "key — InheritCostRow copied a slot whose source was never "
            "filed, or canonicalization diverged");
        continue;
      }
      if (!SameBits(dense, hashed)) {
        report.AddViolation(
            "dense cost slot (id=" + std::to_string(id) + ", query=" +
            std::to_string(j) + ") holds " + std::to_string(dense) +
            " but the hashed cache holds " + std::to_string(hashed) +
            " — the two layouts answered the same what-if question "
            "differently");
      }
    }

    // Dense memory table vs hashed memory cache (keyed by the full index).
    const double dense_mem = engine_->PeekDenseMemory(id);
    if (!std::isnan(dense_mem)) {
      ++report.slots_checked;
      double hashed_mem = 0.0;
      if (!engine_->PeekCachedMemory(k, &hashed_mem)) {
        report.AddViolation("dense memory entry for id=" +
                            std::to_string(id) +
                            " is set but the hashed memory cache has no "
                            "entry for the index");
      } else if (!SameBits(dense_mem, hashed_mem)) {
        report.AddViolation(
            "dense memory entry for id=" + std::to_string(id) + " holds " +
            std::to_string(dense_mem) + " but the hashed cache holds " +
            std::to_string(hashed_mem));
      }
    }
  }
#endif
  return report;
}

AuditReport InvariantAuditor::AuditArenaMasks() const {
  AuditReport report;
#if defined(IDXSEL_KERNEL)
  if (!engine_->DenseActive()) return report;
  const kernel::IndexArena& arena = engine_->arena();
  const size_t n = arena.size();
  for (kernel::IndexId id = 0; id < n; ++id) {
    ++report.ids_checked;
    const uint32_t width = arena.width(id);
    const workload::AttributeId* attrs = arena.attrs(id);
    if (width == 0) {
      report.AddViolation("arena id=" + std::to_string(id) +
                          " has width 0 (empty tuples are not indexes)");
      continue;
    }
    const uint64_t expected = kernel::MaskOf(attrs, width);
    if (arena.mask(id) != expected) {
      report.AddViolation(
          "arena id=" + std::to_string(id) +
          " precomputed mask disagrees with MaskOf(attrs) — mask-based "
          "applicability filters are unsound for this tuple");
    }
    if (arena.leading(id) != attrs[0]) {
      report.AddViolation("arena id=" + std::to_string(id) +
                          " leading() is not attrs[0]");
    }
    // Index tuples never repeat an attribute; widths are tiny, so the
    // quadratic scan is cheaper than sorting a scratch copy.
    for (uint32_t u = 0; u < width; ++u) {
      for (uint32_t v = u + 1; v < width; ++v) {
        if (attrs[u] == attrs[v]) {
          report.AddViolation("arena id=" + std::to_string(id) +
                              " repeats attribute " +
                              std::to_string(attrs[u]));
        }
      }
    }
  }
#endif
  return report;
}

AuditReport InvariantAuditor::AuditPostingLists() const {
  AuditReport report;
  const workload::Workload& w = engine_->workload();
  for (workload::AttributeId a = 0; a < w.num_attributes(); ++a) {
    ++report.ids_checked;
    const auto& posting = w.queries_with(a);
    for (size_t i = 0; i < posting.size(); ++i) {
      ++report.slots_checked;
      if (i > 0 && posting[i - 1] >= posting[i]) {
        report.AddViolation(
            "posting list of attribute " + std::to_string(a) +
            " is not strictly ascending at position " + std::to_string(i) +
            " — posting-list cursors and dense row slots assume sorted, "
            "duplicate-free postings");
      }
      const auto& q_attrs = w.query(posting[i]).attributes;
      if (!std::binary_search(q_attrs.begin(), q_attrs.end(), a)) {
        report.AddViolation("posting list of attribute " +
                            std::to_string(a) + " lists query " +
                            std::to_string(posting[i]) +
                            " which does not reference the attribute");
      }
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditSimd() const {
  AuditReport report;
#if defined(IDXSEL_KERNEL)
  namespace simd = kernel::simd;
  // The contract under audit is the default exact mode; relaxed
  // reassociation is out of scope and pinned off for the pass. The pass
  // also deliberately runs both template instantiations regardless of a
  // process-level IDXSEL_FORCE_SCALAR pin — on a host without AVX2 both
  // runs hit the scalar template and the cross-check degenerates to
  // scalar-vs-reference, which is still worth proving.
  const simd::ScopedRelaxed exact(false);

  // -- Synthetic blocks: deterministic values, random-looking NaN
  // patterns and mixed-sign gains, sizes straddling the 4-lane block
  // boundary and the scalar tail.
  constexpr size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 31, 64, 67};
  constexpr size_t kNumQueries = 97;
  std::vector<double> costs, cw, row, gathered;
  std::vector<double> best(kNumQueries), freq(kNumQueries);
  std::vector<uint32_t> qids, slots, kept_ref, kept_got;
  std::vector<uint64_t> masks;
  for (const size_t n : kSizes) {
    ++report.ids_checked;
    uint64_t rng = 0x51d5e1ull + n;
    costs.resize(n);
    cw.resize(n);
    row.resize(n);
    qids.resize(n);
    masks.resize(n);
    for (size_t j = 0; j < kNumQueries; ++j) {
      best[j] = static_cast<double>(Mix64(rng) % 4096) / 16.0;
      freq[j] = 1.0 + static_cast<double>(Mix64(rng) % 64);
    }
    for (size_t t = 0; t < n; ++t) {
      costs[t] = static_cast<double>(Mix64(rng) % 4096) / 16.0;
      cw[t] = static_cast<double>(Mix64(rng) % 4096) / 16.0;
      qids[t] = static_cast<uint32_t>(Mix64(rng) % kNumQueries);
      const uint64_t r = Mix64(rng);
      row[t] = (r & 7u) == 0 ? std::numeric_limits<double>::quiet_NaN()
                             : static_cast<double>(r % 4096) / 16.0;
      masks[t] = Mix64(rng);
    }
    // Few required bits, so some masks cover and some don't.
    const uint64_t required = Mix64(rng) & Mix64(rng) & Mix64(rng);

    CheckBothPaths(report, "ReduceBenefitIndexed", n,
                   RefBenefit(costs.data(), qids.data(), best.data(),
                              freq.data(), n),
                   [&] {
                     return simd::ReduceBenefitIndexed(
                         costs.data(), qids.data(), best.data(), freq.data(),
                         n);
                   });
    CheckBothPaths(report, "ReduceAppendBenefit", n,
                   RefAppendBenefit(costs.data(), cw.data(), qids.data(),
                                    best.data(), freq.data(), n),
                   [&] {
                     return simd::ReduceAppendBenefit(costs.data(), cw.data(),
                                                      qids.data(), best.data(),
                                                      freq.data(), n);
                   });
    CheckBothPaths(report, "SumSetSlots", n, RefSumSetSlots(row.data(), n),
                   [&] { return simd::SumSetSlots(row.data(), n); });
    CheckBothPaths(report, "MinSetSlots", n, RefMinSetSlots(row.data(), n),
                   [&] { return simd::MinSetSlots(row.data(), n); });

    // FilterMasks: same kept count, same kept slots, same (ascending)
    // order from both dispatch paths.
    kept_ref.resize(n);
    kept_got.resize(n);
    const size_t ref_count =
        RefFilterMasks(masks.data(), n, required, kept_ref.data());
    for (int pin = 1; pin >= 0; --pin) {
      const simd::ScopedForceScalar scoped(pin == 1);
      const size_t got =
          simd::FilterMasks(masks.data(), n, required, kept_got.data());
      ++report.slots_checked;
      if (got != ref_count ||
          !std::equal(kept_ref.begin(),
                      kept_ref.begin() + static_cast<ptrdiff_t>(ref_count),
                      kept_got.begin())) {
        report.AddViolation(
            "FilterMasks (n=" + std::to_string(n) + ", " +
            simd::LevelName(simd::ActiveLevel()) + ") kept " +
            std::to_string(got) + " slot(s) but the serial filter keeps " +
            std::to_string(ref_count) +
            " — mask compaction diverged from the reference loop");
      }
    }

    // GatherRowWarm: the warm/cold verdict must match a serial NaN scan,
    // a warm gather must round-trip every value bit-for-bit, and a cold
    // gather must report false (out contents are unspecified).
    slots.resize(n);
    for (size_t t = 0; t < n; ++t) {
      slots[t] = static_cast<uint32_t>(Mix64(rng) % (n > 0 ? n : 1));
    }
    bool ref_warm = true;
    for (size_t t = 0; t < n; ++t) {
      ref_warm = ref_warm && !std::isnan(row[slots[t]]);
    }
    gathered.resize(n);
    for (int pin = 1; pin >= 0; --pin) {
      const simd::ScopedForceScalar scoped(pin == 1);
      const bool warm =
          simd::GatherRowWarm(row.data(), slots.data(), n, gathered.data());
      ++report.slots_checked;
      if (warm != ref_warm) {
        report.AddViolation("GatherRowWarm (n=" + std::to_string(n) + ", " +
                            simd::LevelName(simd::ActiveLevel()) +
                            ") returned " + (warm ? "warm" : "cold") +
                            " but a serial NaN scan says the block is " +
                            (ref_warm ? "warm" : "cold"));
        continue;
      }
      if (warm) {
        for (size_t t = 0; t < n; ++t) {
          if (!SameBits(gathered[t], row[slots[t]])) {
            report.AddViolation(
                "GatherRowWarm (n=" + std::to_string(n) + ", " +
                simd::LevelName(simd::ActiveLevel()) + ") slot " +
                std::to_string(t) + " gathered " + BitsHex(gathered[t]) +
                " instead of " + BitsHex(row[slots[t]]));
            break;
          }
        }
      }
    }
  }

  // -- Live dense state: the same cross-checks over every interned row
  // and the workload's real posting-order masks, so the ops are also
  // proven on the exact shapes (lengths, NaN layouts, mask mixes) this
  // selection actually produced.
  if (engine_->DenseActive()) {
    const kernel::IndexArena& arena = engine_->arena();
    const workload::Workload& w = engine_->workload();
    const kernel::QueryMasks qmasks(w);
    const size_t num_ids = arena.size();
    for (kernel::IndexId id = 0; id < num_ids; ++id) {
      ++report.ids_checked;
      const workload::AttributeId lead = arena.leading(id);
      const auto& posting = w.queries_with(lead);
      const size_t n = posting.size();
      row.resize(n);
      slots.clear();
      for (uint32_t slot = 0; slot < n; ++slot) {
        row[slot] = engine_->PeekDenseCost(id, slot);
        if (!std::isnan(row[slot])) slots.push_back(slot);
      }
      CheckBothPaths(report, "SumSetSlots[dense row]", n,
                     RefSumSetSlots(row.data(), n),
                     [&] { return simd::SumSetSlots(row.data(), n); });
      CheckBothPaths(report, "MinSetSlots[dense row]", n,
                     RefMinSetSlots(row.data(), n),
                     [&] { return simd::MinSetSlots(row.data(), n); });

      kept_ref.resize(n);
      kept_got.resize(n);
      const size_t ref_count = RefFilterMasks(qmasks.posting_masks(lead), n,
                                              arena.mask(id), kept_ref.data());
      for (int pin = 1; pin >= 0; --pin) {
        const simd::ScopedForceScalar scoped(pin == 1);
        const size_t got = simd::FilterMasks(qmasks.posting_masks(lead), n,
                                             arena.mask(id), kept_got.data());
        ++report.slots_checked;
        if (got != ref_count ||
            !std::equal(kept_ref.begin(),
                        kept_ref.begin() + static_cast<ptrdiff_t>(ref_count),
                        kept_got.begin())) {
          report.AddViolation(
              "FilterMasks over live posting masks (id=" + std::to_string(id) +
              ", " + simd::LevelName(simd::ActiveLevel()) +
              ") diverged from the serial filter");
        }
      }

      // A gather restricted to the set slots must come back warm with
      // every value bit-identical to the one-at-a-time peeks.
      gathered.resize(slots.size());
      for (int pin = 1; pin >= 0; --pin) {
        const simd::ScopedForceScalar scoped(pin == 1);
        const bool warm = simd::GatherRowWarm(row.data(), slots.data(),
                                              slots.size(), gathered.data());
        ++report.slots_checked;
        if (!warm) {
          report.AddViolation(
              "GatherRowWarm over the set slots of dense row id=" +
              std::to_string(id) + " (" +
              simd::LevelName(simd::ActiveLevel()) +
              ") reported cold — the NaN screen disagrees with the "
              "serial isnan scan that chose the slots");
          continue;
        }
        for (size_t t = 0; t < slots.size(); ++t) {
          if (!SameBits(gathered[t], row[slots[t]])) {
            report.AddViolation(
                "GatherRowWarm over dense row id=" + std::to_string(id) +
                " (" + simd::LevelName(simd::ActiveLevel()) + ") slot " +
                std::to_string(slots[t]) + " gathered " +
                BitsHex(gathered[t]) + " instead of " +
                BitsHex(row[slots[t]]));
            break;
          }
        }
      }
    }
  }
#endif
  return report;
}

AuditReport InvariantAuditor::AuditAll() const {
  AuditReport report = AuditCostTables();
  report.Merge(AuditArenaMasks());
  report.Merge(AuditPostingLists());
  report.Merge(AuditSimd());
  return report;
}

void InvariantAuditor::CheckClean(const AuditReport& report) {
  if (report.ok()) return;
  std::fprintf(stderr, "%s\n", report.Summary().c_str());
  IDXSEL_CHECK(report.ok() && "invariant audit failed");
}

}  // namespace idxsel::audit
