// idxsel::audit — debug invariant auditor for the cost-evaluation caches.
//
// The dense kernel fast path (src/kernel) and the sharded hash caches
// (src/costmodel) answer the same what-if questions through two different
// layouts, and the pipeline's correctness argument is that they always
// agree (doc/cost_model.md: a filled dense slot implies the hashed cache
// holds the canonical key with the identical value). That coherence is
// invisible to black-box tests — a stale dense slot reads as a plausible
// cost — so this module re-derives it from first principles:
//
//   AuditCostTables    every set slot of every dense cost row must have a
//                      bit-identical twin in the hashed cost cache under
//                      the canonical (query, coverable-prefix-set) key;
//                      same for the dense memory table vs the memory cache
//   AuditArenaMasks    every interned tuple's precomputed mask equals
//                      MaskOf(attrs), width >= 1, and no attribute repeats
//   AuditPostingLists  Workload::queries_with(a) is strictly ascending and
//                      every listed query references a — the sortedness
//                      the posting-list cursors and dense slots rely on
//   AuditSimd          SIMD-vs-scalar cross-validation: every kernel/simd.h
//                      op must return bit-identical results from the AVX2
//                      path, the scalar template, and an independently
//                      written serial reference — over deterministic
//                      synthetic blocks and over the live dense rows /
//                      query masks (default exact mode; relaxed mode is
//                      pinned off for the duration of the pass)
//
// Cost: one pass over the dense tables and postings, read-only peeks only
// (never computes, never touches stats), so an audit pass cannot perturb
// the call counts or cache contents it validates.
//
// Gating: call sites compile in when the build defines IDXSEL_AUDIT
// (CMake option IDXSEL_ENABLE_AUDIT, default ON) and fire at runtime when
// Enabled() — on under !NDEBUG, opt-in elsewhere via the environment
// variable IDXSEL_AUDIT=1 (how the sanitizer CI legs, which build
// RelWithDebInfo/NDEBUG, keep the auditor live). See doc/static_analysis.md.

#ifndef IDXSEL_AUDIT_AUDITOR_H_
#define IDXSEL_AUDIT_AUDITOR_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "costmodel/what_if.h"

namespace idxsel::audit {

namespace internal {

inline std::atomic<bool>& AuditFlag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("IDXSEL_AUDIT");
#ifdef NDEBUG
    return v != nullptr && v[0] == '1';  // opt-in for optimized builds
#else
    return v == nullptr || v[0] != '0';  // debug default ON; =0 disables
#endif
  }()};
  return flag;
}

}  // namespace internal

/// True iff auditor call sites should run their passes.
inline bool Enabled() {
  return internal::AuditFlag().load(std::memory_order_relaxed);
}

inline void SetEnabled(bool on) {
  internal::AuditFlag().store(on, std::memory_order_relaxed);
}

/// RAII toggle for tests.
class ScopedAuditEnabled {
 public:
  explicit ScopedAuditEnabled(bool on) : previous_(Enabled()) {
    SetEnabled(on);
  }
  ~ScopedAuditEnabled() { SetEnabled(previous_); }
  ScopedAuditEnabled(const ScopedAuditEnabled&) = delete;
  ScopedAuditEnabled& operator=(const ScopedAuditEnabled&) = delete;

 private:
  bool previous_;
};

struct AuditReport {
  uint64_t ids_checked = 0;    ///< interned indexes visited
  uint64_t slots_checked = 0;  ///< dense slots / posting entries visited
  uint64_t violation_count = 0;
  /// Human-readable descriptions of the first violations (capped so a
  /// systematically broken table cannot OOM the report).
  std::vector<std::string> violations;
  static constexpr size_t kMaxMessages = 16;

  bool ok() const { return violation_count == 0; }
  /// "audit ok: N ids, M slots" or "audit FAILED: ..." with every
  /// retained violation on its own line.
  std::string Summary() const;

  void Merge(const AuditReport& other);
  void AddViolation(std::string message);
};

/// Read-only auditor over one engine's caches. Cheap to construct; holds
/// no state beyond the engine pointer, so call sites make one per pass.
///
/// Concurrency: runs read-only against live caches. Call it at quiescent
/// points (between H6 rounds, after a selection) — concurrent *writers*
/// could legitimately fill a dense slot after its hashed twin is read.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const costmodel::WhatIfEngine* engine);

  AuditReport AuditCostTables() const;
  AuditReport AuditArenaMasks() const;
  AuditReport AuditPostingLists() const;
  AuditReport AuditSimd() const;

  /// Every pass (cost tables, arena masks, and the live-row half of the
  /// SIMD cross-validation only when the dense kernel state is active),
  /// merged.
  AuditReport AuditAll() const;

  /// Aborts with every retained violation on stderr when the report is
  /// not ok(); the macro-free sibling of IDXSEL_CHECK for audit results.
  static void CheckClean(const AuditReport& report);

 private:
  const costmodel::WhatIfEngine* engine_;
};

}  // namespace idxsel::audit

#endif  // IDXSEL_AUDIT_AUDITOR_H_
