// idxsel::kernel — flat cost-evaluation substrate.
//
// The paper's scalability argument (Sections I-A, III-A) is that each H6
// construction step touches few queries; this module makes each *touch*
// cheap. Three ingredients, shared by the selector, the heuristics, and
// the MIP problem builder through WhatIfEngine's dense fast path:
//
//   * IndexArena — interns ordered attribute tuples into dense IndexIds.
//     Tuples live in one contiguous pool (small-buffer: tuples of up to
//     kInlineAttrs attributes are stored inline in their arena entry), and
//     every entry precomputes a 64-bit attribute mask, so the hot-path
//     Index operations (equality, containment, full-cover tests,
//     tie-break comparisons) become integer ops on flat memory instead of
//     std::vector traffic and FNV hashing.
//   * QueryMasks — per-query 64-bit attribute masks built once per
//     workload. Combined with the workload's attribute→query posting
//     lists (Workload::queries_with), a candidate move only visits the
//     queries whose mask intersects the affected attribute set.
//   * A runtime switch (Enabled/SetEnabled, env IDXSEL_KERNEL) mirroring
//     idxsel::obs, so one binary can run with the kernel on and off and
//     prove the two bit-identical — plus the compile-time escape hatch
//     -DIDXSEL_ENABLE_KERNEL=OFF which removes every integration site
//     (the library itself still builds).
//
// Masks are *exact* when the workload has at most 64 attributes (bit i
// set iff attribute i present) and *conservative* otherwise (bit i%64):
// a clear bit proves absence, a set bit must be confirmed against the
// attribute list. All mask-based filters in the pipeline only ever use
// masks in this one-sided way, which is why the kernel changes layout,
// never answers — see doc/cost_model.md ("The evaluation kernel").
//
// Thread-safety: interning takes a mutex; reads of interned entries are
// lock-free and valid for any id obtained by this thread or published to
// it with external synchronization (the exec::ThreadPool barriers of the
// parallel selector provide exactly that). Entry storage is chunked with
// stable addresses, so growth never invalidates concurrent readers.

#ifndef IDXSEL_KERNEL_KERNEL_H_
#define IDXSEL_KERNEL_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "workload/workload.h"

namespace idxsel::kernel {

using workload::AttributeId;
using workload::QueryId;

/// Dense id of an interned attribute tuple; valid within one IndexArena.
using IndexId = uint32_t;
inline constexpr IndexId kInvalidIndexId = ~IndexId{0};

// -- Runtime switch ---------------------------------------------------------

namespace internal {

inline std::atomic<bool>& KernelFlag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("IDXSEL_KERNEL");
    return v == nullptr || v[0] != '0';  // default ON; IDXSEL_KERNEL=0 off
  }()};
  return flag;
}

}  // namespace internal

/// True iff the dense fast paths are active. The kernel is a layout
/// change, not an algorithm change: results are bit-identical either way
/// (tests/kernel_test.cc holds this line).
inline bool Enabled() {
  return internal::KernelFlag().load(std::memory_order_relaxed);
}

/// Flips the dense fast paths at run time (tests, A/B benches).
inline void SetEnabled(bool on) {
  internal::KernelFlag().store(on, std::memory_order_relaxed);
}

/// RAII toggle for equivalence tests and A/B benchmarks.
class ScopedKernelEnabled {
 public:
  explicit ScopedKernelEnabled(bool on) : previous_(Enabled()) {
    SetEnabled(on);
  }
  ~ScopedKernelEnabled() { SetEnabled(previous_); }
  ScopedKernelEnabled(const ScopedKernelEnabled&) = delete;
  ScopedKernelEnabled& operator=(const ScopedKernelEnabled&) = delete;

 private:
  bool previous_;
};

// -- Attribute masks --------------------------------------------------------

/// Bit of attribute `a` in a 64-bit mask (exact for a < 64, folded mod 64
/// otherwise).
inline uint64_t AttrBit(AttributeId a) { return uint64_t{1} << (a & 63u); }

/// Mask of an attribute span.
inline uint64_t MaskOf(const AttributeId* attrs, size_t n) {
  uint64_t mask = 0;
  for (size_t u = 0; u < n; ++u) mask |= AttrBit(attrs[u]);
  return mask;
}

/// Per-query attribute masks of one workload, built once. `exact()` is
/// true when the workload has at most 64 attributes; then a mask *is* the
/// attribute set. Otherwise masks are conservative filters: subset /
/// membership tests that fail on the mask are definitive, successes must
/// be confirmed against the sorted attribute list.
///
/// Construction is allocation-lean by contract: masks are computed from
/// the workload's attribute spans in place (one reservation for the
/// per-query table, two for the posting-order mirror below — never a
/// per-query temporary), which bench_kernel asserts by counting global
/// allocations across two workload sizes.
class QueryMasks {
 public:
  explicit QueryMasks(const workload::Workload& w)
      : exact_(w.num_attributes() <= 64) {
    masks_.reserve(w.num_queries());
    for (QueryId j = 0; j < w.num_queries(); ++j) {
      const auto& attrs = w.query(j).attributes;
      masks_.push_back(MaskOf(attrs.data(), attrs.size()));
    }
    // Posting-order mirror: for every attribute, the masks of its posting
    // list (Workload::queries_with) packed contiguously, CSR-style. The
    // selector's affected-query filters walk posting lists, so this is
    // the layout the 4-wide simd::FilterMasks streams — one load per
    // block instead of a per-query indirection through masks_.
    posting_offsets_.reserve(w.num_attributes() + 1);
    size_t total = 0;
    for (AttributeId a = 0; a < w.num_attributes(); ++a) {
      posting_offsets_.push_back(total);
      total += w.queries_with(a).size();
    }
    posting_offsets_.push_back(total);
    posting_masks_.reserve(total);
    for (AttributeId a = 0; a < w.num_attributes(); ++a) {
      for (const QueryId j : w.queries_with(a)) {
        posting_masks_.push_back(masks_[j]);
      }
    }
  }

  uint64_t mask(QueryId j) const { return masks_[j]; }
  bool exact() const { return exact_; }

  /// Definitive "attribute not in query" test; a false return means
  /// *maybe present* unless exact().
  bool DefinitelyAbsent(QueryId j, AttributeId a) const {
    return (masks_[j] & AttrBit(a)) == 0;
  }

  /// Masks of attribute `a`'s posting list in posting order — element s
  /// is mask(queries_with(a)[s]). Contiguous: feed to simd::FilterMasks.
  const uint64_t* posting_masks(AttributeId a) const {
    return posting_masks_.data() + posting_offsets_[a];
  }

  /// Length of the posting_masks(a) span (== queries_with(a).size()).
  size_t posting_size(AttributeId a) const {
    return posting_offsets_[a + 1] - posting_offsets_[a];
  }

 private:
  std::vector<uint64_t> masks_;
  std::vector<uint64_t> posting_masks_;  ///< CSR payload, posting order
  std::vector<size_t> posting_offsets_;  ///< CSR offsets, num_attributes+1
  bool exact_;
};

// -- Index arena ------------------------------------------------------------

/// Interns ordered attribute tuples; assigns dense, never-reused ids.
///
/// Storage is chunked (kBlockSize entries per block, published through
/// atomic block pointers) so entry addresses are stable for the arena's
/// lifetime and concurrent readers never race with growth. Tuples of up
/// to kInlineAttrs attributes are stored inline in the entry; wider ones
/// live in the arena's contiguous overflow pool (also chunked, also
/// address-stable).
class IndexArena {
 public:
  static constexpr uint32_t kInlineAttrs = 4;

  IndexArena() = default;
  ~IndexArena();
  IndexArena(const IndexArena&) = delete;
  IndexArena& operator=(const IndexArena&) = delete;

  /// Interns the ordered tuple `attrs[0..width)`; returns its dense id.
  /// The same tuple always maps to the same id. Thread-safe.
  IndexId Intern(const AttributeId* attrs, uint32_t width);

  /// Interns `base`'s tuple extended by `extra` (the H6 morphing step
  /// k ⊕ a) without materializing an intermediate tuple. Thread-safe.
  IndexId InternAppend(IndexId base, AttributeId extra);

  /// Number of interned tuples (monotone; a momentary snapshot).
  size_t size() const { return count_.load(std::memory_order_acquire); }

  // -- O(1) per-id metadata (id must have been obtained happens-before) --

  const AttributeId* attrs(IndexId id) const { return entry(id).attrs; }
  uint32_t width(IndexId id) const { return entry(id).width; }
  AttributeId leading(IndexId id) const { return entry(id).attrs[0]; }
  /// Precomputed 64-bit attribute mask of the tuple.
  uint64_t mask(IndexId id) const { return entry(id).mask; }

  /// Whether the tuple contains `a` at any position: O(1) mask rejection,
  /// O(width) confirmation only on (rare) mask hits with folded bits.
  bool Contains(IndexId id, AttributeId a) const {
    const Entry& e = entry(id);
    if ((e.mask & AttrBit(a)) == 0) return false;
    for (uint32_t u = 0; u < e.width; ++u) {
      if (e.attrs[u] == a) return true;
    }
    return false;
  }

  /// Lexicographic tuple order — the arena equivalent of
  /// costmodel::Index::operator< (deterministic tie-breaks).
  bool Less(IndexId a, IndexId b) const;

 private:
  struct Entry {
    const AttributeId* attrs = nullptr;  ///< inline_attrs or overflow pool
    uint64_t mask = 0;
    uint32_t width = 0;
    AttributeId inline_attrs[kInlineAttrs] = {};
  };

  static constexpr size_t kBlockShift = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;  // 1024
  static constexpr size_t kBlockMask = kBlockSize - 1;
  static constexpr size_t kMaxBlocks = 1 << 14;  // 16M ids
  static constexpr size_t kPoolChunk = 4096;     // attrs per overflow chunk

  const Entry& entry(IndexId id) const {
    IDXSEL_DCHECK(id < count_.load(std::memory_order_acquire));
    return blocks_[id >> kBlockShift].load(std::memory_order_acquire)
        [id & kBlockMask];
  }

  /// Copies `attrs` into the contiguous overflow pool; returns the stable
  /// address.
  const AttributeId* PoolCopy(const AttributeId* attrs, uint32_t width)
      IDXSEL_REQUIRES(mu_);

  static uint64_t TupleHash(const AttributeId* attrs, uint32_t width) {
    uint64_t h = SplitMix64(width);
    for (uint32_t u = 0; u < width; ++u) h = HashCombine(h, attrs[u]);
    return h;
  }

  mutable common::Mutex mu_;
  std::atomic<size_t> count_{0};
  std::atomic<Entry*> blocks_[kMaxBlocks] = {};
  // tuple hash -> interned ids with that hash (collisions resolved by
  // comparing the tuples themselves).
  std::unordered_multimap<uint64_t, IndexId> interned_ IDXSEL_GUARDED_BY(mu_);
  // Contiguous overflow pool for tuples wider than kInlineAttrs; chunked
  // so addresses stay stable while the pool grows.
  std::vector<std::unique_ptr<AttributeId[]>> pool_ IDXSEL_GUARDED_BY(mu_);
  size_t pool_used_ IDXSEL_GUARDED_BY(mu_) = 0;  ///< newest chunk usage
};

// -- Dense per-id value table -----------------------------------------------

/// Flat IndexId -> double cache (NaN = unset) with the same chunked,
/// address-stable layout as the arena. Backs WhatIfEngine's dense
/// per-index memory/maintenance fast paths. Values must be deterministic
/// per id: racing writers store the same bits, so relaxed atomics suffice.
class DenseValueTable {
 public:
  DenseValueTable() = default;
  ~DenseValueTable();
  DenseValueTable(const DenseValueTable&) = delete;
  DenseValueTable& operator=(const DenseValueTable&) = delete;

  /// NaN when unset.
  double Get(IndexId id) const {
    const std::atomic<double>* block =
        blocks_[id >> kBlockShift].load(std::memory_order_acquire);
    if (block == nullptr) return kUnset();
    return block[id & kBlockMask].load(std::memory_order_relaxed);
  }

  void Put(IndexId id, double value);

  /// Resets every allocated slot to unset (blocks are kept — ids stay
  /// addressable without reallocation). Serve's warm-state reuse hook:
  /// WhatIfEngine::InvalidateFrequencyDependentCaches clears the dense
  /// maintenance mirror this way after a frequency shift. Not safe
  /// concurrently with Put/Get.
  void Invalidate();

  static double kUnset() {
    return std::numeric_limits<double>::quiet_NaN();
  }

 private:
  static constexpr size_t kBlockShift = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;
  static constexpr size_t kBlockMask = kBlockSize - 1;
  static constexpr size_t kMaxBlocks = 1 << 14;

  // idxsel-lint: allow(guarded-field) reason=serializes block allocation
  // only; the slots are atomics published through atomic block pointers
  common::Mutex mu_;
  std::atomic<std::atomic<double>*> blocks_[kMaxBlocks] = {};
};

// -- Dense per-(id, posting-slot) cost table --------------------------------

/// Flat (IndexId, posting slot) -> double cost cache, the dense fast path
/// in front of WhatIfEngine's sharded hash cache. A row holds one cost
/// per query of the index's leading attribute's posting list
/// (Workload::queries_with) — exactly the queries the engine would ever
/// consult the backend for — indexed by position in that list, so lookups
/// from posting-list iterations are a single load with no hashing.
/// NaN = unset. Rows are created lazily per id.
class DenseCostTable {
 public:
  DenseCostTable() = default;
  ~DenseCostTable();
  DenseCostTable(const DenseCostTable&) = delete;
  DenseCostTable& operator=(const DenseCostTable&) = delete;

  /// NaN when unset (or the row does not exist yet). `slot` is the
  /// query's position in the posting list of the id's leading attribute.
  double Get(IndexId id, uint32_t slot) const {
    const Row* row = FindRow(id);
    if (row == nullptr) return DenseValueTable::kUnset();
    IDXSEL_DCHECK(slot < row->len);
    return row->values[slot].load(std::memory_order_relaxed);
  }

  /// Stores a cost, creating the id's row (sized `row_len`, all-NaN) on
  /// first touch.
  void Put(IndexId id, uint32_t slot, uint32_t row_len, double value);

  /// Borrowed view of one id's row for bulk reads (batched what-if
  /// evaluation, audit sweeps). `values` is null when the row does not
  /// exist yet. Stable for the table's lifetime.
  struct RowView {
    const std::atomic<double>* values = nullptr;
    uint32_t len = 0;
  };
  RowView ViewRow(IndexId id) const {
    const Row* row = FindRow(id);
    if (row == nullptr) return {};
    return {row->values.get(), row->len};
  }

  /// Copies every set slot of `from`'s row into *unset* slots of `to`'s
  /// row (both rows share the posting list: same leading attribute).
  /// Used on H6 append commits: f_j(k ⊕ a) == f_j(k) for every query
  /// that cannot exploit the extension, so the morphed index inherits the
  /// replaced index's costs wholesale — the delta-costing trick that
  /// keeps steady-state steps allocation- and hash-free. Slots already
  /// set on `to` (the re-estimated affected queries) are left untouched.
  void InheritRow(IndexId from, IndexId to, uint32_t row_len);

  /// Resets every slot of every row to NaN (rows stay allocated). Engine
  /// cache invalidation; not safe concurrently with in-flight lookups.
  void Invalidate();

 private:
  struct Row {
    std::unique_ptr<std::atomic<double>[]> values;
    uint32_t len = 0;
  };

  static constexpr size_t kBlockShift = 8;
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;  // 256 rows
  static constexpr size_t kBlockMask = kBlockSize - 1;
  static constexpr size_t kMaxBlocks = 1 << 16;

  const Row* FindRow(IndexId id) const {
    const std::atomic<Row*>* block =
        blocks_[id >> kBlockShift].load(std::memory_order_acquire);
    if (block == nullptr) return nullptr;
    return block[id & kBlockMask].load(std::memory_order_acquire);
  }

  Row* EnsureRow(IndexId id, uint32_t row_len);

  common::Mutex mu_;  // block/row allocation only
  std::atomic<std::atomic<Row*>*> blocks_[kMaxBlocks] = {};
  std::vector<std::unique_ptr<Row>> rows_ IDXSEL_GUARDED_BY(mu_);  // ownership
};

/// Reinterprets a dense row's atomic storage as a plain double stream for
/// the simd layer's vector loads/gathers. Sound under the kernel's
/// publication discipline: row slots are relaxed atomics only so that
/// racing writers of the *same* deterministic value never conflict; every
/// bulk read happens strictly after the slots it touches were published
/// (same thread, or through the exec::ThreadPool barriers), and
/// std::atomic<double> is lock-free and layout-identical to double on
/// every supported target (checked below).
inline const double* RawValues(const std::atomic<double>* values) {
  static_assert(sizeof(std::atomic<double>) == sizeof(double),
                "dense rows must be plain doubles under the hood");
  static_assert(std::atomic<double>::is_always_lock_free,
                "dense rows must be lock-free for bulk reads");
  return reinterpret_cast<const double*>(values);
}

}  // namespace idxsel::kernel

#endif  // IDXSEL_KERNEL_KERNEL_H_
