// AVX2 instantiation of the idxsel::kernel::simd implementation template.
//
// The ONLY translation unit in the project compiled with -mavx2 (see
// src/kernel/CMakeLists.txt): everything else must stay portable, so a
// binary built on an AVX2 machine still starts on one without it and
// simply dispatches to the scalar template. Consequently nothing in this
// file may be reached before simd::ActiveLevel() said kAvx2 — simd.cc is
// the sole caller and enforces exactly that.

#define IDXSEL_SIMD_IMPL_NAMESPACE avx2_impl
#define IDXSEL_SIMD_IMPL_AVX2 1
#include "kernel/simd_impl.h"
#undef IDXSEL_SIMD_IMPL_NAMESPACE
#undef IDXSEL_SIMD_IMPL_AVX2
