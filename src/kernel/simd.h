// idxsel::kernel::simd — runtime-dispatched vector layer under the dense
// kernel.
//
// The kernel's hot loops are bandwidth-bound streams over three flat
// shapes: NaN-sentinel dense cost rows (DenseCostTable), 64-bit query
// attribute masks (QueryMasks), and per-attribute benefit reductions over
// posting lists. This module vectorizes those streams 4 lanes at a time
// (AVX2, with a portable scalar fallback compiled from the same
// implementation template — see simd_impl.h) behind one-call entry points
// that the selector, the what-if engine, the auditor, and the benches
// share.
//
// Dispatch model. The active level is decided at run time:
//
//   * kAvx2 when the binary carries the AVX2 translation unit (CMake
//     compiles only simd_avx2.cc with -mavx2, so the rest of the binary
//     stays portable) AND the CPU reports AVX2 AND scalar is not forced;
//   * kScalar otherwise.
//
// `IDXSEL_FORCE_SCALAR=1` (env, read once) or SetForceScalar /
// ScopedForceScalar (tests, A/B benches) pins the scalar path so both
// sides of the dispatch can be exercised on one machine.
//
// FP-reduction-order contract (default mode). Every reduction here is
// bit-identical to the plain serial loop it replaces: lanes are combined
// with per-element IEEE ops (identical in scalar and AVX2) and the final
// accumulation folds lanes horizontally in ascending element order —
// i.e. the exact order the scalar loop adds them. Excluded terms
// (NaN-unset slots, non-positive gains) are handled branchlessly by
// blending the term to +0.0 before the add (or +inf before a min), which
// is bit-identical to skipping because accumulators start at +0.0 and
// every retained term is finite (the engine sanitizes backend garbage
// before it reaches a dense row). This is what keeps the audit layer's
// SIMD-vs-scalar and kernel-vs-legacy cross-validations byte-identical.
//
// `IDXSEL_SIMD_RELAXED=1` (env, or SetRelaxed / ScopedRelaxed) unlocks
// reassociated reductions: four independent lane accumulators summed once
// at the end. That is the textbook 4-way-ILP shape — faster, but the FP
// sum order changes, so results may differ from the serial loop by
// rounding (bounded by standard reassociation error, ~n·eps·Σ|term|).
// Relaxed mode is therefore opt-in, never default, and the bit-identity
// suites force it off. See doc/cost_model.md ("SIMD under the kernel").
//
// Thread-safety: all entry points are pure functions over caller-owned
// memory; the switches are relaxed atomics sampled per call.

#ifndef IDXSEL_KERNEL_SIMD_H_
#define IDXSEL_KERNEL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace idxsel::kernel::simd {

/// Vector width of the implementation (doubles per register block).
inline constexpr size_t kLanes = 4;

enum class Level : uint8_t {
  kScalar = 0,  ///< portable fallback (same template, plain loops)
  kAvx2 = 1,    ///< 256-bit AVX2 lanes
};

const char* LevelName(Level level);

/// Highest level this binary + CPU can run (ignores the force-scalar
/// override). kScalar when the AVX2 TU was not compiled in or the CPU
/// lacks AVX2.
Level SupportedLevel();

/// The level dispatched on the next call: SupportedLevel(), demoted to
/// kScalar while force-scalar is set.
Level ActiveLevel();

// -- Dispatch overrides -----------------------------------------------------

namespace internal {

inline std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("IDXSEL_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }()};
  return flag;
}

inline std::atomic<bool>& RelaxedFlag() {
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("IDXSEL_SIMD_RELAXED");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }()};
  return flag;
}

}  // namespace internal

/// True while dispatch is pinned to the scalar template (env
/// IDXSEL_FORCE_SCALAR=1 or SetForceScalar(true)).
inline bool ForceScalar() {
  return internal::ForceScalarFlag().load(std::memory_order_relaxed);
}

inline void SetForceScalar(bool on) {
  internal::ForceScalarFlag().store(on, std::memory_order_relaxed);
}

/// RAII pin to the scalar path for dispatch-equivalence tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : previous_(ForceScalar()) {
    SetForceScalar(on);
  }
  ~ScopedForceScalar() { SetForceScalar(previous_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

/// True when reassociated (NOT bit-identical) reductions are unlocked —
/// env IDXSEL_SIMD_RELAXED=1 or SetRelaxed(true). Default off.
inline bool Relaxed() {
  return internal::RelaxedFlag().load(std::memory_order_relaxed);
}

inline void SetRelaxed(bool on) {
  internal::RelaxedFlag().store(on, std::memory_order_relaxed);
}

/// RAII toggle for the relaxed-reduction mode (benches, tolerance tests).
class ScopedRelaxed {
 public:
  explicit ScopedRelaxed(bool on) : previous_(Relaxed()) { SetRelaxed(on); }
  ~ScopedRelaxed() { SetRelaxed(previous_); }
  ScopedRelaxed(const ScopedRelaxed&) = delete;
  ScopedRelaxed& operator=(const ScopedRelaxed&) = delete;

 private:
  bool previous_;
};

// -- Reductions -------------------------------------------------------------
//
// Default mode: bit-identical to the serial loop written in each doc
// comment. Relaxed mode: same value up to FP reassociation.

/// Benefit of a single-attribute candidate over a posting list:
///
///   for (t = 0; t < n; ++t) {
///     gain = best[qids[t]] - costs[t];
///     if (gain > 0) acc += freq[qids[t]] * gain;
///   }
///
/// `costs` is the per-slot cost array (posting order), `qids` the posting
/// list itself, `best`/`freq` are query-indexed tables.
double ReduceBenefitIndexed(const double* costs, const uint32_t* qids,
                            const double* best, const double* freq, size_t n);

/// Benefit of one append candidate over its affected-query block:
///
///   for (t = 0; t < n; ++t)
///     acc += freq[qids[t]] * (best[qids[t]] - min(cw[t], costs[t]));
///
/// `costs` are the candidate's dense-row values (gathered warm by
/// WhatIfEngine::CostWithIndexBatch), `cw` the per-query cost without the
/// replaced index, both packed in block order.
double ReduceAppendBenefit(const double* costs, const double* cw,
                           const uint32_t* qids, const double* best,
                           const double* freq, size_t n);

/// Sum of the set (non-NaN) slots of a dense row, in slot order:
///
///   for (t = 0; t < n; ++t) if (!isnan(row[t])) acc += row[t];
///
/// NaN lanes are blended to +0.0 (bit-identical to the skip).
double SumSetSlots(const double* row, size_t n);

/// Minimum over the set slots of a dense row (+inf when all unset):
///
///   acc = +inf; for (t = 0; t < n; ++t) if (!isnan(row[t])) acc = min(acc, row[t]);
///
/// NaN lanes are blended to +inf (the identity of min). Unaffected by
/// relaxed mode: min is order-insensitive over the retained lanes.
double MinSetSlots(const double* row, size_t n);

// -- Mask filtering ---------------------------------------------------------

/// Compacts the posting slots whose query mask covers `required`:
/// keeps slot t iff (required & ~masks[t]) == 0 — the kernel's one-sided
/// "every required attribute maybe-present" test, 4 masks per step.
/// Writes kept slot indices (ascending) to `out` (capacity >= n);
/// returns the kept count.
size_t FilterMasks(const uint64_t* masks, size_t n, uint64_t required,
                   uint32_t* out);

// -- Dense-row gathers ------------------------------------------------------

/// Gathers row[slots[t]] into out[t] for t in [0, n). Returns true iff
/// every gathered value is set (non-NaN); on false, `out` contents are
/// unspecified and nothing else happened — the caller falls back to the
/// one-at-a-time path that preserves exact backend call order.
bool GatherRowWarm(const double* row, const uint32_t* slots, size_t n,
                   double* out);

}  // namespace idxsel::kernel::simd

#endif  // IDXSEL_KERNEL_SIMD_H_
