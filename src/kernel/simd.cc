// Scalar template instantiation + runtime dispatch of idxsel::kernel::simd.
//
// This translation unit is compiled with the project's portable flags
// (never -mavx2): the binary must start and run on any x86-64 (or
// non-x86) host, with the AVX2 entry points reached only after the CPU
// reports support. simd_avx2.cc carries the vector instantiation; CMake
// defines IDXSEL_SIMD_HAVE_AVX2 for this file exactly when that TU is
// part of the build.

#define IDXSEL_SIMD_IMPL_NAMESPACE scalar_impl
#define IDXSEL_SIMD_IMPL_AVX2 0
#include "kernel/simd_impl.h"
#undef IDXSEL_SIMD_IMPL_NAMESPACE
#undef IDXSEL_SIMD_IMPL_AVX2

namespace idxsel::kernel::simd {

#if defined(IDXSEL_SIMD_HAVE_AVX2)
// Instantiated in simd_avx2.cc from the same simd_impl.h template.
namespace avx2_impl {
double ReduceBenefitIndexed(const double* costs, const uint32_t* qids,
                            const double* best, const double* freq, size_t n,
                            bool relaxed);
double ReduceAppendBenefit(const double* costs, const double* cw,
                           const uint32_t* qids, const double* best,
                           const double* freq, size_t n, bool relaxed);
double SumSetSlots(const double* row, size_t n, bool relaxed);
double MinSetSlots(const double* row, size_t n);
size_t FilterMasks(const uint64_t* masks, size_t n, uint64_t required,
                   uint32_t* out);
bool GatherRowWarm(const double* row, const uint32_t* slots, size_t n,
                   double* out);
}  // namespace avx2_impl
#endif

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level SupportedLevel() {
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  // Sampled once: CPU features do not change while the process runs.
  static const Level level = [] {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#else
    return Level::kScalar;
#endif
  }();
  return level;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  return ForceScalar() ? Level::kScalar : SupportedLevel();
}

double ReduceBenefitIndexed(const double* costs, const uint32_t* qids,
                            const double* best, const double* freq,
                            size_t n) {
  const bool relaxed = Relaxed();
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::ReduceBenefitIndexed(costs, qids, best, freq, n,
                                           relaxed);
  }
#endif
  return scalar_impl::ReduceBenefitIndexed(costs, qids, best, freq, n,
                                           relaxed);
}

double ReduceAppendBenefit(const double* costs, const double* cw,
                           const uint32_t* qids, const double* best,
                           const double* freq, size_t n) {
  const bool relaxed = Relaxed();
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::ReduceAppendBenefit(costs, cw, qids, best, freq, n,
                                          relaxed);
  }
#endif
  return scalar_impl::ReduceAppendBenefit(costs, cw, qids, best, freq, n,
                                          relaxed);
}

double SumSetSlots(const double* row, size_t n) {
  const bool relaxed = Relaxed();
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::SumSetSlots(row, n, relaxed);
  }
#endif
  return scalar_impl::SumSetSlots(row, n, relaxed);
}

double MinSetSlots(const double* row, size_t n) {
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::MinSetSlots(row, n);
  }
#endif
  return scalar_impl::MinSetSlots(row, n);
}

size_t FilterMasks(const uint64_t* masks, size_t n, uint64_t required,
                   uint32_t* out) {
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::FilterMasks(masks, n, required, out);
  }
#endif
  return scalar_impl::FilterMasks(masks, n, required, out);
}

bool GatherRowWarm(const double* row, const uint32_t* slots, size_t n,
                   double* out) {
#if defined(IDXSEL_SIMD_HAVE_AVX2)
  if (ActiveLevel() == Level::kAvx2) {
    return avx2_impl::GatherRowWarm(row, slots, n, out);
  }
#endif
  return scalar_impl::GatherRowWarm(row, slots, n, out);
}

}  // namespace idxsel::kernel::simd
