// Implementation template of idxsel::kernel::simd — textually included by
// both translation units of the dispatch:
//
//   * simd.cc       (scalar fallback; no special flags)
//   * simd_avx2.cc  (AVX2; the only file CMake compiles with -mavx2)
//
// Each definer sets IDXSEL_SIMD_IMPL_NAMESPACE (scalar_impl / avx2_impl)
// and IDXSEL_SIMD_IMPL_AVX2 (0 / 1) before inclusion. Everything below
// the Vec abstraction is ONE shared algorithm body: the two paths differ
// only in how a 4-lane block is loaded, blended, and folded, which is
// what makes the scalar path a true reference — same term order, same
// blends, same horizontal fold — and the bit-identity contract of
// simd.h provable by construction (and re-proven by tests/simd_test.cc
// and audit::InvariantAuditor at run time).
//
// This header is internal to src/kernel/simd*; it is not installed and
// must not be included anywhere else (idxsel_lint `simd-confinement`).

#if !defined(IDXSEL_SIMD_IMPL_NAMESPACE) || !defined(IDXSEL_SIMD_IMPL_AVX2)
#error "simd_impl.h is an implementation template; define the impl macros"
#endif

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#if IDXSEL_SIMD_IMPL_AVX2
#include <immintrin.h>
#endif

#include "kernel/simd.h"

namespace idxsel::kernel::simd {
namespace IDXSEL_SIMD_IMPL_NAMESPACE {

// -- 4-lane block abstraction ----------------------------------------------

#if IDXSEL_SIMD_IMPL_AVX2

struct Vec {
  __m256d v;

  static Vec Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vec Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Vec Gather(const double* base, const uint32_t* idx) {
    const __m128i vindex =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(base, vindex, 8)};
  }
  static Vec Sub(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static Vec Mul(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  /// Elementwise (a < b) ? a : b — MINPD semantics in both templates.
  static Vec Min(Vec a, Vec b) { return {_mm256_min_pd(a.v, b.v)}; }
  /// term where gain > 0, else +0.0 (ordered compare: NaN gain -> +0.0).
  static Vec KeepIfGtZero(Vec gain, Vec term) {
    const __m256d keep =
        _mm256_cmp_pd(gain.v, _mm256_setzero_pd(), _CMP_GT_OQ);
    return {_mm256_and_pd(keep, term.v)};
  }
  /// x where x is ordered (non-NaN), else `fill`.
  static Vec FillNaN(Vec x, Vec fill) {
    const __m256d unord = _mm256_cmp_pd(x.v, x.v, _CMP_UNORD_Q);
    return {_mm256_blendv_pd(x.v, fill.v, unord)};
  }
  static bool AnyNaN(Vec x) {
    return _mm256_movemask_pd(_mm256_cmp_pd(x.v, x.v, _CMP_UNORD_Q)) != 0;
  }
  static void Store(double* p, Vec x) { _mm256_storeu_pd(p, x.v); }
  /// In-order horizontal fold: acc + lane0 + lane1 + lane2 + lane3, each
  /// add a separate rounding step — the exact serial-loop order.
  static double FoldAdd(double acc, Vec x) {
    const __m128d lo = _mm256_castpd256_pd128(x.v);
    const __m128d hi = _mm256_extractf128_pd(x.v, 1);
    acc += _mm_cvtsd_f64(lo);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    acc += _mm_cvtsd_f64(hi);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    return acc;
  }
  /// In-order horizontal min fold with MINPD step semantics.
  static double FoldMin(double acc, Vec x) {
    alignas(32) double lane[kLanes];
    _mm256_store_pd(lane, x.v);
    for (size_t t = 0; t < kLanes; ++t) {
      acc = acc < lane[t] ? acc : lane[t];
    }
    return acc;
  }
  static double ReduceAdd(Vec x) { return FoldAdd(0.0, x); }
  static Vec Add(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  static Vec Zero() { return {_mm256_setzero_pd()}; }
};

/// Keep bits (bit t set iff (required & ~masks[t]) == 0) for one 4-mask
/// block of the QueryMasks filter.
inline uint32_t KeepBits4(const uint64_t* masks, uint64_t required) {
  const __m256i m =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(masks));
  const __m256i req = _mm256_set1_epi64x(static_cast<int64_t>(required));
  // ANDNOT(m, req) = req & ~m: the attributes required but maybe-absent.
  const __m256i missing = _mm256_andnot_si256(m, req);
  const __m256i keep = _mm256_cmpeq_epi64(missing, _mm256_setzero_si256());
  return static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(keep)));
}

#else  // scalar template

struct Vec {
  double v[kLanes];

  static Vec Load(const double* p) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = p[t];
    return r;
  }
  static Vec Broadcast(double x) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = x;
    return r;
  }
  static Vec Gather(const double* base, const uint32_t* idx) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = base[idx[t]];
    return r;
  }
  static Vec Sub(Vec a, Vec b) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = a.v[t] - b.v[t];
    return r;
  }
  static Vec Mul(Vec a, Vec b) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = a.v[t] * b.v[t];
    return r;
  }
  static Vec Min(Vec a, Vec b) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) {
      r.v[t] = a.v[t] < b.v[t] ? a.v[t] : b.v[t];
    }
    return r;
  }
  static Vec KeepIfGtZero(Vec gain, Vec term) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) {
      r.v[t] = gain.v[t] > 0.0 ? term.v[t] : 0.0;
    }
    return r;
  }
  static Vec FillNaN(Vec x, Vec fill) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) {
      r.v[t] = std::isnan(x.v[t]) ? fill.v[t] : x.v[t];
    }
    return r;
  }
  static bool AnyNaN(Vec x) {
    bool any = false;
    for (size_t t = 0; t < kLanes; ++t) any = any || std::isnan(x.v[t]);
    return any;
  }
  static void Store(double* p, Vec x) {
    for (size_t t = 0; t < kLanes; ++t) p[t] = x.v[t];
  }
  static double FoldAdd(double acc, Vec x) {
    for (size_t t = 0; t < kLanes; ++t) acc += x.v[t];
    return acc;
  }
  static double FoldMin(double acc, Vec x) {
    for (size_t t = 0; t < kLanes; ++t) {
      acc = acc < x.v[t] ? acc : x.v[t];
    }
    return acc;
  }
  static double ReduceAdd(Vec x) { return FoldAdd(0.0, x); }
  static Vec Add(Vec a, Vec b) {
    Vec r;
    for (size_t t = 0; t < kLanes; ++t) r.v[t] = a.v[t] + b.v[t];
    return r;
  }
  static Vec Zero() { return Broadcast(0.0); }
};

inline uint32_t KeepBits4(const uint64_t* masks, uint64_t required) {
  uint32_t bits = 0;
  for (size_t t = 0; t < kLanes; ++t) {
    bits |= static_cast<uint32_t>((required & ~masks[t]) == 0 ? 1u : 0u)
            << t;
  }
  return bits;
}

#endif  // IDXSEL_SIMD_IMPL_AVX2

// -- Shared algorithm bodies ------------------------------------------------

double ReduceBenefitIndexed(const double* costs, const uint32_t* qids,
                            const double* best, const double* freq, size_t n,
                            bool relaxed) {
  const size_t blocks = n / kLanes;
  double acc = 0.0;
  if (relaxed) {
    // Reassociated: one independent accumulator per lane, folded once.
    Vec vacc = Vec::Zero();
    for (size_t b = 0; b < blocks; ++b) {
      const size_t t = b * kLanes;
      const Vec gain =
          Vec::Sub(Vec::Gather(best, qids + t), Vec::Load(costs + t));
      const Vec term =
          Vec::KeepIfGtZero(gain, Vec::Mul(Vec::Gather(freq, qids + t), gain));
      vacc = Vec::Add(vacc, term);
    }
    acc = Vec::ReduceAdd(vacc);
  } else {
    // Exact: vector math, serial-order fold — bit-identical to the plain
    // loop (the +0.0 of an excluded lane is an addition identity here:
    // retained terms are non-negative finite, so acc never holds -0.0
    // after a retained add, and +0.0 + +0.0 == +0.0).
    for (size_t b = 0; b < blocks; ++b) {
      const size_t t = b * kLanes;
      const Vec gain =
          Vec::Sub(Vec::Gather(best, qids + t), Vec::Load(costs + t));
      const Vec term =
          Vec::KeepIfGtZero(gain, Vec::Mul(Vec::Gather(freq, qids + t), gain));
      acc = Vec::FoldAdd(acc, term);
    }
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    const double gain = best[qids[t]] - costs[t];
    acc += gain > 0.0 ? freq[qids[t]] * gain : 0.0;
  }
  return acc;
}

double ReduceAppendBenefit(const double* costs, const double* cw,
                           const uint32_t* qids, const double* best,
                           const double* freq, size_t n, bool relaxed) {
  const size_t blocks = n / kLanes;
  double acc = 0.0;
  if (relaxed) {
    Vec vacc = Vec::Zero();
    for (size_t b = 0; b < blocks; ++b) {
      const size_t t = b * kLanes;
      const Vec new_cost = Vec::Min(Vec::Load(cw + t), Vec::Load(costs + t));
      const Vec gain = Vec::Sub(Vec::Gather(best, qids + t), new_cost);
      vacc = Vec::Add(vacc, Vec::Mul(Vec::Gather(freq, qids + t), gain));
    }
    acc = Vec::ReduceAdd(vacc);
  } else {
    for (size_t b = 0; b < blocks; ++b) {
      const size_t t = b * kLanes;
      const Vec new_cost = Vec::Min(Vec::Load(cw + t), Vec::Load(costs + t));
      const Vec gain = Vec::Sub(Vec::Gather(best, qids + t), new_cost);
      acc = Vec::FoldAdd(acc, Vec::Mul(Vec::Gather(freq, qids + t), gain));
    }
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    const double new_cost = cw[t] < costs[t] ? cw[t] : costs[t];
    acc += freq[qids[t]] * (best[qids[t]] - new_cost);
  }
  return acc;
}

double SumSetSlots(const double* row, size_t n, bool relaxed) {
  const size_t blocks = n / kLanes;
  const Vec zero = Vec::Zero();
  double acc = 0.0;
  if (relaxed) {
    Vec vacc = Vec::Zero();
    for (size_t b = 0; b < blocks; ++b) {
      vacc = Vec::Add(vacc, Vec::FillNaN(Vec::Load(row + b * kLanes), zero));
    }
    acc = Vec::ReduceAdd(vacc);
  } else {
    for (size_t b = 0; b < blocks; ++b) {
      acc = Vec::FoldAdd(acc, Vec::FillNaN(Vec::Load(row + b * kLanes), zero));
    }
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    acc += std::isnan(row[t]) ? 0.0 : row[t];
  }
  return acc;
}

double MinSetSlots(const double* row, size_t n) {
  const size_t blocks = n / kLanes;
  const Vec inf = Vec::Broadcast(std::numeric_limits<double>::infinity());
  double acc = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < blocks; ++b) {
    acc = Vec::FoldMin(acc, Vec::FillNaN(Vec::Load(row + b * kLanes), inf));
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    const double v = std::isnan(row[t]) ? std::numeric_limits<double>::infinity()
                                        : row[t];
    acc = acc < v ? acc : v;
  }
  return acc;
}

size_t FilterMasks(const uint64_t* masks, size_t n, uint64_t required,
                   uint32_t* out) {
  const size_t blocks = n / kLanes;
  size_t count = 0;
  for (size_t b = 0; b < blocks; ++b) {
    const size_t t = b * kLanes;
    uint32_t bits = KeepBits4(masks + t, required);
    // Branch-free compaction: unconditional store, advance by the keep
    // bit — kept slots come out ascending, like the scalar filter loop.
    for (size_t l = 0; l < kLanes; ++l) {
      out[count] = static_cast<uint32_t>(t + l);
      count += bits & 1u;
      bits >>= 1u;
    }
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    out[count] = static_cast<uint32_t>(t);
    count += (required & ~masks[t]) == 0 ? 1u : 0u;
  }
  return count;
}

bool GatherRowWarm(const double* row, const uint32_t* slots, size_t n,
                   double* out) {
  const size_t blocks = n / kLanes;
  for (size_t b = 0; b < blocks; ++b) {
    const size_t t = b * kLanes;
    const Vec v = Vec::Gather(row, slots + t);
    if (Vec::AnyNaN(v)) return false;
    Vec::Store(out + t, v);
  }
  for (size_t t = blocks * kLanes; t < n; ++t) {
    const double v = row[slots[t]];
    if (std::isnan(v)) return false;
    out[t] = v;
  }
  return true;
}

}  // namespace IDXSEL_SIMD_IMPL_NAMESPACE
}  // namespace idxsel::kernel::simd
