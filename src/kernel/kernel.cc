#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/telemetry.h"

namespace idxsel::kernel {

// -- IndexArena -------------------------------------------------------------

IndexArena::~IndexArena() {
  for (auto& slot : blocks_) {
    delete[] slot.load(std::memory_order_relaxed);
  }
}

const AttributeId* IndexArena::PoolCopy(const AttributeId* attrs,
                                        uint32_t width) {
  IDXSEL_DCHECK(width > kInlineAttrs);
  IDXSEL_CHECK_LE(width, kPoolChunk);
  if (pool_.empty() || pool_used_ + width > kPoolChunk) {
    pool_.push_back(std::make_unique<AttributeId[]>(kPoolChunk));
    pool_used_ = 0;
  }
  AttributeId* dst = pool_.back().get() + pool_used_;
  std::memcpy(dst, attrs, width * sizeof(AttributeId));
  pool_used_ += width;
  return dst;
}

IndexId IndexArena::Intern(const AttributeId* attrs, uint32_t width) {
  IDXSEL_DCHECK(width > 0);
  const uint64_t h = TupleHash(attrs, width);
  common::MutexLock lock(&mu_);
  auto [it, end] = interned_.equal_range(h);
  for (; it != end; ++it) {
    const Entry& e = entry(it->second);
    if (e.width == width &&
        std::memcmp(e.attrs, attrs, width * sizeof(AttributeId)) == 0) {
      return it->second;
    }
  }

  const size_t n = count_.load(std::memory_order_relaxed);
  IDXSEL_CHECK_LT(n, kMaxBlocks * kBlockSize);
  const size_t block_idx = n >> kBlockShift;
  Entry* block = blocks_[block_idx].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Entry[kBlockSize];
    blocks_[block_idx].store(block, std::memory_order_release);
  }
  Entry& e = block[n & kBlockMask];
#ifndef NDEBUG
  // Index tuples never repeat an attribute; a duplicate would make the
  // precomputed mask lossy in a way audit::InvariantAuditor flags later —
  // catch it at the intern site where the caller is still on the stack.
  for (uint32_t u = 0; u < width; ++u) {
    for (uint32_t v = u + 1; v < width; ++v) {
      IDXSEL_DCHECK(attrs[u] != attrs[v]);
    }
  }
#endif
  e.width = width;
  e.mask = MaskOf(attrs, width);
  if (width <= kInlineAttrs) {
    std::memcpy(e.inline_attrs, attrs, width * sizeof(AttributeId));
    e.attrs = e.inline_attrs;
  } else {
    e.attrs = PoolCopy(attrs, width);
  }

  const IndexId id = static_cast<IndexId>(n);
  // Telemetry slot, not obs: the kernel sits beside obs in the layering
  // DAG and must not include its headers (common/telemetry.h, L3 lint).
  telemetry::Add(telemetry::Slot::kKernelArenaInterns);
  interned_.emplace(h, id);
  // Publish the count last: readers that observe id < size() see a fully
  // initialized entry (release store pairs with entry()'s acquire load).
  count_.store(n + 1, std::memory_order_release);
  return id;
}

IndexId IndexArena::InternAppend(IndexId base, AttributeId extra) {
  const Entry& b = entry(base);
  IDXSEL_DCHECK(!Contains(base, extra));
  AttributeId buf[kPoolChunk];
  IDXSEL_CHECK_LT(b.width, kPoolChunk);
  std::memcpy(buf, b.attrs, b.width * sizeof(AttributeId));
  buf[b.width] = extra;
  return Intern(buf, b.width + 1);
}

bool IndexArena::Less(IndexId a, IndexId b) const {
  const Entry& ea = entry(a);
  const Entry& eb = entry(b);
  return std::lexicographical_compare(ea.attrs, ea.attrs + ea.width, eb.attrs,
                                      eb.attrs + eb.width);
}

// -- DenseValueTable --------------------------------------------------------

DenseValueTable::~DenseValueTable() {
  for (auto& slot : blocks_) {
    delete[] slot.load(std::memory_order_relaxed);
  }
}

void DenseValueTable::Put(IndexId id, double value) {
  const size_t block_idx = id >> kBlockShift;
  IDXSEL_CHECK_LT(block_idx, kMaxBlocks);
  std::atomic<double>* block = blocks_[block_idx].load(std::memory_order_acquire);
  if (block == nullptr) {
    common::MutexLock lock(&mu_);
    block = blocks_[block_idx].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new std::atomic<double>[kBlockSize];
      for (size_t u = 0; u < kBlockSize; ++u) {
        block[u].store(kUnset(), std::memory_order_relaxed);
      }
      blocks_[block_idx].store(block, std::memory_order_release);
    }
  }
  block[id & kBlockMask].store(value, std::memory_order_relaxed);
}

void DenseValueTable::Invalidate() {
  for (auto& slot : blocks_) {
    std::atomic<double>* block = slot.load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (size_t u = 0; u < kBlockSize; ++u) {
      block[u].store(kUnset(), std::memory_order_relaxed);
    }
  }
}

// -- DenseCostTable ---------------------------------------------------------

DenseCostTable::~DenseCostTable() {
  for (auto& slot : blocks_) {
    delete[] slot.load(std::memory_order_relaxed);
  }
}

DenseCostTable::Row* DenseCostTable::EnsureRow(IndexId id, uint32_t row_len) {
  const size_t block_idx = id >> kBlockShift;
  IDXSEL_CHECK_LT(block_idx, kMaxBlocks);
  std::atomic<Row*>* block = blocks_[block_idx].load(std::memory_order_acquire);
  if (block == nullptr) {
    common::MutexLock lock(&mu_);
    block = blocks_[block_idx].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new std::atomic<Row*>[kBlockSize];
      for (size_t u = 0; u < kBlockSize; ++u) {
        block[u].store(nullptr, std::memory_order_relaxed);
      }
      blocks_[block_idx].store(block, std::memory_order_release);
    }
  }
  std::atomic<Row*>& slot = block[id & kBlockMask];
  Row* row = slot.load(std::memory_order_acquire);
  if (row == nullptr) {
    common::MutexLock lock(&mu_);
    row = slot.load(std::memory_order_relaxed);
    if (row == nullptr) {
      auto owned = std::make_unique<Row>();
      owned->len = row_len;
      owned->values = std::make_unique<std::atomic<double>[]>(row_len);
      for (uint32_t u = 0; u < row_len; ++u) {
        owned->values[u].store(DenseValueTable::kUnset(),
                               std::memory_order_relaxed);
      }
      row = owned.get();
      rows_.push_back(std::move(owned));
      slot.store(row, std::memory_order_release);
    }
  }
  IDXSEL_DCHECK(row->len == row_len);
  return row;
}

void DenseCostTable::Put(IndexId id, uint32_t slot, uint32_t row_len,
                         double value) {
  Row* row = EnsureRow(id, row_len);
  IDXSEL_DCHECK(slot < row->len);
  row->values[slot].store(value, std::memory_order_relaxed);
}

void DenseCostTable::InheritRow(IndexId from, IndexId to, uint32_t row_len) {
  const Row* src = FindRow(from);
  if (src == nullptr) return;
  Row* dst = EnsureRow(to, row_len);
  IDXSEL_DCHECK(src->len == dst->len);
  const uint32_t n = std::min(src->len, dst->len);
  for (uint32_t u = 0; u < n; ++u) {
    const double v = src->values[u].load(std::memory_order_relaxed);
    if (std::isnan(v)) continue;
    double expected = DenseValueTable::kUnset();
    // Only fill unset slots: affected queries were re-estimated and their
    // fresh costs must win. compare_exchange on NaN works because the
    // sentinel is a single canonical bit pattern stored by this table.
    dst->values[u].compare_exchange_strong(expected, v,
                                           std::memory_order_relaxed);
  }
}

void DenseCostTable::Invalidate() {
  common::MutexLock lock(&mu_);
  for (auto& row : rows_) {
    for (uint32_t u = 0; u < row->len; ++u) {
      row->values[u].store(DenseValueTable::kUnset(),
                           std::memory_order_relaxed);
    }
  }
}

}  // namespace idxsel::kernel
