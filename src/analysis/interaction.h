// Index-interaction analysis, after Schnaitter et al. [12]: "an index a
// interacts with an index b if the benefit of a is affected by the presence
// of b and vice-versa".
//
// For a pair (a, b), with benefit(S) = F(empty) - F(S):
//   doi(a, b) = |benefit({a,b}) - benefit({a}) - benefit({b})|
//               / max(benefit({a,b}), epsilon)
// i.e. the normalized deviation from benefit additivity — 0 for independent
// indexes, towards 1 for strongly cannibalizing (or synergistic) pairs.
// This is the quantity whose neglect the paper blames for the weakness of
// the rule-based heuristics (Section IV-A).

#ifndef IDXSEL_ANALYSIS_INTERACTION_H_
#define IDXSEL_ANALYSIS_INTERACTION_H_

#include <string>
#include <vector>

#include "costmodel/index.h"
#include "costmodel/what_if.h"

namespace idxsel::analysis {

using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::WhatIfEngine;

/// One interacting pair.
struct InteractionEntry {
  Index a;
  Index b;
  double benefit_a = 0.0;      ///< benefit({a}).
  double benefit_b = 0.0;      ///< benefit({b}).
  double benefit_both = 0.0;   ///< benefit({a, b}).
  double degree = 0.0;         ///< doi(a, b), see header comment.
};

/// Degree of interaction of one pair (one-index-per-query evaluation).
double DegreeOfInteraction(WhatIfEngine& engine, const Index& a,
                           const Index& b);

/// Computes all pairwise interactions within `indexes` and returns them
/// sorted by descending degree. O(|indexes|^2) workload evaluations —
/// intended for selections (tens of indexes), not candidate sets.
std::vector<InteractionEntry> AnalyzeInteractions(
    WhatIfEngine& engine, const std::vector<Index>& indexes);

/// Renders the strongest `top` interactions as an aligned table.
std::string RenderInteractions(const std::vector<InteractionEntry>& entries,
                               size_t top = 10);

}  // namespace idxsel::analysis

#endif  // IDXSEL_ANALYSIS_INTERACTION_H_
