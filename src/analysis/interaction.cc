#include "analysis/interaction.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace idxsel::analysis {
namespace {

double Benefit(WhatIfEngine& engine, const IndexConfig& config,
               double base) {
  return base - engine.WorkloadCost(config);
}

InteractionEntry Analyze(WhatIfEngine& engine, const Index& a, const Index& b,
                         double base) {
  InteractionEntry entry;
  entry.a = a;
  entry.b = b;
  IndexConfig only_a;
  only_a.Insert(a);
  IndexConfig only_b;
  only_b.Insert(b);
  IndexConfig both;
  both.Insert(a);
  both.Insert(b);
  entry.benefit_a = Benefit(engine, only_a, base);
  entry.benefit_b = Benefit(engine, only_b, base);
  entry.benefit_both = Benefit(engine, both, base);
  const double deviation =
      std::abs(entry.benefit_both - entry.benefit_a - entry.benefit_b);
  entry.degree = deviation / std::max(std::abs(entry.benefit_both), 1e-12);
  return entry;
}

}  // namespace

double DegreeOfInteraction(WhatIfEngine& engine, const Index& a,
                           const Index& b) {
  const double base = engine.WorkloadCost(IndexConfig{});
  return Analyze(engine, a, b, base).degree;
}

std::vector<InteractionEntry> AnalyzeInteractions(
    WhatIfEngine& engine, const std::vector<Index>& indexes) {
  const double base = engine.WorkloadCost(IndexConfig{});
  std::vector<InteractionEntry> entries;
  entries.reserve(indexes.size() * (indexes.size() - 1) / 2);
  for (size_t x = 0; x < indexes.size(); ++x) {
    for (size_t y = x + 1; y < indexes.size(); ++y) {
      entries.push_back(Analyze(engine, indexes[x], indexes[y], base));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const InteractionEntry& p, const InteractionEntry& q) {
              if (p.degree != q.degree) return p.degree > q.degree;
              if (!(p.a == q.a)) return p.a < q.a;
              return p.b < q.b;
            });
  return entries;
}

std::string RenderInteractions(const std::vector<InteractionEntry>& entries,
                               size_t top) {
  TablePrinter table(
      {"index a", "index b", "benefit a", "benefit b", "both", "doi"});
  for (size_t e = 0; e < std::min(top, entries.size()); ++e) {
    const InteractionEntry& entry = entries[e];
    table.AddRow({entry.a.ToString(), entry.b.ToString(),
                  FormatDouble(entry.benefit_a, 0),
                  FormatDouble(entry.benefit_b, 0),
                  FormatDouble(entry.benefit_both, 0),
                  FormatDouble(entry.degree, 3)});
  }
  return table.ToString();
}

}  // namespace idxsel::analysis
