// AutoAdmin-style two-step selection — Chaudhuri & Narasayya's Microsoft
// SQL Server tool [13], as characterized in the paper's related work:
//
//   1. Candidate selection: only indexes that are the *best* index for at
//      least one query become candidates ("potentially resulting in wasted
//      potential").
//   2. Greedy enumeration: repeatedly add the candidate with the largest
//      total workload-cost reduction, re-evaluated against the current
//      configuration, until the stop criterion fires. The original tool
//      stops at a fixed *number* of indexes; the paper argues for a memory
//      budget instead — both criteria are supported.

#ifndef IDXSEL_SELECTION_AUTOADMIN_H_
#define IDXSEL_SELECTION_AUTOADMIN_H_

#include <cstdint>
#include <limits>

#include "selection/heuristics.h"

namespace idxsel::selection {

/// Stop criterion of the greedy enumeration.
struct AutoAdminOptions {
  /// Stop after this many indexes (the original tool's constraint).
  size_t max_indexes = std::numeric_limits<size_t>::max();
  /// And/or stop when the memory budget would be exceeded.
  double budget = std::numeric_limits<double>::infinity();
  uint32_t candidate_max_width = 4;
};

/// Result plus the per-query best candidates (step 1's output), exposed so
/// tests and benches can inspect the pruning.
struct AutoAdminResult {
  SelectionResult selection;
  CandidateSet candidates;  ///< "Best index for >= 1 query" set.
};

/// Runs the two-step AutoAdmin procedure over the engine's workload.
AutoAdminResult SelectAutoAdmin(WhatIfEngine& engine,
                                const AutoAdminOptions& options);

}  // namespace idxsel::selection

#endif  // IDXSEL_SELECTION_AUTOADMIN_H_
