#include "selection/heuristics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "obs/obs.h"

namespace idxsel::selection {
namespace {

/// Listed budget-rejected candidates per greedy fill; beyond this they are
/// only counted (mirrors the recursive selector's cap).
constexpr size_t kJournalRejectCap = 32;

/// Walks `scored` (already ordered best-first; `.first` is the strategy's
/// ranking score, lower = better) and takes every candidate that still
/// fits the budget. Expiry stops the walk: every candidate accepted
/// before the cut stays — the fill is anytime.
///
/// When a selection-journal sink is installed (common/telemetry.h), every
/// accepted pick emits a "pick" record under `journal_strategy` — `ratio`
/// carries the ranking score — and the fill closes with a "stop" record
/// listing the budget-rejected candidates (capped) with their reasons.
/// Emission is fully serial, so journals are byte-identical across runs.
IndexConfig GreedyFill(WhatIfEngine& engine, const CandidateSet& candidates,
                       const std::vector<std::pair<double, uint32_t>>& scored,
                       double budget, rt::DeadlinePoller& poller,
                       const char* journal_strategy) {
  const bool journal = telemetry::JournalActive();
  IndexConfig config;
  double used = 0.0;
  uint64_t picks = 0;
  uint64_t budget_exceeded = 0;
  uint64_t sanitized = 0;
  std::vector<std::string> reject_labels;
  std::vector<telemetry::JournalCandidate> rejects;
  for (const auto& [score, c] : scored) {
    if (poller.Expired()) break;
    const double mem = engine.IndexMemory(candidates[c]);
    if (used + mem > budget) {
      if (journal) {
        const bool was_sanitized = !std::isfinite(mem);
        if (was_sanitized) {
          ++sanitized;
        } else {
          ++budget_exceeded;
        }
        if (rejects.size() < kJournalRejectCap) {
          reject_labels.push_back(candidates[c].ToString());
          telemetry::JournalCandidate reject;
          reject.reject =
              was_sanitized ? "sanitized-whatif" : "budget-exceeded";
          reject.memory_delta = mem;
          reject.ratio = score;
          rejects.push_back(reject);
        }
      }
      continue;
    }
    if (config.Insert(candidates[c])) {
      used += mem;
      if (journal) {
        const std::string label = candidates[c].ToString();
        telemetry::JournalEvent event;
        event.strategy = journal_strategy;
        event.action = "pick";
        event.round = ++picks;
        event.winner = label.c_str();
        event.winner_ratio = score;
        event.memory_after = used;
        telemetry::JournalCandidate winner;
        winner.index = label.c_str();
        winner.memory_delta = mem;
        winner.ratio = score;
        event.candidates = &winner;
        event.num_candidates = 1;
        telemetry::EmitJournal(event);
      }
    }
  }
  if (journal) {
    telemetry::JournalEvent event;
    event.strategy = journal_strategy;
    event.action = "stop";
    event.round = picks;
    event.memory_after = used;
    if (poller.expired()) {
      // The reject list of a cut-short walk depends on where the deadline
      // fired; keep the terminal record deterministic-ingredients-only.
      event.note = "timeout";
    } else {
      // Labels were pushed in lockstep with rejects and the vector never
      // reallocates strings themselves; bind pointers here, after both
      // vectors stopped growing.
      for (size_t r = 0; r < rejects.size(); ++r) {
        rejects[r].index = reject_labels[r].c_str();
      }
      event.candidates = rejects.data();
      event.num_candidates = rejects.size();
      event.sanitized_whatif = sanitized;
      const std::string note =
          "scored=" + std::to_string(scored.size()) +
          " budget_exceeded=" + std::to_string(budget_exceeded) +
          " listed_rejects=" + std::to_string(rejects.size());
      event.note = note.c_str();
      telemetry::EmitJournal(event);
      return config;
    }
    telemetry::EmitJournal(event);
  }
  return config;
}

SelectionResult Finish(std::string name, WhatIfEngine& engine,
                       IndexConfig config, double selector_seconds,
                       bool timed_out) {
  SelectionResult result;
  result.name = std::move(name);
  result.memory = engine.ConfigMemory(config);
  result.objective = engine.WorkloadCost(config);
  result.selection = std::move(config);
  result.runtime_seconds = selector_seconds;
  result.status = timed_out
                      ? Status::Timeout(result.name + ": deadline expired")
                      : Status::Ok();
  IDXSEL_OBS_ONLY(
      obs::Registry::Default()
          .GetCounter("idxsel.heuristics." + result.name + ".runs")
          ->Add(1);)
  return result;
}

/// Individually-measured workload benefit of candidate c:
/// sum over applicable queries of b_j * max(0, f_j(0) - f_j(k)), minus the
/// maintenance penalty write queries inflict on k.
double StaticBenefit(WhatIfEngine& engine, const Index& k) {
  const workload::Workload& workload = engine.workload();
  double benefit = -engine.MaintenancePenalty(k);
  for (workload::QueryId j : workload.queries_with(k.leading())) {
    const double gain = engine.BaseCost(j) - engine.CostWithIndex(j, k);
    if (gain > 0.0) benefit += workload.query(j).frequency * gain;
  }
  return benefit;
}

}  // namespace

SelectionResult SelectRuleBased(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                RuleHeuristic heuristic,
                                const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.rule_based");
  Stopwatch watch;
  rt::DeadlinePoller poller(deadline);
  const workload::Workload& workload = engine.workload();

  // Lower score = better.
  auto score_of = [&](const Index& k) {
    double occurrences = 0.0;
    double selectivity = 1.0;
    for (workload::AttributeId a : k.attributes()) {
      occurrences += workload.occurrence_weight(a);
      selectivity *= workload.attribute(a).selectivity();
    }
    switch (heuristic) {
      case RuleHeuristic::kH1:
        return -occurrences;
      case RuleHeuristic::kH2:
        return selectivity;
      case RuleHeuristic::kH3:
        return occurrences > 0.0 ? selectivity / occurrences
                                 : std::numeric_limits<double>::infinity();
    }
    return 0.0;
  };

  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(candidates.size());
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    if (poller.Expired()) break;  // rank (and fill from) what was scored
    scored.emplace_back(score_of(candidates[c]), c);
  }
  std::sort(scored.begin(), scored.end());

  const bool h1 = heuristic == RuleHeuristic::kH1;
  const bool h2 = heuristic == RuleHeuristic::kH2;
  IndexConfig config =
      GreedyFill(engine, candidates, scored, budget, poller,
                 h1 ? "h1" : (h2 ? "h2" : "h3"));
  const double seconds = watch.ElapsedSeconds();
  return Finish(h1 ? "H1" : (h2 ? "H2" : "H3"), engine, std::move(config),
                seconds, poller.expired());
}

SelectionResult SelectByBenefit(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                bool use_skyline,
                                const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.by_benefit");
  rt::DeadlinePoller poller(deadline);
  const CandidateSet* pool = &candidates;
  CandidateSet filtered;
  if (use_skyline) {
    filtered = candidates::SkylineFilter(candidates, engine, deadline);
    pool = &filtered;
  }
  Stopwatch watch;
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(pool->size());
  for (uint32_t c = 0; c < pool->size(); ++c) {
    if (poller.Expired()) break;
    const double benefit = StaticBenefit(engine, (*pool)[c]);
    if (benefit > 0.0) scored.emplace_back(-benefit, c);
  }
  std::sort(scored.begin(), scored.end());

  IndexConfig config =
      GreedyFill(engine, *pool, scored, budget, poller,
                 use_skyline ? "h4_skyline" : "h4");
  const double seconds = watch.ElapsedSeconds();
  return Finish(use_skyline ? "H4+skyline" : "H4", engine, std::move(config),
                seconds, poller.expired());
}

SelectionResult SelectByBenefitPerSize(WhatIfEngine& engine,
                                       const CandidateSet& candidates,
                                       double budget,
                                       const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.by_benefit_per_size");
  Stopwatch watch;
  rt::DeadlinePoller poller(deadline);
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(candidates.size());
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    if (poller.Expired()) break;
    const double benefit = StaticBenefit(engine, candidates[c]);
    if (benefit <= 0.0) continue;
    const double mem = engine.IndexMemory(candidates[c]);
    scored.emplace_back(-benefit / std::max(1.0, mem), c);
  }
  std::sort(scored.begin(), scored.end());

  IndexConfig config =
      GreedyFill(engine, candidates, scored, budget, poller, "h5");
  const double seconds = watch.ElapsedSeconds();
  return Finish("H5", engine, std::move(config), seconds, poller.expired());
}

}  // namespace idxsel::selection
