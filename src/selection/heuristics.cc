#include "selection/heuristics.h"

#include <algorithm>
#include <vector>

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace idxsel::selection {
namespace {

/// Walks `ranking` (already ordered best-first) and takes every candidate
/// that still fits the budget. Expiry stops the walk: every candidate
/// accepted before the cut stays — the fill is anytime.
IndexConfig GreedyFill(WhatIfEngine& engine, const CandidateSet& candidates,
                       const std::vector<uint32_t>& ranking, double budget,
                       rt::DeadlinePoller& poller) {
  IndexConfig config;
  double used = 0.0;
  for (uint32_t c : ranking) {
    if (poller.Expired()) break;
    const double mem = engine.IndexMemory(candidates[c]);
    if (used + mem > budget) continue;
    if (config.Insert(candidates[c])) used += mem;
  }
  return config;
}

SelectionResult Finish(std::string name, WhatIfEngine& engine,
                       IndexConfig config, double selector_seconds,
                       bool timed_out) {
  SelectionResult result;
  result.name = std::move(name);
  result.memory = engine.ConfigMemory(config);
  result.objective = engine.WorkloadCost(config);
  result.selection = std::move(config);
  result.runtime_seconds = selector_seconds;
  result.status = timed_out
                      ? Status::Timeout(result.name + ": deadline expired")
                      : Status::Ok();
  IDXSEL_OBS_ONLY(
      obs::Registry::Default()
          .GetCounter("idxsel.heuristics." + result.name + ".runs")
          ->Add(1);)
  return result;
}

/// Individually-measured workload benefit of candidate c:
/// sum over applicable queries of b_j * max(0, f_j(0) - f_j(k)), minus the
/// maintenance penalty write queries inflict on k.
double StaticBenefit(WhatIfEngine& engine, const Index& k) {
  const workload::Workload& workload = engine.workload();
  double benefit = -engine.MaintenancePenalty(k);
  for (workload::QueryId j : workload.queries_with(k.leading())) {
    const double gain = engine.BaseCost(j) - engine.CostWithIndex(j, k);
    if (gain > 0.0) benefit += workload.query(j).frequency * gain;
  }
  return benefit;
}

}  // namespace

SelectionResult SelectRuleBased(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                RuleHeuristic heuristic,
                                const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.rule_based");
  Stopwatch watch;
  rt::DeadlinePoller poller(deadline);
  const workload::Workload& workload = engine.workload();

  // Lower score = better.
  auto score_of = [&](const Index& k) {
    double occurrences = 0.0;
    double selectivity = 1.0;
    for (workload::AttributeId a : k.attributes()) {
      occurrences += workload.occurrence_weight(a);
      selectivity *= workload.attribute(a).selectivity();
    }
    switch (heuristic) {
      case RuleHeuristic::kH1:
        return -occurrences;
      case RuleHeuristic::kH2:
        return selectivity;
      case RuleHeuristic::kH3:
        return occurrences > 0.0 ? selectivity / occurrences
                                 : std::numeric_limits<double>::infinity();
    }
    return 0.0;
  };

  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(candidates.size());
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    if (poller.Expired()) break;  // rank (and fill from) what was scored
    scored.emplace_back(score_of(candidates[c]), c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<uint32_t> ranking(scored.size());
  for (size_t r = 0; r < scored.size(); ++r) ranking[r] = scored[r].second;

  IndexConfig config = GreedyFill(engine, candidates, ranking, budget, poller);
  const double seconds = watch.ElapsedSeconds();
  const char* name = heuristic == RuleHeuristic::kH1
                         ? "H1"
                         : (heuristic == RuleHeuristic::kH2 ? "H2" : "H3");
  return Finish(name, engine, std::move(config), seconds, poller.expired());
}

SelectionResult SelectByBenefit(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                bool use_skyline,
                                const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.by_benefit");
  rt::DeadlinePoller poller(deadline);
  const CandidateSet* pool = &candidates;
  CandidateSet filtered;
  if (use_skyline) {
    filtered = candidates::SkylineFilter(candidates, engine, deadline);
    pool = &filtered;
  }
  Stopwatch watch;
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(pool->size());
  for (uint32_t c = 0; c < pool->size(); ++c) {
    if (poller.Expired()) break;
    const double benefit = StaticBenefit(engine, (*pool)[c]);
    if (benefit > 0.0) scored.emplace_back(-benefit, c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<uint32_t> ranking(scored.size());
  for (size_t r = 0; r < scored.size(); ++r) ranking[r] = scored[r].second;

  IndexConfig config = GreedyFill(engine, *pool, ranking, budget, poller);
  const double seconds = watch.ElapsedSeconds();
  return Finish(use_skyline ? "H4+skyline" : "H4", engine, std::move(config),
                seconds, poller.expired());
}

SelectionResult SelectByBenefitPerSize(WhatIfEngine& engine,
                                       const CandidateSet& candidates,
                                       double budget,
                                       const rt::Deadline& deadline) {
  IDXSEL_OBS_SPAN(span, "strategy", "heuristics.by_benefit_per_size");
  Stopwatch watch;
  rt::DeadlinePoller poller(deadline);
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(candidates.size());
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    if (poller.Expired()) break;
    const double benefit = StaticBenefit(engine, candidates[c]);
    if (benefit <= 0.0) continue;
    const double mem = engine.IndexMemory(candidates[c]);
    scored.emplace_back(-benefit / std::max(1.0, mem), c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<uint32_t> ranking(scored.size());
  for (size_t r = 0; r < scored.size(); ++r) ranking[r] = scored[r].second;

  IndexConfig config = GreedyFill(engine, candidates, ranking, budget, poller);
  const double seconds = watch.ElapsedSeconds();
  return Finish("H5", engine, std::move(config), seconds, poller.expired());
}

}  // namespace idxsel::selection
