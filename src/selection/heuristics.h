// Rule-based and greedy selection baselines (H1)-(H5) of Definition 1.
//
// All five pick from a *fixed* candidate set I and a memory budget A, and
// none of them accounts for index interaction adaptively — that is the
// paper's point of comparison against the recursive strategy (H6,
// idxsel::core::RecursiveSelector):
//
//   (H1) most frequency-weighted attribute occurrences g_i,
//   (H2) smallest (combined) selectivity,
//   (H3) smallest selectivity / occurrence ratio,
//   (H4) largest individually-measured workload benefit
//        (optionally on skyline-filtered candidates, cf. Kimura et al.),
//   (H5) largest individually-measured benefit-per-byte
//        (DB2 advisor starting solution, cf. Valentin et al.).
//
// Greedy semantics: candidates are ranked once by their static score;
// the ranking is walked in order and every candidate that still fits the
// remaining budget is taken (standard knapsack greedy).

#ifndef IDXSEL_SELECTION_HEURISTICS_H_
#define IDXSEL_SELECTION_HEURISTICS_H_

#include <string>

#include "candidates/candidates.h"
#include "common/deadline.h"
#include "common/status.h"
#include "costmodel/index.h"
#include "costmodel/what_if.h"

namespace idxsel::selection {

using candidates::CandidateSet;
using costmodel::Index;
using costmodel::IndexConfig;
using costmodel::WhatIfEngine;

/// Result of one selector run.
struct SelectionResult {
  std::string name;        ///< "H1", "H4+skyline", ...
  IndexConfig selection;
  double objective = 0.0;  ///< F(selection) = sum_j b_j f_j(selection).
  double memory = 0.0;     ///< P(selection) in bytes.
  double runtime_seconds = 0.0;  ///< Selector time excluding what-if calls
                                 ///< issued for the final objective.
  /// OK on natural termination; Timeout when the deadline cut the run
  /// short. The greedy fills are anytime: on timeout the selection holds
  /// every candidate accepted so far — feasible under the budget, just
  /// ranked/filled from a truncated scoring pass.
  Status status;
};

/// Enumerates the heuristics for table-driven benches/tests.
enum class RuleHeuristic { kH1, kH2, kH3 };

/// (H1)-(H3): rule-based scores; no what-if calls are needed to rank.
/// All selectors poll `deadline` per candidate (scoring and fill); the
/// default is unbounded, preserving the original exhaustive behaviour.
SelectionResult SelectRuleBased(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                RuleHeuristic heuristic,
                                const rt::Deadline& deadline = rt::Deadline());

/// (H4): greedy by individually-measured benefit. When `use_skyline` is
/// set, dominated candidates are removed first (the skyline method).
SelectionResult SelectByBenefit(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                bool use_skyline,
                                const rt::Deadline& deadline = rt::Deadline());

/// (H5): greedy by individually-measured benefit per byte.
SelectionResult SelectByBenefitPerSize(
    WhatIfEngine& engine, const CandidateSet& candidates, double budget,
    const rt::Deadline& deadline = rt::Deadline());

}  // namespace idxsel::selection

#endif  // IDXSEL_SELECTION_HEURISTICS_H_
