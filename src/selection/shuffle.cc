#include "selection/shuffle.h"

#include <algorithm>

#include "common/random.h"
#include "common/stopwatch.h"

namespace idxsel::selection {
namespace {

/// Incremental objective tracker over a fixed candidate set: per-query
/// cheapest cost over the selected candidates (one-index setting) plus the
/// modular maintenance penalties.
class ObjectiveTracker {
 public:
  ObjectiveTracker(WhatIfEngine& engine, const CandidateSet& candidates)
      : engine_(engine), candidates_(candidates),
        selected_(candidates.size(), 0) {
    const workload::Workload& w = engine.workload();
    applicability_ =
        candidates::ComputeApplicability(w, candidates);
    objective_ = 0.0;
    best_cost_.resize(w.num_queries());
    for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
      best_cost_[j] = engine.BaseCost(j);
      objective_ += w.query(j).frequency * best_cost_[j];
    }
  }

  double objective() const { return objective_; }
  double memory() const { return memory_; }
  bool selected(uint32_t c) const { return selected_[c] != 0; }

  /// Adds candidate c (must not be selected).
  void Add(uint32_t c) {
    IDXSEL_DCHECK(!selected_[c]);
    selected_[c] = 1;
    memory_ += engine_.IndexMemory(candidates_[c]);
    objective_ += engine_.MaintenancePenalty(candidates_[c]);
    const workload::Workload& w = engine_.workload();
    for (workload::QueryId j :
         w.queries_with(candidates_[c].leading())) {
      const double cost = engine_.CostWithIndex(j, candidates_[c]);
      if (cost < best_cost_[j]) {
        objective_ -= w.query(j).frequency * (best_cost_[j] - cost);
        best_cost_[j] = cost;
      }
    }
  }

  /// Removes candidate c (must be selected); per-query costs of its
  /// queries are recomputed over the remaining selection.
  void Remove(uint32_t c) {
    IDXSEL_DCHECK(selected_[c]);
    selected_[c] = 0;
    memory_ -= engine_.IndexMemory(candidates_[c]);
    objective_ -= engine_.MaintenancePenalty(candidates_[c]);
    const workload::Workload& w = engine_.workload();
    for (workload::QueryId j :
         w.queries_with(candidates_[c].leading())) {
      double best = engine_.BaseCost(j);
      for (uint32_t other : applicability_[j]) {
        if (!selected_[other]) continue;
        best = std::min(best,
                        engine_.CostWithIndex(j, candidates_[other]));
      }
      objective_ += w.query(j).frequency * (best - best_cost_[j]);
      best_cost_[j] = best;
    }
  }

  IndexConfig ToConfig() const {
    IndexConfig config;
    for (uint32_t c = 0; c < candidates_.size(); ++c) {
      if (selected_[c]) config.Insert(candidates_[c]);
    }
    return config;
  }

 private:
  WhatIfEngine& engine_;
  const CandidateSet& candidates_;
  std::vector<std::vector<uint32_t>> applicability_;
  std::vector<char> selected_;
  std::vector<double> best_cost_;
  double objective_ = 0.0;
  double memory_ = 0.0;
};

}  // namespace

ShuffleResult SelectByShuffling(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                const ShuffleOptions& options) {
  Stopwatch watch;
  ShuffleResult result;

  // Starting solution: (H5), per Valentin et al.
  const SelectionResult start =
      SelectByBenefitPerSize(engine, candidates, budget);

  ObjectiveTracker tracker(engine, candidates);
  std::vector<uint32_t> in;   // selected candidate positions
  std::vector<uint32_t> out;  // unselected candidate positions
  {
    std::unordered_map<costmodel::Index, uint32_t, costmodel::IndexHash>
        position;
    for (uint32_t c = 0; c < candidates.size(); ++c) position[candidates[c]] = c;
    for (const costmodel::Index& k : start.selection.indexes()) {
      const uint32_t c = position.at(k);
      tracker.Add(c);
      in.push_back(c);
    }
    for (uint32_t c = 0; c < candidates.size(); ++c) {
      if (!tracker.selected(c)) out.push_back(c);
    }
  }

  Rng rng(options.seed);
  for (uint64_t iter = 0; iter < options.max_iterations; ++iter) {
    if ((iter & 0x1f) == 0 &&
        watch.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }
    ++result.iterations;
    if (options.trace_every != 0 && iter % options.trace_every == 0) {
      result.objective_trace.emplace_back(iter, tracker.objective());
    }
    if (in.empty() || out.empty()) break;

    // Random substitution: drop one selected index, then greedily pull in
    // random unselected candidates that fit the freed budget.
    const size_t drop_pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(in.size()) - 1));
    const uint32_t dropped = in[drop_pos];
    const double objective_before = tracker.objective();
    tracker.Remove(dropped);

    std::vector<uint32_t> pulled;
    const size_t attempts = std::min<size_t>(out.size(), 8);
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
      const size_t pull_pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
      const uint32_t candidate = out[pull_pos];
      if (tracker.selected(candidate)) continue;
      if (tracker.memory() + engine.IndexMemory(candidates[candidate]) >
          budget) {
        continue;
      }
      tracker.Add(candidate);
      pulled.push_back(candidate);
    }

    if (tracker.objective() < objective_before - 1e-9) {
      // Accept: update the in/out bookkeeping.
      ++result.accepted;
      in.erase(in.begin() + static_cast<long>(drop_pos));
      for (uint32_t candidate : pulled) {
        in.push_back(candidate);
        out.erase(std::find(out.begin(), out.end(), candidate));
      }
      out.push_back(dropped);
    } else {
      // Revert.
      for (auto it = pulled.rbegin(); it != pulled.rend(); ++it) {
        tracker.Remove(*it);
      }
      tracker.Add(dropped);
    }
  }

  result.selection.name = "H5+shuffle";
  result.selection.selection = tracker.ToConfig();
  result.selection.objective = tracker.objective();
  result.selection.memory = tracker.memory();
  result.selection.runtime_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace idxsel::selection
