#include "selection/autoadmin.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace idxsel::selection {

AutoAdminResult SelectAutoAdmin(WhatIfEngine& engine,
                                const AutoAdminOptions& options) {
  IDXSEL_OBS_SPAN(span, "strategy", "autoadmin.select");
  Stopwatch watch;
  const workload::Workload& w = engine.workload();
  AutoAdminResult result;

  // Step 1: per query, the cheapest index among all enumerable candidates
  // for that query; the union forms the candidate set.
  const CandidateSet universe = candidates::EnumerateAllCandidates(
      w, options.candidate_max_width);
  const auto applicability = candidates::ComputeApplicability(w, universe);
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    double best_cost = engine.BaseCost(j);
    const costmodel::Index* best = nullptr;
    for (uint32_t c : applicability[j]) {
      const double cost = engine.CostWithIndex(j, universe[c]);
      if (cost < best_cost) {
        best_cost = cost;
        best = &universe[c];
      }
    }
    if (best != nullptr) result.candidates.Add(*best);
  }

  // Step 2: greedy enumeration by total cost reduction against the current
  // configuration (index interaction enters through the re-evaluation).
  std::vector<double> current_cost(w.num_queries());
  double objective = 0.0;
  for (workload::QueryId j = 0; j < w.num_queries(); ++j) {
    current_cost[j] = engine.BaseCost(j);
    objective += w.query(j).frequency * current_cost[j];
  }

  IndexConfig config;
  double memory = 0.0;
  std::vector<char> taken(result.candidates.size(), 0);
  while (config.size() < options.max_indexes) {
    double best_gain = 0.0;
    uint32_t best_candidate = 0;
    bool found = false;
    for (uint32_t c = 0; c < result.candidates.size(); ++c) {
      if (taken[c]) continue;
      const costmodel::Index& k = result.candidates[c];
      if (memory + engine.IndexMemory(k) > options.budget) continue;
      double gain = -engine.MaintenancePenalty(k);
      for (workload::QueryId j : w.queries_with(k.leading())) {
        const double delta = current_cost[j] - engine.CostWithIndex(j, k);
        if (delta > 0.0) gain += w.query(j).frequency * delta;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_candidate = c;
        found = true;
      }
    }
    if (!found) break;

    taken[best_candidate] = 1;
    const costmodel::Index& k = result.candidates[best_candidate];
    config.Insert(k);
    memory += engine.IndexMemory(k);
    for (workload::QueryId j : w.queries_with(k.leading())) {
      current_cost[j] =
          std::min(current_cost[j], engine.CostWithIndex(j, k));
    }
  }

  result.selection.name = "AutoAdmin";
  result.selection.selection = std::move(config);
  result.selection.memory = memory;
  result.selection.objective =
      engine.WorkloadCost(result.selection.selection);
  result.selection.runtime_seconds = watch.ElapsedSeconds();
#if defined(IDXSEL_OBS)
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("idxsel.autoadmin.runs")->Add(1);
  registry.GetCounter("idxsel.autoadmin.greedy_rounds")
      ->Add(result.selection.selection.size());
  registry.GetGauge("idxsel.autoadmin.last_candidates")
      ->Set(static_cast<int64_t>(result.candidates.size()));
#endif
  return result;
}

}  // namespace idxsel::selection
