// Randomized substitution search — the DB2-advisor mechanism of Valentin
// et al. [9], which the paper contrasts with Algorithm 1's targeted
// construction (Section II-D: "the starting solution is often far away
// from optimal and the shuffling is not targeted, it can take a long time
// to obtain optimized results").
//
// Procedure: start from the (H5) greedy-by-benefit-per-size solution, then
// repeatedly try random substitutions — swap a selected index for one or
// more unselected candidates that fit the freed budget — accepting only
// improvements, until an iteration budget or time limit runs out.

#ifndef IDXSEL_SELECTION_SHUFFLE_H_
#define IDXSEL_SELECTION_SHUFFLE_H_

#include <cstdint>

#include "selection/heuristics.h"

namespace idxsel::selection {

/// Knobs of the randomized search.
struct ShuffleOptions {
  uint64_t seed = 1;
  uint64_t max_iterations = 2000;   ///< Substitution attempts.
  double time_limit_seconds = 10.0;
  /// Record the objective every `trace_every` iterations (0 = no trace).
  uint64_t trace_every = 0;
};

/// Result of the shuffle search; `objective_trace` (optional) records the
/// convergence curve for the bench.
struct ShuffleResult {
  SelectionResult selection;
  uint64_t iterations = 0;
  uint64_t accepted = 0;  ///< Improving substitutions found.
  std::vector<std::pair<uint64_t, double>> objective_trace;
};

/// Runs (H5) + randomized substitution over `candidates` within `budget`.
ShuffleResult SelectByShuffling(WhatIfEngine& engine,
                                const CandidateSet& candidates, double budget,
                                const ShuffleOptions& options = {});

}  // namespace idxsel::selection

#endif  // IDXSEL_SELECTION_SHUFFLE_H_
