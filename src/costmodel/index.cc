#include "costmodel/index.h"

#include <algorithm>

namespace idxsel::costmodel {

bool Index::Contains(AttributeId attribute) const {
  return std::find(attrs_.begin(), attrs_.end(), attribute) != attrs_.end();
}

Index Index::Append(AttributeId attribute) const {
  IDXSEL_DCHECK(!Contains(attribute));
  std::vector<AttributeId> attrs = attrs_;
  attrs.push_back(attribute);
  return Index(std::move(attrs));
}

Index Index::Prefix(size_t len) const {
  IDXSEL_DCHECK(len >= 1 && len <= attrs_.size());
  return Index(std::vector<AttributeId>(attrs_.begin(),
                                        attrs_.begin() + static_cast<long>(len)));
}

bool Index::HasPrefix(const Index& other) const {
  if (other.width() > width()) return false;
  return std::equal(other.attrs_.begin(), other.attrs_.end(), attrs_.begin());
}

size_t Index::CoverablePrefixLength(
    const std::vector<AttributeId>& sorted_attrs) const {
  size_t len = 0;
  for (AttributeId a : attrs_) {
    if (!std::binary_search(sorted_attrs.begin(), sorted_attrs.end(), a)) {
      break;
    }
    ++len;
  }
  return len;
}

size_t Index::Hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (AttributeId a : attrs_) {
    h ^= a + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Index::ToString() const {
  std::string out = "(";
  for (size_t u = 0; u < attrs_.size(); ++u) {
    if (u != 0) out += ',';
    out += std::to_string(attrs_[u]);
  }
  out += ')';
  return out;
}

IndexConfig::IndexConfig(std::vector<Index> indexes)
    : indexes_(std::move(indexes)) {
  std::sort(indexes_.begin(), indexes_.end());
  indexes_.erase(std::unique(indexes_.begin(), indexes_.end()),
                 indexes_.end());
}

bool IndexConfig::Insert(const Index& k) {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), k);
  if (it != indexes_.end() && *it == k) return false;
  indexes_.insert(it, k);
  return true;
}

bool IndexConfig::Erase(const Index& k) {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), k);
  if (it == indexes_.end() || !(*it == k)) return false;
  indexes_.erase(it);
  return true;
}

bool IndexConfig::Contains(const Index& k) const {
  return std::binary_search(indexes_.begin(), indexes_.end(), k);
}

std::string IndexConfig::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (i != 0) out += ", ";
    out += indexes_[i].ToString();
  }
  out += '}';
  return out;
}

}  // namespace idxsel::costmodel
