#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace idxsel::costmodel {

CostModel::CostModel(const workload::Workload* workload_in,
                     CostModelParams params)
    : workload_(workload_in), params_(params) {
  IDXSEL_CHECK(workload_ != nullptr);
  total_single_attr_memory_ = 0.0;
  for (AttributeId i = 0; i < workload_->num_attributes(); ++i) {
    total_single_attr_memory_ += IndexMemory(Index(i));
  }
}

double CostModel::IndexMemory(const Index& k) const {
  IDXSEL_DCHECK(!k.empty());
  const double n = static_cast<double>(workload_->rows_of(k.leading()));
  // Position-list storage: ceil(ceil(log2 n) * n / 8) bytes.
  const double bits = std::ceil(std::log2(std::max(2.0, n)));
  double mem = std::ceil(bits * n / 8.0);
  for (AttributeId i : k.attributes()) {
    IDXSEL_DCHECK(workload_->attribute(i).table ==
                  workload_->attribute(k.leading()).table);
    mem += static_cast<double>(workload_->attribute(i).value_size) * n;
  }
  return mem;
}

double CostModel::TotalSingleAttributeMemory() const {
  return total_single_attr_memory_;
}

double CostModel::SequentialScanCost(const std::vector<AttributeId>& attrs,
                                     double c, double rows) const {
  // Scan most selective attributes first (Appendix B(i)5) so the surviving
  // fraction shrinks as quickly as possible.
  std::vector<AttributeId> order = attrs;
  std::sort(order.begin(), order.end(), [&](AttributeId x, AttributeId y) {
    const double sx = workload_->attribute(x).selectivity();
    const double sy = workload_->attribute(y).selectivity();
    if (sx != sy) return sx < sy;
    return x < y;
  });
  double cost = 0.0;
  for (AttributeId i : order) {
    const auto& stats = workload_->attribute(i);
    cost += static_cast<double>(stats.value_size) * rows * c;
    cost += params_.position_list_bytes * rows * c * stats.selectivity();
    c *= stats.selectivity();
  }
  return cost;
}

double CostModel::IndexProbeCost(const Index& k, size_t prefix_len,
                                 double rows, double* c) const {
  IDXSEL_DCHECK(prefix_len >= 1 && prefix_len <= k.width());
  double cost = std::log2(std::max(2.0, rows));
  double prefix_selectivity = 1.0;
  // Only the coverable prefix participates in key comparisons; trailing
  // attributes the query does not constrain are never touched during the
  // descent. This also guarantees f_j(k ++ i) == f_j(k) whenever the query
  // cannot exploit the extension — the invariant behind the paper's
  // "the costs of most queries do not change" caching argument.
  for (size_t u = 0; u < prefix_len; ++u) {
    const auto& stats = workload_->attribute(k.attribute(u));
    cost += static_cast<double>(stats.value_size) *
            std::log2(std::max(2.0, static_cast<double>(stats.distinct_values)));
    prefix_selectivity *= stats.selectivity();
  }
  cost += params_.position_list_bytes * rows * (*c) * prefix_selectivity;
  *c *= prefix_selectivity;
  return cost;
}

double CostModel::UnindexedCost(QueryId j) const {
  const workload::Query& q = workload_->query(j);
  const double rows = static_cast<double>(workload_->table(q.table).row_count);
  if (q.kind == workload::QueryKind::kWrite) {
    // Point write: locate the row plus write the touched values. Index
    // effects are charged separately as maintenance (MaintenanceCost).
    double cost = std::log2(std::max(2.0, rows));
    for (AttributeId i : q.attributes) {
      cost += workload_->attribute(i).value_size;
    }
    return cost;
  }
  return SequentialScanCost(q.attributes, 1.0, rows);
}

bool CostModel::Applicable(QueryId j, const Index& k) const {
  const workload::Query& q = workload_->query(j);
  if (workload_->attribute(k.leading()).table != q.table) return false;
  return std::binary_search(q.attributes.begin(), q.attributes.end(),
                            k.leading());
}

double CostModel::MaintenanceCost(QueryId j, const Index& k) const {
  const workload::Query& q = workload_->query(j);
  if (q.kind != workload::QueryKind::kWrite) return 0.0;
  if (workload_->attribute(k.leading()).table != q.table) return 0.0;
  bool touches = false;
  for (AttributeId i : k.attributes()) {
    if (std::binary_search(q.attributes.begin(), q.attributes.end(), i)) {
      touches = true;
      break;
    }
  }
  if (!touches) return 0.0;
  const double rows = static_cast<double>(workload_->table(q.table).row_count);
  // Locate the stale entry, rewrite the key columns, fix the rid list.
  double cost = std::log2(std::max(2.0, rows)) + params_.position_list_bytes;
  for (AttributeId i : k.attributes()) {
    cost += workload_->attribute(i).value_size;
  }
  return cost;
}

double CostModel::CostWithIndex(QueryId j, const Index& k) const {
  const workload::Query& q = workload_->query(j);
  if (q.kind == workload::QueryKind::kWrite) return UnindexedCost(j);
  if (!Applicable(j, k)) return UnindexedCost(j);
  const size_t prefix_len = k.CoverablePrefixLength(q.attributes);
  IDXSEL_DCHECK(prefix_len >= 1);
  const double rows = static_cast<double>(workload_->table(q.table).row_count);

  double c = 1.0;
  double cost = IndexProbeCost(k, prefix_len, rows, &c);

  // Attributes of q_j not covered by the prefix are scanned sequentially.
  std::vector<AttributeId> rest;
  rest.reserve(q.attributes.size());
  for (AttributeId a : q.attributes) {
    bool covered = false;
    for (size_t u = 0; u < prefix_len; ++u) {
      if (k.attribute(u) == a) {
        covered = true;
        break;
      }
    }
    if (!covered) rest.push_back(a);
  }
  cost += SequentialScanCost(rest, c, rows);
  // The index is only chosen when it helps (the optimizer would fall back
  // to a plain scan otherwise).
  return std::min(cost, UnindexedCost(j));
}

double CostModel::CostOneIndex(QueryId j, const IndexConfig& config) const {
  double best = UnindexedCost(j);
  for (const Index& k : config.indexes()) {
    if (!Applicable(j, k)) continue;
    best = std::min(best, CostWithIndex(j, k));
  }
  return best;
}

double CostModel::CostMultiIndex(QueryId j, const IndexConfig& config) const {
  const workload::Query& q = workload_->query(j);
  if (q.kind == workload::QueryKind::kWrite) return UnindexedCost(j);
  const double rows = static_cast<double>(workload_->table(q.table).row_count);

  std::vector<AttributeId> remaining = q.attributes;  // sorted
  double c = 1.0;
  double cost = 0.0;
  while (!remaining.empty()) {
    // Pick the applicable index whose coverable prefix shrinks the
    // surviving fraction the most (Appendix B(i)1: smallest result set).
    const Index* best = nullptr;
    size_t best_len = 0;
    double best_sel = 1.0;
    for (const Index& k : config.indexes()) {
      if (workload_->attribute(k.leading()).table != q.table) continue;
      const size_t len = k.CoverablePrefixLength(remaining);
      if (len == 0) continue;
      double sel = 1.0;
      for (size_t u = 0; u < len; ++u) {
        sel *= workload_->attribute(k.attribute(u)).selectivity();
      }
      if (best == nullptr || sel < best_sel ||
          (sel == best_sel && len > best_len)) {
        best = &k;
        best_len = len;
        best_sel = sel;
      }
    }
    if (best == nullptr) break;

    // Use the index only when probing beats sequentially scanning the same
    // prefix attributes at the current surviving fraction.
    std::vector<AttributeId> prefix_attrs(
        best->attributes().begin(),
        best->attributes().begin() + static_cast<long>(best_len));
    std::sort(prefix_attrs.begin(), prefix_attrs.end());
    const double scan_equiv = SequentialScanCost(prefix_attrs, c, rows);
    double c_probe = c;
    const double probe = IndexProbeCost(*best, best_len, rows, &c_probe);
    if (probe >= scan_equiv) break;

    cost += probe;
    c = c_probe;
    std::vector<AttributeId> next;
    next.reserve(remaining.size());
    std::set_difference(remaining.begin(), remaining.end(),
                        prefix_attrs.begin(), prefix_attrs.end(),
                        std::back_inserter(next));
    remaining = std::move(next);
  }
  cost += SequentialScanCost(remaining, c, rows);
  // The optimizer also considers every single-index plan (and the plain
  // scan, via CostOneIndex); the multi-index greedy is only taken when it
  // wins. This keeps f_j monotone: more indexes never cost more.
  return std::min(cost, CostOneIndex(j, config));
}

}  // namespace idxsel::costmodel
