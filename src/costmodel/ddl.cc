#include "costmodel/ddl.h"

#include "common/check.h"

namespace idxsel::costmodel {
namespace {

/// Unqualified attribute label: "ATTR" from "TABLE.ATTR", or "a<id>".
std::string AttrLabel(AttributeId a,
                      const std::vector<std::string>* names) {
  if (names == nullptr) {
    std::string label = "a";
    label += std::to_string(a);
    return label;
  }
  IDXSEL_CHECK_LT(a, names->size());
  const std::string& full = (*names)[a];
  const size_t dot = full.find('.');
  return dot == std::string::npos ? full : full.substr(dot + 1);
}

}  // namespace

std::string IndexName(const workload::Workload& workload, const Index& k,
                      const std::vector<std::string>* attribute_names) {
  const workload::TableId table = workload.attribute(k.leading()).table;
  std::string name = "idx_";
  name += workload.table(table).name;
  for (AttributeId a : k.attributes()) {
    name += '_';
    name += AttrLabel(a, attribute_names);
  }
  return name;
}

std::string RenderCreateStatements(
    const workload::Workload& workload, const IndexConfig& config,
    const std::vector<std::string>* attribute_names) {
  std::string out;
  for (const Index& k : config.indexes()) {
    const workload::TableId table = workload.attribute(k.leading()).table;
    out += "CREATE INDEX ";
    out += IndexName(workload, k, attribute_names);
    out += " ON ";
    out += workload.table(table).name;
    out += " (";
    for (size_t u = 0; u < k.width(); ++u) {
      if (u != 0) out += ", ";
      out += AttrLabel(k.attribute(u), attribute_names);
    }
    out += ");\n";
  }
  return out;
}

std::string RenderMigration(
    const workload::Workload& workload, const IndexConfig& current,
    const IndexConfig& target,
    const std::vector<std::string>* attribute_names) {
  std::string out;
  for (const Index& k : current.indexes()) {
    if (!target.Contains(k)) {
      out += "DROP INDEX ";
      out += IndexName(workload, k, attribute_names);
      out += ";\n";
    }
  }
  IndexConfig added;
  for (const Index& k : target.indexes()) {
    if (!current.Contains(k)) added.Insert(k);
  }
  out += RenderCreateStatements(workload, added, attribute_names);
  return out;
}

}  // namespace idxsel::costmodel
